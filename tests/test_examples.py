"""Every example script must run cleanly and print its key result."""

import pathlib
import subprocess
import sys

import pytest

from .conftest import subprocess_env

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

MARKERS = {
    "quickstart.py": "Annotated database after T1; T2",
    "ecommerce_access_control.py": "Storefront for EU",
    "whatif_analysis.py": "answers agree",
    "tpcc_audit.py": "consistent with a full re-run: yes",
    "sql_provenance.py": "had 'clearance' never run",
    "trusted_pipeline.py": "certified rows at trust level L = 0.8",
    "provenance_service.py": "server state agrees with the in-process engine: yes",
}


def test_all_examples_are_covered():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(MARKERS), "add new examples to MARKERS"


@pytest.mark.parametrize("name", sorted(MARKERS))
def test_example_runs(name):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        env=subprocess_env(),
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert MARKERS[name] in completed.stdout
