"""The docs link gate, enforced in tier-1 (CI also runs the script)."""

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).parent.parent


def test_no_broken_relative_links_in_docs():
    completed = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_links.py"), str(ROOT)],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert completed.returncode == 0, completed.stdout
    assert "0 broken relative links" in completed.stdout


def test_link_checker_detects_breakage(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "[ok](docs/real.md) and [broken](docs/missing.md)\n"
    )
    (tmp_path / "docs" / "real.md").write_text("see [up](../README.md)\n")
    completed = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_links.py"), str(tmp_path)],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert completed.returncode == 1
    assert "docs/missing.md" in completed.stdout
    assert "1 broken relative links" in completed.stdout
