"""The ISSUE 1 acceptance measurements, at test-suite scale.

These are correctness-plus-floor checks on the comparison primitives in
:mod:`repro.bench.measure`: the memoized rewrite path must be at least 2x
faster than cold-cache rewriting on a repeated-normalization workload, and
the batched pipeline must beat sequential application on a fig8-style
synthetic scenario.  Generous margins (observed locally: ~12x and ~3x)
keep them robust on noisy CI machines.
"""

from __future__ import annotations

import pytest

from repro.bench.measure import (
    batch_comparison,
    repeated_normalization_workload,
    rewrite_cache_comparison,
)
from repro.workloads.synthetic import SyntheticConfig, synthetic_database, synthetic_log


def retrying(measure, floor):
    """Run a timing measurement again if the first falls below its floor.

    The floors sit 2.5-6x under the locally observed ratios, which are
    algorithmic (cache hits vs. full rewrites; one scan vs. N scans) — a
    miss means a scheduler hiccup on a noisy CI runner, and one retry is
    enough to rule that out without making the acceptance check advisory.
    """
    comparison = measure()
    if comparison.speedup < floor:
        comparison = measure()
    return comparison


def test_rewrite_cache_comparison_speedup():
    exprs = repeated_normalization_workload(n_tuples=300, n_queries=150)
    comparison = retrying(lambda: rewrite_cache_comparison(exprs, repeats=5), 2.0)
    assert comparison.consistent
    assert comparison.expressions == len(exprs)
    assert comparison.hits > 0
    # Acceptance floor: memoized >= 2x faster on repeated normalization.
    assert comparison.speedup >= 2.0, comparison.as_dict()


@pytest.mark.parametrize("policy", ["normal_form", "normal_form_batch"])
def test_batched_beats_sequential_on_fig8_scenario(policy):
    config = SyntheticConfig(n_tuples=4_000, n_queries=200, n_groups=10, group_size=4, seed=5)
    database = synthetic_database(config)
    log = synthetic_log(config).as_single_transaction()
    comparison = retrying(lambda: batch_comparison(database, log, policy=policy), 1.2)
    assert comparison.consistent
    assert comparison.batches >= 1
    assert comparison.speedup > 1.2, comparison.as_dict()


def test_batch_comparison_none_policy_is_consistent():
    """No fused path for the vanilla executor — but still correct."""
    config = SyntheticConfig(n_tuples=500, n_queries=60, n_groups=6, group_size=4, seed=9)
    database = synthetic_database(config)
    log = synthetic_log(config).as_single_transaction()
    comparison = batch_comparison(database, log, policy="none")
    assert comparison.consistent
    assert comparison.queries == 60
