"""The ISSUE 1-5, 8 and 10 acceptance measurements, at test-suite scale.

These are correctness-plus-floor checks on the comparison primitives in
:mod:`repro.bench.measure`: the memoized rewrite path must be at least 2x
faster than cold-cache rewriting on a repeated-normalization workload,
the store's maintained column indexes must beat forced linear scans
on a selective-pattern synthetic scenario while returning bit-identical
results, recovery from checkpoint + journal tail must be at least 2x
faster than full replay while being bit-identical to it, and the
pattern-routed sharded engine must be at least 1.5x faster than the
unsharded engine on a routable workload while staying bit-identical, and
the provenance server's admission batching must be at least 1.5x faster
than per-call dispatch on a pipelined multi-client stream.  Generous
margins (observed locally: ~12x, ~10-30x, ~2.7x, ~6x and ~2-3x against
the asserted 2x / 1.5x / 2x / 1.5x / 1.5x floors) keep them robust on
noisy CI machines.
"""

from __future__ import annotations

import pytest

from repro.bench.measure import (
    batch_comparison,
    index_comparison,
    recovery_comparison,
    repeated_normalization_workload,
    replication_comparison,
    rewrite_cache_comparison,
    server_comparison,
    shard_comparison,
    view_comparison,
)
from repro.workloads.synthetic import SyntheticConfig, synthetic_database, synthetic_log


def retrying(measure, floor):
    """Run a timing measurement again if the first falls below its floor.

    The floors sit 2.5-6x under the locally observed ratios, which are
    algorithmic (cache hits vs. full rewrites; one scan vs. N scans) — a
    miss means a scheduler hiccup on a noisy CI runner, and one retry is
    enough to rule that out without making the acceptance check advisory.
    """
    comparison = measure()
    if comparison.speedup < floor:
        comparison = measure()
    return comparison


def test_rewrite_cache_comparison_speedup():
    exprs = repeated_normalization_workload(n_tuples=300, n_queries=150)
    comparison = retrying(lambda: rewrite_cache_comparison(exprs, repeats=5), 2.0)
    assert comparison.consistent
    assert comparison.expressions == len(exprs)
    assert comparison.hits > 0
    # Acceptance floor: memoized >= 2x faster on repeated normalization.
    assert comparison.speedup >= 2.0, comparison.as_dict()


@pytest.mark.parametrize("policy", ["normal_form", "naive", "none"])
def test_indexed_beats_linear_on_selective_scenario(policy):
    """ISSUE 2 acceptance: maintained indexes >= 1.5x over linear matching.

    A fig8-style selective workload — a few thousand rows, every pattern
    an equality on the hot ``grp`` column — where matching through the
    maintained column indexes touches only the selected group instead of
    scanning the relation per query (observed locally: 10-30x).
    """
    config = SyntheticConfig(n_tuples=4_000, n_queries=150, n_groups=10, group_size=4, seed=5)
    database = synthetic_database(config)
    log = synthetic_log(config).as_single_transaction()
    comparison = retrying(lambda: index_comparison(database, log, policy=policy), 1.5)
    assert comparison.consistent  # bit-identical rows and annotations
    assert comparison.index_hits > 0
    assert comparison.speedup >= 1.5, comparison.as_dict()


@pytest.mark.parametrize("policy", ["normal_form", "normal_form_batch"])
def test_batched_pipeline_stays_consistent_and_competitive(policy):
    """The batched pipeline replays sequential semantics without regressing.

    Before the indexed store (ISSUE 2), fused runs were the only indexed
    path and this test asserted a >1.2x win; now every single query goes
    through the maintained indexes, so the batched pipeline's remaining
    job is correctness plus deferred flushing — asserted here as equal
    results and wall time within scheduler noise of sequential (observed
    ratio ~1.0; the 0.8 floor flags any real batched-path regression).
    """
    config = SyntheticConfig(n_tuples=4_000, n_queries=200, n_groups=10, group_size=4, seed=5)
    database = synthetic_database(config)
    log = synthetic_log(config).as_single_transaction()
    comparison = retrying(lambda: batch_comparison(database, log, policy=policy), 0.8)
    assert comparison.consistent
    assert comparison.batches >= 1
    assert comparison.speedup > 0.8, comparison.as_dict()


def test_recovery_beats_full_replay_on_fig8_scenario(tmp_path):
    """ISSUE 3 acceptance: checkpoint + tail recovery >= 2x over full replay.

    The fig8-style default scenario of ``recovery_comparison``: a
    selective transaction stream journaled with periodic checkpoints,
    crashed after the last transaction, recovered from the newest
    checkpoint plus a genuine record tail (observed locally: ~2.7x).
    The recovered state must be bit-identical — rows, liveness, and the
    identical interned annotation object per row — to replaying the
    whole log from scratch.
    """
    attempts = iter(("first", "second"))
    comparison = retrying(
        lambda: recovery_comparison(tmp_path / next(attempts)), 2.0
    )
    assert comparison.consistent  # bit-identical recovered state
    assert comparison.checkpoints >= 2
    assert comparison.tail_records > 0  # a genuine tail was replayed
    assert comparison.speedup >= 2.0, comparison.as_dict()


def test_sharded_beats_unsharded_on_routable_scenario():
    """ISSUE 4 acceptance: pattern-routed shards >= 1.5x over one engine.

    The routable default scenario of ``shard_comparison``: every
    selection a ``grp``-equality, one query per transaction under the
    ``normal_form_batch`` policy — the flush-heavy regime where routed
    transaction ends confine each boundary's normalization sweep to the
    touched shard (observed locally: ~6x with the sequential backend on
    a single core; the process pool adds multi-core overlap on top, so
    the floor does not depend on CI core counts).  The merged sharded
    state must be bit-identical — rows, liveness, and the identical
    interned annotation object per row — to the unsharded engine.
    """
    comparison = retrying(lambda: shard_comparison(), 1.5)
    assert comparison.consistent  # bit-identical merged state
    assert comparison.routed_queries == comparison.queries
    assert comparison.broadcast_queries == 0
    assert comparison.speedup >= 1.5, comparison.as_dict()


def test_server_admission_batching_beats_percall_dispatch():
    """ISSUE 5 acceptance: admission batching >= 1.5x over per-call dispatch.

    Six concurrent clients pipeline single-insert apply requests at one
    provenance server; in batched mode the single writer fuses the queued
    backlog into one ``apply_batch`` call per cycle, in per-call mode
    (``admission_max=1``) every request pays its own writer wake-up and
    executor handoff (observed locally: ~2-3x; protocol, engine and
    client code are byte-for-byte identical between the two runs).  Both
    final server states must be bit-identical — rows, liveness, and the
    identical re-interned annotation object per row — to a direct
    in-process engine applying the same per-client streams.
    """
    comparison = retrying(lambda: server_comparison(), 1.5)
    assert comparison.consistent  # bit-identical to the in-process engine
    assert comparison.batched_max_admitted > 1  # fusion actually happened
    assert comparison.batched_cycles < comparison.percall_cycles
    assert comparison.speedup >= 1.5, comparison.as_dict()


def test_delta_push_beats_reread_per_update():
    """ISSUE 8 acceptance: delta-push subscriptions >= 2x over re-reading.

    The fig9-style affected-tuples scenario of ``view_comparison``: forty
    update rounds each touching one bucket of the watched slice.  The
    re-read consumer fetches and decodes the **full** state capture per
    round; the subscriber consumes O(affected) delta batches (observed
    locally: ~5-6x).  The delta-maintained view must be bit-identical —
    rows, liveness, and the identical re-interned annotation object per
    row — to a fresh capture of its slice at the same version.
    """
    comparison = retrying(lambda: view_comparison(), 2.0)
    assert comparison.consistent  # bit-identical maintained slice
    assert comparison.push_batches == comparison.updates  # one batch per round
    assert comparison.affected < comparison.watched < comparison.rows
    assert comparison.speedup >= 2.0, comparison.as_dict()


def test_follower_routed_reads_beat_primary_only(tmp_path):
    """ISSUE 10 acceptance: 3 followers >= 1.8x aggregate read throughput.

    The replication scenario of ``replication_comparison``: a primary
    under a continuous single-apply write stream (every ack invalidates
    its published snapshot, so each primary read pays a fresh capture of
    a large state) serves four readers directly, then the same readers
    route through the read/write splitter to three follower processes
    whose coalesced shipment batches leave their snapshots cacheable
    between applies (observed locally: ~2.8-3.3x on one core — a
    per-read-cost win, not a parallelism artifact; the topology is
    constant across both phases, only the routing differs).  At the
    final journal sequence every follower's state must be bit-identical
    to the primary's — rows, liveness, and the identical re-interned
    annotation object per row.
    """
    attempts = iter(("first", "second"))
    comparison = retrying(
        lambda: replication_comparison(tmp_path / next(attempts)), 1.8
    )
    assert comparison.consistent  # bit-identical followers at equal seq
    assert comparison.follower_reads > 0  # reads actually scaled out
    assert comparison.followers == 3
    assert comparison.speedup >= 1.8, comparison.as_dict()


def test_batch_comparison_none_policy_is_consistent():
    """No fused path for the vanilla executor — but still correct."""
    config = SyntheticConfig(n_tuples=500, n_queries=60, n_groups=6, group_size=4, seed=9)
    database = synthetic_database(config)
    log = synthetic_log(config).as_single_transaction()
    comparison = batch_comparison(database, log, policy="none")
    assert comparison.consistent
    assert comparison.queries == 60
