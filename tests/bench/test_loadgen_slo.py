"""Tier-1 latency SLO floors on the tiny loadgen profile.

The same contract the speedup-floor tests enforce for throughput, here
for latency: a tiny in-process loadgen run must complete error-free and
keep generous per-op quantile ceilings, and its ``BENCH_loadgen_*``
trajectory must be well-formed.  The ceilings (2s p99 / 5s max against
locally observed single-digit milliseconds) are scheduler-hiccup-proof;
a breach means something structural regressed in the serve path.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.measure import BENCH_SCHEMA_VERSION
from repro.db.database import Database
from repro.loadgen import (
    check_slos,
    loadgen_schema,
    parse_slos,
    profile_from_name,
    run_loadgen,
    write_result,
)
from repro.server.server import serve_in_thread
from repro.server.service import ServerConfig

#: Generous ceilings — see the module docstring.
FLOORS = [
    "apply:p99<2",
    "state:p99<2",
    "provenance:p99<2",
    "annotation_of:p99<2",
    "apply:max<5",
]


@pytest.fixture(scope="module")
def tiny_result():
    profile = profile_from_name("tiny")
    database = Database(loadgen_schema(profile))
    handle = serve_in_thread(database, ServerConfig(port=0, policy="normal_form_batch"))
    try:
        yield run_loadgen(profile, host=handle.host, port=handle.port, mode="thread")
    finally:
        handle.stop()


def test_tiny_profile_measures_every_op_kind_error_free(tiny_result):
    assert tiny_result.errors_total == 0
    assert tiny_result.ops_total == 2 * 60  # tiny: 2 workers x 60 ops
    for kind in ("apply", "state", "provenance", "annotation_of"):
        assert tiny_result.hists[kind].count > 0, kind


def test_tiny_profile_holds_the_latency_floors(tiny_result):
    violations = check_slos(tiny_result, parse_slos(FLOORS))
    assert violations == [], violations


def test_trajectory_file_is_well_formed(tiny_result, tmp_path):
    path = write_result(tiny_result, tmp_path)
    assert path.name == "BENCH_loadgen_tiny.json"
    envelope = json.loads(path.read_text())
    assert envelope["schema_version"] == BENCH_SCHEMA_VERSION
    assert envelope["kind"] == "loadgen"
    assert envelope["name"] == "tiny"
    assert envelope["git_rev"]
    payload = envelope["payload"]
    assert payload["config"] == tiny_result.profile.as_dict()
    assert payload["ops_total"] == tiny_result.ops_total
    assert payload["errors_total"] == 0
    for kind, block in payload["ops"].items():
        summary = block["summary"]
        assert summary["count"] > 0
        assert 0 <= summary["p50"] <= summary["p90"] <= summary["p99"]
        assert summary["max"] >= 0
        assert block["histogram"]["count"] == summary["count"]
    # The whole envelope must be JSON round-trippable (it just was) and
    # the CSV export must cover the same op kinds.
    csv_text = tiny_result.to_csv()
    for kind in payload["ops"]:
        assert kind in csv_text
