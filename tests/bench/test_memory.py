"""Tier-1 floors on the memory axis (ISSUE 7 acceptance, test scale).

Two gates:

* :func:`repro.bench.measure.memory_comparison` at a tiny epoch scale
  must show the GC'd + arena-encoded configuration holding at least 2x
  fewer interned nodes than the grow-only object baseline, with
  bit-identical final state and a non-zero sweep count.  Node counts are
  deterministic (the child workload is seeded and sweeps run at epoch
  boundaries), so the floor needs no retry; peak RSS is only asserted to
  be measured, not ratioed — at tiny scale the interpreter baseline
  dominates both sides (the >= 2x RSS ratio is the default-scale
  acceptance run, not a tier-1 assertion).
* a soaked loadgen run against a sweeping server must complete
  error-free while the driver's ``stats`` polls observe memory samples,
  and the ``BENCH_loadgen_*`` trajectory must carry them.  Runs in a
  subprocess: ``sweep_every`` enables the process-global intern GC, and
  sweeps on the server's writer thread would reclaim *other* tests'
  unrooted expressions in a shared pytest process.
"""

from __future__ import annotations

import json
import subprocess
import sys

from repro.bench.measure import memory_comparison

#: Tiny but garbage-producing: disposable per-epoch engines beside a
#: rooted resident one (see ``repro.bench.memchild``).
TINY = dict(epochs=5, transactions=8, queries_per_transaction=4, rows=120, groups=10)


def test_memory_comparison_tiny_reclaims_with_identical_state():
    comparison = memory_comparison(modes=["objects_grow", "arena_gc"], **TINY)
    assert comparison.consistent, {
        mode: result["fingerprint"] for mode, result in comparison.results.items()
    }
    # Acceptance floor: reclaimable interning + arena at-rest holds the
    # final node population >= 2x below the grow-only object baseline.
    assert comparison.node_ratio >= 2.0, comparison.as_dict()
    assert comparison.swept_total > 0
    for mode, result in comparison.results.items():
        assert result["peak_rss_bytes"] > 0, mode
        assert result["intern_table_size"] > 0, mode
    # The summary must be JSON-serializable (it feeds write_bench_json).
    json.dumps(comparison.as_dict())


def test_soaked_loadgen_samples_memory_and_sweeps(tmp_path):
    script = (
        "import json, sys\n"
        "from repro.db.database import Database\n"
        "from repro.loadgen import loadgen_schema, profile_from_name, run_loadgen, write_result\n"
        "from repro.server.server import serve_in_thread\n"
        "from repro.server.service import ServerConfig\n"
        "profile = profile_from_name('tiny', repeat=3)\n"
        "database = Database(loadgen_schema(profile))\n"
        "handle = serve_in_thread(\n"
        "    database, ServerConfig(port=0, policy='normal_form_batch', sweep_every=2))\n"
        "try:\n"
        "    result = run_loadgen(profile, host=handle.host, port=handle.port,\n"
        "                         mode='thread', report_every=0.2)\n"
        "finally:\n"
        "    handle.stop()\n"
        "assert result.errors_total == 0, result.errors\n"
        "assert result.ops_total == 2 * 60 * 3  # tiny stream replayed 3x\n"
        "assert result.memory_samples, 'stats polls produced no samples'\n"
        "for sample in result.memory_samples:\n"
        "    assert sample['intern_table_size'] > 0\n"
        "    assert sample['rss_bytes'] > 0\n"
        "    assert sample['sweep_every'] == 2\n"
        "final = result.memory_samples[-1]\n"
        "assert final['sweep']['gc_active']\n"
        "assert final['sweep']['sweeps'] >= 1\n"
        "path = write_result(result, sys.argv[1])\n"
        "payload = json.loads(path.read_text())['payload']\n"
        "assert payload['config']['repeat'] == 3\n"
        "assert payload['memory']['samples'] == result.memory_samples\n"
        "assert payload['memory']['final'] == final\n"
        "print('ok')\n"
    )
    from ..conftest import subprocess_env

    completed = subprocess.run(
        [sys.executable, "-c", script, str(tmp_path)],
        env=subprocess_env(),
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip() == "ok"
