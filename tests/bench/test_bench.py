"""The measurement harness and figure drivers (smoke + semantics)."""

import pytest

from repro.bench.measure import checkpoints_for, series_run, usage_measurement
from repro.bench.reporting import FigureResult, format_value
from repro.bench.scales import SCALES, active_scale
from repro.db.database import Database
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Insert, Modify, Transaction
from repro.workloads.logs import UpdateLog
from repro.workloads.synthetic import SyntheticConfig, synthetic_database, synthetic_log


@pytest.fixture(scope="module")
def workload():
    config = SyntheticConfig(
        n_tuples=500, n_queries=60, n_groups=3, group_size=4, domain_size=20, seed=5
    )
    return synthetic_database(config), synthetic_log(config)


class TestCheckpoints:
    def test_evenly_spaced(self):
        assert checkpoints_for(100, 4) == [25, 50, 75, 100]

    def test_fewer_points_than_queries(self):
        assert checkpoints_for(2, 5) == [1, 2]

    def test_single_point(self):
        assert checkpoints_for(10, 1) == [10]


class TestSeriesRun:
    def test_checkpoints_land_exactly(self, workload):
        db, log = workload
        run = series_run(db, log.as_single_transaction(), "normal_form", [20, 40, 60])
        assert [cp.queries for cp in run.checkpoints] == [20, 40, 60]

    def test_elapsed_monotone(self, workload):
        db, log = workload
        run = series_run(db, log.as_single_transaction(), "naive", [20, 40, 60])
        elapsed = [cp.elapsed for cp in run.checkpoints]
        assert elapsed == sorted(elapsed)

    def test_log_shorter_than_checkpoint(self, workload):
        db, log = workload
        run = series_run(db, log, "none", [1000])
        assert run.checkpoints[-1].queries == 60

    def test_sizes_skipped_when_disabled(self, workload):
        db, log = workload
        run = series_run(db, log, "normal_form", [60], measure_sizes=False)
        assert run.final().expanded_size == 0

    def test_on_checkpoint_called(self, workload):
        db, log = workload
        seen = []
        series_run(
            db,
            log,
            "normal_form",
            [30, 60],
            on_checkpoint=lambda engine, applied: seen.append(applied),
        )
        assert seen == [30, 60]

    def test_final_accessor(self, workload):
        db, log = workload
        run = series_run(db, log, "none", [10, 60])
        assert run.final().queries == 60


class TestUsageMeasurement:
    def test_consistency_flag_verified(self, workload):
        db, log = workload
        single = log.as_single_transaction()
        from repro.engine.engine import Engine

        engine = Engine(db, policy="normal_form")
        engine.apply(single)
        m = usage_measurement(engine, db, single, n_deletions=8)
        assert m.consistent, "valuation must agree with the re-run baseline"
        assert m.deletions == 8
        assert m.usage_time > 0 and m.rerun_time > 0

    def test_works_for_naive_policy(self, workload):
        db, log = workload
        from repro.engine.engine import Engine

        engine = Engine(db, policy="naive")
        engine.apply(log)
        m = usage_measurement(engine, db, log, n_deletions=5)
        assert m.consistent

    def test_as_dict_keys(self, workload):
        db, log = workload
        from repro.engine.engine import Engine

        engine = Engine(db, policy="normal_form")
        engine.apply(log)
        d = usage_measurement(engine, db, log, n_deletions=3).as_dict()
        assert {"policy", "usage_time", "rerun_time", "speedup", "consistent"} <= set(d)


class TestScales:
    def test_presets_exist(self):
        assert {"tiny", "small", "medium", "paper"} <= set(SCALES)

    def test_active_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        assert active_scale().name == "tiny"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "bogus")
        with pytest.raises(KeyError):
            active_scale()

    def test_paper_scale_matches_paper_numbers(self):
        paper = SCALES["paper"]
        assert paper.synthetic_tuples == 1_000_000
        assert paper.synthetic_queries == 2_000
        assert paper.synthetic_affected == 200  # 0.02% of 1M


class TestFigureResult:
    def test_table_formatting(self):
        fig = FigureResult("figX", "Title", ["a", "b"], expectation="a < b")
        fig.add(a=1, b=2.5)
        fig.add(a=10_000, b=0.00001)
        fig.note("observed")
        text = fig.format_table()
        assert "figX" in text and "a < b" in text and "observed" in text
        assert "10,000" in text
        assert "1.000e-05" in text

    def test_json_and_csv(self):
        fig = FigureResult("figX", "T", ["a"], rows=[{"a": 1}])
        assert '"figX"' in fig.to_json()
        assert fig.to_csv().splitlines()[0] == "a"

    def test_save(self, tmp_path):
        fig = FigureResult("figX", "T", ["a"], rows=[{"a": 1}])
        path = fig.save(tmp_path)
        assert path.exists()
        assert (tmp_path / "figX.csv").exists()

    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(1234) == "1,234"
        assert format_value(0.5) == "0.5"
        assert format_value("x") == "x"
        assert format_value(float("nan")) == "-"


class TestBlowupFigure:
    def test_blowup_driver_shapes(self):
        from repro.bench.figures import figure_blowup
        from repro.bench.scales import SCALES

        (fig,) = figure_blowup(SCALES["tiny"])
        naive_sizes = [row["naive expanded size"] for row in fig.rows]
        nf_sizes = [row["nf expanded size"] for row in fig.rows]
        assert naive_sizes == sorted(naive_sizes)
        assert naive_sizes[-1] > 50 * nf_sizes[-1] / 12 * 12  # naive explodes
        assert max(nf_sizes) == min(nf_sizes)  # NF flat
