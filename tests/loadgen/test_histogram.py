"""The loadgen latency histogram: merging, quantile bounds, overflow.

The merge tests pin down the property the whole multiprocess design
rests on: because every histogram shares one global bucket scheme,
merging is element-wise addition — associative and commutative — so the
driver can fold worker shards in any arrival order and get the same
run-wide histogram.  Samples are dyadic rationals (multiples of 2^-10)
so even the float ``total`` sums exactly and ``==`` is meaningful.

The quantile tests compare against a sorted-sample oracle: a histogram
quantile must be an upper bound on the true sample quantile, at most one
bucket ratio (``10 ** (1 / PER_DECADE)``) above it.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import ReproError
from repro.loadgen import LatencyHistogram, merge_histograms
from repro.loadgen.histogram import HIGHEST, PER_DECADE

#: One bucket's upper/lower edge ratio, plus float-comparison headroom.
BUCKET_RATIO = 10 ** (1 / PER_DECADE) * (1 + 1e-9)


def _dyadic_samples(rng: random.Random, n: int) -> list[float]:
    """Latency-like values that are exact binary fractions (exact sums)."""
    return [rng.randrange(1, 1 << 20) / (1 << 20) for _ in range(n)]


def _histogram(values: list[float]) -> LatencyHistogram:
    hist = LatencyHistogram()
    for value in values:
        hist.record(value)
    return hist


def _oracle_quantile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    return ordered[max(1, math.ceil(q * len(ordered))) - 1]


# ---------------------------------------------------------------------------
# merging
# ---------------------------------------------------------------------------


def test_merge_is_associative_and_commutative_across_shards():
    rng = random.Random(42)
    shards = [_histogram(_dyadic_samples(rng, rng.randrange(1, 200))) for _ in range(3)]
    a, b, c = shards
    left = a.merged_with(b).merged_with(c)
    right = a.merged_with(b.merged_with(c))
    assert left == right
    assert left.to_dict() == right.to_dict()
    assert a.merged_with(b) == b.merged_with(a)


def test_merge_matches_recording_everything_into_one_histogram():
    rng = random.Random(7)
    worker_samples = [_dyadic_samples(rng, 150) for _ in range(4)]
    merged = merge_histograms(_histogram(samples) for samples in worker_samples)
    direct = _histogram([v for samples in worker_samples for v in samples])
    assert merged == direct
    assert merged.summary() == direct.summary()


def test_merge_any_fold_order_gives_the_same_histogram():
    rng = random.Random(13)
    shards = [_histogram(_dyadic_samples(rng, 80)) for _ in range(5)]
    baseline = merge_histograms(shards)
    for _ in range(5):
        shuffled = shards[:]
        rng.shuffle(shuffled)
        assert merge_histograms(shuffled) == baseline


def test_merge_with_empty_is_identity():
    hist = _histogram([0.001, 0.002, 0.5])
    assert hist.merged_with(LatencyHistogram()) == hist
    assert LatencyHistogram().merged_with(hist) == hist


# ---------------------------------------------------------------------------
# quantiles vs a sorted-sample oracle
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("q", [0.5, 0.9, 0.99, 1.0])
def test_quantile_upper_bounds_the_sample_quantile(seed, q):
    rng = random.Random(seed)
    values = [rng.uniform(1e-5, 2.0) for _ in range(rng.randrange(10, 500))]
    hist = _histogram(values)
    oracle = _oracle_quantile(values, q)
    observed = hist.quantile(q)
    assert oracle <= observed <= oracle * BUCKET_RATIO


def test_quantile_of_lognormal_latencies_stays_within_one_bucket():
    rng = random.Random(99)
    values = [rng.lognormvariate(math.log(0.003), 1.0) for _ in range(2000)]
    hist = _histogram(values)
    for q in (0.5, 0.9, 0.95, 0.99, 0.999):
        oracle = _oracle_quantile(values, q)
        assert oracle <= hist.quantile(q) <= oracle * BUCKET_RATIO


def test_quantile_one_is_the_exact_maximum():
    values = [0.0011, 0.0042, 0.77]
    hist = _histogram(values)
    assert hist.quantile(1.0) == 0.77
    assert hist.summary()["max"] == 0.77


def test_quantile_validates_range_and_empty():
    hist = LatencyHistogram()
    assert hist.quantile(0.99) == 0.0
    hist.record(0.001)
    with pytest.raises(ReproError):
        hist.quantile(1.5)
    with pytest.raises(ReproError):
        hist.quantile(-0.1)


def test_single_sample_every_quantile_is_that_sample_bucket():
    hist = _histogram([0.0037])
    for q in (0.01, 0.5, 0.99, 1.0):
        assert 0.0037 <= hist.quantile(q) <= 0.0037 * BUCKET_RATIO
    assert hist.quantile(1.0) == 0.0037  # clamped to the exact max


# ---------------------------------------------------------------------------
# overflow and clamping
# ---------------------------------------------------------------------------


def test_overflow_bucket_counts_and_reads_the_exact_maximum():
    hist = _histogram([0.001, 0.002, 1000.0])
    assert hist.overflow == 1
    assert hist.count == 3
    # The rank-3 sample lives in the overflow bucket; the read reports
    # the exact tracked max, not a bucket edge.
    assert hist.quantile(0.99) == 1000.0
    assert hist.quantile(1.0) == 1000.0
    assert hist.max_value == 1000.0


def test_value_exactly_at_highest_edge_overflows():
    hist = _histogram([HIGHEST])
    assert hist.overflow == 1
    assert hist.quantile(0.5) == HIGHEST


def test_overflow_survives_serialization_and_merge():
    hist = _histogram([2000.0, 0.5])
    other = _histogram([3000.0])
    merged = hist.merged_with(other)
    assert merged.overflow == 2
    assert LatencyHistogram.from_dict(merged.to_dict()) == merged
    assert merged.quantile(0.99) == 3000.0


def test_negative_values_clamp_to_zero():
    hist = _histogram([-0.5, 0.001])
    assert hist.count == 2
    assert hist.min_value == 0.0
    assert hist.overflow == 0


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------


def test_to_dict_round_trips_and_is_sparse():
    rng = random.Random(5)
    hist = _histogram(_dyadic_samples(rng, 300))
    data = hist.to_dict()
    assert all(n > 0 for n in data["counts"].values())
    restored = LatencyHistogram.from_dict(data)
    assert restored == hist
    assert restored.summary() == hist.summary()


def test_from_dict_rejects_a_different_bucket_scheme():
    data = _histogram([0.001]).to_dict()
    data["scheme"] = {"lowest": 1e-9, "per_decade": 5, "decades": 12}
    with pytest.raises(ReproError, match="scheme mismatch"):
        LatencyHistogram.from_dict(data)
    with pytest.raises(ReproError, match="scheme mismatch"):
        LatencyHistogram.from_dict({"count": 0, "total": 0.0, "max": 0.0})


def test_from_dict_rejects_out_of_range_bucket_indexes():
    data = _histogram([0.001]).to_dict()
    data["counts"] = {"9999": 1}
    with pytest.raises(ReproError, match="out of range"):
        LatencyHistogram.from_dict(data)
