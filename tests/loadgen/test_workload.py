"""Seeded determinism of the generated workload (a property, not a spot check).

The load-bearing invariant: a worker's full operation stream — prelude
included — is a pure function of ``(profile, worker)``.  Same seed and
mix, same stream, byte for byte; different seeds or workers, different
streams.  This is what makes loadgen results comparable across runs and
the end-to-end bit-identity replay sound.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.loadgen import (
    ATTRIBUTES,
    PROFILES,
    LoadgenProfile,
    MixSpec,
    loadgen_schema,
    ops_fingerprint,
    profile_from_name,
    schema_specs,
    worker_ops,
    worker_prelude,
    worker_relation,
)

#: Non-degenerate mix weights (hypothesis also tries zeros — any three of
#: the four kinds may drop out, but not all four at once).
weight = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
mixes = (
    st.tuples(weight, weight, weight, weight)
    .filter(lambda w: sum(w) > 0)
    .map(lambda w: MixSpec(*w))
)


def small_profile(seed: int, mix: MixSpec, workers: int = 2) -> LoadgenProfile:
    return LoadgenProfile(
        workers=workers,
        ops_per_worker=30,
        rows_per_worker=8,
        n_groups=3,
        seed=seed,
        mix=mix,
    )


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32), mix=mixes, worker=st.integers(0, 1))
def test_same_seed_and_mix_give_an_identical_op_stream(seed, mix, worker):
    profile = small_profile(seed, mix)
    first = ops_fingerprint(profile, worker)
    second = ops_fingerprint(profile, worker)
    assert first == second
    # The fingerprint covers the whole stream: prelude + every timed op.
    assert len(first) == 1 + profile.ops_per_worker
    assert first[0][0] == "prelude"


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32), mix=mixes)
def test_distinct_workers_get_distinct_streams(seed, mix):
    profile = small_profile(seed, mix)
    assert ops_fingerprint(profile, 0) != ops_fingerprint(profile, 1)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    delta=st.integers(min_value=1, max_value=1000),
)
def test_distinct_seeds_change_the_stream(seed, delta):
    mix = MixSpec()
    first = small_profile(seed, mix)
    second = small_profile(seed + delta, mix)
    assert ops_fingerprint(first, 0) != ops_fingerprint(second, 0)


def test_pacing_and_transport_do_not_change_the_stream():
    # max_rate / schedule / pipeline shape *when* ops ship, never *what*.
    base = small_profile(11, MixSpec())
    from dataclasses import replace

    shaped = replace(base, max_rate=50.0, schedule="10x1,0", pipeline=1)
    assert ops_fingerprint(base, 0) == ops_fingerprint(shaped, 0)
    assert ops_fingerprint(base, 1) == ops_fingerprint(shaped, 1)


def test_prelude_rows_match_the_stream_generator_view():
    # worker_ops replays the prelude draws, so annotation_of targets are
    # always rows the prelude actually inserted.
    profile = small_profile(3, MixSpec(apply=0, state=0, provenance=0, annotation_of=1))
    prelude_rows = {insert.row for insert in worker_prelude(profile, 0).queries}
    for op in worker_ops(profile, 0):
        assert op.kind == "annotation_of"
        assert op.row in prelude_rows


def test_apply_only_mix_generates_only_transactions():
    profile = small_profile(5, MixSpec(apply=1, state=0, provenance=0, annotation_of=0))
    ops = worker_ops(profile, 0)
    assert all(op.kind == "apply" for op in ops)
    assert all(op.item.queries[0].relation == worker_relation(0) for op in ops)


# ---------------------------------------------------------------------------
# spec plumbing
# ---------------------------------------------------------------------------


def test_mix_parse_round_trips_and_defaults_omitted_kinds_to_zero():
    mix = MixSpec.parse("apply=0.6,provenance=0.3,state=0.1")
    assert mix == MixSpec(apply=0.6, state=0.1, provenance=0.3, annotation_of=0.0)
    with pytest.raises(ReproError):
        MixSpec.parse("apply=0.6,bogus=0.4")
    with pytest.raises(ReproError):
        MixSpec.parse("apply=zero")
    with pytest.raises(ReproError):
        MixSpec(apply=0, state=0, provenance=0, annotation_of=0)


def test_profile_registry_and_overrides():
    assert profile_from_name("tiny") is PROFILES["tiny"]
    custom = profile_from_name("tiny", seed=99, workers=3)
    assert (custom.seed, custom.workers) == (99, 3)
    with pytest.raises(ReproError):
        profile_from_name("galactic")
    with pytest.raises(ReproError):
        profile_from_name("tiny", workers=0)


def test_schema_matches_the_serve_specs():
    profile = profile_from_name("tiny", workers=3)
    schema = loadgen_schema(profile)
    assert schema.names == tuple(worker_relation(w) for w in range(3))
    assert schema_specs(profile) == [
        f"load_{w}:{','.join(ATTRIBUTES)}" for w in range(3)
    ]
