"""End-to-end loadgen runs against an in-process server.

The centerpiece is the bit-identity check: after a mixed loadgen run,
the server's final state must be bit-identical — same rows, same
liveness, the *same interned annotation object* per row — to replaying
the generated operation streams through a direct in-process
:class:`~repro.engine.engine.Engine`.  Worker relations are disjoint, so
this holds whatever interleaving and admission fusion the server applied;
pacing and pipelining shape only *when* operations ship.
"""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.engine.engine import Engine
from repro.errors import ServerError
from repro.loadgen import (
    LoadgenProfile,
    MixSpec,
    loadgen_schema,
    run_loadgen,
    worker_ops,
    worker_prelude,
)
from repro.server.client import ServerClient
from repro.server.server import serve_in_thread
from repro.server.service import ServerConfig
from repro.shard.codec import capture_engine

PROFILE = LoadgenProfile(
    name="e2e",
    workers=2,
    ops_per_worker=60,
    rows_per_worker=12,
    n_groups=4,
    seed=2026,
    pipeline=4,
)


def _run_and_capture(profile, **run_kwargs):
    """One thread-mode loadgen run; returns (result, final server state)."""
    database = Database(loadgen_schema(profile))
    handle = serve_in_thread(database, ServerConfig(port=0, policy="normal_form_batch"))
    try:
        result = run_loadgen(
            profile, host=handle.host, port=handle.port, mode="thread", **run_kwargs
        )
        with ServerClient(handle.host, handle.port) as client:
            final = client.state()
    finally:
        handle.stop()
    return result, final


def _replay_direct(profile) -> dict:
    """The generated streams through a direct engine (the ground truth)."""
    direct = Engine(Database(loadgen_schema(profile)), policy="normal_form_batch")
    for worker in range(profile.workers):
        direct.apply(worker_prelude(profile, worker))
        for op in worker_ops(profile, worker):
            if op.kind == "apply":
                direct.apply(op.item)
    return capture_engine(direct)


def _assert_bit_identical(served: dict, expected: dict) -> None:
    assert served.keys() == expected.keys()
    for relation in expected:
        assert served[relation].keys() == expected[relation].keys(), relation
        for row, (annotation, live) in expected[relation].items():
            served_annotation, served_live = served[relation][row]
            assert served_live == live, (relation, row)
            # Interned identity, not mere equivalence: the served state
            # re-interns into the same process-wide expression table the
            # direct replay used.
            assert served_annotation is annotation, (relation, row)


def test_mixed_run_leaves_state_bit_identical_to_direct_replay():
    result, final = _run_and_capture(PROFILE)
    _assert_bit_identical(final, _replay_direct(PROFILE))
    assert result.errors_total == 0
    assert result.ops_total == PROFILE.workers * PROFILE.ops_per_worker


def test_pipelining_and_pacing_do_not_change_the_final_state():
    from dataclasses import replace

    shaped = replace(PROFILE, pipeline=1, max_rate=100_000.0)
    _, final = _run_and_capture(shaped)
    # Same ground truth as the default-shaped profile: transport knobs
    # shape delivery, never content.
    _assert_bit_identical(final, _replay_direct(PROFILE))


def test_result_accounts_for_every_operation():
    result, _final = _run_and_capture(PROFILE)
    assert sum(h.count for h in result.hists.values()) == result.ops_total
    assert set(result.hists) <= {"apply", "state", "provenance", "annotation_of"}
    assert result.hists["apply"].count > 0
    assert result.elapsed > 0
    assert result.achieved_rate > 0
    assert len(result.worker_reports) == PROFILE.workers
    assert sum(r["ops"] for r in result.worker_reports) == result.ops_total


def test_progress_lines_stream_during_the_run():
    lines: list[str] = []
    profile = LoadgenProfile(
        name="e2e-progress", workers=2, ops_per_worker=80, rows_per_worker=10, seed=3
    )
    _run_and_capture(profile, progress=lines.append, report_every=0.0)
    assert lines, "expected at least the final merged stats line"
    assert all(line.startswith("loadgen t=") for line in lines)
    assert "ops=" in lines[-1] and "p99=" in lines[-1]


def test_apply_only_profile_matches_replay_too():
    profile = LoadgenProfile(
        name="e2e-apply",
        workers=2,
        ops_per_worker=50,
        rows_per_worker=10,
        seed=11,
        mix=MixSpec(apply=1, state=0, provenance=0, annotation_of=0),
    )
    result, final = _run_and_capture(profile)
    _assert_bit_identical(final, _replay_direct(profile))
    assert result.hists.keys() == {"apply"}


def test_unknown_mode_is_rejected():
    with pytest.raises(ServerError, match="unknown loadgen mode"):
        run_loadgen(PROFILE, mode="fibers")
