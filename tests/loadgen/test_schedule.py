"""Pacing: schedule parsing and the no-burst token bucket.

The pacer tests run on a fake clock — ``delay()`` tells the caller how
long to sleep, and the fake clock "sleeps" by advancing — so they pin
down real timing behavior (steady-rate spacing, ramp transitions, the
no-catch-up-burst rule after a stall) without wall-clock sleeps.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.loadgen import Pacer, RatePhase, parse_schedule, phases_for


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------


def test_parse_schedule_ramp():
    phases = parse_schedule("50x5,200x10,0")
    assert phases == [RatePhase(50, 5), RatePhase(200, 10), RatePhase(0, None)]


def test_parse_schedule_single_open_ended_rate():
    assert parse_schedule("75") == [RatePhase(75, None)]


@pytest.mark.parametrize(
    "text",
    ["", "  ,  ", "fastx5", "50xlong", "50,200x5", "-1x5", "50x-2", "50x0"],
)
def test_parse_schedule_rejects_malformed_input(text):
    with pytest.raises(ReproError):
        parse_schedule(text)


def test_phases_for_schedule_wins_over_max_rate():
    assert phases_for(10.0, "20x1,0") == [RatePhase(20, 1), RatePhase(0, None)]
    assert phases_for(10.0, None) == [RatePhase(10, None)]
    assert phases_for(0.0, None) == [RatePhase(0, None)]  # unpaced


# ---------------------------------------------------------------------------
# the token bucket
# ---------------------------------------------------------------------------


def _drain(pacer: Pacer, clock: FakeClock, n: int) -> list[float]:
    """n delay() calls, honoring each wait on the fake clock."""
    waits = []
    for _ in range(n):
        wait = pacer.delay()
        clock.sleep(wait)
        waits.append(wait)
    return waits


def test_steady_rate_spaces_operations_at_the_interval():
    clock = FakeClock()
    pacer = Pacer([RatePhase(10)], clock=clock)  # 10 ops/s -> 0.1s apart
    waits = _drain(pacer, clock, 5)
    assert waits[0] == 0.0  # the first op goes immediately
    assert waits[1:] == pytest.approx([0.1, 0.1, 0.1, 0.1])


def test_scale_divides_the_global_rate_per_worker():
    clock = FakeClock()
    pacer = Pacer([RatePhase(10)], scale=0.5, clock=clock)  # 2 workers
    waits = _drain(pacer, clock, 3)
    assert waits[1:] == pytest.approx([0.2, 0.2])


def test_unpaced_phase_never_waits():
    clock = FakeClock()
    pacer = Pacer([RatePhase(0)], clock=clock)
    assert _drain(pacer, clock, 10) == [0.0] * 10


def test_ramp_switches_rate_after_the_phase_duration():
    clock = FakeClock()
    # 2 ops/s for 2 seconds, then 10 ops/s forever.
    pacer = Pacer([RatePhase(2, 2), RatePhase(10)], clock=clock)
    waits = _drain(pacer, clock, 8)
    assert waits[0] == 0.0
    # Phase one, plus the boundary op whose permitted instant was already
    # scheduled under phase one's interval.
    assert waits[1:6] == pytest.approx([0.5] * 5)
    assert waits[6:] == pytest.approx([0.1, 0.1])  # phase two


def test_ramp_into_unpaced_tail():
    clock = FakeClock()
    pacer = Pacer([RatePhase(10, 0.35), RatePhase(0)], clock=clock)
    waits = _drain(pacer, clock, 10)
    assert waits[1:5] == pytest.approx([0.1] * 4)
    assert waits[5:] == [0.0] * 5  # past the bounded phase: unpaced


def test_stall_earns_no_burst_credit():
    clock = FakeClock()
    pacer = Pacer([RatePhase(10)], clock=clock)
    _drain(pacer, clock, 3)
    clock.sleep(5.0)  # a long stall "banks" 50 intervals in a naive bucket
    waits = _drain(pacer, clock, 10)
    # No compensating burst: at most the op that was already due (plus
    # the one whose permitted instant the stall rolled forward) goes
    # immediately, then pacing resumes at the scheduled interval.
    assert waits.count(0.0) <= 2
    assert waits[-1] == pytest.approx(0.1)
    assert sum(waits) == pytest.approx(0.1 * 8, abs=0.011)


def test_pacer_validates_construction():
    with pytest.raises(ReproError):
        Pacer([])
    with pytest.raises(ReproError):
        Pacer([RatePhase(10)], scale=0.0)
