"""TPC-C transaction profiles and the standard-mix driver."""

import random

import pytest

from repro.engine.engine import Engine
from repro.errors import ReproError
from repro.queries.updates import Delete, Insert, Modify
from repro.tpcc.driver import generate_tpcc
from repro.tpcc.loader import TPCCScale, load_tpcc
from repro.tpcc.randoms import NURand, make_c_constants, random_last_name
from repro.tpcc.schema import TPCC_TABLES
from repro.tpcc.transactions import STANDARD_MIX, delivery, new_order, payment


@pytest.fixture
def state():
    _db, state = load_tpcc(TPCCScale(), seed=2)
    return state


class TestRandoms:
    def test_nurand_range(self):
        rng = random.Random(0)
        C = make_c_constants(rng)
        for _ in range(200):
            assert 1 <= NURand(rng, 1023, 1, 30, C[1023]) <= 30

    def test_last_names(self):
        assert random_last_name(0) == "BARBARBAR"
        assert random_last_name(371) == "PRICALLYOUGHT"  # the spec's own example
        assert random_last_name(999) == "EINGEINGEING"
        assert random_last_name(1371) == random_last_name(371)


class TestNewOrder:
    def test_emits_expected_statements(self, state):
        rng = random.Random(3)
        queries = new_order(state, rng)
        kinds = [type(q).__name__ for q in queries]
        assert kinds[0] == "Modify"  # DISTRICT next_o_id
        assert kinds[1] == "Insert" and queries[1].relation == "ORDERS"
        assert kinds[2] == "Insert" and queries[2].relation == "NEW_ORDER"
        line_count = sum(1 for q in queries if isinstance(q, Insert) and q.relation == "ORDER_LINE")
        stock_updates = sum(
            1 for q in queries if isinstance(q, Modify) and q.relation == "STOCK"
        )
        assert 5 <= line_count <= 15
        assert stock_updates == line_count

    def test_advances_next_o_id(self, state):
        rng = random.Random(3)
        before = dict(state.next_o_id)
        queries = new_order(state, rng)
        district_update = queries[0]
        (w, d) = next(k for k in state.next_o_id if state.next_o_id[k] != before[k])
        assert state.next_o_id[(w, d)] == before[(w, d)] + 1

    def test_stock_quantity_rule(self, state):
        """Spec 2.4.2.2: quantities replenish by +91 when they would drop
        below 10 — never negative, never silently divergent."""
        rng = random.Random(4)
        for _ in range(50):
            new_order(state, rng)
        assert all(q >= 0 for q in state.stock_qty.values())


class TestPayment:
    def test_emits_expected_statements(self, state):
        rng = random.Random(5)
        queries = payment(state, rng)
        relations = [q.relation for q in queries]
        assert relations == ["WAREHOUSE", "DISTRICT", "CUSTOMER", "HISTORY"]
        assert isinstance(queries[3], Insert)

    def test_balances_move(self, state):
        rng = random.Random(5)
        before = dict(state.customer_balance)
        payment(state, rng)
        changed = [k for k in before if state.customer_balance[k] != before[k]]
        assert len(changed) == 1
        assert state.customer_balance[changed[0]] < before[changed[0]]


class TestDelivery:
    def test_delivers_oldest_per_district(self, state):
        rng = random.Random(6)
        pending_before = {k: list(v) for k, v in state.undelivered.items()}
        queries = delivery(state, rng)
        deletes = [q for q in queries if isinstance(q, Delete)]
        assert deletes, "delivery must clear NEW_ORDER entries"
        w_id = deletes[0].pattern.eq[
            {c: i for i, c in enumerate(TPCC_TABLES["NEW_ORDER"])}["NO_W_ID"]
        ]
        for (w, d), pending in pending_before.items():
            if w != w_id or not pending:
                continue
            assert state.undelivered[(w, d)] == pending[1:]

    def test_four_statements_per_district(self, state):
        rng = random.Random(6)
        queries = delivery(state, rng)
        assert len(queries) % 4 == 0


class TestDriver:
    def test_log_replays_cleanly_against_all_policies(self):
        w = generate_tpcc(TPCCScale(), n_queries=120, seed=9)
        vanilla = Engine(w.database, policy="none").apply(w.log)
        nf = Engine(w.database, policy="normal_form").apply(w.log)
        assert nf.result().same_contents(vanilla.result())

    def test_emitted_constants_are_consistent(self):
        """Replaying the log, every delete/modify matches at least one live
        row — the shadow state and the database never diverge."""
        w = generate_tpcc(TPCCScale(), n_queries=200, seed=10)
        engine = Engine(w.database, policy="none")
        for query in w.log.queries():
            matched, _created = engine.executor.apply(query)
            if not isinstance(query, Insert):
                assert matched >= 1, f"dangling statement {query!r}"

    def test_mix_is_respected(self):
        w = generate_tpcc(TPCCScale(), n_queries=800, seed=11)
        total = sum(w.mix_counts.values())
        assert w.mix_counts["new_order"] / total == pytest.approx(0.45, abs=0.12)
        assert w.mix_counts["payment"] / total == pytest.approx(0.43, abs=0.12)

    def test_meta_and_query_budget(self):
        w = generate_tpcc(TPCCScale(), n_queries=100, seed=12)
        assert w.log.query_count() >= 100
        assert w.log.meta["name"] == "tpcc"
        assert w.log.meta["n_queries"] == w.log.query_count()

    def test_deterministic_under_seed(self):
        w1 = generate_tpcc(TPCCScale(), n_queries=60, seed=13)
        w2 = generate_tpcc(TPCCScale(), n_queries=60, seed=13)
        assert w1.log == w2.log

    def test_unknown_mix_entry_rejected(self):
        with pytest.raises(ReproError, match="unknown TPC-C transaction"):
            generate_tpcc(TPCCScale(), n_queries=10, mix=[("teleport", 1.0)])

    def test_include_empty_keeps_readonly_transactions(self):
        w = generate_tpcc(TPCCScale(), n_queries=150, seed=14, include_empty=True)
        if w.mix_counts["order_status"] or w.mix_counts["stock_level"]:
            assert any(len(t) == 0 for t in w.log)
