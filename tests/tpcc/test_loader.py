"""TPC-C population: cardinalities, invariants, shadow-state consistency."""

import pytest

from repro.errors import ReproError
from repro.tpcc.loader import NO_CARRIER, TPCCScale, load_tpcc
from repro.tpcc.schema import TPCC_TABLES, tpcc_schema


@pytest.fixture(scope="module")
def loaded():
    return load_tpcc(TPCCScale(), seed=1)


class TestSchema:
    def test_nine_tables(self):
        schema = tpcc_schema()
        assert len(schema) == 9
        assert set(schema.names) == set(TPCC_TABLES)

    def test_key_columns_present(self):
        schema = tpcc_schema()
        assert schema.relation("DISTRICT").index_of("D_NEXT_O_ID") >= 0
        assert schema.relation("ORDER_LINE").index_of("OL_DELIVERY_D") >= 0


class TestCardinalities:
    def test_counts_follow_scale(self, loaded):
        db, _state = loaded
        scale = TPCCScale()
        w, d = scale.warehouses, scale.districts_per_warehouse
        assert len(db.rows("WAREHOUSE")) == w
        assert len(db.rows("DISTRICT")) == w * d
        assert len(db.rows("CUSTOMER")) == w * d * scale.customers_per_district
        assert len(db.rows("ITEM")) == scale.items
        assert len(db.rows("STOCK")) == w * scale.items
        assert len(db.rows("ORDERS")) == w * d * scale.initial_orders_per_district
        assert len(db.rows("HISTORY")) == len(db.rows("CUSTOMER"))

    def test_undelivered_fraction(self, loaded):
        db, _state = loaded
        scale = TPCCScale()
        expected = int(scale.initial_orders_per_district * scale.undelivered_fraction)
        per_district = expected * scale.warehouses * scale.districts_per_warehouse
        assert len(db.rows("NEW_ORDER")) == per_district

    def test_order_lines_match_ol_cnt(self, loaded):
        db, _state = loaded
        schema = tpcc_schema()
        o_cols = {c: i for i, c in enumerate(TPCC_TABLES["ORDERS"])}
        ol_cols = {c: i for i, c in enumerate(TPCC_TABLES["ORDER_LINE"])}
        from collections import Counter

        per_order = Counter(
            (r[ol_cols["OL_W_ID"]], r[ol_cols["OL_D_ID"]], r[ol_cols["OL_O_ID"]])
            for r in db.rows("ORDER_LINE")
        )
        for order in db.rows("ORDERS"):
            key = (order[o_cols["O_W_ID"]], order[o_cols["O_D_ID"]], order[o_cols["O_ID"]])
            assert per_order[key] == order[o_cols["O_OL_CNT"]]


class TestIntegrity:
    def test_initial_orders_have_distinct_customers(self, loaded):
        db, _state = loaded
        o_cols = {c: i for i, c in enumerate(TPCC_TABLES["ORDERS"])}
        seen = {}
        for order in db.rows("ORDERS"):
            key = (order[o_cols["O_W_ID"]], order[o_cols["O_D_ID"]])
            seen.setdefault(key, set()).add(order[o_cols["O_C_ID"]])
        for (w, d), customers in seen.items():
            assert len(customers) == TPCCScale().initial_orders_per_district

    def test_undelivered_orders_have_no_carrier(self, loaded):
        db, _state = loaded
        o_cols = {c: i for i, c in enumerate(TPCC_TABLES["ORDERS"])}
        no_cols = {c: i for i, c in enumerate(TPCC_TABLES["NEW_ORDER"])}
        undelivered = {
            (r[no_cols["NO_W_ID"]], r[no_cols["NO_D_ID"]], r[no_cols["NO_O_ID"]])
            for r in db.rows("NEW_ORDER")
        }
        for order in db.rows("ORDERS"):
            key = (order[o_cols["O_W_ID"]], order[o_cols["O_D_ID"]], order[o_cols["O_ID"]])
            carrier = order[o_cols["O_CARRIER_ID"]]
            assert (carrier == NO_CARRIER) == (key in undelivered)

    def test_stock_per_item_and_warehouse(self, loaded):
        db, _state = loaded
        s_cols = {c: i for i, c in enumerate(TPCC_TABLES["STOCK"])}
        keys = {(r[s_cols["S_W_ID"]], r[s_cols["S_I_ID"]]) for r in db.rows("STOCK")}
        assert len(keys) == len(db.rows("STOCK"))


class TestShadowState:
    def test_state_mirrors_database(self, loaded):
        db, state = loaded
        d_cols = {c: i for i, c in enumerate(TPCC_TABLES["DISTRICT"])}
        for district in db.rows("DISTRICT"):
            key = (district[d_cols["D_W_ID"]], district[d_cols["D_ID"]])
            assert state.next_o_id[key] == district[d_cols["D_NEXT_O_ID"]]
        s_cols = {c: i for i, c in enumerate(TPCC_TABLES["STOCK"])}
        for stock in db.rows("STOCK"):
            key = (stock[s_cols["S_W_ID"]], stock[s_cols["S_I_ID"]])
            assert state.stock_qty[key] == stock[s_cols["S_QUANTITY"]]
        c_cols = {c: i for i, c in enumerate(TPCC_TABLES["CUSTOMER"])}
        for customer in db.rows("CUSTOMER"):
            key = (
                customer[c_cols["C_W_ID"]],
                customer[c_cols["C_D_ID"]],
                customer[c_cols["C_ID"]],
            )
            assert state.customer_balance[key] == customer[c_cols["C_BALANCE"]]

    def test_undelivered_fifo_oldest_first(self, loaded):
        _db, state = loaded
        for pending in state.undelivered.values():
            assert pending == sorted(pending)


class TestScaleValidation:
    def test_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            TPCCScale(warehouses=0)

    def test_rejects_orders_exceeding_customers(self):
        with pytest.raises(ReproError, match="cannot exceed"):
            TPCCScale(customers_per_district=10, initial_orders_per_district=20)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ReproError):
            TPCCScale(undelivered_fraction=1.5)

    def test_deterministic_under_seed(self):
        db1, _ = load_tpcc(TPCCScale(), seed=5)
        db2, _ = load_tpcc(TPCCScale(), seed=5)
        assert db1.same_contents(db2)
