"""The SQL fragment of hyperplane queries (Section 2 'Note')."""

import pytest

from repro.db.schema import Schema
from repro.errors import ParseError, SchemaError
from repro.lang.sql import format_sql, format_sql_script, parse_sql, parse_sql_script
from repro.queries.updates import Delete, Insert, Modify, Transaction

SCHEMA = Schema.build({"products": ["product", "category", "price"]})


class TestInsert:
    def test_positional(self):
        q = parse_sql("INSERT INTO products VALUES ('Lego', 'Kids', 90)", SCHEMA)
        assert isinstance(q, Insert) and q.row == ("Lego", "Kids", 90)

    def test_with_column_list_reordered(self):
        q = parse_sql(
            "INSERT INTO products (price, product, category) VALUES (90, 'Lego', 'Kids')",
            SCHEMA,
        )
        assert q.row == ("Lego", "Kids", 90)

    def test_partial_column_list_rejected(self):
        with pytest.raises(ParseError, match="every attribute"):
            parse_sql("INSERT INTO products (product) VALUES ('Lego')", SCHEMA)

    def test_arity_mismatch(self):
        with pytest.raises(ParseError, match="needs 3 values"):
            parse_sql("INSERT INTO products VALUES ('Lego', 'Kids')", SCHEMA)

    def test_string_escaping(self):
        q = parse_sql("INSERT INTO products VALUES ('O''Brien', 'Kids', 1)", SCHEMA)
        assert q.row[0] == "O'Brien"

    def test_null_and_booleans(self):
        q = parse_sql("INSERT INTO products VALUES (NULL, TRUE, FALSE)", SCHEMA)
        assert q.row == (None, True, False)


class TestDelete:
    def test_where_equality_and_disequality(self):
        q = parse_sql(
            "DELETE FROM products WHERE category = 'Sport' AND product <> 'bike'",
            SCHEMA,
        )
        assert isinstance(q, Delete)
        assert q.pattern.matches(("ball", "Sport", 1))
        assert not q.pattern.matches(("bike", "Sport", 1))

    def test_bang_equals_alias(self):
        q = parse_sql("DELETE FROM products WHERE product != 'x'", SCHEMA)
        assert q.pattern.neq == {0: frozenset({"x"})}

    def test_missing_where_matches_all(self):
        q = parse_sql("DELETE FROM products", SCHEMA)
        assert q.pattern.matches(("anything", "at", "all"))

    def test_or_rejected(self):
        with pytest.raises(ParseError, match="OR is outside"):
            parse_sql(
                "DELETE FROM products WHERE category = 'a' AND product = 'b' OR price = 1",
                SCHEMA,
            )

    def test_attribute_comparison_rejected(self):
        with pytest.raises(ParseError, match="constant"):
            parse_sql("DELETE FROM products WHERE category = product", SCHEMA)

    def test_range_rejected(self):
        with pytest.raises(ParseError, match="only = and <>"):
            parse_sql("DELETE FROM products WHERE price < 10", SCHEMA)

    def test_contradictory_equalities_rejected(self):
        with pytest.raises(ParseError, match="contradictory"):
            parse_sql(
                "DELETE FROM products WHERE price = 1 AND price = 2", SCHEMA
            )


class TestUpdate:
    def test_basic(self):
        q = parse_sql(
            "UPDATE products SET category = 'Bicycles' WHERE product = 'bike'", SCHEMA
        )
        assert isinstance(q, Modify)
        assert q.assignments == {1: "Bicycles"}
        assert q.pattern.eq == {0: "bike"}

    def test_multiple_set_clauses(self):
        q = parse_sql(
            "UPDATE products SET category = 'X', price = 1 WHERE product = 'bike'",
            SCHEMA,
        )
        assert q.assignments == {1: "X", 2: 1}

    def test_set_requires_constant(self):
        with pytest.raises(ParseError, match="constant"):
            parse_sql("UPDATE products SET price = price WHERE product = 'x'", SCHEMA)

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            parse_sql("UPDATE products SET nope = 1", SCHEMA)


class TestAnnotations:
    def test_comment_annotation(self):
        q = parse_sql("DELETE FROM products WHERE price = 1; -- @p7", SCHEMA)
        assert q.annotation == "p7"

    def test_explicit_annotation_wins(self):
        q = parse_sql("DELETE FROM products; -- @p7", SCHEMA, annotation="q")
        assert q.annotation == "q"


class TestScript:
    SCRIPT = """
    -- a comment line
    BEGIN TRANSACTION t1;
        UPDATE products SET category = 'Sport' WHERE category = 'Kids';
        DELETE FROM products WHERE category = 'Fashion';
    COMMIT;
    INSERT INTO products VALUES ('Lego', 'Kids', 90); -- @t2
    /* block comment */
    DELETE FROM products WHERE product = 'Lego';
    """

    def test_parse_script(self):
        items = parse_sql_script(self.SCRIPT, SCHEMA)
        assert isinstance(items[0], Transaction) and items[0].name == "t1"
        assert len(items[0]) == 2
        assert items[1].annotation == "t2"
        assert items[2].annotation is None

    def test_round_trip(self):
        items = parse_sql_script(self.SCRIPT, SCHEMA)
        again = parse_sql_script(format_sql_script(items, SCHEMA), SCHEMA)
        # the unannotated trailing statement stays unannotated
        assert again == items

    def test_missing_commit(self):
        with pytest.raises(ParseError, match="missing COMMIT"):
            parse_sql_script("BEGIN TRANSACTION t; DELETE FROM products;", SCHEMA)

    def test_select_rejected_helpfully(self):
        with pytest.raises(ParseError, match="SELECT is not an update"):
            parse_sql("SELECT * FROM products", SCHEMA)

    def test_execution_of_script_matches_manual(self):
        from repro.db.database import Database
        from repro.engine.engine import Engine

        db = Database.from_rows(
            "products",
            ["product", "category", "price"],
            [("bike", "Kids", 120), ("dress", "Fashion", 40)],
        )
        items = parse_sql_script(self.SCRIPT, SCHEMA)
        engine = Engine(db, policy="none").apply(items)
        assert engine.live_rows("products") == {("bike", "Sport", 120)}


class TestFormat:
    def test_format_statements(self):
        q = parse_sql("UPDATE products SET price = 1 WHERE product <> 'x'", SCHEMA)
        text = format_sql(q, SCHEMA)
        assert parse_sql(text, SCHEMA) == q

    def test_format_includes_annotation_comment(self):
        q = parse_sql("DELETE FROM products", SCHEMA, annotation="p")
        assert "-- @p" in format_sql(q, SCHEMA)
