"""The datalog-style surface syntax (paper notation)."""

import pytest

from repro.db.schema import Schema
from repro.errors import ParseError
from repro.lang.datalog import format_program, format_query, parse_program, parse_query
from repro.queries.updates import Delete, Insert, Modify, Transaction

SCHEMA = Schema.build({"products": ["product", "category", "price"], "R": ["a"]})


class TestInsert:
    def test_example_2_2(self):
        q = parse_query('products+,p("Lego bricks", "Kids", 90) :-', SCHEMA)
        assert isinstance(q, Insert)
        assert q.row == ("Lego bricks", "Kids", 90)
        assert q.annotation == "p"

    def test_without_annotation(self):
        q = parse_query('products+("x", "y", 1)', SCHEMA)
        assert q.annotation is None

    def test_variables_rejected_in_insert(self):
        with pytest.raises(ParseError, match="constants"):
            parse_query("products+(a, \"y\", 1)", SCHEMA)

    def test_negative_numbers_and_floats(self):
        q = parse_query('products+("x", "y", -9.5)', SCHEMA)
        assert q.row == ("x", "y", -9.5)


class TestDelete:
    def test_example_2_3(self):
        q = parse_query('products-,p(a, "Fashion", b) :-', SCHEMA)
        assert isinstance(q, Delete)
        assert q.pattern.eq == {1: "Fashion"}
        assert not q.pattern.neq

    def test_example_2_1_disequality(self):
        q = parse_query('products-([p != "Kids mnt bike"], "Sport", c) :-', SCHEMA)
        assert q.pattern.eq == {1: "Sport"}
        assert q.pattern.neq == {0: frozenset({"Kids mnt bike"})}

    def test_multiple_disequalities_on_one_variable(self):
        q = parse_query('products-([x != "a", x != "b"], c, d)', SCHEMA)
        assert q.pattern.neq == {0: frozenset({"a", "b"})}

    def test_repeated_variable_rejected(self):
        with pytest.raises(ParseError, match="cannot compare attributes"):
            parse_query("products-(x, x, c)", SCHEMA)

    def test_arity_mismatch(self):
        with pytest.raises(ParseError, match="needs 3 terms"):
            parse_query('products-("a", "b")', SCHEMA)


class TestModify:
    def test_example_2_4(self):
        q = parse_query(
            'productsM,p("Kids mnt bike", a, b, "Kids mnt bike", "Bicycles", b) :-',
            SCHEMA,
        )
        assert isinstance(q, Modify)
        assert q.pattern.eq == {0: "Kids mnt bike"}
        assert q.assignments == {1: "Bicycles"}

    def test_figure_2c(self):
        q = parse_query("productsM,p'(a, \"Sport\", c, a, \"Sport\", 50) :-", SCHEMA)
        assert q.annotation == "p'"
        assert q.pattern.eq == {1: "Sport"}
        assert q.assignments == {2: 50}

    def test_u2_must_repeat_or_assign(self):
        with pytest.raises(ParseError, match="repeat"):
            parse_query("productsM(a, b, c, x, b, c)", SCHEMA)

    def test_constant_to_same_constant_is_kept(self):
        q = parse_query('productsM("x", b, c, "x", "y", c)', SCHEMA)
        assert q.assignments == {1: "y"}
        assert 0 not in q.assignments

    def test_standalone_m_marker(self):
        q = parse_query('products M,p(a, "Sport", c, a, "Sport", 50)', SCHEMA)
        assert isinstance(q, Modify)


class TestErrors:
    def test_unknown_relation(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            parse_query('nothere+("x")', SCHEMA)

    def test_missing_marker(self):
        with pytest.raises(ParseError, match="marker"):
            parse_query('products("x", "y", 1)', SCHEMA)

    def test_error_reports_position(self):
        with pytest.raises(ParseError, match="line 1"):
            parse_query("products-(!)", SCHEMA)

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated"):
            parse_query('products+("x, "y", 1)', SCHEMA)


class TestProgram:
    def test_transaction_blocks(self):
        text = """
        transaction t1 (
            R+,t1(1) :-
            R-,t1([x != 2]) :-
        )
        R+("standalone-free") :-
        """
        # annotations inside a block are re-stamped by the Transaction
        items = parse_program(text.replace('"standalone-free"', "7"), SCHEMA)
        assert isinstance(items[0], Transaction)
        assert len(items[0]) == 2
        assert isinstance(items[1], Insert)

    def test_format_round_trip(self):
        text = 'transaction p ( productsM,p(a, "Sport", c, a, "Sport", 50) :- )'
        items = parse_program(text, SCHEMA)
        assert parse_program(format_program(items), SCHEMA) == items

    def test_missing_paren_reported(self):
        with pytest.raises(ParseError):
            parse_program("transaction t1 R+(1)", SCHEMA)


class TestFormatting:
    @pytest.mark.parametrize(
        "text",
        [
            'products+,p("Lego bricks", "Kids", 90) :-',
            'products-,p(a, "Fashion", b) :-',
            'products-([a != "x", a != "y"], "Sport", c) :-',
            'productsM,p("bike", a, b, "bike", "Bicycles", b) :-',
            "R-,q([a != 1, a != 2]) :-",
        ],
    )
    def test_round_trip(self, text):
        q = parse_query(text, SCHEMA)
        assert parse_query(format_query(q), SCHEMA) == q
