"""Proposition 4.2: provenance propagation commutes with homomorphisms."""

import itertools

import pytest

from repro.core.expr import evaluate
from repro.db.database import Database
from repro.engine.engine import Engine
from repro.errors import StructureError
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Insert, Modify, Transaction
from repro.semantics.boolean import BooleanStructure
from repro.semantics.sets import SetStructure
from repro.semantics.structure import Homomorphism

SET_ELEMENTS = [frozenset(c) for r in range(3) for c in itertools.combinations(("u", "v"), r)]

#: h: P({u,v}) -> Bool, S |-> u in S — a homomorphism of Update-Structures
#: (all operations are pointwise on membership of "u").
membership = Homomorphism(SetStructure({"u", "v"}), BooleanStructure(), lambda s: "u" in s)


def test_membership_is_a_homomorphism():
    membership.check(SET_ELEMENTS)


def test_broken_mapping_detected():
    bad = Homomorphism(SetStructure({"u", "v"}), BooleanStructure(), lambda s: len(s) == 1)
    with pytest.raises(StructureError):
        bad.check(SET_ELEMENTS)


def test_h_of_zero_checked():
    bad = Homomorphism(SetStructure({"u"}), BooleanStructure(), lambda s: "u" not in s)
    with pytest.raises(StructureError, match="h\\(0\\)"):
        bad.check([frozenset(), frozenset({"u"})])


@pytest.mark.parametrize("policy", ["naive", "normal_form"])
def test_proposition_4_2_on_a_transaction(policy, rng):
    """h(phi_S1(t)) == phi_S2(t): evaluate in S1 then map, vs map env then
    evaluate in S2 — for every stored row of a real run."""
    db = Database.from_rows("R", ["v", "w"], [(i, i % 3) for i in range(8)])
    log = [
        Transaction("t1", [Modify("R", Pattern(2, eq={1: 0}), {1: 9}), Insert("R", (50, 9))]),
        Transaction("t2", [Delete("R", Pattern(2, eq={1: 1}))]),
        Transaction("t3", [Modify("R", Pattern(2, eq={1: 9}), {0: 0})]),
    ]
    engine = Engine(db, policy=policy).apply(log)

    sets = SetStructure({"u", "v"})
    booleans = BooleanStructure()
    names = sorted(
        set(engine.tuple_var_names()) | {"t1", "t2", "t3"}
    )
    env_values = {}
    for i, name in enumerate(names):
        env_values[name] = SET_ELEMENTS[rng.randrange(len(SET_ELEMENTS))]
    env_s1 = lambda name: env_values[name]  # noqa: E731
    env_s2 = membership.compose_env(env_s1)

    for relation in db.schema.names:
        for row, expr, _live in engine.provenance(relation):
            via_s1 = membership(evaluate(expr, sets, env_s1))
            via_s2 = evaluate(expr, booleans, env_s2)
            assert via_s1 == via_s2, (row, str(expr))
