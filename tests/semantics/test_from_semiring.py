"""Theorem 4.5: building UP[X] structures from admissible semirings."""

import pytest

from repro.core.axioms import check_structure
from repro.errors import StructureError
from repro.semantics.from_semiring import (
    boolean_algebra_minus,
    structure_from_semiring,
)
from repro.semantics.semirings import (
    BooleanSemiring,
    FuzzySemiring,
    NaturalsSemiring,
    PowerSetSemiring,
)

BOOLS = [False, True]


def test_boolean_construction_satisfies_all_axioms():
    s = structure_from_semiring(
        BooleanSemiring(),
        boolean_algebra_minus(BooleanSemiring(), lambda b: not b),
        elements=BOOLS,
    )
    assert check_structure(s, BOOLS)
    assert s.zero is False
    assert s.plus_i(False, True) and s.times_m(True, True)


def test_example_4_6_access_control_construction():
    semiring = PowerSetSemiring({"a", "b"})
    universe = semiring.one
    s = structure_from_semiring(
        semiring,
        lambda x, y: x - y,  # set difference, as in Example 4.6
        elements=semiring.elements(),
    )
    assert check_structure(s, semiring.elements())


def test_inadmissible_semiring_rejected():
    with pytest.raises(StructureError, match="not Theorem 4.5 admissible"):
        structure_from_semiring(
            NaturalsSemiring(), lambda a, b: max(a - b, 0), elements=[0, 1, 2]
        )


def test_monus_fails_the_axioms():
    """The paper (after Thm 4.5): monus does not work as minus.

    For the fuzzy semiring, truncated monus breaks axiom 10
    ((a - b) +I b = a +I b): max(min(a, 1-b), b) != max(a, b).
    """
    fuzzy = FuzzySemiring()
    with pytest.raises(StructureError, match="axiom"):
        structure_from_semiring(
            fuzzy,
            lambda a, b: min(a, 1.0 - b),  # Gödel-style monus
            elements=[0.0, 0.5, 0.6, 1.0],
        )


def test_validation_can_be_skipped():
    s = structure_from_semiring(NaturalsSemiring(), lambda a, b: a, validate=False)
    assert s.plus_i(1, 2) == 3  # structure built, caveat emptor


def test_zero_axiom_validation_fires():
    class _BadZero(BooleanSemiring):
        zero = True  # nonsense zero: 0 +I a = a fails

    with pytest.raises(StructureError):
        structure_from_semiring(
            _BadZero(), lambda a, b: a and not b, elements=BOOLS
        )
