"""Semirings and the Theorem 4.5 admissibility conditions."""

import pytest

from repro.semantics.semirings import (
    BooleanSemiring,
    FuzzySemiring,
    NaturalsSemiring,
    PowerSetSemiring,
    WhySemiring,
    satisfies_theorem_4_5,
    semiring_violations,
)

BOOLS = [False, True]
FUZZY = [0.0, 0.25, 0.5, 1.0]


def test_boolean_semiring_is_admissible():
    assert satisfies_theorem_4_5(BooleanSemiring(), BOOLS)


def test_powerset_semiring_is_admissible():
    s = PowerSetSemiring({"a", "b"})
    assert satisfies_theorem_4_5(s, s.elements())


def test_powerset_elements_enumerates_carrier():
    s = PowerSetSemiring({"a", "b"})
    assert len(s.elements()) == 4
    assert s.one == frozenset({"a", "b"}) and s.zero == frozenset()


def test_fuzzy_semiring_is_admissible():
    assert satisfies_theorem_4_5(FuzzySemiring(), FUZZY)


def test_naturals_fail_both_conditions():
    problems = semiring_violations(NaturalsSemiring(), [0, 1, 2, 3])
    labels = " ".join(problems)
    assert "absorption" in labels
    assert "idempotence" in labels


def test_why_semiring_fails_absorption():
    x = frozenset({frozenset({"x"})})
    y = frozenset({frozenset({"y"})})
    s = WhySemiring()
    problems = semiring_violations(s, [s.zero, s.one, x, y])
    assert any("absorption" in p for p in problems)


def test_why_semiring_times_is_pairwise_union():
    s = WhySemiring()
    x = frozenset({frozenset({"x"})})
    y = frozenset({frozenset({"y"})})
    assert s.times(x, y) == frozenset({frozenset({"x", "y"})})


def test_violations_report_witnesses():
    problems = semiring_violations(NaturalsSemiring(), [1, 2])
    assert all("a=" in p for p in problems)


@pytest.mark.parametrize(
    "semiring,elements",
    [
        (BooleanSemiring(), BOOLS),
        (FuzzySemiring(), FUZZY),
        (PowerSetSemiring({"a"}), PowerSetSemiring({"a"}).elements()),
    ],
    ids=["bool", "fuzzy", "powerset"],
)
def test_admissible_semirings_satisfy_basic_laws(semiring, elements):
    assert semiring_violations(semiring, elements) == []
