"""Concrete Update-Structures: operations, zero axioms, quirks."""

import itertools

import pytest

from repro.errors import StructureError
from repro.semantics.boolean import BooleanStructure
from repro.semantics.posbool import PosBoolStructure
from repro.semantics.sets import SetStructure
from repro.semantics.structure import Valuation
from repro.semantics.trust import TRUSTED, UNTRUSTED, TrustStructure, TrustValue


class TestBoolean:
    s = BooleanStructure()

    def test_operations(self):
        assert self.s.plus_i(False, True) is True
        assert self.s.plus_m(False, False) is False
        assert self.s.times_m(True, False) is False
        assert self.s.minus(True, False) is True
        assert self.s.minus(True, True) is False
        assert self.s.plus(False, True) is True

    def test_zero_axioms(self):
        self.s.check_zero_axioms([False, True])


class TestSets:
    s = SetStructure({"EU", "US", "JP"})

    def test_operations(self):
        eu, us = frozenset({"EU"}), frozenset({"US"})
        assert self.s.plus_i(eu, us) == {"EU", "US"}
        assert self.s.times_m(frozenset({"EU", "US"}), eu) == {"EU"}
        assert self.s.minus(frozenset({"EU", "US"}), eu) == {"US"}

    def test_top_and_value(self):
        assert self.s.top() == {"EU", "US", "JP"}
        assert self.s.value(["EU", "EU"]) == frozenset({"EU"})

    def test_zero_axioms(self):
        elements = [
            frozenset(c) for r in range(3) for c in itertools.combinations(("EU", "US"), r)
        ]
        self.s.check_zero_axioms(elements)

    def test_access_control_reading(self):
        """Deletion visible to EU hides the tuple from EU only."""
        tuple_creds = frozenset({"EU", "US"})
        delete_creds = frozenset({"EU"})
        after = self.s.minus(tuple_creds, delete_creds)
        assert "EU" not in after and "US" in after


class TestTrust:
    s = TrustStructure(0.5)

    def test_trusted_macro(self):
        assert self.s.trusted(TRUSTED)
        assert not self.s.trusted(UNTRUSTED)
        assert self.s.trusted(TrustValue(0.9, "U"))
        assert not self.s.trusted(TrustValue(0.5, "U"))  # strict >

    def test_operations_produce_canonical_values(self):
        high, low = TrustValue(0.9, "U"), TrustValue(0.1, "U")
        assert self.s.plus_i(high, low) == TRUSTED
        assert self.s.times_m(high, low) == UNTRUSTED
        assert self.s.minus(high, low) == TRUSTED
        assert self.s.minus(high, high) == UNTRUSTED

    def test_equal_is_trust_quotient(self):
        assert self.s.equal(TrustValue(0.9, "U"), TRUSTED)
        assert not self.s.equal(TrustValue(0.9, "U"), UNTRUSTED)

    def test_invalid_values_rejected(self):
        with pytest.raises(StructureError):
            TrustValue(1.5, "T")
        with pytest.raises(StructureError):
            TrustValue(0.5, "X")
        with pytest.raises(StructureError):
            TrustStructure(-0.1)

    def test_zero_axioms_modulo_trusted(self):
        self.s.check_zero_axioms([TRUSTED, UNTRUSTED, TrustValue(0.9, "U"), TrustValue(0.1, "U")])


class TestPosBool:
    def test_symbolic_specialization(self):
        from repro.core.expr import evaluate, minus, times_m, var

        s = PosBoolStructure()
        e = times_m(minus(var("t"), var("p")), var("q"))
        node = evaluate(e, s, s.env())
        # t=1, p=0, q=1 satisfies; t=1, p=1, q=1 does not.
        assert s.bdd.evaluate(node, {"t": True, "p": False, "q": True})
        assert not s.bdd.evaluate(node, {"t": True, "p": True, "q": True})

    def test_env_with_fixed_values(self):
        from repro.core.expr import evaluate, minus, var

        s = PosBoolStructure()
        e = minus(var("t"), var("p"))
        node = evaluate(e, s, s.env(fixed={"p": False}))
        assert node == s.var("t")


class TestValuation:
    def test_default_and_overrides(self):
        v = Valuation(default=True, p1=False)
        assert v("p1") is False and v("anything") is True

    def test_factory(self):
        v = Valuation(default_factory=lambda name: name.startswith("t"))
        assert v("t1") is True and v("q") is False

    def test_no_default_raises(self):
        v = Valuation()
        with pytest.raises(KeyError):
            v("missing")

    def test_default_and_factory_mutually_exclusive(self):
        with pytest.raises(ValueError):
            Valuation(default=1, default_factory=lambda n: 2)

    def test_set_chains(self):
        v = Valuation(default=0).set("a", 1).set("b", 2)
        assert v("a") == 1 and v("b") == 2 and v("c") == 0
