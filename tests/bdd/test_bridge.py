"""UP[X] expressions to BDDs under the Boolean structure."""

import itertools

from repro.bdd import Bdd, expr_to_bdd
from repro.core.equivalence import BoolStructure
from repro.core.expr import ZERO, evaluate, minus, plus_i, plus_m, ssum, times_m, var


def test_bridge_matches_direct_evaluation():
    a, b, p = var("a"), var("b"), var("p")
    e = plus_m(minus(a, p), times_m(ssum([a, b]), p))
    bdd = Bdd(sorted(e.variables()))
    node = expr_to_bdd(e, bdd)
    s = BoolStructure()
    for bits in itertools.product([False, True], repeat=3):
        env = dict(zip(sorted(e.variables()), bits))
        assert bdd.evaluate(node, env) == evaluate(e, s, env)


def test_zero_maps_to_false():
    bdd = Bdd()
    assert expr_to_bdd(ZERO, bdd) == bdd.FALSE


def test_equivalent_expressions_same_node():
    a, b, p = var("a"), var("b"), var("p")
    bdd = Bdd(["a", "b", "p"])
    e1 = minus(plus_m(a, times_m(b, p)), p)  # axiom 2 LHS
    e2 = minus(a, p)  # axiom 2 RHS
    assert expr_to_bdd(e1, bdd) == expr_to_bdd(e2, bdd)


def test_inequivalent_expressions_different_nodes():
    a, p = var("a"), var("p")
    bdd = Bdd(["a", "p"])
    assert expr_to_bdd(minus(a, p), bdd) != expr_to_bdd(plus_i(a, p), bdd)


def test_shared_dag_evaluates_polynomially():
    e = var("x")
    for _ in range(50):
        e = plus_m(e, times_m(e, var("p")))
    bdd = Bdd(["x", "p"])
    node = expr_to_bdd(e, bdd)
    assert bdd.evaluate(node, {"x": True, "p": False})
    assert not bdd.evaluate(node, {"x": False, "p": True})
