"""The ROBDD engine: canonicity, operations, queries."""

import itertools
import random

import pytest

from repro.bdd import Bdd


@pytest.fixture
def bdd():
    return Bdd(["x", "y", "z"])


class TestBasics:
    def test_terminals(self, bdd):
        assert bdd.FALSE == 0 and bdd.TRUE == 1

    def test_var_is_canonical(self, bdd):
        assert bdd.var("x") == bdd.var("x")

    def test_declare_order(self, bdd):
        assert bdd.var_names == ("x", "y", "z")
        bdd.var("w")
        assert bdd.var_names == ("x", "y", "z", "w")

    def test_negate_involution(self, bdd):
        x = bdd.var("x")
        assert bdd.negate(bdd.negate(x)) == x

    def test_reduction_collapses_redundant_tests(self, bdd):
        x, y = bdd.var("x"), bdd.var("y")
        # (x and y) or (not x and y) == y
        e = bdd.apply_or(bdd.apply_and(x, y), bdd.apply_and(bdd.negate(x), y))
        assert e == y


class TestOperations:
    def test_truth_tables(self, bdd):
        x, y = bdd.var("x"), bdd.var("y")
        cases = list(itertools.product([False, True], repeat=2))
        for vx, vy in cases:
            env = {"x": vx, "y": vy, "z": False}
            assert bdd.evaluate(bdd.apply_and(x, y), env) == (vx and vy)
            assert bdd.evaluate(bdd.apply_or(x, y), env) == (vx or vy)
            assert bdd.evaluate(bdd.apply_xor(x, y), env) == (vx != vy)
            assert bdd.evaluate(bdd.apply_diff(x, y), env) == (vx and not vy)

    def test_ite_shortcuts(self, bdd):
        x = bdd.var("x")
        assert bdd.ite(bdd.TRUE, x, bdd.FALSE) == x
        assert bdd.ite(bdd.FALSE, x, bdd.TRUE) == bdd.TRUE
        assert bdd.ite(x, bdd.TRUE, bdd.FALSE) == x
        assert bdd.ite(x, x, x) == x

    def test_conjoin_disjoin(self, bdd):
        xs = [bdd.var(n) for n in "xyz"]
        conj = bdd.conjoin(xs)
        disj = bdd.disjoin(xs)
        assert bdd.evaluate(conj, {"x": True, "y": True, "z": True})
        assert not bdd.evaluate(conj, {"x": True, "y": False, "z": True})
        assert bdd.evaluate(disj, {"x": False, "y": False, "z": True})
        assert not bdd.evaluate(disj, {"x": False, "y": False, "z": False})

    def test_random_equivalence_against_python_eval(self):
        rng = random.Random(3)
        names = ["a", "b", "c", "d"]
        bdd = Bdd(names)

        def random_formula(depth):
            if depth == 0:
                return rng.choice(names)
            op = rng.choice(["and", "or", "not"])
            if op == "not":
                return ("not", random_formula(depth - 1))
            return (op, random_formula(depth - 1), random_formula(depth - 1))

        def to_bdd(f):
            if isinstance(f, str):
                return bdd.var(f)
            if f[0] == "not":
                return bdd.negate(to_bdd(f[1]))
            g, h = to_bdd(f[1]), to_bdd(f[2])
            return bdd.apply_and(g, h) if f[0] == "and" else bdd.apply_or(g, h)

        def py_eval(f, env):
            if isinstance(f, str):
                return env[f]
            if f[0] == "not":
                return not py_eval(f[1], env)
            if f[0] == "and":
                return py_eval(f[1], env) and py_eval(f[2], env)
            return py_eval(f[1], env) or py_eval(f[2], env)

        for _ in range(40):
            f = random_formula(4)
            node = to_bdd(f)
            for env_bits in itertools.product([False, True], repeat=4):
                env = dict(zip(names, env_bits))
                assert bdd.evaluate(node, env) == py_eval(f, env)


class TestQueries:
    def test_restrict(self, bdd):
        x, y = bdd.var("x"), bdd.var("y")
        e = bdd.apply_and(x, y)
        assert bdd.restrict(e, {"x": True}) == y
        assert bdd.restrict(e, {"x": False}) == bdd.FALSE

    def test_sat_count(self, bdd):
        x, y = bdd.var("x"), bdd.var("y")
        assert bdd.sat_count(bdd.apply_and(x, y)) == 2  # z free
        assert bdd.sat_count(bdd.apply_or(x, y)) == 6
        assert bdd.sat_count(bdd.TRUE) == 8
        assert bdd.sat_count(bdd.FALSE) == 0

    def test_any_sat(self, bdd):
        x, y = bdd.var("x"), bdd.var("y")
        e = bdd.apply_and(x, bdd.negate(y))
        model = bdd.any_sat(e)
        assert model is not None and bdd.evaluate(e, model)
        assert bdd.any_sat(bdd.FALSE) is None

    def test_support(self, bdd):
        x, z = bdd.var("x"), bdd.var("z")
        assert bdd.support(bdd.apply_and(x, z)) == {"x", "z"}
        assert bdd.support(bdd.TRUE) == frozenset()

    def test_iter_models(self, bdd):
        x, y = bdd.var("x"), bdd.var("y")
        e = bdd.apply_and(x, bdd.negate(y))
        models = list(bdd.iter_models(e))
        assert len(models) == 2  # z free
        for model in models:
            assert bdd.evaluate(e, model)

    def test_node_count(self, bdd):
        x = bdd.var("x")
        assert bdd.node_count(x) == 3  # node + two terminals
        assert bdd.node_count(bdd.TRUE) == 1

    def test_deep_chain_no_recursion_error(self):
        bdd = Bdd()
        acc = bdd.TRUE
        for i in range(3000):
            acc = bdd.apply_and(acc, bdd.var(f"v{i}"))
        assert bdd.sat_count(acc) == 1
