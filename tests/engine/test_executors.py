"""Executor behaviour: tombstones, ghosts, liveness, source∩target cases."""

import pytest

from repro.core.equivalence import equivalent_boolean
from repro.core.expr import ZERO, minus, plus_i, times_m, var
from repro.db.database import Database
from repro.engine.engine import Engine
from repro.errors import EngineError
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Insert, Modify, Transaction


def unary_db(*values):
    return Database.from_rows("R", ["v"], [(v,) for v in values])


def namer(_relation, row, _index):
    return f"x{row[0]}"


def engine_for(db, policy="normal_form"):
    return Engine(db, policy=policy, annotate=namer)


class TestInsertSemantics:
    def test_insert_new_tuple(self):
        e = engine_for(unary_db("a"))
        e.apply(Transaction("p", [Insert("R", ("b",))]))
        assert e.annotation_of("R", ("b",)) is var("p")  # 0 +I p = p
        assert ("b",) in e.live_rows("R")

    def test_insert_existing_tuple(self):
        e = engine_for(unary_db("a"))
        e.apply(Transaction("p", [Insert("R", ("a",))]))
        assert e.annotation_of("R", ("a",)) is plus_i(var("xa"), var("p"))

    def test_reinsert_after_delete_revives(self):
        e = engine_for(unary_db("a"))
        e.apply(Transaction("p", [Delete("R", Pattern(1, eq={0: "a"})), Insert("R", ("a",))]))
        assert ("a",) in e.live_rows("R")
        assert e.annotation_of("R", ("a",)) is plus_i(var("xa"), var("p"))


class TestDeleteSemantics:
    def test_tombstone_kept_with_minus_annotation(self):
        e = engine_for(unary_db("a", "b"))
        e.apply(Transaction("p", [Delete("R", Pattern(1, eq={0: "a"}))]))
        assert ("a",) not in e.live_rows("R")
        assert e.support_count() == 2  # tombstone stays stored
        assert e.annotation_of("R", ("a",)) is minus(var("xa"), var("p"))

    def test_delete_matches_tombstones_too(self):
        """A second deletion under a new annotation touches the tombstone."""
        e = engine_for(unary_db("a"))
        e.apply(Transaction("p", [Delete("R", Pattern(1))]))
        e.apply(Transaction("q", [Delete("R", Pattern(1))]))
        assert e.annotation_of("R", ("a",)) is minus(minus(var("xa"), var("p")), var("q"))

    def test_delete_with_disequality(self):
        e = engine_for(unary_db("a", "b", "c"))
        e.apply(Transaction("p", [Delete("R", Pattern(1, neq={0: {"b"}}))]))
        assert e.live_rows("R") == {("b",)}


class TestModifySemantics:
    def test_tombstone_source_produces_ghost_target(self):
        """Figure 4's mechanism: tombstones are modification sources."""
        e = engine_for(unary_db("a"))
        e.apply(Transaction("p", [Delete("R", Pattern(1, eq={0: "a"}))]))
        e.apply(Transaction("q", [Modify("R", Pattern(1, eq={0: "a"}), {0: "z"})]))
        ghost = e.annotation_of("R", ("z",))
        assert ghost is times_m(minus(var("xa"), var("p")), var("q"))
        assert ("z",) not in e.live_rows("R")  # dead source -> dead target

    def test_source_equals_target_self_map(self):
        """M(R(x) -> R(5)) with (5) present: (5) is source and target."""
        db = unary_db(5, 3)
        e = engine_for(db)
        e.apply(Transaction("p", [Modify("R", Pattern(1), {0: 5})]))
        assert e.live_rows("R") == {(5,)}
        merged = e.annotation_of("R", (5,))
        # Target absorbs both sources' annotations; it must evaluate live
        # and contain both x5 and x3 as alternatives.
        assert ("3",) not in e.live_rows("R")
        assert {"x5", "x3", "p"} <= set(merged.variables())

    def test_identity_modification_keeps_row_live(self):
        db = unary_db("a")
        e = engine_for(db)
        e.apply(Transaction("p", [Modify("R", Pattern(1, eq={0: "a"}), {0: "a"})]))
        assert e.live_rows("R") == {("a",)}

    def test_all_sources_dead_creates_no_target_under_same_annotation(self):
        """Rule 3 in the engine: the ghost's annotation is 0, so no row."""
        e = engine_for(unary_db("a"))
        e.apply(
            Transaction(
                "p",
                [
                    Delete("R", Pattern(1, eq={0: "a"})),
                    Modify("R", Pattern(1, eq={0: "a"}), {0: "z"}),
                ],
            )
        )
        assert e.annotation_of("R", ("z",)) is ZERO
        assert e.support_count() == 1

    def test_naive_keeps_zero_equivalent_ghost(self):
        """The naive policy stores the ghost with an expression ≡ 0."""
        e = engine_for(unary_db("a"), policy="naive")
        e.apply(
            Transaction(
                "p",
                [
                    Delete("R", Pattern(1, eq={0: "a"})),
                    Modify("R", Pattern(1, eq={0: "a"}), {0: "z"}),
                ],
            )
        )
        ghost = e.annotation_of("R", ("z",))
        assert ghost is not ZERO  # syntactically present...
        assert equivalent_boolean(ghost, ZERO)  # ...semantically absent

    def test_live_target_not_matching_pattern_stays_live(self):
        db = unary_db("a", "z")
        e = engine_for(db)
        e.apply(Transaction("p", [Modify("R", Pattern(1, eq={0: "a"}), {0: "z"})]))
        assert e.live_rows("R") == {("z",)}
        merged = e.annotation_of("R", ("z",))
        assert {"xz", "xa", "p"} <= set(merged.variables())


class TestPolicyAgreement:
    @pytest.mark.parametrize("policy", ["naive", "normal_form", "mv_tree", "mv_string"])
    def test_live_rows_match_vanilla(self, policy):
        db = unary_db(*range(6))
        log = [
            Transaction("t1", [Modify("R", Pattern(1, eq={0: 1}), {0: 2})]),
            Transaction("t2", [Delete("R", Pattern(1, eq={0: 2})), Insert("R", (9,))]),
            Transaction("t3", [Modify("R", Pattern(1, neq={0: {9}}), {0: 0})]),
        ]
        vanilla = Engine(db, policy="none").apply(log)
        other = Engine(db, policy=policy).apply(log)
        assert other.result().same_contents(vanilla.result())


class TestEngineApi:
    def test_unknown_policy(self):
        with pytest.raises(EngineError, match="unknown policy"):
            Engine(unary_db("a"), policy="magic")

    def test_unknown_relation(self):
        e = engine_for(unary_db("a"))
        with pytest.raises(EngineError, match="unknown relation"):
            e.apply(Transaction("p", [Insert("S", (1,))]))

    def test_apply_rejects_garbage(self):
        with pytest.raises(EngineError):
            Engine(unary_db("a"), policy="none").apply(42)

    def test_stats_accumulate(self):
        e = engine_for(unary_db("a", "b"))
        e.apply(
            Transaction("p", [Insert("R", ("c",)), Delete("R", Pattern(1, eq={0: "a"}))])
        )
        assert e.stats.queries == 2
        assert e.stats.inserts == 1 and e.stats.deletes == 1
        assert e.stats.transactions == 1
        assert e.stats.rows_matched == 1

    def test_annotation_of_absent_row_is_zero(self):
        e = engine_for(unary_db("a"))
        assert e.annotation_of("R", ("zzz",)) is ZERO

    def test_tuple_var_lookup(self):
        e = engine_for(unary_db("a"))
        assert e.tuple_var("R", ("a",)) == "xa"
        assert e.tuple_var("R", ("nope",)) is None
        assert e.tuple_var_names() == {"xa"}

    def test_overhead_report(self):
        db = unary_db("a", "b")
        log = [Transaction("p", [Delete("R", Pattern(1, eq={0: "a"}))])]
        base = Engine(db, policy="none").apply(log)
        e = Engine(db, policy="normal_form").apply(log)
        report = e.overhead_report(base)
        assert report["policy"] == "normal_form"
        assert report["support_rows"] == 2 and report["live_rows"] == 1
        assert report["row_overhead"] == pytest.approx(1.0)

    def test_specialize_requires_provenance(self):
        e = Engine(unary_db("a"), policy="none")
        with pytest.raises(EngineError):
            e.specialize(None, {})

    def test_specialize_rejected_for_mv(self):
        e = Engine(unary_db("a"), policy="mv_tree")
        with pytest.raises(EngineError, match="version annotations"):
            e.specialize(None, {})

    def test_specialized_database(self):
        from repro.semantics.boolean import BooleanStructure

        e = engine_for(unary_db("a", "b"))
        e.apply(Transaction("p", [Delete("R", Pattern(1, eq={0: "a"}))]))
        db = e.specialized_database(BooleanStructure(), lambda name: True)
        assert db.rows("R") == {("b",)}
