"""Regression tests for the PR 4 engine-surface bugfix sweep.

Covers: ``apply``/``apply_batch`` rejecting strings instead of recursing
character-by-character, ``annotation_of`` probing the store's row-keyed
index instead of scanning provenance (bit-identical to the scan), and
``overhead_report`` refusing to fabricate a ``row_overhead`` ratio
against an empty baseline.
"""

from __future__ import annotations

import pytest

from repro.core.expr import ZERO
from repro.db.database import Database
from repro.engine.engine import Engine
from repro.errors import EngineError
from repro.queries.updates import Delete, Insert, Modify, Transaction

from ..conftest import PRODUCTS_ROWS, paper_transactions


@pytest.mark.parametrize("method", ["apply", "apply_batch"])
@pytest.mark.parametrize("bad", ["oops", b"oops", ""])
def test_apply_rejects_strings_and_bytes(products_db, method, bad):
    """A str satisfies isinstance(Iterable) but must not recurse char-wise."""
    engine = Engine(products_db, policy="naive")
    with pytest.raises(EngineError, match="cannot apply"):
        getattr(engine, method)(bad)


@pytest.mark.parametrize("method", ["apply", "apply_batch"])
def test_apply_rejects_strings_nested_in_iterables(products_db, method):
    """The guard also fires one level down, inside a list of items."""
    engine = Engine(products_db, policy="naive")
    rel = products_db.relation("products")
    good = Delete.where(rel, where={"category": "Sport"}, annotation="p")
    with pytest.raises(EngineError, match="cannot apply"):
        getattr(engine, method)([good, "oops"])
    # apply executes the valid prefix before the guard fires (like any
    # mid-iterable failure); apply_batch still had it buffered in the
    # pending run, which the raise discards unapplied.
    assert engine.stats.queries == (1 if method == "apply" else 0)


@pytest.mark.parametrize(
    "policy", ["none", "naive", "normal_form", "normal_form_batch"]
)
def test_annotation_of_matches_provenance_scan(products_db, products_namer, policy):
    """The O(1) probe returns exactly what the old full scan returned."""
    engine = Engine(products_db, policy=policy, annotate=products_namer)
    t1, _t1p, t2 = paper_transactions(products_db)
    engine.apply([t1, t2])

    def scan(relation, target):
        for stored, expr, _live in engine.executor.provenance_items(relation):
            if stored == target:
                return expr
        return ZERO

    stored_rows = [row for row, _e, _l in engine.provenance("products")]
    assert stored_rows  # the scenario keeps tombstones around
    for row in stored_rows:
        assert engine.annotation_of("products", row) is scan("products", row)
    # Never-stored rows answer 0, exactly like the scan.
    missing = ("No such product", "Nope", -1)
    assert engine.annotation_of("products", missing) is ZERO
    assert scan("products", missing) is ZERO


def test_annotation_of_does_not_scan_provenance(products_db):
    """Store-backed executors must not fall back to provenance_items."""
    engine = Engine(products_db, policy="naive")
    engine.apply(paper_transactions(products_db)[0])
    calls = []
    original = engine.executor.provenance_items
    engine.executor.provenance_items = lambda rel: calls.append(rel) or original(rel)
    row = next(iter(PRODUCTS_ROWS))
    engine.annotation_of("products", row)
    assert calls == []


def test_annotation_of_flushes_batched_policy(products_db):
    """The batched policy must expose normalized annotations, as the scan did."""
    engine = Engine(products_db, policy="normal_form_batch")
    rel = products_db.relation("products")
    engine.apply(
        Transaction(
            "p", [Modify.set(rel, where={"category": "Sport"}, set_values={"price": 50})]
        )
    )
    engine.apply(Delete.where(rel, where={"price": 50}, annotation="q"))
    # Un-flushed layers pending; annotation_of must flush before reading.
    for row, expr, _live in engine.provenance("products"):
        assert engine.annotation_of("products", row) is expr


def test_annotation_of_unknown_relation_raises(products_db):
    engine = Engine(products_db, policy="naive")
    with pytest.raises(EngineError):
        engine.annotation_of("nope", ("x",))


def test_row_overhead_is_none_against_empty_baseline():
    """No live baseline rows -> no meaningful ratio, not a fabricated one."""
    empty = Database.from_rows("r", ["a", "b"], [])
    baseline = Engine(empty, policy="none")
    engine = Engine(empty, policy="naive")
    engine.apply(Insert("r", (1, 2), "p"))
    engine.apply(Delete.where(empty.relation("r"), where={"a": 1}, annotation="q"))
    assert baseline.live_count() == 0
    assert engine.support_count() == 1  # one tombstone
    report = engine.overhead_report(baseline)
    assert report["row_overhead"] is None


def test_row_overhead_still_reported_against_live_baseline(products_db):
    baseline = Engine(products_db, policy="none")
    engine = Engine(products_db, policy="naive")
    t1, _t1p, t2 = paper_transactions(products_db)
    baseline.apply([t1, t2])
    engine.apply([t1, t2])
    report = engine.overhead_report(baseline)
    assert report["row_overhead"] is not None
    assert report["row_overhead"] > 0  # tombstones
