"""The batched update pipeline: fusion correctness, stats, deferred flushes."""

from __future__ import annotations

import pytest

from repro.core.equivalence import equivalent
from repro.core.expr import ZERO
from repro.db.database import Database
from repro.engine.engine import Engine, make_executor
from repro.engine.executors import AnnotatedExecutor
from repro.errors import EngineError
from repro.queries.updates import Delete, Insert, Modify, Transaction
from repro.workloads.synthetic import SyntheticConfig, synthetic_database, synthetic_log

POLICIES = ["none", "naive", "normal_form", "normal_form_batch"]


@pytest.fixture(scope="module")
def workload():
    config = SyntheticConfig(n_tuples=400, n_queries=60, n_groups=6, group_size=4, seed=13)
    return synthetic_database(config), synthetic_log(config)


def provenance_map(engine, relation):
    return {row: expr for row, expr, _live in engine.provenance(relation)}


@pytest.mark.parametrize("policy", POLICIES)
def test_batched_matches_sequential_result(workload, policy):
    database, log = workload
    single = log.as_single_transaction()
    sequential = Engine(database, policy=policy).apply(single)
    batched = Engine(database, policy=policy).apply_batch(single)
    for relation in database.schema.names:
        assert sequential.live_rows(relation) == batched.live_rows(relation)
    assert sequential.live_count() == batched.live_count()


@pytest.mark.parametrize("policy", ["naive", "normal_form"])
def test_fused_pass_is_execution_order_identical(workload, policy):
    """The indexed fused scan replays the sequential path bit for bit."""
    database, log = workload
    single = log.as_single_transaction()
    sequential = Engine(database, policy=policy).apply(single)
    batched = Engine(database, policy=policy).apply_batch(single)
    for relation in database.schema.names:
        seq = provenance_map(sequential, relation)
        bat = provenance_map(batched, relation)
        assert set(seq) == set(bat)
        for row in seq:
            assert seq[row] is bat[row]
    assert sequential.stats.rows_matched == batched.stats.rows_matched
    assert sequential.stats.rows_created == batched.stats.rows_created


def test_deferred_policy_equivalent_to_incremental(workload):
    """normal_form_batch stores annotations UP[X]-equivalent to normal_form."""
    database, log = workload
    single = log.as_single_transaction()
    incremental = Engine(database, policy="normal_form").apply(single)
    deferred = Engine(database, policy="normal_form_batch").apply_batch(single)
    for relation in database.schema.names:
        inc = provenance_map(incremental, relation)
        dfd = provenance_map(deferred, relation)
        # Supports agree up to rows whose annotation is ≡ 0 (absent = 0).
        for row in set(inc) | set(dfd):
            assert equivalent(inc.get(row, ZERO), dfd.get(row, ZERO))


def test_batch_stats_counters(workload):
    database, log = workload
    single = log.as_single_transaction()
    engine = Engine(database, policy="normal_form").apply_batch(single)
    assert engine.stats.batches >= 1
    assert engine.stats.batched_queries == engine.stats.queries == log.query_count()
    assert engine.stats.batch_time <= engine.stats.wall_time + 1e-9
    assert len(engine.stats.per_query_time) == engine.stats.queries
    assert engine.stats.transactions == 1
    snapshot = engine.stats.snapshot()
    assert snapshot["batches"] == engine.stats.batches
    assert snapshot["batched_queries"] == engine.stats.batched_queries


def test_runs_split_at_relation_boundaries():
    database = Database.from_dict(
        {"R": (["a", "b"], [(i, i % 3) for i in range(12)]), "S": (["a", "b"], [])}
    )
    r, s = database.schema.relation("R"), database.schema.relation("S")
    queries = [
        Delete.where(r, {"b": 0}, annotation="p1"),
        Delete.where(r, {"b": 1}, annotation="p2"),
        Insert.values(s, (1, 2), annotation="p3"),
        Delete.where(s, {"a": 1}, annotation="p4"),
        Delete.where(r, {"b": 2}, annotation="p5"),
    ]
    engine = Engine(database, policy="normal_form").apply_batch(queries)
    # R-run, S-run, R-run: three fused runs.
    assert engine.stats.batches == 3
    assert engine.stats.queries == 5
    assert engine.live_rows("R") == set()
    assert engine.live_rows("S") == set()


def test_transaction_boundary_breaks_runs_and_fires_hook(workload):
    database, _log = workload
    relation = database.schema.relation("synthetic")
    t1 = Transaction("p", [Delete.where(relation, {"grp": 0})])
    t2 = Transaction("q", [Delete.where(relation, {"grp": 1})])
    engine = Engine(database, policy="normal_form_batch").apply_batch([t1, t2])
    assert engine.stats.transactions == 2
    assert engine.stats.batches == 2


def test_mixed_kind_run_fuses_with_index():
    database = Database.from_rows("R", ["a", "b"], [(i, i % 4) for i in range(20)])
    r = database.schema.relation("R")
    queries = [
        Delete.where(r, {"b": 0}, annotation="p1"),
        Insert.values(r, (100, 1), annotation="p2"),
        Modify.set(r, {"b": 3}, where={"b": 1}, annotation="p3"),
        Delete.where(r, {"b": 3}, annotation="p4"),
    ]
    sequential = Engine(database, policy="normal_form").apply(queries)
    batched = Engine(database, policy="normal_form").apply_batch(queries)
    assert sequential.live_rows("R") == batched.live_rows("R")
    seq = provenance_map(sequential, "R")
    bat = provenance_map(batched, "R")
    assert set(seq) == set(bat)
    assert all(seq[row] is bat[row] for row in seq)
    # The freshly inserted row (100, 1) was modified onto (100, 3) and
    # deleted — the index must have tracked it through all three steps.
    assert (100, 3) in seq and not any(row == (100, 3) for row in batched.live_rows("R"))


def test_executor_apply_batch_rejects_mixed_relations():
    database = Database.from_dict({"R": (["a"], [(1,)]), "S": (["a"], [])})
    executor = make_executor(database, "normal_form")
    assert isinstance(executor, AnnotatedExecutor)
    queries = [
        Delete.where(database.schema.relation("R"), {"a": 1}, annotation="p"),
        Delete.where(database.schema.relation("S"), {"a": 1}, annotation="p"),
    ]
    with pytest.raises(EngineError):
        executor.apply_batch(queries)


def test_unindexable_run_falls_back_to_sequential_loop():
    database = Database.from_rows("R", ["a"], [(i,) for i in range(8)])
    r = database.schema.relation("R")
    # Patterns with no equality constraint: nothing to index on.
    queries = [
        Delete.where(r, where_not={"a": 0}, annotation="p1"),
        Delete.where(r, where_not={"a": 1}, annotation="p2"),
    ]
    engine = Engine(database, policy="normal_form").apply_batch(queries)
    sequential = Engine(database, policy="normal_form").apply(queries)
    assert engine.live_rows("R") == sequential.live_rows("R") == set()
    assert engine.stats.rows_matched == sequential.stats.rows_matched == 14


def test_unhashable_pattern_constants_fall_back_to_scans():
    """Patterns accept unhashable eq constants (they match nothing); the
    fused path must not try to use them as index keys."""
    from repro.queries.pattern import Pattern

    database = Database.from_rows("R", ["a", "b"], [(i, i % 2) for i in range(6)])
    queries = [
        Delete("R", Pattern(2, eq={0: [1, 2]}), annotation="p1"),
        Delete("R", Pattern(2, eq={0: [3, 4]}), annotation="p2"),
        Delete("R", Pattern(2, eq={1: 0}), annotation="p3"),
    ]
    sequential = Engine(database, policy="normal_form").apply(queries)
    batched = Engine(database, policy="normal_form").apply_batch(queries)
    assert sequential.live_rows("R") == batched.live_rows("R") == {(1, 1), (3, 1), (5, 1)}
    assert sequential.stats.rows_matched == batched.stats.rows_matched == 3


def test_deferred_flush_on_observation():
    """Reading provenance from the deferred executor flushes first."""
    database = Database.from_rows("R", ["a", "b"], [(1, 0), (2, 0), (3, 1)])
    r = database.schema.relation("R")
    engine = Engine(database, policy="normal_form_batch")
    engine.apply_batch(
        [
            Delete.where(r, {"b": 0}, annotation="p"),
            Delete.where(r, {"b": 0}, annotation="q"),
        ]
    )
    for _row, expr, live in engine.provenance("R"):
        if not live:
            # A flushed annotation is normal-form shaped, not a raw chain:
            # the two same-pattern deletions collapse to the outermost one.
            assert expr.kind in ("-",)
