"""EngineStats accounting and the overhead report."""

import pytest

from repro.db.database import Database
from repro.engine.engine import Engine
from repro.engine.stats import EngineStats
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Insert, Modify, Transaction


def test_record_classifies_kinds():
    stats = EngineStats()
    stats.record("insert", 0, 1, 0.5)
    stats.record("delete", 3, 0, 0.25)
    stats.record("modify", 2, 1, 0.25)
    assert (stats.inserts, stats.deletes, stats.modifies) == (1, 1, 1)
    assert stats.rows_matched == 5 and stats.rows_created == 2
    assert stats.wall_time == pytest.approx(1.0)
    assert len(stats.per_query_time) == 3


def test_snapshot_keys_are_stable():
    stats = EngineStats()
    snapshot = stats.snapshot()
    assert set(snapshot) == {
        "queries",
        "inserts",
        "deletes",
        "modifies",
        "transactions",
        "rows_matched",
        "rows_created",
        "wall_time",
        "batches",
        "batched_queries",
        "batch_time",
        "index_hits",
        "fallback_scans",
        "index_rows_examined",
        "checkpoint_time",
    }


def test_overhead_report_with_time_overhead():
    db = Database.from_rows("R", ["a"], [(i,) for i in range(50)])
    log = [
        Transaction(
            "t", [Modify("R", Pattern(1, eq={0: i}), {0: i + 100}) for i in range(10)]
        )
    ]
    baseline = Engine(db, policy="none").apply(log)
    engine = Engine(db, policy="naive").apply(log)
    report = engine.overhead_report(baseline)
    assert report["queries"] == 10
    assert report["row_overhead"] > 0  # tombstones
    assert "time_overhead" in report  # baseline ran with real timing


def test_injected_clock_controls_wall_time():
    ticks = iter(range(1000))
    db = Database.from_rows("R", ["a"], [(1,)])
    engine = Engine(db, policy="none", clock=lambda: next(ticks))
    engine.apply(Transaction("t", [Insert("R", (2,)), Delete("R", Pattern(1))]))
    # Each query consumes two ticks -> elapsed exactly 1 per query.
    assert engine.stats.wall_time == 2
    assert engine.stats.per_query_time == [1, 1]
