"""The paper's running example, reproduced end to end.

Covers Examples 2.2-2.4 (query semantics), 3.1-3.2 (provenance), 3.7
(equivalence of T1 and T1'), 3.8-3.9 (sequences of transactions and
Figure 4), 4.3-4.4 (deletion propagation and abortion valuations) and 5.7
(normal forms during T1).
"""

import pytest

from repro.core.equivalence import canonical, equivalent_boolean
from repro.core.expr import ZERO, evaluate, minus, plus_i, plus_m, ssum, times_m, var
from repro.db.database import Database
from repro.engine.engine import Engine
from repro.queries.updates import Delete, Insert, Modify, Transaction
from repro.semantics.boolean import BooleanStructure

from ..conftest import PRODUCTS_ROWS, paper_transactions

P1, P2, P3, P4 = (var(n) for n in ("p1", "p2", "p3", "p4"))
P, PP = var("p"), var("p'")


@pytest.fixture
def engine(products_db, products_namer):
    return Engine(products_db, policy="normal_form", annotate=products_namer)


class TestSection2QuerySemantics:
    def test_example_2_2_insertion(self, products_db):
        engine = Engine(products_db, policy="none")
        engine.apply(Insert("products", ("Lego bricks", "Kids", 90), annotation="p"))
        assert ("Lego bricks", "Kids", 90) in engine.live_rows("products")

    def test_example_2_3_deletion(self, products_db):
        rel = products_db.relation("products")
        engine = Engine(products_db, policy="none")
        engine.apply(Delete.where(rel, where={"category": "Fashion"}, annotation="p"))
        assert ("Children sneakers", "Fashion", 40) not in engine.live_rows("products")
        assert len(engine.live_rows("products")) == 3

    def test_example_2_4_modification(self, products_db):
        rel = products_db.relation("products")
        engine = Engine(products_db, policy="none")
        engine.apply(
            Modify.set(
                rel,
                where={"product": "Kids mnt bike"},
                set_values={"category": "Bicycles"},
                annotation="p",
            )
        )
        rows = engine.live_rows("products")
        # Both bike rows collapse into one (t ~> t' merging).
        assert ("Kids mnt bike", "Bicycles", 120) in rows
        assert len(rows) == 3

    def test_figure_1b_full_sequence(self, products_db):
        rel = products_db.relation("products")
        engine = Engine(products_db, policy="none")
        engine.apply(
            Transaction(
                "p",
                [
                    Insert("products", ("Lego bricks", "Kids", 90)),
                    Delete.where(rel, where={"category": "Fashion"}),
                    Modify.set(
                        rel,
                        where={"product": "Kids mnt bike"},
                        set_values={"category": "Bicycles"},
                    ),
                ],
            )
        )
        assert engine.live_rows("products") == {
            ("Kids mnt bike", "Bicycles", 120),
            ("Tennis Racket", "Sport", 70),
            ("Lego bricks", "Kids", 90),
        }


class TestExample31SingleModification:
    def test_annotations_after_category_merge(self, engine, products_db):
        rel = products_db.relation("products")
        engine.apply(
            Transaction(
                "p",
                [
                    Modify.set(
                        rel,
                        where={"product": "Kids mnt bike"},
                        set_values={"category": "Bicycles"},
                    )
                ],
            )
        )
        assert engine.annotation_of("products", ("Kids mnt bike", "Sport", 120)) is minus(P1, P)
        assert engine.annotation_of("products", ("Kids mnt bike", "Kids", 120)) is minus(P3, P)
        # 0 +M ((p1 + p3) *M p) zero-folds to (p1 + p3) *M p (the source
        # disjunction is a set: order is not significant).
        target = engine.annotation_of("products", ("Kids mnt bike", "Bicycles", 120))
        assert canonical(target) is canonical(times_m(ssum([P1, P3]), P))


class TestExample32TransactionT1:
    def test_annotations_after_t1(self, engine, products_db):
        t1, _t1p, _t2 = paper_transactions(products_db)
        engine.apply(t1)
        # Example 3.2 (and 5.7): normal forms of the three touched tuples.
        assert engine.annotation_of("products", ("Kids mnt bike", "Kids", 120)) is minus(P3, P)
        # (p1 +M (p3 *M p)) - p simplified by Rule 2:
        assert engine.annotation_of("products", ("Kids mnt bike", "Sport", 120)) is minus(P1, P)
        # 0 +M ((p1 +M (p3 *M p)) *M p) simplified by Rule 7 + zero axioms:
        bicycles = engine.annotation_of("products", ("Kids mnt bike", "Bicycles", 120))
        assert canonical(bicycles) is canonical(times_m(ssum([P1, P3]), P))

    def test_naive_preserves_unsimplified_shape(self, products_db, products_namer):
        t1, _t1p, _t2 = paper_transactions(products_db)
        naive = Engine(products_db, policy="naive", annotate=products_namer).apply(t1)
        sport = naive.annotation_of("products", ("Kids mnt bike", "Sport", 120))
        # The literal Example 3.2 expression (p1 +M (p3 *M p)) - p.
        assert sport is minus(plus_m(P1, times_m(P3, P)), P)
        bicycles = naive.annotation_of("products", ("Kids mnt bike", "Bicycles", 120))
        assert bicycles is times_m(plus_m(P1, times_m(P3, P)), P)


class TestExample37Equivalence:
    def test_t1_and_t1_prime_yield_equivalent_provenance(self, products_db, products_namer):
        t1, t1_prime, _t2 = paper_transactions(products_db)
        e1 = Engine(products_db, policy="normal_form", annotate=products_namer).apply(t1)
        e2 = Engine(products_db, policy="normal_form", annotate=products_namer).apply(t1_prime)
        rows = {row for row, _, _ in e1.provenance("products")} | {
            row for row, _, _ in e2.provenance("products")
        }
        for row in rows:
            a1 = e1.annotation_of("products", row)
            a2 = e2.annotation_of("products", row)
            assert equivalent_boolean(a1, a2), (row, str(a1), str(a2))

    def test_example_3_7_specific_annotations(self, products_db, products_namer):
        _t1, t1_prime, _t2 = paper_transactions(products_db)
        engine = Engine(products_db, policy="normal_form", annotate=products_namer)
        engine.apply(t1_prime)
        assert engine.annotation_of("products", ("Kids mnt bike", "Kids", 120)) is minus(P3, P)
        assert engine.annotation_of("products", ("Kids mnt bike", "Sport", 120)) is minus(P1, P)
        bicycles = engine.annotation_of("products", ("Kids mnt bike", "Bicycles", 120))
        # (0 +M (p3 *M p)) +M (p1 *M p) == 0 +M ((p1 + p3) *M p) by axiom 3.
        assert equivalent_boolean(bicycles, times_m(ssum([P1, P3]), P))


class TestExample38Figure4:
    def test_sequence_t1_t2(self, engine, products_db):
        t1, _t1p, t2 = paper_transactions(products_db)
        engine.apply(t1).apply(t2)
        # Figure 4 row 1: 0 +M (((p1 +M (p3 *M p)) - p) *M p'), which the
        # normal form + zero axioms render as (p1 - p) *M p' (Example 3.9).
        sport50 = engine.annotation_of("products", ("Kids mnt bike", "Sport", 50))
        assert sport50 is times_m(minus(P1, P), PP)
        figure_4_form = plus_m(ZERO, times_m(minus(plus_m(P1, times_m(P3, P)), P), PP))
        assert equivalent_boolean(sport50, figure_4_form)
        # Figure 4 row 2: 0 +M (p2 *M p').
        racket50 = engine.annotation_of("products", ("Tennis Racket", "Sport", 50))
        assert racket50 is times_m(P2, PP)

    def test_ghost_row_is_not_live(self, engine, products_db):
        """(Kids mnt bike, Sport, 50) exists in the annotated database but
        evaluates to absent: its source was a tombstone."""
        t1, _t1p, t2 = paper_transactions(products_db)
        engine.apply(t1).apply(t2)
        assert ("Kids mnt bike", "Sport", 50) not in engine.live_rows("products")
        expr = engine.annotation_of("products", ("Kids mnt bike", "Sport", 50))
        s = BooleanStructure()
        assert evaluate(expr, s, lambda _name: True) is False

    def test_example_3_9_sequences_equivalent(self, products_db, products_namer):
        t1, t1_prime, t2 = paper_transactions(products_db)
        e1 = Engine(products_db, policy="normal_form", annotate=products_namer)
        e1.apply(t1).apply(t2)
        e2 = Engine(products_db, policy="normal_form", annotate=products_namer)
        e2.apply(t1_prime).apply(t2)
        rows = {row for row, _, _ in e1.provenance("products")} | {
            row for row, _, _ in e2.provenance("products")
        }
        for row in rows:
            assert equivalent_boolean(
                e1.annotation_of("products", row), e2.annotation_of("products", row)
            ), row


class TestSection4Valuations:
    def test_example_4_3_deletion_propagation(self, engine, products_db):
        t1, _t1p, t2 = paper_transactions(products_db)
        engine.apply(t1).apply(t2)
        expr = engine.annotation_of("products", ("Tennis Racket", "Sport", 50))
        s = BooleanStructure()
        # Deleting the racket (p2 := False) removes the updated row too.
        env = lambda name: name != "p2"  # noqa: E731
        assert evaluate(expr, s, env) is False

    def test_example_4_4_abortion(self, engine, products_db):
        t1, _t1p, t2 = paper_transactions(products_db)
        engine.apply(t1).apply(t2)
        expr = engine.annotation_of("products", ("Kids mnt bike", "Sport", 50))
        s = BooleanStructure()
        # Aborting T1 (p := False): the bike stayed in Sport, so T2 did
        # update it to $50 — the tuple appears.
        env = lambda name: name != "p"  # noqa: E731
        assert evaluate(expr, s, env) is True
