"""The indexed annotation store: row slots, column indexes, planner, executors."""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.db.schema import Relation, Schema
from repro.engine.engine import Engine, make_executor
from repro.errors import EngineError
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Insert, Modify, Transaction
from repro.store import (
    AnnotationStore,
    ColumnIndex,
    PlannerStats,
    RelationStore,
    RowStore,
    compile_plan,
)


class TestRowStore:
    def test_ids_are_stable_and_ascending(self):
        rows = RowStore()
        assert [rows.add((i,)) for i in range(3)] == [0, 1, 2]
        rows.free(1)
        assert rows.add((9,)) == 3  # freed slots are never reused
        assert [rid for rid, _row in rows.items()] == [0, 2, 3]

    def test_tombstone_stays_in_support(self):
        rows = RowStore()
        rid = rows.add(("a",), ann="x", live=True)
        rows.set_live(rid, False)
        assert len(rows) == 1
        assert rows.live_count() == 0
        assert rows.live_rows() == set()
        assert rows.annotation(rid) == "x"

    def test_free_leaves_support(self):
        rows = RowStore()
        rid = rows.add(("a",))
        rows.free(rid)
        assert len(rows) == 0
        assert ("a",) not in rows
        with pytest.raises(ValueError):
            rows.row(rid)
        with pytest.raises(ValueError):
            rows.free(rid)

    def test_duplicate_row_rejected(self):
        rows = RowStore()
        rows.add(("a",))
        with pytest.raises(ValueError):
            rows.add(("a",))

    def test_refree_after_readd(self):
        rows = RowStore()
        rows.free(rows.add(("a",)))
        rid = rows.add(("a",))
        assert rows.rid_of(("a",)) == rid == 1


class TestColumnIndex:
    def test_add_lookup_remove(self):
        index = ColumnIndex()
        index.add(0, "v")
        index.add(1, "v")
        index.add(2, "w")
        assert index.candidates("v") == {0, 1}
        index.remove(1, "v")
        assert index.candidates("v") == {0}
        assert index.candidates("missing") == frozenset()

    def test_unhashable_values_go_residual(self):
        index = ColumnIndex()
        index.add(0, [1, 2])  # unhashable row value
        index.add(1, "v")
        # Residual rows are candidates for every lookup (the pattern
        # predicate filters them), so matching stays exact.
        assert index.candidates("v") == {0, 1}
        index.remove(0, [1, 2])
        assert index.candidates("v") == {1}

    def test_unhashable_lookup_key_is_unusable(self):
        index = ColumnIndex()
        index.add(0, "v")
        assert index.candidates([1, 2]) is None


class TestPlanner:
    def test_equalities_compile_to_index_positions(self):
        plan = compile_plan(Pattern(3, eq={0: "a", 2: 7}))
        assert not plan.is_scan
        assert set(plan.positions) == {0, 2}

    def test_no_equalities_fall_back_to_scan(self):
        assert compile_plan(Pattern(2)).is_scan
        assert compile_plan(Pattern(2, neq={0: {"a"}})).is_scan

    def test_unhashable_constants_are_not_index_keys(self):
        plan = compile_plan(Pattern(2, eq={0: [1, 2], 1: "b"}))
        assert plan.positions == (1,)
        assert compile_plan(Pattern(1, eq={0: [1, 2]})).is_scan


def relation_store(rows, use_indexes=True):
    store = RelationStore(
        Relation("R", ["a", "b"]), PlannerStats(), use_indexes=use_indexes
    )
    for row in rows:
        store.add(row)
    return store


class TestRelationStoreMatching:
    ROWS = [(i, i % 3) for i in range(9)]

    @pytest.mark.parametrize(
        "pattern",
        [
            Pattern(2, eq={1: 0}),
            Pattern(2, eq={0: 4, 1: 1}),
            Pattern(2, eq={0: 100}),
            Pattern(2, neq={1: {2}}),
            Pattern(2),
            Pattern(2, eq={1: 1}, neq={0: {1, 4}}),
        ],
    )
    def test_indexed_equals_scan(self, pattern):
        indexed = relation_store(self.ROWS)
        scanned = relation_store(self.ROWS, use_indexes=False)
        assert indexed.matching(pattern) == scanned.matching(pattern)

    def test_matches_are_in_insertion_order(self):
        store = relation_store(self.ROWS)
        matched = store.matching(Pattern(2, eq={1: 0}))
        assert matched == [(0, (0, 0)), (3, (3, 0)), (6, (6, 0))]

    def test_planner_stats_count_decisions(self):
        store = relation_store(self.ROWS)
        store.matching(Pattern(2, eq={1: 0}))
        store.matching(Pattern(2))  # no equality: fallback
        assert store._stats.index_hits == 1
        assert store._stats.fallback_scans == 1
        assert store._stats.rows_examined == 3

    def test_disabled_indexes_always_scan(self):
        store = relation_store(self.ROWS, use_indexes=False)
        store.matching(Pattern(2, eq={1: 0}))
        assert store._stats.index_hits == 0
        assert store._stats.fallback_scans == 1

    def test_index_maintained_across_add_and_free(self):
        store = relation_store(self.ROWS)
        store.add((100, 0))
        rid = store.rows.rid_of((3, 0))
        store.free(rid)
        matched = [row for _rid, row in store.matching(Pattern(2, eq={1: 0}))]
        assert matched == [(0, 0), (6, 0), (100, 0)]


class TestAnnotationStore:
    def test_unknown_relation(self):
        store = AnnotationStore(Schema([Relation("R", ["a"])]))
        with pytest.raises(EngineError, match="unknown relation"):
            store.relation("S")

    def test_use_indexes_toggle_propagates(self):
        store = AnnotationStore(Schema([Relation("R", ["a"]), Relation("S", ["a"])]))
        assert store.use_indexes
        store.use_indexes = False
        assert not store.relation("R").use_indexes
        assert not store.relation("S").use_indexes


ALL_POLICIES = ["none", "naive", "normal_form", "normal_form_batch"]


class TestExecutorsShareTheStore:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_every_executor_sits_on_the_store(self, policy):
        database = Database.from_rows("R", ["a", "b"], [(1, 2)])
        executor = make_executor(database, policy)
        assert isinstance(executor.store, AnnotationStore)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_cross_policy_live_rows_agree_on_mixed_workload(self, policy):
        """Acceptance: all policies agree on a mixed workload via the store."""
        from repro.workloads.synthetic import (
            SyntheticConfig,
            synthetic_database,
            synthetic_log,
        )

        config = SyntheticConfig(
            n_tuples=300, n_queries=80, n_groups=8, group_size=5, seed=21
        )
        database = synthetic_database(config)
        log = synthetic_log(config)
        vanilla = Engine(database, policy="none").apply(log)
        other = Engine(database, policy=policy).apply(log)
        assert other.result().same_contents(vanilla.result())

    def test_tombstones_match_but_stay_dead(self):
        database = Database.from_rows("R", ["a"], [("a",)])
        engine = Engine(database, policy="normal_form")
        engine.apply(Transaction("p", [Delete("R", Pattern(1, eq={0: "a"}))]))
        engine.apply(Transaction("q", [Modify("R", Pattern(1, eq={0: "a"}), {0: "z"})]))
        # The tombstone was found through the index and modified onto a ghost.
        assert engine.support_count() == 2
        assert engine.live_rows("R") == set()
        assert engine.stats.index_hits == 2

    def test_vanilla_physically_frees_rows(self):
        database = Database.from_rows("R", ["a"], [("a",), ("b",)])
        executor = make_executor(database, "none")
        executor.apply(Delete("R", Pattern(1, eq={0: "a"})))
        assert len(executor.store.relation("R").rows) == 1
        # The freed row no longer appears through the index either.
        assert executor.store.relation("R").matching(Pattern(1, eq={0: "a"})) == []

    def test_insert_lands_in_the_index(self):
        database = Database.from_rows("R", ["a", "b"], [])
        executor = make_executor(database, "naive")
        executor.apply(Insert("R", (1, 2), annotation="p"))
        assert executor.store.relation("R").matching(Pattern(2, eq={1: 2})) == [
            (0, (1, 2))
        ]

    def test_vanilla_churn_compacts_freed_slots(self):
        """Insert+delete cycles must not grow the slot lists without bound."""
        database = Database.from_rows("R", ["a"], [(i,) for i in range(10)])
        executor = make_executor(database, "none")
        for cycle in range(300):
            executor.apply(Insert("R", (1000 + cycle,)))
            executor.apply(Delete("R", Pattern(1, eq={0: 1000 + cycle})))
        rows = executor.store.relation("R").rows
        assert len(rows) == 10
        assert rows.live_rows() == {(i,) for i in range(10)}
        assert rows.slot_count() < 100  # freed slots were compacted away
        # Indexes were rebuilt consistently with the renumbered ids.
        ((rid, row),) = executor.store.relation("R").matching(Pattern(1, eq={0: 3}))
        assert row == (3,)
        assert rid < rows.slot_count()
