"""Recovery of a whole sharded deployment: bit-identical to full replay."""

from __future__ import annotations

import pytest

from repro.engine.engine import Engine
from repro.errors import StorageError
from repro.shard import (
    ShardedEngine,
    is_sharded_directory,
    recover_sharded,
    shard_directory,
)
from repro.wal.journal import scan_journal
from repro.workloads.synthetic import synthetic_workload

from .util import assert_bit_identical

N_SHARDS = 3


@pytest.fixture(scope="module")
def workload():
    return synthetic_workload(
        n_tuples=300,
        n_queries=80,
        n_groups=6,
        group_size=4,
        queries_per_transaction=5,
        seed=13,
    )


@pytest.mark.parametrize("policy", ["naive", "normal_form_batch"])
def test_recovery_is_bit_identical_to_unsharded_full_replay(tmp_path, workload, policy):
    engine = ShardedEngine(
        workload.database,
        n_shards=N_SHARDS,
        policy=policy,
        shard_keys={"synthetic": "grp"},
        journal_dir=tmp_path,
        checkpoint_every=30,
    )
    engine.apply(workload.log)
    # Crash: close without the final checkpoint, leaving journal tails.
    engine.close(checkpoint=False)
    assert is_sharded_directory(tmp_path)
    assert any(
        scan_journal(shard_directory(tmp_path, shard) / "journal.log").records
        for shard in range(N_SHARDS)
    )

    recovered = recover_sharded(tmp_path)
    assert recovered.recovery.tail_records > 0
    assert recovered.recovery.n_shards == N_SHARDS
    unsharded = Engine(workload.database, policy=policy).apply(workload.log)
    assert_bit_identical(unsharded, recovered, workload.schema)
    # What-if valuations survive: initial-tuple names come back from the
    # shard checkpoints.
    assert recovered.tuple_var_names() == unsharded.tuple_var_names()
    recovered.close()


@pytest.mark.parametrize("policy", ["naive", "normal_form_batch"])
def test_recovered_deployment_keeps_applying(tmp_path, workload, policy):
    """Crash mid-history, recover, apply the rest: still bit-identical."""
    half = len(workload.log.items) // 2
    engine = ShardedEngine(
        workload.database,
        n_shards=N_SHARDS,
        policy=policy,
        shard_keys={"synthetic": "grp"},
        journal_dir=tmp_path,
        checkpoint_every=25,
    )
    engine.apply(workload.log.items[:half])
    engine.close(checkpoint=False)

    recovered = recover_sharded(tmp_path)
    recovered.apply(workload.log.items[half:])
    unsharded = Engine(workload.database, policy=policy).apply(workload.log)
    assert_bit_identical(unsharded, recovered, workload.schema)
    # Summed planner counters continue across the crash: the recovered
    # lifetime totals equal an uncrashed run's.
    assert recovered.stats.index_hits == unsharded.stats.index_hits
    assert recovered.stats.rows_matched == unsharded.stats.rows_matched
    recovered.close()


def test_parallel_recovery_matches_sequential(tmp_path, workload):
    engine = ShardedEngine(
        workload.database,
        n_shards=N_SHARDS,
        policy="normal_form_batch",
        shard_keys={"synthetic": "grp"},
        journal_dir=tmp_path,
        checkpoint_every=30,
        parallel=True,
    )
    engine.apply(workload.log)
    engine.close(checkpoint=False)

    with recover_sharded(tmp_path, parallel=True) as recovered:
        unsharded = Engine(workload.database, policy="normal_form_batch")
        unsharded.apply(workload.log)
        assert_bit_identical(unsharded, recovered, workload.schema)
        assert recovered.recovery.tail_records > 0


def test_coordinated_checkpoint_truncates_every_tail(tmp_path, workload):
    engine = ShardedEngine(
        workload.database,
        n_shards=N_SHARDS,
        policy="naive",
        shard_keys={"synthetic": "grp"},
        journal_dir=tmp_path,
        checkpoint_every=10_000,  # never due on its own
    )
    engine.apply(workload.log)
    assert engine.checkpoint() == N_SHARDS
    engine.close(checkpoint=False)
    for shard in range(N_SHARDS):
        assert not scan_journal(shard_directory(tmp_path, shard) / "journal.log").records

    recovered = recover_sharded(tmp_path)
    assert recovered.recovery.tail_records == 0
    unsharded = Engine(workload.database, policy="naive").apply(workload.log)
    assert_bit_identical(unsharded, recovered, workload.schema)
    recovered.close()


def test_recover_sharded_refuses_unsharded_directories(tmp_path):
    with pytest.raises(StorageError, match="manifest"):
        recover_sharded(tmp_path / "nothing-here")
    assert not is_sharded_directory(tmp_path)
