"""Pattern → shard-set routing decisions."""

from __future__ import annotations

import pytest

from repro.db.schema import Relation, Schema
from repro.errors import EngineError
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Insert, Modify
from repro.shard.partition import ShardMap
from repro.shard.router import route_query

SCHEMA = Schema([Relation("r", ["k", "g", "v"])])


@pytest.fixture
def shard_map() -> ShardMap:
    return ShardMap(SCHEMA, 4, {"r": "g"})


def test_insert_routes_to_the_rows_home_shard(shard_map):
    route = route_query(Insert("r", (1, "hot", 9), "p"), shard_map)
    assert route == (shard_map.shard_of_value("hot"),)


def test_shard_key_equality_routes_to_one_shard(shard_map):
    query = Delete("r", Pattern(3, eq={1: "hot"}), "p")
    assert route_query(query, shard_map) == (shard_map.shard_of_value("hot"),)
    modify = Modify("r", Pattern(3, eq={1: "hot"}), {2: 0}, "p")
    assert route_query(modify, shard_map) == (shard_map.shard_of_value("hot"),)


def test_everything_else_broadcasts(shard_map):
    broadcast = (0, 1, 2, 3)
    # No constraint on the shard key at all.
    assert route_query(Delete("r", Pattern(3, eq={0: 5}), "p"), shard_map) == broadcast
    assert route_query(Delete("r", Pattern.any(3), "p"), shard_map) == broadcast
    # Disequalities never route (they exclude one bucket's worth at best).
    assert (
        route_query(Delete("r", Pattern(3, neq={1: {"hot"}}), "p"), shard_map)
        == broadcast
    )
    # Unhashable equality constants mirror the planner's scan fallback.
    assert (
        route_query(Delete("r", Pattern(3, eq={1: ["un", "hashable"]}), "p"), shard_map)
        == broadcast
    )


def test_numeric_equality_routes_like_row_placement(shard_map):
    """True == 1 == 1.0: the routed shard must hold rows keyed by any of them."""
    shards = {
        route_query(Delete("r", Pattern(3, eq={1: value}), "p"), shard_map)
        for value in (True, 1, 1.0)
    }
    assert len(shards) == 1
    assert shards.pop() == (shard_map.shard_of_value(1),)


def test_resharding_modification_is_rejected(shard_map):
    with pytest.raises(EngineError, match="re-sharding"):
        route_query(Modify("r", Pattern(3, eq={0: 7}), {1: "elsewhere"}, "p"), shard_map)
    # Assigning the key to the very constant the pattern pins is the
    # canonical identity-modification anchor — images stay home.
    identity = Modify("r", Pattern(3, eq={1: "hot"}), {1: "hot"}, "p")
    assert route_query(identity, shard_map) == (shard_map.shard_of_value("hot"),)
