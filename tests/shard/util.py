"""Shared assertions for the sharded bit-identity suite."""

from __future__ import annotations

from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Modify, Transaction
from repro.workloads.logs import UpdateLog


def assert_bit_identical(unsharded, sharded, schema) -> None:
    """Merged sharded state == unsharded state, annotation objects included."""
    tracks = unsharded.executor.tracks_provenance
    for relation in schema.names:
        a = {row: (expr, live) for row, expr, live in unsharded.provenance(relation)}
        b = {row: (expr, live) for row, expr, live in sharded.provenance(relation)}
        assert a.keys() == b.keys(), relation
        for row, (expr, live) in a.items():
            other_expr, other_live = b[row]
            assert live == other_live, (relation, row)
            if tracks:
                # Identity, not equality: interning makes the same
                # expression the same object, even across worker processes
                # (captures re-intern at the coordinator).
                assert expr is other_expr, (relation, row, expr, other_expr)
    assert sharded.result().same_contents(unsharded.result())


def with_broadcasts(log: UpdateLog, relation, arity: int) -> UpdateLog:
    """The synthetic log plus queries no grp-equality can route.

    Appends a value-column modification (equality off the shard key), a
    disequality-only deletion, and a match-all deletion — all broadcast —
    so mixed streams exercise both router paths.
    """
    v0 = relation.index_of("v0")
    extra = [
        Transaction("bc0", [Modify(relation.name, Pattern(arity, eq={v0: 1}), {v0: 2})]),
        Delete(relation.name, Pattern(arity, neq={v0: {3}}), "bc1"),
        Transaction("bc2", [Delete(relation.name, Pattern.any(arity))]),
    ]
    return UpdateLog(list(log.items) + extra, log.meta)
