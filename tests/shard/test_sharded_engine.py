"""Sequential sharded execution is bit-identical to the unsharded engine."""

from __future__ import annotations

import pytest

from repro.core.expr import ZERO
from repro.engine.engine import Engine
from repro.errors import EngineError
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Modify
from repro.semantics.boolean import BooleanStructure
from repro.shard import ShardedEngine
from repro.workloads.synthetic import synthetic_workload

from .util import assert_bit_identical, with_broadcasts

POLICIES = ["none", "naive", "normal_form", "normal_form_batch"]


@pytest.fixture(scope="module")
def workload():
    return synthetic_workload(
        n_tuples=600,
        n_queries=90,
        n_groups=8,
        group_size=4,
        queries_per_transaction=3,
        seed=11,
    )


def _mixed_log(workload):
    relation = workload.schema.relation("synthetic")
    return with_broadcasts(workload.log, relation, relation.arity)


@pytest.mark.parametrize("policy", POLICIES)
def test_routed_and_broadcast_mix_is_bit_identical(workload, policy):
    log = _mixed_log(workload)
    unsharded = Engine(workload.database, policy=policy).apply(log)
    sharded = ShardedEngine(
        workload.database, n_shards=4, policy=policy, shard_keys={"synthetic": "grp"}
    ).apply(log)
    assert_bit_identical(unsharded, sharded, workload.schema)
    # Merged measurements agree with the unsharded engine exactly.
    assert sharded.support_count() == unsharded.support_count()
    assert sharded.live_count() == unsharded.live_count()
    assert sharded.provenance_size() == unsharded.provenance_size()
    assert sharded.provenance_dag_size() == unsharded.provenance_dag_size()


@pytest.mark.parametrize("policy", ["naive", "normal_form_batch"])
def test_apply_batch_is_bit_identical(workload, policy):
    log = _mixed_log(workload)
    unsharded = Engine(workload.database, policy=policy).apply_batch(log)
    sharded = ShardedEngine(
        workload.database, n_shards=4, policy=policy, shard_keys={"synthetic": "grp"}
    ).apply_batch(log)
    assert_bit_identical(unsharded, sharded, workload.schema)
    assert sharded.stats.batches > 0


def test_merged_stats_contract(workload):
    log = workload.log  # fully routable: every selection is a grp equality
    unsharded = Engine(workload.database, policy="naive").apply(log)
    sharded = ShardedEngine(
        workload.database, n_shards=4, policy="naive", shard_keys={"synthetic": "grp"}
    ).apply(log)
    merged, base = sharded.stats, unsharded.stats
    # Logical stream counters count each query once, broadcasts included.
    for key in ("queries", "inserts", "deletes", "modifies", "transactions"):
        assert getattr(merged, key) == getattr(base, key), key
    assert len(merged.per_query_time) == merged.queries
    # Additive work counters are summed over shards; on a fully routed
    # workload exactly one shard matched per query, so they equal the
    # unsharded totals to the unit.
    assert merged.rows_matched == base.rows_matched
    assert merged.rows_created == base.rows_created
    assert merged.index_hits == base.index_hits
    assert merged.fallback_scans == base.fallback_scans
    assert merged.index_rows_examined == base.index_rows_examined
    # Per-shard snapshots are exposed raw, and sum to the merged totals.
    per_shard = sharded.shard_stats()
    assert len(per_shard) == 4
    assert sum(s["index_hits"] for s in per_shard) == merged.index_hits


def test_broadcasts_count_every_shards_matching_work(workload):
    relation = workload.schema.relation("synthetic")
    broadcast = Delete(relation.name, Pattern.any(relation.arity), "bc")
    unsharded = Engine(workload.database, policy="naive").apply(broadcast)
    sharded = ShardedEngine(
        workload.database, n_shards=4, policy="naive", shard_keys={"synthetic": "grp"}
    ).apply(broadcast)
    assert sharded.stats.queries == unsharded.stats.queries == 1
    # Each shard linear-scanned its own partition: 4 scans vs 1, but the
    # same total row count matched.
    assert sharded.stats.fallback_scans == 4
    assert unsharded.stats.fallback_scans == 1
    assert sharded.stats.rows_matched == unsharded.stats.rows_matched


def test_tuple_vars_and_annotation_probes_match(workload):
    log = workload.log
    unsharded = Engine(workload.database, policy="naive").apply(log)
    sharded = ShardedEngine(
        workload.database, n_shards=4, policy="naive", shard_keys={"synthetic": "grp"}
    ).apply(log)
    assert sharded.tuple_var_names() == unsharded.tuple_var_names()
    sample = sorted(workload.database.rows("synthetic"), key=repr)[:20]
    for row in sample:
        assert sharded.tuple_var("synthetic", row) == unsharded.tuple_var(
            "synthetic", row
        )
        assert sharded.annotation_of("synthetic", row) is unsharded.annotation_of(
            "synthetic", row
        )
    missing = (-99, "nope", 0, 0, 0)
    assert sharded.annotation_of("synthetic", missing) is ZERO


def test_specialization_matches(workload):
    log = workload.log
    unsharded = Engine(workload.database, policy="naive").apply(log)
    sharded = ShardedEngine(
        workload.database, n_shards=3, policy="naive", shard_keys={"synthetic": "grp"}
    ).apply(log)
    structure = BooleanStructure()
    dropped = next(iter(unsharded.tuple_var_names()))
    env = lambda name: name != dropped  # noqa: E731
    assert sharded.specialize(structure, env) == unsharded.specialize(structure, env)
    assert sharded.specialized_database(structure, env).same_contents(
        unsharded.specialized_database(structure, env)
    )


def test_sharded_engine_guards():
    workload = synthetic_workload(n_tuples=50, n_queries=0, n_groups=5, group_size=2)
    with pytest.raises(EngineError, match="cannot be sharded"):
        ShardedEngine(workload.database, policy="mv_tree")
    engine = ShardedEngine(workload.database, n_shards=2)
    with pytest.raises(EngineError, match="cannot apply"):
        engine.apply("oops")
    with pytest.raises(EngineError, match="cannot apply"):
        engine.apply_batch(b"oops")
    with pytest.raises(EngineError, match="not journaled"):
        engine.checkpoint()
    with pytest.raises(EngineError, match="does not track provenance"):
        ShardedEngine(workload.database, n_shards=2, policy="none").specialize(
            BooleanStructure(), lambda _: True
        )
    relation = workload.schema.relation("synthetic")
    resharding = Modify(
        relation.name, Pattern(relation.arity, eq={1: 3}), {0: 123}, "p"
    )
    with pytest.raises(EngineError, match="re-sharding"):
        # default shard key is position 0 ("id"), which this assigns
        engine.apply(resharding)


def test_overhead_report_surface(workload):
    baseline = Engine(workload.database, policy="none").apply(workload.log)
    sharded = ShardedEngine(
        workload.database, n_shards=3, policy="naive", shard_keys={"synthetic": "grp"}
    ).apply(workload.log)
    report = sharded.overhead_report(baseline)
    assert report["policy"] == "naive"
    assert report["support_rows"] == sharded.support_count()
    assert report["row_overhead"] is not None
