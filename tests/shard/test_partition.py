"""Stable hashing and database partitioning."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.db.database import Database
from repro.db.schema import Relation, Schema
from repro.errors import EngineError
from repro.shard.partition import ShardMap, partition_database, stable_hash

from ..conftest import subprocess_env


def test_stable_hash_consistent_with_equality_across_numeric_types():
    """Pattern matching compares with ==, so equal values must co-locate."""
    from decimal import Decimal
    from fractions import Fraction

    assert stable_hash(True) == stable_hash(1) == stable_hash(1.0)
    assert stable_hash(False) == stable_hash(0) == stable_hash(0.0)
    assert stable_hash(7) != stable_hash(8)
    # Every numbers.Number spelling of one value co-locates, not just the
    # builtin trio — Decimal(1) == 1 must not slip into the repr fallback.
    assert stable_hash(Decimal(1)) == stable_hash(1) == stable_hash(Fraction(1))
    assert stable_hash(Decimal("2.5")) == stable_hash(2.5)
    # NaNs (id-hashed by the builtin since 3.10) pin deterministically.
    assert stable_hash(float("nan")) == stable_hash(float("nan")) == 1


def test_non_routable_equalities_broadcast_but_rows_still_match():
    """Decimal-keyed rows and int equalities: == across the repr fallback.

    Regression for the reviewed routing bug: Decimal(1) == 1, so a delete
    pinning the shard key to int 1 must reach a Decimal(1)-keyed row.
    Both spellings now hash through the numeric branch; the engine-level
    assertion is that sharded results match unsharded ones.
    """
    from decimal import Decimal

    from repro.engine.engine import Engine
    from repro.queries.pattern import Pattern
    from repro.queries.updates import Delete, Insert
    from repro.shard import ShardedEngine

    schema = Schema([Relation("r", ["k", "v"])])
    stream = [
        Insert("r", (Decimal(1), "a"), "p"),
        Insert("r", (1.0, "b"), "p"),
        Delete("r", Pattern(2, eq={0: 1}), "q"),
    ]
    unsharded = Engine(Database(schema), policy="naive").apply(stream)
    sharded = ShardedEngine(Database(schema), n_shards=4, policy="naive").apply(stream)
    assert sharded.live_rows("r") == unsharded.live_rows("r") == set()
    assert sharded.support_count() == unsharded.support_count() == 2


def test_stable_hash_is_deterministic_across_interpreters():
    """str hashing is PYTHONHASHSEED-randomized; stable_hash must not be."""
    values = ["warehouse-3", "", "日本", 17, -1, 2.5, None, True, b"\x00ab"]
    script = (
        "from repro.shard.partition import stable_hash\n"
        f"print([stable_hash(v) for v in {values!r}])\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        env=subprocess_env(),
        capture_output=True,
        text=True,
        check=True,
    )
    assert eval(out.stdout.strip()) == [stable_hash(v) for v in values]


def test_stable_hash_handles_unhashable_values():
    assert stable_hash([1, 2]) == stable_hash([1, 2])
    assert isinstance(stable_hash([1, 2]), int)


def _schema() -> Schema:
    return Schema([Relation("r", ["k", "g", "v"]), Relation("s", ["a", "b"])])


def test_shard_map_resolves_names_and_positions():
    shard_map = ShardMap(_schema(), 4, {"r": "g", "s": 1})
    assert shard_map.key_position("r") == 1
    assert shard_map.key_position("s") == 1
    # Default key is position 0.
    assert ShardMap(_schema(), 4).key_position("r") == 0


def test_shard_map_rejects_bad_configuration():
    with pytest.raises(EngineError):
        ShardMap(_schema(), 0)
    with pytest.raises(EngineError):
        ShardMap(_schema(), 4, {"r": 9})
    with pytest.raises(EngineError):
        ShardMap(_schema(), 4, {"nope": 0})
    with pytest.raises(EngineError):
        ShardMap(_schema(), 4).key_position("nope")


def test_partition_database_is_a_disjoint_cover():
    schema = _schema()
    db = Database(schema)
    db.extend("r", [(i, f"g{i % 5}", i * 2) for i in range(40)])
    db.extend("s", [(f"a{i}", i) for i in range(10)])
    shard_map = ShardMap(schema, 3, {"r": "g"})
    parts = partition_database(db, shard_map)
    assert len(parts) == 3
    for name in ("r", "s"):
        rebuilt: list = []
        for part in parts:
            rows = part.rows(name)
            assert not set(rebuilt) & rows  # disjoint
            rebuilt.extend(rows)
            for row in rows:  # every row is in its home shard
                assert shard_map.shard_of_row(name, row) == parts.index(part)
        assert set(rebuilt) == db.rows(name)  # full cover
