"""The process-pool backend: bit-identity through the wire codec.

Workloads stay small — every test here pays worker start-up and capture
round-trips; the semantics they exercise (routing, transaction hooks,
flush points) are identical to the sequential backend's by construction,
so the load-bearing assertion is that the *codec path* (events out,
re-interned exprjson captures back) loses nothing.
"""

from __future__ import annotations

import pytest

from repro.engine.engine import Engine
from repro.errors import EngineError
from repro.queries.updates import Insert
from repro.shard import ShardedEngine
from repro.workloads.synthetic import synthetic_workload

from .util import assert_bit_identical, with_broadcasts


@pytest.fixture(scope="module")
def workload():
    return synthetic_workload(
        n_tuples=300,
        n_queries=60,
        n_groups=6,
        group_size=4,
        queries_per_transaction=3,
        seed=7,
    )


@pytest.mark.parametrize("policy", ["naive", "normal_form_batch"])
def test_parallel_mix_is_bit_identical(workload, policy):
    relation = workload.schema.relation("synthetic")
    log = with_broadcasts(workload.log, relation, relation.arity)
    unsharded = Engine(workload.database, policy=policy).apply(log)
    with ShardedEngine(
        workload.database,
        n_shards=3,
        policy=policy,
        shard_keys={"synthetic": "grp"},
        parallel=True,
    ) as sharded:
        sharded.apply(log)
        # Captures decode through the smart constructors, so annotation
        # objects are identical to the unsharded engine's *in this
        # process* even though the workers built them elsewhere.
        assert_bit_identical(unsharded, sharded, workload.schema)
        assert sharded.stats.rows_matched == unsharded.stats.rows_matched
        assert sharded.provenance_dag_size() == unsharded.provenance_dag_size()


def test_parallel_apply_batch_and_interleaved_observation(workload):
    unsharded = Engine(workload.database, policy="naive")
    with ShardedEngine(
        workload.database,
        n_shards=3,
        policy="naive",
        shard_keys={"synthetic": "grp"},
        parallel=True,
    ) as sharded:
        half = len(workload.log.items) // 2
        unsharded.apply_batch(workload.log.items[:half])
        sharded.apply_batch(workload.log.items[:half])
        # Observation mid-stream drains the pending buffers.
        assert sharded.support_count() == unsharded.support_count()
        unsharded.apply_batch(workload.log.items[half:])
        sharded.apply_batch(workload.log.items[half:])
        assert_bit_identical(unsharded, sharded, workload.schema)


def test_worker_errors_surface_as_engine_errors(workload):
    with ShardedEngine(
        workload.database, n_shards=2, policy="naive", shard_keys={"synthetic": "grp"},
        parallel=True,
    ) as sharded:
        with pytest.raises(EngineError, match="shard worker"):
            # Wrong arity: the worker's executor rejects it during apply
            # and the failure crosses the pipe as a structured error.
            sharded.apply(Insert("synthetic", (1, 2), "p"))
            sharded.support_count()  # force the drain if buffered


def test_closed_pool_refuses_further_work(workload):
    sharded = ShardedEngine(
        workload.database, n_shards=2, policy="naive", shard_keys={"synthetic": "grp"},
        parallel=True,
    )
    sharded.close()
    with pytest.raises(EngineError, match="closed"):
        sharded.apply(workload.log.items[0])
        sharded.support_count()
