"""Proposition 3.5: set-equivalent transactions yield equivalent provenance.

The headline property of the paper.  We test both directions:

* soundness of the provenance semantics: every KV rewrite (which preserves
  set equivalence) yields UP[X]-equivalent provenance on random databases,
  under both the naive and the normal-form policies;
* the contrapositive: transactions with *different* set semantics yield
  provenance that distinguishes them on some database.
"""

import random

import pytest

from repro.db.schema import Relation
from repro.kv.equivalence import (
    provenance_equivalent,
    provenance_equivalent_randomized,
    random_database_for,
    set_equivalent,
)
from repro.kv.generator import equivalent_pair, exhaustive_variants, random_transaction
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Insert, Modify, Transaction

REL = Relation("R", ["a", "b"])


@pytest.mark.parametrize("policy", ["naive", "normal_form"])
@pytest.mark.parametrize("seed", range(8))
def test_kv_rewrites_preserve_provenance(policy, seed):
    rng = random.Random(seed)
    t1, t2, trail = equivalent_pair(REL, rng, length=5, domain=(0, 1, 2), steps=3)
    if not trail:
        pytest.skip("no rewrite applied for this seed")
    assert provenance_equivalent_randomized(t1, t2, rng, trials=3, policy=policy), trail


@pytest.mark.parametrize("seed", range(4))
def test_exhaustive_variants_all_provenance_equivalent(seed):
    rng = random.Random(100 + seed)
    t = random_transaction(REL, rng, length=4, domain=(0, 1))
    variants = exhaustive_variants(t, max_depth=2, limit=12)
    db = random_database_for([t], rng, rows_per_relation=6)
    for variant in variants:
        assert provenance_equivalent(t, variant, db), (
            list(t.queries),
            list(variant.queries),
        )


def test_example_3_3_mod_delete_vs_delete_delete():
    """The paper's derivation example, checked end to end."""
    t1 = Transaction(
        "p",
        [
            Modify("R", Pattern(2, eq={0: 1}), {0: 2}),
            Delete("R", Pattern(2, eq={0: 2})),
        ],
    )
    t2 = Transaction(
        "p",
        [
            Delete("R", Pattern(2, eq={0: 1})),
            Delete("R", Pattern(2, eq={0: 2})),
        ],
    )
    rng = random.Random(0)
    assert set_equivalent(t1, t2, rng)
    assert provenance_equivalent_randomized(t1, t2, rng, trials=5)


def test_figure_2_t1_vs_t1_prime_on_arbitrary_databases():
    """T1 ≡ T1' (Example 3.7) on random databases, not just Figure 1."""
    rel = Relation("products", ["product", "category", "price"])
    bike = "Kids mnt bike"
    t1 = Transaction(
        "p",
        [
            Modify("products", Pattern(3, eq={0: bike, 1: "Kids"}), {1: "Sport"}),
            Modify("products", Pattern(3, eq={0: bike, 1: "Sport"}), {1: "Bicycles"}),
        ],
    )
    t1_prime = Transaction(
        "p",
        [
            Modify("products", Pattern(3, eq={0: bike, 1: "Kids"}), {1: "Bicycles"}),
            Modify("products", Pattern(3, eq={0: bike, 1: "Sport"}), {1: "Bicycles"}),
        ],
    )
    rng = random.Random(1)
    assert provenance_equivalent_randomized(t1, t1_prime, rng, trials=5)


def test_inequivalent_transactions_yield_inequivalent_provenance():
    """The 'only if' direction: UP[X]-equivalence implies set-equivalence,
    so set-inequivalent transactions must be distinguished."""
    t1 = Transaction("p", [Delete("R", Pattern(2, eq={0: 1}))])
    t2 = Transaction("p", [Delete("R", Pattern(2, eq={0: 2}))])
    rng = random.Random(2)
    found_difference = False
    for _ in range(10):
        db = random_database_for([t1, t2], rng, rows_per_relation=6)
        if not provenance_equivalent(t1, t2, db):
            found_difference = True
            break
    assert found_difference


def test_ordering_matters_when_not_independent():
    """del(a=1); mod(a=2 -> a=1) is not equivalent to the reverse order."""
    d = Delete("R", Pattern(2, eq={0: 1}))
    m = Modify("R", Pattern(2, eq={0: 2}), {0: 1})
    t1 = Transaction("p", [d, m])
    t2 = Transaction("p", [m, d])
    rng = random.Random(3)
    assert not set_equivalent(t1, t2, rng)
    db = random_database_for([t1, t2], rng, rows_per_relation=6)
    # provenance must also distinguish them on some database
    found = not provenance_equivalent(t1, t2, db)
    for _ in range(9):
        if found:
            break
        db = random_database_for([t1, t2], rng, rows_per_relation=6)
        found = not provenance_equivalent(t1, t2, db)
    assert found


def test_annotation_mismatch_rejected():
    t1 = Transaction("p", [Insert("R", (1, 2))])
    t2 = Transaction("q", [Insert("R", (1, 2))])
    with pytest.raises(ValueError):
        provenance_equivalent(t1, t2, random_database_for([t1, t2], random.Random(0)))
