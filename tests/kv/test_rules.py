"""Karabeg-Vianu transaction rewrites: applicability and set-equivalence."""

import random

import pytest

from repro.db.schema import Relation
from repro.kv.equivalence import find_set_difference_witness, set_equivalent
from repro.kv.generator import random_transaction
from repro.kv.rules import (
    ALL_KV_RULES,
    CommuteIndependent,
    DeleteIdempotent,
    DeleteThenModify,
    IdentityModElimination,
    InsertIdempotent,
    InsertThenDelete,
    InsertThenModify,
    ModThenDelete,
    ModThenModCompose,
    applicable_rewrites,
    rewrite_transaction,
)
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Insert, Modify, Transaction

REL = Relation("R", ["a", "b"])


def txn(*queries):
    return Transaction("p", list(queries))


class TestIndividualRules:
    def test_mod_then_delete_example_3_3(self):
        """mod(u1->u2); del(u2) == del(u1); del(u2)."""
        mod = Modify("R", Pattern(2, eq={0: 1}), {0: 2})
        delete = Delete("R", Pattern(2, eq={0: 2}))
        out = ModThenDelete().rewrite([mod, delete])
        assert out == [[Delete("R", Pattern(2, eq={0: 1})), delete]]

    def test_mod_then_delete_requires_image_subsumption(self):
        mod = Modify("R", Pattern(2, eq={0: 1}), {0: 2})
        delete = Delete("R", Pattern(2, eq={0: 3}))
        assert ModThenDelete().rewrite([mod, delete]) is None

    def test_delete_idempotent(self):
        d = Delete("R", Pattern(2, eq={0: 1}))
        assert DeleteIdempotent().rewrite([d, d]) == [[d]]

    def test_insert_idempotent(self):
        i = Insert("R", (1, 2))
        assert InsertIdempotent().rewrite([i, i]) == [[i]]

    def test_insert_then_delete(self):
        i = Insert("R", (1, 2))
        d = Delete("R", Pattern(2, eq={0: 1}))
        assert InsertThenDelete().rewrite([i, d]) == [[d]]
        d2 = Delete("R", Pattern(2, eq={0: 9}))
        assert InsertThenDelete().rewrite([i, d2]) is None

    def test_insert_then_modify_sweeps_insert_along(self):
        i = Insert("R", (1, 2))
        m = Modify("R", Pattern(2, eq={0: 1}), {0: 5})
        out = InsertThenModify().rewrite([i, m])
        assert out == [[m, Insert("R", (5, 2))]]

    def test_delete_then_modify_starves_the_modification(self):
        d = Delete("R", Pattern(2, eq={0: 1}))
        m = Modify("R", Pattern(2, eq={0: 1, 1: 2}), {0: 5})
        assert DeleteThenModify().rewrite([d, m]) == [[d]]

    def test_mod_then_mod_composes(self):
        m1 = Modify("R", Pattern(2, eq={0: 1}), {0: 2})
        m2 = Modify("R", Pattern(2, eq={0: 2}), {1: 7})
        out = ModThenModCompose().rewrite([m1, m2])
        assert out is not None
        composed = out[0][0]
        assert composed.assignments == {0: 2, 1: 7}

    def test_identity_mod_eliminated(self):
        m = Modify("R", Pattern(2, eq={0: 1}), {0: 1})
        assert IdentityModElimination().rewrite([m]) == [[]]

    def test_commute_different_relations(self):
        i = Insert("R", (1, 2))
        d = Delete("S", Pattern(1))
        assert CommuteIndependent().rewrite([i, d]) == [[d, i]]

    def test_commute_disjoint_hyperplanes(self):
        m1 = Modify("R", Pattern(2, eq={0: 1}), {1: 5})
        m2 = Modify("R", Pattern(2, eq={0: 2}), {1: 6})
        assert CommuteIndependent().rewrite([m1, m2]) is not None

    def test_no_commute_when_overlapping(self):
        m1 = Modify("R", Pattern(2, eq={0: 1}), {0: 2})
        m2 = Modify("R", Pattern(2, eq={0: 2}), {0: 3})
        assert CommuteIndependent().rewrite([m1, m2]) is None


class TestRewriteMachinery:
    def test_applicable_rewrites_finds_positions(self):
        d = Delete("R", Pattern(2, eq={0: 1}))
        t = txn(d, d, d)
        options = applicable_rewrites(t)
        positions = {pos for pos, rule, _ in options if rule.name == "delete_idempotent"}
        assert positions == {0, 1}

    def test_rewrite_transaction_replaces_window(self):
        d = Delete("R", Pattern(2, eq={0: 1}))
        t = txn(d, d)
        out = rewrite_transaction(t, 0, DeleteIdempotent(), [d])
        assert len(out) == 1 and out.name == "p"


@pytest.mark.parametrize("rule", ALL_KV_RULES, ids=lambda r: r.name)
@pytest.mark.parametrize("seed", range(4))
def test_every_kv_rule_preserves_set_equivalence(rule, seed):
    """Randomized soundness: wherever a rule applies, results agree."""
    rng = random.Random(seed)
    found = 0
    for _ in range(60):
        t = random_transaction(REL, rng, length=4, domain=(0, 1, 2))
        for position, applied_rule, replacement in applicable_rewrites(t, [rule]):
            variant = rewrite_transaction(t, position, applied_rule, replacement)
            witness = find_set_difference_witness(t, variant, rng, trials=8)
            assert witness is None, (
                rule.name,
                list(t.queries),
                list(variant.queries),
                witness,
            )
            found += 1
            break
        if found >= 3:
            break
    # Rules must actually fire on random inputs; otherwise the test is vacuous.
    if found == 0:
        pytest.skip(f"rule {rule.name} never applied on this seed")


def test_set_equivalent_detects_differences():
    t1 = txn(Delete("R", Pattern(2, eq={0: 1})))
    t2 = txn(Delete("R", Pattern(2, eq={0: 2})))
    assert not set_equivalent(t1, t2)
    assert set_equivalent(t1, t1)
