"""Proposition 5.5 at engine level: minimized normal forms are canonical.

For a single annotated transaction over an X-database (the theorem's
setting), the minimized normal-form annotation of every tuple is *unique*:
set-equivalent transactions must therefore produce canonically identical
expressions row by row — a strictly stronger check than BDD equivalence,
exercised over the Karabeg–Vianu rewrite space.
"""

import random

import pytest

from repro.core.equivalence import canonical
from repro.core.expr import ZERO
from repro.core.minimize import minimize
from repro.db.schema import Relation
from repro.engine.engine import Engine
from repro.kv.equivalence import random_database_for
from repro.kv.generator import equivalent_pair

REL = Relation("R", ["a", "b"])


@pytest.mark.parametrize("seed", range(10))
def test_minimized_normal_forms_identical_for_equivalent_transactions(seed):
    rng = random.Random(1000 + seed)
    t1, t2, trail = equivalent_pair(REL, rng, length=5, domain=(0, 1, 2), steps=3)
    if not trail:
        pytest.skip("no rewrite applied for this seed")
    db = random_database_for([t1, t2], rng, rows_per_relation=6)
    e1 = Engine(db, policy="normal_form").apply(t1)
    e2 = Engine(db, policy="normal_form").apply(t2)
    prov1 = {row: expr for row, expr, _ in e1.provenance("R")}
    prov2 = {row: expr for row, expr, _ in e2.provenance("R")}
    for row in set(prov1) | set(prov2):
        c1 = canonical(minimize(prov1.get(row, ZERO)))
        c2 = canonical(minimize(prov2.get(row, ZERO)))
        assert c1 is c2, (row, str(c1), str(c2), trail)
