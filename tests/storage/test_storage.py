"""Serialization: expression JSON, sqlite snapshots, CSV I/O."""

import pytest

from repro.core.expr import ZERO, minus, plus_i, plus_m, ssum, times_m, var
from repro.db.database import Database
from repro.engine.engine import Engine
from repro.errors import StorageError
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Insert, Modify, Transaction
from repro.storage import (
    AnnotatedSnapshot,
    dump_csv,
    expr_from_dict,
    expr_from_json,
    expr_from_nested,
    expr_to_dict,
    expr_to_json,
    expr_to_nested,
    load_csv,
    load_snapshot,
    save_snapshot,
)

A, B, P = var("a"), var("b"), var("p")
SAMPLE = plus_m(minus(A, P), times_m(ssum([A, B]), P))


class TestExprJson:
    def test_dag_round_trip(self):
        assert expr_from_json(expr_to_json(SAMPLE)) is SAMPLE

    def test_zero_round_trip(self):
        assert expr_from_json(expr_to_json(ZERO)) is ZERO

    def test_sharing_preserved(self):
        shared = plus_i(A, P)
        e = plus_m(shared, times_m(shared, P))
        payload = expr_to_dict(e)
        # 4 distinct leaves/nodes + root, not the 9 of the expanded tree.
        assert len(payload["nodes"]) == 5

    def test_deep_chain_round_trip(self):
        e = A
        for i in range(2500):
            e = minus(e, var(f"p{i % 3}"))
        assert expr_from_json(expr_to_json(e)) is e

    def test_nested_round_trip(self):
        assert expr_from_nested(expr_to_nested(SAMPLE)) is SAMPLE

    def test_malformed_payloads_rejected(self):
        with pytest.raises(StorageError):
            expr_from_json("{broken")
        with pytest.raises(StorageError):
            expr_from_dict({"nodes": [["wat"]], "root": 0})
        with pytest.raises(StorageError):
            expr_from_dict({"nodes": [["+I", 0, 5]], "root": 0})  # forward ref
        with pytest.raises(StorageError):
            expr_from_dict({"nodes": [["var", "a"]], "root": 7})
        with pytest.raises(StorageError):
            expr_from_nested(["nope"])

    def test_decoder_reapplies_zero_axioms(self):
        payload = {"nodes": [["zero"], ["var", "p"], ["+I", 0, 1]], "root": 2}
        assert expr_from_dict(payload) is var("p")


class TestSnapshot:
    def make_engine(self):
        db = Database.from_rows("R", ["v"], [(1,), (2,), (3,)])
        log = [
            Transaction("t1", [Modify("R", Pattern(1, eq={0: 1}), {0: 2})]),
            Transaction("t2", [Delete("R", Pattern(1, eq={0: 3})), Insert("R", (9,))]),
        ]
        return db, Engine(db, policy="normal_form").apply(log)

    def test_from_engine_and_live_database(self):
        _db, engine = self.make_engine()
        snap = AnnotatedSnapshot.from_engine(engine, meta={"k": 1})
        assert snap.live_database().same_contents(engine.result())
        assert snap.meta == {"k": 1}
        assert snap.row_count() == engine.support_count()

    def test_sqlite_round_trip(self, tmp_path):
        _db, engine = self.make_engine()
        snap = AnnotatedSnapshot.from_engine(engine)
        path = tmp_path / "snap.sqlite"
        save_snapshot(snap, path)
        again = load_snapshot(path)
        assert again == snap
        assert again.live_database().same_contents(engine.result())

    def test_save_replaces_existing_file(self, tmp_path):
        _db, engine = self.make_engine()
        snap = AnnotatedSnapshot.from_engine(engine)
        path = tmp_path / "snap.sqlite"
        save_snapshot(snap, path)
        save_snapshot(snap, path)  # no error, clean overwrite
        assert load_snapshot(path) == snap

    def test_save_is_atomic_on_serialization_failure(self, tmp_path):
        """A failing save can never destroy the last good snapshot."""
        _db, engine = self.make_engine()
        good = AnnotatedSnapshot.from_engine(engine, meta={"generation": 1})
        path = tmp_path / "snap.sqlite"
        save_snapshot(good, path)
        bad = AnnotatedSnapshot.from_engine(engine, meta={"handle": object()})
        with pytest.raises(StorageError, match="JSON-serializable"):
            save_snapshot(bad, path)
        # The old file is intact and no temp debris is left behind.
        assert load_snapshot(path) == good
        assert load_snapshot(path).meta == {"generation": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["snap.sqlite"]

    def test_unserializable_meta_raises_storage_error(self, tmp_path):
        _db, engine = self.make_engine()
        snap = AnnotatedSnapshot.from_engine(engine, meta={"handle": {1, 2}})
        with pytest.raises(StorageError, match="JSON-serializable"):
            save_snapshot(snap, tmp_path / "snap.sqlite")

    def test_set_normalizes_rows_like_database_insert(self):
        """`set` stores the checked tuple, so list rows land as tuples."""
        _db, engine = self.make_engine()
        snap = AnnotatedSnapshot.from_engine(engine)
        snap.set("R", [7], var("x"), True)
        assert snap.annotation("R", (7,)) is var("x")
        assert (7,) in {row for row, _e, _l in snap.items("R")}

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(StorageError, match="no snapshot"):
            load_snapshot(tmp_path / "void.sqlite")

    def test_load_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.sqlite"
        path.write_text("this is not sqlite")
        with pytest.raises(StorageError):
            load_snapshot(path)

    def test_specialize_offline(self):
        """A snapshot answers what-ifs without the engine."""
        db, engine = self.make_engine()
        snap = AnnotatedSnapshot.from_engine(engine)
        from repro.semantics.boolean import BooleanStructure

        values = snap.specialize(BooleanStructure(), lambda name: name != "t2")
        # t2 aborted: (3,) was deleted by t2 only, so it survives.
        assert values["R"][(3,)] is True
        assert values["R"][(9,)] is False  # inserted by t2

    def test_minimized_preserves_live_rows(self):
        _db, engine = self.make_engine()
        snap = AnnotatedSnapshot.from_engine(engine)
        mini = snap.minimized()
        assert mini.live_database().same_contents(snap.live_database())
        assert mini.provenance_size() <= snap.provenance_size()

    def test_mv_snapshot_rejected(self):
        db = Database.from_rows("R", ["v"], [(1,)])
        engine = Engine(db, policy="mv_tree").apply(
            Transaction("t", [Insert("R", (2,))])
        )
        with pytest.raises(StorageError, match="UP\\[X\\]"):
            AnnotatedSnapshot.from_engine(engine)


class TestCsv:
    def test_round_trip(self, tmp_path):
        db = Database.from_rows("r", ["a", "b"], [(1, "x"), (2, "y")])
        path = tmp_path / "r.csv"
        dump_csv(db, "r", path)
        loaded = load_csv(path, "r", types={"a": int})
        assert loaded.rows("r") == db.rows("r")

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError, match="no CSV"):
            load_csv(tmp_path / "void.csv", "r")

    def test_field_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(StorageError, match="expected 2 fields"):
            load_csv(path, "r")

    def test_conversion_error_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a\nnot_an_int\n")
        with pytest.raises(StorageError, match=":2"):
            load_csv(path, "r", types={"a": int})

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(StorageError, match="header"):
            load_csv(path, "r")

    def test_load_into_existing_database(self, tmp_path):
        db = Database.from_rows("r", ["a"], [(1,)])
        path = tmp_path / "s.csv"
        path.write_text("x,y\n1,2\n")
        out = load_csv(path, "s", types={"x": int, "y": int}, database=db)
        assert out is db
        assert db.rows("s") == {(1, 2)}
