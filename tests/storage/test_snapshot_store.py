"""Snapshot round-trips through the indexed annotation store.

Executor state → snapshot → sqlite → snapshot → store/executor: live
rows, tombstones and annotations must all survive, and the rebuilt store
must answer indexed pattern matchings exactly like the original.
"""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.engine.engine import Engine
from repro.errors import StorageError
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Insert, Modify, Transaction
from repro.storage.snapshot import (
    AnnotatedSnapshot,
    load_snapshot,
    restore_executor,
    save_snapshot,
    store_from_snapshot,
)


@pytest.fixture
def engine():
    database = Database.from_rows(
        "R", ["a", "b"], [(i, i % 3) for i in range(9)]
    )
    engine = Engine(database, policy="naive")
    engine.apply(
        [
            Transaction("p", [Delete("R", Pattern(2, eq={1: 0}))]),
            Transaction("q", [Modify("R", Pattern(2, eq={1: 1}), {1: 7})]),
            Transaction("r", [Insert("R", (100, 100))]),
        ]
    )
    return engine


def state_map(source):
    """relation → {row: (expr, live)} for an engine or a store."""
    if isinstance(source, Engine):
        return {
            name: {row: (expr, live) for row, expr, live in source.provenance(name)}
            for name in source.executor.schema.names
        }
    return {
        name: {row: (ann, live) for row, ann, live in source.items(name)}
        for name in source.schema.names
    }


def test_store_round_trip_preserves_everything(engine, tmp_path):
    snapshot = AnnotatedSnapshot.from_engine(engine, meta={"policy": engine.policy})
    path = tmp_path / "state.sqlite"
    save_snapshot(snapshot, path)
    restored = store_from_snapshot(load_snapshot(path))

    original = state_map(engine)
    rebuilt = state_map(restored)
    assert set(original) == set(rebuilt)
    for name in original:
        assert original[name] == rebuilt[name]
    # Tombstones made it across (modified/deleted rows are dead but stored).
    assert engine.support_count() == restored.support_count()
    assert engine.live_count() == restored.live_count()
    assert any(not live for _row, (_expr, live) in rebuilt["R"].items())


def test_rebuilt_indexes_answer_matchings(engine, tmp_path):
    path = tmp_path / "state.sqlite"
    save_snapshot(AnnotatedSnapshot.from_engine(engine), path)
    restored = store_from_snapshot(load_snapshot(path))

    pattern = Pattern(2, eq={1: 7})
    original_store = engine.executor.store.relation("R")
    rebuilt_store = restored.relation("R")
    assert [row for _rid, row in original_store.matching(pattern)] == [
        row for _rid, row in rebuilt_store.matching(pattern)
    ]
    assert restored.stats.index_hits >= 1
    assert restored.stats.fallback_scans == 0


def test_snapshot_from_store_inverts_store_from_snapshot(engine):
    snapshot = AnnotatedSnapshot.from_engine(engine)
    again = AnnotatedSnapshot.from_store(store_from_snapshot(snapshot))
    assert snapshot == again


def test_restored_executor_continues_applying_updates(engine, tmp_path):
    path = tmp_path / "state.sqlite"
    save_snapshot(AnnotatedSnapshot.from_engine(engine), path)
    resumed = restore_executor(load_snapshot(path), policy="naive")

    follow_up = Transaction("s", [Delete("R", Pattern(2, eq={1: 2}))])
    for query in follow_up:
        engine.executor.apply(query)
        resumed.apply(query)
    assert engine.live_rows("R") == resumed.live_rows("R")
    assert state_map(engine) == {
        name: {row: (expr, live) for row, expr, live in resumed.provenance_items(name)}
        for name in resumed.schema.names
    }


def test_restore_rejects_non_expression_policies(engine, tmp_path):
    snapshot = AnnotatedSnapshot.from_engine(engine)
    with pytest.raises(StorageError, match="cannot resume"):
        restore_executor(snapshot, policy="normal_form")
    with pytest.raises(StorageError, match="cannot resume"):
        restore_executor(snapshot, policy="none")
