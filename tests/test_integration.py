"""End-to-end integration: text front-end → engine → storage → applications."""

from repro.apps import DeletionPropagation, TransactionAbortion
from repro.db.database import Database
from repro.engine.engine import Engine
from repro.lang.sql import parse_sql_script
from repro.semantics.boolean import BooleanStructure
from repro.storage import AnnotatedSnapshot, load_snapshot, save_snapshot
from repro.tpcc.driver import generate_tpcc
from repro.tpcc.loader import TPCCScale
from repro.workloads.logs import UpdateLog, log_from_json, log_to_json
from repro.workloads.synthetic import synthetic_workload


def test_sql_to_provenance_to_whatif(tmp_path):
    """The full quickstart path: SQL script in, what-if analysis out."""
    db = Database.from_rows(
        "products",
        ["product", "category", "price"],
        [
            ("Kids mnt bike", "Sport", 120),
            ("Tennis Racket", "Sport", 70),
            ("Kids mnt bike", "Kids", 120),
            ("Children sneakers", "Fashion", 40),
        ],
    )
    script = """
    BEGIN TRANSACTION p;
    UPDATE products SET category = 'Sport'
        WHERE product = 'Kids mnt bike' AND category = 'Kids';
    UPDATE products SET category = 'Bicycles'
        WHERE product = 'Kids mnt bike' AND category = 'Sport';
    COMMIT;
    BEGIN TRANSACTION p2;
    UPDATE products SET price = 50 WHERE category = 'Sport';
    COMMIT;
    """
    items = parse_sql_script(script, db.schema)
    log = UpdateLog(items)

    # Serialize the log, reload, and verify identical replay.
    log2, _ = log_from_json(log_to_json(log, db.schema))
    r1 = Engine(db, policy="none").apply(log).result()
    r2 = Engine(db, policy="none").apply(log2).result()
    assert r1.same_contents(r2)

    # Track provenance, snapshot it, reload it, and answer an abortion
    # what-if offline from the snapshot.
    engine = Engine(db, policy="normal_form").apply(log)
    snapshot = AnnotatedSnapshot.from_engine(engine)
    path = tmp_path / "state.sqlite"
    save_snapshot(snapshot, path)
    reloaded = load_snapshot(path)
    values = reloaded.specialize(BooleanStructure(), lambda name: name != "p")
    survived = {row for row, value in values["products"].items() if value}
    aborted = TransactionAbortion(db, log).baseline(["p"])
    assert survived == aborted.rows("products")


def test_tpcc_full_pipeline():
    """TPC-C generation → three policies → deletion what-if, consistent."""
    workload = generate_tpcc(TPCCScale(), n_queries=150, seed=21)
    vanilla = Engine(workload.database, policy="none").apply(workload.log)
    nf = Engine(workload.database, policy="normal_form").apply(workload.log)
    assert nf.result().same_contents(vanilla.result())

    app = DeletionPropagation(workload.database, workload.log)
    victims = [("CUSTOMER", row) for row in sorted(workload.database.rows("CUSTOMER"))[:3]]
    assert app.propagate(victims).database.same_contents(app.baseline(victims))


def test_synthetic_single_annotation_pipeline():
    """The paper's execution model end to end, with usage verification."""
    w = synthetic_workload(
        n_tuples=800, n_queries=80, n_groups=4, group_size=4, domain_size=25
    )
    single = w.log.as_single_transaction()
    from repro.bench.measure import usage_measurement

    engine = Engine(w.database, policy="normal_form").apply(single)
    baseline = Engine(w.database, policy="none").apply(single)
    assert engine.result().same_contents(baseline.result())
    measurement = usage_measurement(engine, w.database, single, n_deletions=12)
    assert measurement.consistent
