"""The four Section 4.1 applications against their re-run baselines."""

import pytest

from repro.apps import (
    AccessControl,
    Certification,
    DeletionPropagation,
    ProvenanceRun,
    TransactionAbortion,
)
from repro.db.database import Database
from repro.engine.engine import Engine
from repro.errors import EngineError
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Insert, Modify, Transaction
from repro.workloads.logs import UpdateLog


@pytest.fixture
def db():
    return Database.from_rows("R", ["v", "grp"], [(i, i % 3) for i in range(9)])


@pytest.fixture
def log():
    return UpdateLog(
        [
            Transaction("t1", [Modify("R", Pattern(2, eq={1: 0}), {1: 5})]),
            Transaction("t2", [Delete("R", Pattern(2, eq={1: 1})), Insert("R", (100, 1))]),
            Transaction("t3", [Modify("R", Pattern(2, eq={1: 5}), {0: 0})]),
        ]
    )


class TestProvenanceRun:
    def test_rejects_vanilla_policy(self, db, log):
        with pytest.raises(EngineError):
            ProvenanceRun(db, log, policy="none")

    def test_tuple_annotation_resolution(self, db, log):
        run = ProvenanceRun(db, log)
        name = run.tuple_annotation("R", (0, 0))
        assert name.startswith("tR.")
        with pytest.raises(EngineError, match="not an initial tuple"):
            run.tuple_annotation("R", (12345, 0))

    def test_transaction_annotations(self, db, log):
        run = ProvenanceRun(db, log)
        assert run.transaction_annotations() == ["t1", "t2", "t3"]

    def test_accepts_plain_iterables(self, db):
        run = ProvenanceRun(db, [Transaction("t", [Insert("R", (50, 9))])])
        assert (50, 9) in run.engine.live_rows("R")


class TestDeletionPropagation:
    @pytest.mark.parametrize("policy", ["naive", "normal_form"])
    def test_matches_baseline_single_deletion(self, db, log, policy):
        app = DeletionPropagation(db, log, policy=policy)
        for row in [(0, 0), (4, 1), (8, 2)]:
            result = app.propagate([("R", row)])
            assert result.database.same_contents(app.baseline([("R", row)])), row

    def test_matches_baseline_multiple_deletions(self, db, log):
        app = DeletionPropagation(db, log)
        deletions = [("R", (0, 0)), ("R", (3, 0)), ("R", (7, 1))]
        assert app.propagate(deletions).database.same_contents(app.baseline(deletions))

    def test_empty_deletion_reproduces_run(self, db, log):
        app = DeletionPropagation(db, log)
        assert app.propagate([]).database.same_contents(
            Engine(db, policy="none").apply(log).result()
        )

    def test_survives_helper(self, db, log):
        app = DeletionPropagation(db, log)
        assert app.survives([("R", (2, 2))], "R", (1, 1)) in (True, False)

    def test_usage_time_recorded(self, db, log):
        result = DeletionPropagation(db, log).propagate([("R", (0, 0))])
        assert result.usage_time > 0


class TestTransactionAbortion:
    @pytest.mark.parametrize("aborted", [["t1"], ["t2"], ["t3"], ["t1", "t3"]])
    def test_matches_baseline(self, db, log, aborted):
        app = TransactionAbortion(db, log)
        assert app.abort(aborted).database.same_contents(app.baseline(aborted))

    def test_unknown_transaction_rejected(self, db, log):
        app = TransactionAbortion(db, log)
        with pytest.raises(EngineError, match="unknown transaction"):
            app.abort(["tX"])

    def test_combined_tuple_and_transaction_whatif(self, db, log):
        app = TransactionAbortion(db, log)
        result = app.combined(["t2"], [("R", (0, 0))])
        # Baseline: drop the tuple, skip t2, re-run.
        modified = db.copy()
        modified.discard("R", (0, 0))
        expected = app.rerun_baseline(modified, skip_annotations={"t2"})
        assert result.database.same_contents(expected)


class TestAccessControl:
    def test_unrestricted_user_sees_run_result(self, db, log):
        app = AccessControl(db, log, universe={"EU", "US"})
        full = Engine(db, policy="none").apply(log).result()
        assert app.visible_to("EU").same_contents(full)

    def test_restricted_transaction_equals_abortion_for_outsiders(self, db, log):
        """A user without t1's credential sees the world as if t1 never ran."""
        app = AccessControl(db, log, universe={"EU", "US"}, query_credentials={"t1": {"EU"}})
        abortion = TransactionAbortion(db, log)
        assert app.visible_to("US").same_contents(abortion.baseline(["t1"]))

    def test_restricted_tuple_invisible(self, db, log):
        app = AccessControl(
            db, log, universe={"EU", "US"}, tuple_credentials={("R", (8, 2)): {"EU"}}
        )
        us_view = app.visible_to("US")
        assert (8, 2) not in us_view.rows("R")
        assert (8, 2) in app.visible_to("EU").rows("R")

    def test_row_credentials(self, db, log):
        app = AccessControl(db, log, universe={"EU"})
        assert app.row_credentials("R", (8, 2)) == {"EU"}
        assert app.row_credentials("R", (777, 0)) == frozenset()

    def test_usage_time_measured_once(self, db, log):
        app = AccessControl(db, log, universe={"EU"})
        app.credentials()
        first = app.usage_time
        app.credentials()  # cached
        assert app.usage_time == first


class TestCertification:
    def test_all_trusted_equals_full_run(self, db, log):
        app = Certification(db, log, threshold=0.5)
        full = Engine(db, policy="none").apply(log).result()
        assert app.certify().same_contents(full)

    def test_untrusted_transaction_matches_baseline(self, db, log):
        app = Certification(db, log, threshold=0.5, query_scores={"t1": 0.2})
        assert app.certify().same_contents(app.baseline())

    def test_untrusted_tuples_match_baseline(self, db, log):
        app = Certification(
            db,
            log,
            threshold=0.5,
            tuple_scores={("R", (0, 0)): 0.1, ("R", (4, 1)): 0.3},
        )
        assert app.certify().same_contents(app.baseline())

    def test_mixed_scores_match_baseline(self, db, log):
        app = Certification(
            db,
            log,
            threshold=0.6,
            tuple_scores={("R", (1, 1)): 0.55},
            query_scores={"t3": 0.59, "t2": 0.61},
        )
        assert app.certify().same_contents(app.baseline())

    def test_untouched_low_trust_tuple_excluded(self, db, log):
        """The inclusion-predicate subtlety: an untouched untrusted input
        row must not appear certified even though its value is not 0."""
        app = Certification(db, log, threshold=0.5, tuple_scores={("R", (8, 2)): 0.2})
        assert (8, 2) not in app.certify().rows("R")

    def test_certificate_lookup(self, db, log):
        app = Certification(db, log, threshold=0.5)
        assert app.certificate("R", (8, 2)) is True
        assert app.certificate("R", (424242, 0)) is False
