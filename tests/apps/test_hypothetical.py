"""Symbolic hypothetical reasoning (the BDD-backed extension)."""

import itertools

import pytest

from repro.apps import HypotheticalAnalyzer, TransactionAbortion
from repro.db.database import Database
from repro.engine.engine import Engine
from repro.errors import EngineError
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Insert, Modify, Transaction


@pytest.fixture
def db():
    # grp 0 touched by t1, grp 1 by t2/t3; grp 2 untouched by everything.
    return Database.from_rows("R", ["v", "grp"], [(i, i % 3) for i in range(6)])


@pytest.fixture
def log():
    return [
        Transaction("t1", [Modify("R", Pattern(2, eq={1: 0}), {1: 7})]),
        Transaction("t2", [Delete("R", Pattern(2, eq={1: 1}))]),
        Transaction("t3", [Insert("R", (100, 1))]),
    ]


@pytest.fixture
def analyzer(db, log):
    return HypotheticalAnalyzer(db, log)


class TestScenarioEvaluation:
    def test_all_true_scenario_matches_engine(self, analyzer, db, log):
        expected = Engine(db, policy="none").apply(log).live_rows("R")
        rows = {
            row
            for row, _node in analyzer._nodes["R"].items()
            if analyzer.holds_under("R", row, {})
        }
        assert rows == expected

    def test_every_abortion_scenario_matches_concrete_app(self, analyzer, db, log):
        """2^3 scenarios, all answered from one symbolic evaluation."""
        abortion = TransactionAbortion(db, log)
        names = ["t1", "t2", "t3"]
        for bits in itertools.product([True, False], repeat=3):
            scenario = dict(zip(names, bits))
            aborted = [n for n, executed in scenario.items() if not executed]
            expected = abortion.baseline(aborted).rows("R")
            rows = {
                row
                for row in analyzer._nodes["R"]
                if analyzer.holds_under("R", row, scenario)
            }
            assert rows == expected, scenario


class TestCounting:
    def test_scenario_count_matches_enumeration(self, analyzer):
        names = ["t1", "t2", "t3"]
        for row in analyzer._nodes["R"]:
            expected = sum(
                analyzer.holds_under("R", row, dict(zip(names, bits)))
                for bits in itertools.product([True, False], repeat=3)
            )
            assert analyzer.scenario_count("R", row) == expected, row

    def test_always_and_never_present(self, analyzer):
        always = analyzer.always_present("R")
        never = analyzer.never_present("R")
        # Untouched rows are scenario-independent; no stored row here is
        # dead under *every* scenario (tombstones revive when their
        # deleting transaction is aborted).
        assert always
        assert all(analyzer.scenario_count("R", row) == 8 for row in always)
        assert all(analyzer.scenario_count("R", row) == 0 for row in never)

    def test_witnesses(self, analyzer):
        # (100, 1) exists iff t3 ran and t2... (t2 deletes grp=1 before the
        # insert? t2 precedes t3, so the insert survives t2) — verify via
        # witnesses instead of reasoning: both kinds must exist for a row
        # that depends on something.
        row = (100, 1)
        w = analyzer.witness("R", row)
        assert w is not None and analyzer.holds_under("R", row, w)
        against = analyzer.witness_against("R", row)
        assert against is not None and not analyzer.holds_under("R", row, against)

    def test_depends_on(self, analyzer):
        # The inserted row depends only on its inserting transaction.
        assert analyzer.depends_on("R", (100, 1)) == {"t3"}


class TestConfiguration:
    def test_free_subset(self, db, log):
        analyzer = HypotheticalAnalyzer(db, log, free=["t2"])
        # Only t2 varies: counts are over a 2-scenario space.
        for row in analyzer._nodes["R"]:
            assert analyzer.scenario_count("R", row) in (0, 1, 2)

    def test_free_tuple_annotations_allowed(self, db, log):
        run = HypotheticalAnalyzer(db, log, free=[])
        name = run.tuple_annotation("R", (0, 0))
        analyzer = HypotheticalAnalyzer(db, log, free=[name, "t1"])
        assert analyzer.scenario_count("R", (0, 7)) >= 1

    def test_unknown_free_annotation_rejected(self, db, log):
        with pytest.raises(EngineError, match="unknown annotations"):
            HypotheticalAnalyzer(db, log, free=["ghost"])
