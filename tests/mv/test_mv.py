"""The MV-semiring baseline: expressions, engine policy, Examples 3.10/3.11."""

import pytest

from repro.db.database import Database
from repro.engine.engine import Engine
from repro.errors import ReproError
from repro.mv.expr import MVString, MVTree, Unv, parse_mv_string
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Insert, Modify, Transaction


class TestMVTree:
    def test_leaf_and_wrap(self):
        leaf = MVTree.leaf("x1")
        wrapped = leaf.wrap("I", 1, "T", 2)
        assert wrapped.to_string() == "I^1_{T,2}(x1)"
        assert wrapped.length() == 2

    def test_wrap_copies_subtree(self):
        """Single-parent semantics: wrapping must not alias the child."""
        leaf = MVTree.leaf("x1")
        w1 = leaf.wrap("U", 1, "T", 2)
        w2 = leaf.wrap("D", 1, "T", 3)
        assert w1.child is not w2.child
        assert w1.child == leaf and w2.child == leaf

    def test_unv_strips_history(self):
        e = MVTree.leaf("x1").wrap("I", 1, "T", 2).wrap("U", 1, "T2", 3)
        assert e.unv() == "x1"
        assert Unv(e) == "x1"

    def test_invalid_op_rejected(self):
        with pytest.raises(ReproError):
            MVTree("X", 1, "T", 2, MVTree.leaf("x"))

    def test_leaf_needs_var(self):
        with pytest.raises(ReproError):
            MVTree(None)

    def test_deep_copy_iterative(self):
        e = MVTree.leaf("x")
        for i in range(3000):
            e = MVTree("U", 1, "T", i, e)
        clone = e.copy()
        assert clone == e and clone is not e


class TestMVString:
    def test_wrap_concatenates(self):
        e = MVString.leaf("x1").wrap("U", 3, "T1", 4)
        assert e.to_string() == "U^3_{T1,4}(x1)"
        assert e.length() == 2

    def test_unv_requires_parse(self):
        e = MVString.leaf("x1").wrap("U", 3, "T1", 4).wrap("C", 3, "T1", 5)
        assert e.unv() == "x1"

    def test_parse_round_trip(self):
        tree = MVTree.leaf("x1").wrap("I", 1, "T", 2).wrap("U", 1, "T2", 3)
        assert parse_mv_string(tree.to_string()) == tree

    def test_parse_rejects_garbage(self):
        with pytest.raises(ReproError):
            parse_mv_string("U^?_{T,2}(x1)")
        with pytest.raises(ReproError):
            parse_mv_string("U^1_{T,2}(x1")  # unbalanced
        with pytest.raises(ReproError):
            parse_mv_string("")


class TestExample310:
    """Equivalent transactions yield *different* MV annotations."""

    def products_db(self):
        return Database.from_rows(
            "products",
            ["product", "category", "price"],
            [
                ("Kids mnt bike", "Sport", 120),
                ("Kids mnt bike", "Kids", 120),
            ],
        )

    def transactions(self, variant: str):
        bike = "Kids mnt bike"
        if variant == "t1":
            steps = [("Kids", "Sport"), ("Sport", "Bicycles")]
        else:
            steps = [("Kids", "Bicycles"), ("Sport", "Bicycles")]
        return Transaction(
            "T1" if variant == "t1" else "T1'",
            [
                Modify("products", Pattern(3, eq={0: bike, 1: src}), {1: dst})
                for src, dst in steps
            ],
        )

    @pytest.mark.parametrize("representation", ["mv_tree", "mv_string"])
    def test_equivalent_transactions_different_annotations(self, representation):
        e1 = Engine(self.products_db(), policy=representation).apply(self.transactions("t1"))
        e2 = Engine(self.products_db(), policy=representation).apply(self.transactions("t1p"))
        target = ("Kids mnt bike", "Bicycles", 120)
        ann1 = {row: ann for row, ann, _ in e1.provenance("products")}
        ann2 = {row: ann for row, ann, _ in e2.provenance("products")}
        # Same set semantics...
        assert e1.result().same_contents(e2.result())
        # ...but pinned derivation histories differ (Example 3.10): the
        # T1 run records two U-operations on the version reaching the
        # target, the T1' run only one.
        assert ann1[target].to_string() != ann2[target].to_string()

    def test_example_3_11_unv_agrees(self):
        """Unv strips the history: both runs yield the same underlying x."""
        e1 = Engine(self.products_db(), policy="mv_tree").apply(self.transactions("t1"))
        e2 = Engine(self.products_db(), policy="mv_tree").apply(self.transactions("t1p"))
        target = ("Kids mnt bike", "Bicycles", 120)
        ann1 = {row: ann for row, ann, _ in e1.provenance("products")}
        ann2 = {row: ann for row, ann, _ in e2.provenance("products")}
        assert Unv(ann1[target]) == Unv(ann2[target])


class TestMVExecutor:
    def db(self):
        return Database.from_rows("R", ["v"], [(1,), (2,)])

    def test_insert_creates_fresh_version(self):
        e = Engine(self.db(), policy="mv_tree").apply(
            Transaction("T", [Insert("R", (3,))])
        )
        anns = {row: ann for row, ann, _ in e.provenance("R")}
        assert anns[(3,)].to_string().startswith("C^")  # committed insert

    def test_delete_marks_version_dead(self):
        e = Engine(self.db(), policy="mv_tree").apply(
            Transaction("T", [Delete("R", Pattern(1, eq={0: 1}))])
        )
        assert e.live_rows("R") == {(2,)}
        assert e.support_count() == 2  # version retained

    def test_modify_updates_in_place_no_duplication(self):
        """Unlike UP[X] executors, MV does not duplicate modified tuples."""
        e = Engine(self.db(), policy="mv_tree").apply(
            Transaction("T", [Modify("R", Pattern(1, eq={0: 1}), {0: 5})])
        )
        assert e.support_count() == 2
        assert e.live_rows("R") == {(5,), (2,)}

    def test_commit_wraps_touched_versions_once(self):
        e = Engine(self.db(), policy="mv_string").apply(
            Transaction(
                "T",
                [
                    Modify("R", Pattern(1, eq={0: 1}), {0: 5}),
                    Modify("R", Pattern(1, eq={0: 5}), {0: 6}),
                ],
            )
        )
        anns = {row: ann for row, ann, _ in e.provenance("R")}
        text = anns[(6,)].to_string()
        assert text.count("C^") == 1
        assert text.count("U^") == 2

    def test_provenance_sizes(self):
        e = Engine(self.db(), policy="mv_tree").apply(
            Transaction("T", [Modify("R", Pattern(1, eq={0: 1}), {0: 5})])
        )
        assert e.provenance_size() == e.provenance_dag_size()
        assert e.provenance_size() >= 4  # two leaves + U + C

    def test_unknown_representation_rejected(self):
        from repro.mv.policy import MVExecutor

        with pytest.raises(Exception):
            MVExecutor(self.db(), representation="yaml")
