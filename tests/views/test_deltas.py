"""Unit tests of the delta vocabulary: coalescing, codec, engine plumbing."""

from __future__ import annotations

import pytest

from repro.core.expr import plus_i, var
from repro.db.database import Database
from repro.engine.engine import Engine
from repro.errors import EngineError
from repro.queries.updates import Insert
from repro.views import (
    DeltaBatch,
    DeltaBuffer,
    RowDelta,
    apply_delta_batch,
    attach_delta_sink,
    decode_delta_batch,
    delta_capable,
    encode_delta_batch,
    flush_pending,
    local_engines,
)


def pending(buffer: DeltaBuffer) -> dict:
    """``{(relation, row): (kind, expr, live)}`` of the un-drained buffer."""
    return {key: tuple(entry) for key, entry in buffer._pending.items()}


# -- coalescing ---------------------------------------------------------------


def test_insert_then_free_nets_to_nothing():
    buffer = DeltaBuffer()
    buffer.record("insert", "R", (1, 2), var("x1"), True)
    buffer.record("free", "R", (1, 2), None, False)
    assert not buffer
    assert buffer.drain(3) == DeltaBatch(3, ())


def test_free_of_preexisting_row_ships_as_free():
    buffer = DeltaBuffer()
    buffer.record("annotation", "R", (1, 2), var("x1"), True)
    buffer.record("free", "R", (1, 2), None, False)
    assert pending(buffer) == {("R", (1, 2)): ("free", None, False)}


def test_insert_stays_insert_through_later_changes():
    buffer = DeltaBuffer()
    expr = plus_i(var("x1"), var("p"))
    buffer.record("insert", "R", (1, 2), var("x1"), True)
    buffer.record("delete", "R", (1, 2), expr, False)
    assert pending(buffer) == {("R", (1, 2)): ("insert", expr, False)}


def test_free_then_insert_is_new_again():
    buffer = DeltaBuffer()
    buffer.record("free", "R", (1, 2), None, False)
    buffer.record("annotation", "R", (1, 2), var("x1"), True)
    assert pending(buffer) == {("R", (1, 2)): ("insert", var("x1"), True)}


def test_latest_kind_and_payload_win_otherwise():
    buffer = DeltaBuffer()
    buffer.record("annotation", "R", (1, 2), var("x1"), True)
    buffer.record("delete", "R", (1, 2), var("x2"), False)
    assert pending(buffer) == {("R", (1, 2)): ("delete", var("x2"), False)}


def test_drain_stamps_and_clears():
    buffer = DeltaBuffer()
    buffer.record("insert", "R", (0, 0), var("x1"), True)
    batch = buffer.drain(7)
    assert batch.version == 7
    assert [d.kind for d in batch] == ["insert"]
    assert not buffer and len(buffer.drain(8)) == 0


# -- reconstruction and the wire codec ---------------------------------------


def test_apply_delta_batch_upserts_and_frees():
    state = {"R": {(0, 0): (var("x1"), True)}}
    batch = DeltaBatch(
        2,
        (
            RowDelta("delete", "R", (0, 0), var("x2"), False),
            RowDelta("insert", "R", (1, 1), var("x3"), True),
            RowDelta("free", "S", (9,), None, False),  # absent key: no-op
        ),
    )
    apply_delta_batch(state, batch)
    assert state == {
        "R": {(0, 0): (var("x2"), False), (1, 1): (var("x3"), True)},
        "S": {},
    }


def test_codec_round_trip_reinterns_identical_objects():
    shared = plus_i(var("x1"), var("p"))
    batch = DeltaBatch(
        5,
        (
            RowDelta("insert", "R", (1, 2), shared, True),
            RowDelta("annotation", "R", (3, 4), shared, False),
            RowDelta("free", "R", (5, 6), None, False),
        ),
    )
    decoded = decode_delta_batch(encode_delta_batch(batch))
    assert decoded == batch
    # The arena re-interns: both rows share the very same expression object.
    assert decoded.deltas[0].expr is decoded.deltas[1].expr is shared


# -- engine plumbing ----------------------------------------------------------


@pytest.mark.parametrize("policy", ["naive", "normal_form", "normal_form_batch", "none"])
def test_attached_engine_routes_deltas_through_the_sink(policy):
    database = Database.from_rows("R", ["a", "b"], [(0, 0)])
    engine = Engine(database, policy=policy)
    assert delta_capable(engine)
    assert local_engines(engine) == [engine]
    buffer = DeltaBuffer()
    attach_delta_sink(engine, buffer)
    engine.apply(Insert("R", (1, 1)).annotated("p"))
    flush_pending(engine)
    batch = buffer.drain(1)
    kinds = {delta.row: delta.kind for delta in batch}
    assert kinds[(1, 1)] == "insert"


@pytest.mark.parametrize("policy", ["mv_tree", "mv_string"])
def test_mv_policies_are_rejected_loudly(policy):
    database = Database.from_rows("R", ["a", "b"], [(0, 0)])
    engine = Engine(database, policy=policy)
    assert not delta_capable(engine)
    with pytest.raises(EngineError, match="does not emit row deltas"):
        attach_delta_sink(engine, DeltaBuffer())
