"""Plain database container semantics."""

import pytest

from repro.db.database import Database
from repro.db.schema import Relation, Schema
from repro.errors import SchemaError


@pytest.fixture
def db():
    return Database.from_dict({"r": (["a", "b"], [(1, 2), (3, 4)]), "q": (["x"], [(9,)])})


class TestConstruction:
    def test_from_rows(self):
        db = Database.from_rows("r", ["a"], [(1,), (2,)])
        assert db.rows("r") == {(1,), (2,)}

    def test_from_dict(self, db):
        assert db.total_rows() == 3

    def test_add_relation(self, db):
        db.add_relation(Relation("s", ["k"]))
        assert db.rows("s") == set()


class TestMutation:
    def test_insert_checks_arity(self, db):
        with pytest.raises(SchemaError):
            db.insert("r", (1,))

    def test_insert_is_set_semantics(self, db):
        db.insert("r", (1, 2))
        assert len(db.rows("r")) == 2

    def test_discard(self, db):
        db.discard("r", (1, 2))
        assert db.rows("r") == {(3, 4)}
        db.discard("r", (42, 42))  # absent: no-op

    def test_extend(self, db):
        db.extend("q", [(1,), (2,)])
        assert db.rows("q") == {(9,), (1,), (2,)}

    def test_unknown_relation(self, db):
        with pytest.raises(SchemaError):
            db.rows("nope")


class TestCopyAndCompare:
    def test_copy_is_deep_for_rows(self, db):
        clone = db.copy()
        clone.insert("r", (7, 7))
        assert (7, 7) not in db.rows("r")

    def test_same_contents(self, db):
        assert db.same_contents(db.copy())

    def test_same_contents_detects_row_diff(self, db):
        other = db.copy()
        other.discard("q", (9,))
        assert not db.same_contents(other)
        assert db.diff(other) == {"q": ({(9,)}, set())}

    def test_same_contents_detects_schema_diff(self, db):
        other = Database.from_dict({"r": (["a", "b"], [(1, 2), (3, 4)])})
        assert not db.same_contents(other)

    def test_repr_mentions_sizes(self, db):
        assert "r:2" in repr(db)
