"""Relation and Schema behaviour, including failure modes."""

import pytest

from repro.db.schema import Relation, Schema
from repro.errors import SchemaError


class TestRelation:
    def test_basic(self):
        r = Relation("products", ["product", "category", "price"])
        assert r.arity == 3
        assert r.index_of("category") == 1

    def test_unknown_attribute(self):
        r = Relation("r", ["a"])
        with pytest.raises(SchemaError, match="no attribute"):
            r.index_of("b")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Relation("", ["a"])

    def test_no_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation("r", [])

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Relation("r", ["a", "a"])

    def test_check_row_arity(self):
        r = Relation("r", ["a", "b"])
        assert r.check_row([1, 2]) == (1, 2)
        with pytest.raises(SchemaError, match="arity"):
            r.check_row([1])

    def test_row_dict(self):
        r = Relation("r", ["a", "b"])
        assert r.row_dict((1, 2)) == {"a": 1, "b": 2}

    def test_equality_and_hash(self):
        assert Relation("r", ["a"]) == Relation("r", ["a"])
        assert Relation("r", ["a"]) != Relation("r", ["b"])
        assert hash(Relation("r", ["a"])) == hash(Relation("r", ["a"]))


class TestSchema:
    def test_build_and_lookup(self):
        s = Schema.build({"r": ["a"], "q": ["b", "c"]})
        assert len(s) == 2
        assert s.relation("q").arity == 2
        assert "r" in s and "zzz" not in s
        assert s.names == ("r", "q")

    def test_duplicate_relation_rejected(self):
        s = Schema([Relation("r", ["a"])])
        with pytest.raises(SchemaError, match="duplicate"):
            s.add(Relation("r", ["b"]))

    def test_unknown_relation(self):
        with pytest.raises(SchemaError, match="unknown relation"):
            Schema().relation("r")

    def test_iteration_order(self):
        s = Schema.build({"b": ["x"], "a": ["y"]})
        assert [r.name for r in s] == ["b", "a"]
