"""The synthetic workload generator (§6.1 shape guarantees)."""

import dataclasses

import pytest

from repro.errors import QueryError
from repro.queries.updates import Delete, Insert, Modify
from repro.workloads.synthetic import (
    COLD_GROUP,
    RELATION_NAME,
    SyntheticConfig,
    synthetic_database,
    synthetic_log,
    synthetic_workload,
)

CONFIG = SyntheticConfig(
    n_tuples=1_000, n_queries=120, n_groups=5, group_size=4, domain_size=20, seed=3
)


class TestConfig:
    def test_affected_accounting(self):
        assert CONFIG.affected_tuples == 20
        assert CONFIG.affected_fraction == pytest.approx(0.02)

    def test_with_affected(self):
        resized = CONFIG.with_affected(40, per_query=8)
        assert resized.n_groups == 5 and resized.group_size == 8

    def test_with_affected_requires_divisibility(self):
        with pytest.raises(QueryError):
            CONFIG.with_affected(41, per_query=4)

    def test_validation(self):
        with pytest.raises(QueryError):
            SyntheticConfig(n_tuples=10, n_groups=5, group_size=4)  # affected > tuples
        with pytest.raises(QueryError):
            SyntheticConfig(n_value_columns=0)
        with pytest.raises(QueryError):
            SyntheticConfig(weights=(0, 0, 0))
        with pytest.raises(QueryError):
            SyntheticConfig(n_tuples=0)


class TestDatabase:
    def test_population(self):
        db = synthetic_database(CONFIG)
        rows = db.rows(RELATION_NAME)
        assert len(rows) == 1_000
        hot = [r for r in rows if r[1] != COLD_GROUP]
        assert len(hot) == 20
        groups = {r[1] for r in hot}
        assert groups == set(range(5))

    def test_group_sizes_uniform(self):
        db = synthetic_database(CONFIG)
        from collections import Counter

        counts = Counter(r[1] for r in db.rows(RELATION_NAME) if r[1] != COLD_GROUP)
        assert set(counts.values()) == {4}

    def test_values_in_domain(self):
        db = synthetic_database(CONFIG)
        for row in db.rows(RELATION_NAME):
            assert all(0 <= v < 20 for v in row[2:])

    def test_deterministic_under_seed(self):
        assert synthetic_database(CONFIG).rows(RELATION_NAME) == synthetic_database(
            CONFIG
        ).rows(RELATION_NAME)


class TestLog:
    def test_query_count_and_grouping(self):
        log = synthetic_log(CONFIG)
        assert log.query_count() == 120
        assert len(log) == 120  # one query per transaction by default

    def test_transaction_grouping(self):
        config = dataclasses.replace(CONFIG, queries_per_transaction=7)
        log = synthetic_log(config)
        assert log.query_count() == 120
        assert len(log) == 18  # ceil(120 / 7)
        assert len(log[0]) == 7 and len(log[-1]) == 1

    def test_selections_target_hot_groups_only(self):
        log = synthetic_log(CONFIG)
        grp_pos = 1
        for query in log.queries():
            if isinstance(query, (Delete, Modify)):
                group = query.pattern.eq[grp_pos]
                assert 0 <= group < CONFIG.n_groups
            else:
                assert isinstance(query, Insert)
                assert 0 <= query.row[1] < CONFIG.n_groups

    def test_inserts_use_fresh_ids(self):
        log = synthetic_log(CONFIG)
        ids = [q.row[0] for q in log.queries() if isinstance(q, Insert)]
        assert len(ids) == len(set(ids))
        assert all(i >= CONFIG.n_tuples for i in ids)

    def test_weights_respected(self):
        config = dataclasses.replace(CONFIG, weights=(0.0, 0.0, 1.0))
        log = synthetic_log(config)
        counts = log.kind_counts()
        assert counts["modify"] == 120 and counts["insert"] == 0

    def test_uniform_mix_roughly_uniform(self):
        config = dataclasses.replace(CONFIG, n_queries=600)
        counts = synthetic_log(config).kind_counts()
        for kind in ("insert", "delete", "modify"):
            assert 140 <= counts[kind] <= 260

    def test_deterministic_under_seed(self):
        assert synthetic_log(CONFIG) == synthetic_log(CONFIG)
        other = dataclasses.replace(CONFIG, seed=4)
        assert synthetic_log(other) != synthetic_log(CONFIG)


class TestWorkloadBundle:
    def test_workload_bundle(self):
        w = synthetic_workload(CONFIG)
        assert w.database.total_rows() == 1_000
        assert w.log.query_count() == 120
        assert w.schema.relation(RELATION_NAME).arity == 5

    def test_overrides(self):
        w = synthetic_workload(n_tuples=200, n_queries=10, n_groups=2, group_size=3)
        assert w.config.n_tuples == 200
        assert w.config.affected_tuples == 6

    def test_per_query_affected_count_is_group_size(self):
        """The Figure 9b control: a modification touches exactly group_size
        live rows (before any deletions)."""
        from repro.engine.engine import Engine

        config = dataclasses.replace(CONFIG, weights=(0.0, 0.0, 1.0), n_queries=5)
        w = synthetic_workload(config)
        engine = Engine(w.database, policy="none")
        engine.apply(w.log)
        assert engine.stats.rows_matched == 5 * CONFIG.group_size
