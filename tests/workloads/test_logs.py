"""UpdateLog container behaviour and JSON round-trips."""

import pytest

from repro.db.schema import Schema
from repro.errors import StorageError
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Insert, Modify, Transaction
from repro.workloads.logs import (
    UpdateLog,
    log_from_events,
    log_from_json,
    log_to_json,
    query_from_dict,
    query_to_dict,
)


@pytest.fixture
def log():
    return UpdateLog(
        [
            Transaction(
                "t1",
                [
                    Insert("R", (1, "x")),
                    Delete("R", Pattern(2, eq={0: 1}, neq={1: {"a", "b"}})),
                ],
            ),
            Modify("R", Pattern(2, eq={1: "x"}), {0: 9}, annotation="solo"),
            Transaction("t2", [Insert("R", (2, "y"))]),
        ],
        meta={"name": "unit"},
    )


class TestContainer:
    def test_counts(self, log):
        assert len(log) == 3
        assert log.query_count() == 4
        assert [q.kind for q in log.queries()] == ["insert", "delete", "modify", "insert"]

    def test_annotations_in_order(self, log):
        assert log.annotations() == ["t1", "solo", "t2"]

    def test_kind_counts(self, log):
        assert log.kind_counts() == {"insert": 2, "delete": 1, "modify": 1}

    def test_prefix_exact_boundary(self, log):
        assert log.prefix(2).query_count() == 2
        assert len(log.prefix(2)) == 1

    def test_prefix_splits_transaction(self, log):
        p = log.prefix(1)
        assert p.query_count() == 1
        (item,) = p.items
        assert isinstance(item, Transaction) and item.name == "t1" and len(item) == 1

    def test_prefix_beyond_end(self, log):
        assert log.prefix(100).query_count() == 4

    def test_as_single_transaction(self, log):
        single = log.as_single_transaction("P")
        assert len(single) == 1
        assert single.query_count() == 4
        assert all(q.annotation == "P" for q in single.queries())

    def test_getitem(self, log):
        assert isinstance(log[1], Modify)


class TestEvents:
    def test_events_interleave_queries_and_txn_ends(self, log):
        kinds = [kind for kind, _payload in log.events()]
        assert kinds == ["query", "query", "txn_end", "query", "query", "txn_end"]

    def test_events_round_trip(self, log):
        assert log_from_events(log.events()).items == log.items

    def test_trailing_queries_stay_bare(self):
        """A tail cut mid-transaction replays without the end-of-txn hook."""
        txn = Transaction("t", [Insert("R", (1, 2)), Insert("R", (3, 4))])
        events = [("query", txn.queries[0]), ("query", txn.queries[1])]
        rebuilt = log_from_events(events)
        assert rebuilt.items == list(txn.queries)  # bare, no Transaction

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(StorageError, match="unknown log event"):
            log_from_events([("checkpoint", 3)])
        with pytest.raises(StorageError, match="query event carries"):
            log_from_events([("query", "not a query")])


class TestQuerySerialization:
    def test_insert_round_trip(self):
        q = Insert("R", (1, "x", None, True), annotation="p")
        assert query_from_dict(query_to_dict(q)) == q

    def test_delete_round_trip(self):
        q = Delete("R", Pattern(3, eq={0: 1}, neq={2: {"a", 5}}))
        assert query_from_dict(query_to_dict(q)) == q

    def test_modify_round_trip(self):
        q = Modify("R", Pattern(2, eq={0: 1}), {1: "new"}, annotation="t")
        assert query_from_dict(query_to_dict(q)) == q

    def test_non_scalar_values_rejected(self):
        with pytest.raises(StorageError, match="scalar"):
            query_to_dict(Insert("R", (object(),)))

    def test_unknown_kind_rejected(self):
        with pytest.raises(StorageError, match="unknown query kind"):
            query_from_dict({"kind": "merge", "relation": "R"})


class TestLogSerialization:
    def test_round_trip_with_schema(self, log):
        schema = Schema.build({"R": ["a", "b"]})
        text = log_to_json(log, schema, indent=2)
        log2, schema2 = log_from_json(text)
        assert log2 == log
        assert log2.meta["name"] == "unit"
        assert schema2.relation("R").attributes == ("a", "b")

    def test_round_trip_without_schema(self, log):
        log2, schema2 = log_from_json(log_to_json(log))
        assert log2 == log and schema2 is None

    def test_invalid_json_rejected(self):
        with pytest.raises(StorageError, match="invalid log JSON"):
            log_from_json("{nope")
