"""Per-request timing of :meth:`ServerClient.apply_pipelined`.

The regression this pins down: pipelined applies used to be timeable
only as a whole call, so one slow request's latency was amortized across
the burst and the tail the loadgen harness exists to measure vanished.
The ``timings`` hook must yield one honest ``(send, recv)`` pair per
request — in request order, failed requests included — with the send
stamped at the flush that actually put the frame on the socket.
"""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.db.schema import Relation, Schema
from repro.errors import ServerError
from repro.queries.updates import Insert
from repro.server.client import ServerClient
from repro.server.server import serve_in_thread
from repro.server.service import ServerConfig

N = 12


@pytest.fixture()
def handle():
    database = Database(Schema([Relation("r", ["id", "value"])]))
    handle = serve_in_thread(database, ServerConfig(port=0))
    yield handle
    handle.stop()


def _inserts(n: int = N) -> list[Insert]:
    return [Insert("r", (i, f"v{i}"), annotation=f"q{i}") for i in range(n)]


def test_one_timing_pair_per_request_in_request_order(handle):
    timings: list[tuple[float, float]] = []
    with ServerClient(handle.host, handle.port) as client:
        applied = client.apply_pipelined(_inserts(), timings=timings, flush_bytes=1)
    assert applied == N
    assert len(timings) == N
    for send, recv in timings:
        assert send <= recv
    # Responses arrive in request order over one connection, so both
    # stamp sequences are monotone nondecreasing.
    sends = [send for send, _ in timings]
    recvs = [recv for _, recv in timings]
    assert sends == sorted(sends)
    assert recvs == sorted(recvs)


def test_per_frame_flush_gives_distinct_send_stamps(handle):
    timings: list[tuple[float, float]] = []
    with ServerClient(handle.host, handle.port) as client:
        client.apply_pipelined(_inserts(), timings=timings, flush_bytes=1)
    sends = [send for send, _ in timings]
    # flush_bytes=1 forces one flush (and one stamp) per frame.
    assert len(set(sends)) == N


def test_shared_flush_shares_its_send_stamp(handle):
    timings: list[tuple[float, float]] = []
    with ServerClient(handle.host, handle.port) as client:
        client.apply_pipelined(_inserts(), timings=timings)  # default: one big flush
    sends = {send for send, _ in timings}
    assert len(sends) == 1
    # The shared stamp still precedes every response read.
    assert all(recv >= next(iter(sends)) for _, recv in timings)


def test_failed_request_still_gets_a_timing_pair_and_raises(handle):
    items: list[object] = _inserts(3)
    items.insert(1, Insert("nonexistent_relation", (0, "x")))
    timings: list[tuple[float, float]] = []
    with ServerClient(handle.host, handle.port) as client:
        with pytest.raises(ServerError):
            client.apply_pipelined(items, timings=timings, flush_bytes=1)
        assert len(timings) == len(items)
        assert all(send <= recv for send, recv in timings)
        # The connection survives: later requests drained, client usable.
        assert client.apply(Insert("r", (99, "ok"), annotation="q99")) == 1


def test_timings_default_off_changes_nothing(handle):
    with ServerClient(handle.host, handle.port) as client:
        assert client.apply_pipelined(_inserts()) == N
        state = client.state()
    assert len(state["r"]) == N
