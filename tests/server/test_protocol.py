"""Wire-framing unit tests: round trips, bounds, torn streams."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.errors import ServerError
from repro.server.protocol import MAX_FRAME, encode_frame, recv_frame, send_frame


def socket_pair():
    a, b = socket.socketpair()
    a.settimeout(5)
    b.settimeout(5)
    return a, b


def test_frame_round_trip():
    a, b = socket_pair()
    payload = {"op": "apply", "events": [["query", {"kind": "insert"}]], "n": 3}
    send_frame(a, payload)
    assert recv_frame(b) == payload
    a.close()
    b.close()


def test_frames_preserve_order():
    a, b = socket_pair()
    for i in range(10):
        send_frame(a, {"i": i})
    assert [recv_frame(b)["i"] for i in range(10)] == list(range(10))
    a.close()
    b.close()


def test_encode_rejects_unserializable_payload():
    with pytest.raises(ServerError, match="JSON"):
        encode_frame({"expr": object()})


def test_oversized_length_prefix_rejected():
    a, b = socket_pair()
    a.sendall(struct.pack(">I", MAX_FRAME + 1))
    with pytest.raises(ServerError, match="exceeds"):
        recv_frame(b)
    a.close()
    b.close()


def test_malformed_json_payload_rejected():
    a, b = socket_pair()
    body = b"{not json"
    a.sendall(struct.pack(">I", len(body)) + body)
    with pytest.raises(ServerError, match="malformed"):
        recv_frame(b)
    a.close()
    b.close()


def test_non_object_payload_rejected():
    a, b = socket_pair()
    body = b"[1, 2, 3]"
    a.sendall(struct.pack(">I", len(body)) + body)
    with pytest.raises(ServerError, match="JSON object"):
        recv_frame(b)
    a.close()
    b.close()


def test_torn_stream_reported():
    a, b = socket_pair()
    frame = encode_frame({"op": "ping"})
    a.sendall(frame[: len(frame) - 2])  # cut mid-payload
    a.close()
    with pytest.raises(ServerError, match="mid-frame"):
        recv_frame(b)
    b.close()


def test_large_frame_streams_in_chunks():
    """A frame bigger than one recv() arrives reassembled."""
    a, b = socket_pair()
    payload = {"blob": "x" * 300_000}
    received: list[dict] = []

    def reader():
        received.append(recv_frame(b))

    thread = threading.Thread(target=reader)
    thread.start()
    send_frame(a, payload)
    thread.join(timeout=10)
    assert received == [payload]
    a.close()
    b.close()
