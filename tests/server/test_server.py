"""ISSUE 5 acceptance: server round trips are bit-identical to the engine.

Every test hosts a real asyncio server on a background thread and talks
to it over TCP with the blocking client.  Because client decoding
re-interns expressions in this very process, "bit-identical" is asserted
at full strength: equal rows, equal liveness, and the *identical*
interned annotation object per row, compared against a direct in-process
engine applying the same items — across the plain, journaled and sharded
backends.
"""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.engine.engine import Engine
from repro.errors import ServerError
from repro.queries.updates import Delete, Insert, Modify, Transaction
from repro.semantics.boolean import BooleanStructure
from repro.server import ServerClient, ServerConfig, serve_in_thread
from repro.shard.codec import capture_engine
from repro.wal.recovery import recover
from repro.workloads.synthetic import SyntheticConfig, synthetic_database, synthetic_log


def small_workload(seed: int = 11):
    config = SyntheticConfig(
        n_tuples=300, n_queries=60, n_groups=8, group_size=3,
        queries_per_transaction=4, seed=seed,
    )
    return synthetic_database(config), list(synthetic_log(config).items)


def assert_states_identical(observed, expected, tracks_provenance=True):
    assert observed.keys() == expected.keys()
    for name in expected:
        assert observed[name].keys() == expected[name].keys(), name
        for row, (expr, live) in expected[name].items():
            got_expr, got_live = observed[name][row]
            assert got_live == live, (name, row)
            if tracks_provenance:
                assert got_expr is expr, (name, row)


def serve(database, **overrides):
    config = ServerConfig(port=0, **overrides)
    return serve_in_thread(database, config)


@pytest.mark.parametrize("backend", ["plain", "journaled", "sharded"])
def test_round_trip_bit_identical_across_backends(backend, tmp_path):
    database, items = small_workload()
    overrides = {"policy": "normal_form_batch", "backend": backend}
    if backend == "journaled":
        overrides["directory"] = str(tmp_path / "state")
    if backend == "sharded":
        overrides["shards"] = 3

    direct = Engine(database, policy="normal_form_batch")
    with serve(database, **overrides) as handle:
        with ServerClient(handle.host, handle.port) as client:
            # Mix the two application paths, mirroring them on the direct
            # engine; interleave reads so snapshots land mid-stream too.
            for position, item in enumerate(items):
                if position % 3 == 0:
                    applied = client.apply_batch(item)
                    direct.apply_batch(item)
                else:
                    applied = client.apply(item)
                    direct.apply(item)
                assert applied == (len(item) if isinstance(item, Transaction) else 1)
                if position % 10 == 0:
                    client.provenance("synthetic")

            expected = capture_engine(direct)
            assert_states_identical(client.state(), expected)

            # provenance() agrees with state() row for row.
            observed = {
                row: (expr, live)
                for row, expr, live in client.provenance("synthetic")
            }
            for row, (expr, live) in expected["synthetic"].items():
                assert observed[row][0] is expr
                assert observed[row][1] == live

            # annotation_of: the identical interned object, O(1) per row.
            sample = list(expected["synthetic"])[:10]
            for row in sample:
                assert client.annotation_of("synthetic", row) is (
                    expected["synthetic"][row][0]
                )

            # Engine counters crossed the wire.
            stats = client.stats()
            assert stats["engine"]["queries"] == direct.stats.queries
            assert stats["server"]["admitted"] > 0


@pytest.mark.parametrize("policy", ["naive", "normal_form", "none"])
def test_round_trip_bit_identical_across_policies(policy):
    database, items = small_workload(seed=5)
    direct = Engine(database, policy=policy)
    with serve(database, policy=policy) as handle:
        with ServerClient(handle.host, handle.port) as client:
            client.apply(items)
            direct.apply(items)
            assert_states_identical(
                client.state(),
                capture_engine(direct),
                tracks_provenance=direct.executor.tracks_provenance,
            )


def test_specialize_matches_in_process_engine(products_db):
    rel = products_db.relation("products")
    t1 = Transaction("txn_mod", [
        Modify.set(rel, where={"category": "Kids"}, set_values={"category": "Sport"}),
    ])
    t2 = Transaction("txn_del", [Delete.where(rel, {"category": "Sport"})])
    # No custom annotator on either side: both assign the default x1..x4
    # tuple names, so the what-if toggles the same annotation space.
    direct = Engine(products_db, policy="normal_form")
    direct.apply([t1, t2])

    with serve(products_db, policy="normal_form") as handle:
        with ServerClient(handle.host, handle.port) as client:
            client.apply([t1, t2])
            env = {"txn_del": False}  # what-if: abort the deletion
            over_wire = client.specialize(env, default=True)
            in_process = direct.specialize(
                BooleanStructure(), lambda name: env.get(name, True)
            )
            assert over_wire.keys() == in_process.keys()
            for name in in_process:
                assert over_wire[name] == {
                    row: bool(value) for row, value in in_process[name].items()
                }


def test_graceful_shutdown_checkpoints_journaled_state(tmp_path):
    """The shutdown op flushes and checkpoints; recovery finds zero tail."""
    database, items = small_workload(seed=7)
    directory = tmp_path / "state"
    direct = Engine(database, policy="normal_form_batch")
    handle = serve(
        database, backend="journaled", policy="normal_form_batch",
        directory=str(directory),
    )
    client = ServerClient(handle.host, handle.port)
    client.apply(items)
    direct.apply(items)
    client.shutdown()  # graceful: drains, flushes, checkpoints
    handle.stop()

    recovered = recover(directory)
    assert recovered.recovery.tail_records == 0  # shutdown checkpointed
    assert_states_identical(capture_engine(recovered), capture_engine(direct))
    recovered.journal.close()


def test_restarting_serve_recovers_previous_state(tmp_path):
    directory = tmp_path / "state"
    database = Database.from_rows("items", ["sku", "qty"], [("a", 1)])
    with serve(
        database, backend="journaled", policy="naive", directory=str(directory)
    ) as handle:
        with ServerClient(handle.host, handle.port) as client:
            client.apply(Transaction("t1", [Insert("items", ("b", 2))]))
    # Same directory, no database: the server recovers the deployment.
    with serve(
        None, backend="journaled", policy="naive", directory=str(directory)
    ) as handle:
        with ServerClient(handle.host, handle.port) as client:
            live = {row for row, _e, lv in client.provenance("items") if lv}
            assert live == {("a", 1), ("b", 2)}


def test_errors_do_not_kill_the_connection():
    database = Database.from_rows("items", ["sku", "qty"], [("a", 1)])
    with serve(database, policy="naive") as handle:
        with ServerClient(handle.host, handle.port) as client:
            with pytest.raises(ServerError, match="unknown relation"):
                client.apply(Insert("nope", ("x",), annotation="t"))
            with pytest.raises(ServerError, match="arity mismatch"):
                client.apply(Insert("items", ("x", 1, 2), annotation="t"))
            with pytest.raises(ServerError, match="unknown relation"):
                client.provenance("nope")
            with pytest.raises(ServerError, match="unknown op"):
                client._call("frobnicate")
            # The connection survived every error above.
            assert client.apply(Insert("items", ("b", 2), annotation="t")) == 1
            assert ("b", 2) in {r for r, _e, lv in client.provenance("items") if lv}


def test_specialize_rejected_for_provenance_free_policy():
    database = Database.from_rows("items", ["sku"], [("a",)])
    with serve(database, policy="none") as handle:
        with ServerClient(handle.host, handle.port) as client:
            with pytest.raises(ServerError, match="does not track provenance"):
                client.specialize({})


def test_checkpoint_op_rejected_for_plain_backend():
    database = Database.from_rows("items", ["sku"], [("a",)])
    with serve(database, policy="naive") as handle:
        with ServerClient(handle.host, handle.port) as client:
            with pytest.raises(ServerError, match="no durable state"):
                client.checkpoint()


def test_requests_after_shutdown_are_rejected():
    database = Database.from_rows("items", ["sku"], [("a",)])
    handle = serve(database, policy="naive")
    first = ServerClient(handle.host, handle.port)
    second = ServerClient(handle.host, handle.port)
    first.shutdown()
    handle.stop()  # wait until the shutdown completed (no race with it)
    with pytest.raises(ServerError):
        second.apply(Insert("items", ("b",), annotation="t"))
    second.close()


def test_pipelined_applies_preserve_order_and_counts():
    database = Database.from_rows("items", ["sku", "qty"], [("a", 1)])
    with serve(database, policy="naive") as handle:
        with ServerClient(handle.host, handle.port) as client:
            queries = [
                Insert("items", (f"s{i}", i), annotation=f"t{i}") for i in range(50)
            ]
            assert client.apply_pipelined(queries) == 50
            live = {row for row, _e, lv in client.provenance("items") if lv}
            assert live == {("a", 1), *((f"s{i}", i) for i in range(50))}
