"""The live-view push path over a real server: subscribe to lag-and-drop.

Every test hosts the asyncio server on a background thread and drives it
over TCP.  Because the client re-interns pushed expressions in this very
process, the view-maintenance checks assert full bit-identity: the
delta-maintained answer set holds the *identical* interned expression
object a fresh ``state`` capture shows at the same version.
"""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.errors import ServerError
from repro.queries.pattern import Pattern
from repro.queries.updates import Insert, Modify, Transaction
from repro.server import ServerClient, ServerConfig, serve_in_thread
from repro.server.protocol import PROTOCOL_REVISION


def serve(**overrides):
    database = Database.from_rows("R", ["a", "b"], [(0, 0), (1, 1)])
    overrides.setdefault("policy", "normal_form")
    return serve_in_thread(database, ServerConfig(port=0, **overrides))


def txn(name: str, a: int, b: int) -> Transaction:
    return Transaction(name, [Insert("R", (a, b))])


def catch_up(subscription, target: int, timeout: float = 30.0):
    events = []
    while subscription.version < target:
        event = subscription.next(timeout=timeout)
        assert event is not None, f"no push before version {target}"
        events.append(event)
    return events


def assert_matches_state(subscription, client):
    expected = {
        row: payload
        for row, payload in client.state()["R"].items()
        if subscription.pattern is None or subscription.pattern.matches(row)
    }
    assert subscription.rows.keys() == expected.keys()
    for row, (expr, live) in expected.items():
        got_expr, got_live = subscription.rows[row]
        assert got_expr is expr, row
        assert got_live == live, row


def test_subscription_tracks_writes_bit_identically():
    with serve() as handle:
        with ServerClient(handle.host, handle.port) as writer, ServerClient(
            handle.host, handle.port
        ) as reader:
            subscription = reader.subscribe("R")
            start = subscription.version
            assert subscription.rows.keys() == {(0, 0), (1, 1)}

            writer.apply(txn("t0", 2, 2))
            writer.apply(Transaction("t1", [Modify("R", Pattern(2, eq={0: 0}), {1: 9})]))
            events = catch_up(subscription, start + 2)
            assert all(event.lag is not None and event.lag >= 0 for event in events)
            assert_matches_state(subscription, reader)

            subscription.unsubscribe()
            assert not subscription.active
            writer.apply(txn("t2", 3, 3))
            assert subscription.next(timeout=0.2) is None


def test_pattern_scoped_subscription_sees_only_its_slice():
    with serve() as handle:
        with ServerClient(handle.host, handle.port) as writer, ServerClient(
            handle.host, handle.port
        ) as reader:
            subscription = reader.subscribe("R", Pattern(2, eq={0: 0}))
            start = subscription.version
            assert subscription.rows.keys() == {(0, 0)}

            # One batch touching the slice, one entirely outside it.
            writer.apply(Transaction("t0", [Insert("R", (0, 5)), Insert("R", (7, 7))]))
            catch_up(subscription, start + 1)
            assert subscription.rows.keys() == {(0, 0), (0, 5)}
            assert_matches_state(subscription, reader)

            # An untouched slice publishes no frame at all: versions only
            # advance on batches that matched, so the view stays at its
            # last-touched version while remaining correct.
            writer.apply(txn("t1", 8, 8))
            assert subscription.next(timeout=0.3) is None
            assert subscription.version == start + 1
            assert_matches_state(subscription, reader)


def test_ping_reports_protocol_revision():
    with serve() as handle:
        with ServerClient(handle.host, handle.port) as client:
            assert client.ping()["protocol"] == PROTOCOL_REVISION


def test_unsubscribe_is_per_connection():
    with serve() as handle:
        with ServerClient(handle.host, handle.port) as owner, ServerClient(
            handle.host, handle.port
        ) as intruder:
            subscription = owner.subscribe("R")
            with pytest.raises(ServerError, match="does not belong to this connection"):
                intruder._call("unsubscribe", subscription=subscription.view_id)
            # Still live for its owner.
            start = subscription.version
            intruder.apply(txn("t0", 4, 4))
            catch_up(subscription, start + 1)
            subscription.unsubscribe()


def test_subscribe_rejected_for_unknown_relation_and_bad_pattern():
    with serve() as handle:
        with ServerClient(handle.host, handle.port) as client:
            with pytest.raises(ServerError, match="unknown relation"):
                client.subscribe("missing")
            with pytest.raises(ServerError, match="arity"):
                client.subscribe("R", Pattern(3, eq={0: 1}))


def test_subscribe_rejected_on_mv_backend():
    with serve(policy="mv_tree") as handle:
        with ServerClient(handle.host, handle.port) as client:
            with pytest.raises(ServerError, match="cannot maintain live views"):
                client.subscribe("R")


def test_slow_consumer_is_dropped_with_a_lagged_notice():
    # Frames carry the transaction name into the expression arena, so a
    # long annotation makes each push large enough that an unread reader's
    # socket (and then its send queue) fills within a few hundred writes.
    with serve(push_backlog=4) as handle:
        with ServerClient(handle.host, handle.port) as writer, ServerClient(
            handle.host, handle.port
        ) as reader:
            subscription = reader.subscribe("R")
            big = "x" * 65536
            for index in range(400):
                writer.apply(Transaction(f"{big}{index}", [Insert("R", (2, index))]))
                if not subscription.active:
                    break
                # The reader never drains; pushes pile up server-side.
            events = subscription.drain(timeout=30.0)
            assert subscription.lagged, "backlog never tripped the drop"
            assert not subscription.active
            assert events[-1].lagged and events[-1].batch is None

            # The connection itself survives: plain requests still answer,
            # and a fresh subscribe starts a clean stream.
            assert reader.ping()["protocol"] == PROTOCOL_REVISION
            fresh = reader.subscribe("R")
            start = fresh.version
            writer.apply(txn("small", 3, 3))
            catch_up(fresh, start + 1)
            assert_matches_state(fresh, reader)


def test_pushes_interleave_with_pipelined_responses():
    with serve() as handle:
        with ServerClient(handle.host, handle.port) as client:
            subscription = client.subscribe("R")
            start = subscription.version
            items = [txn(f"t{i}", 10 + i, i) for i in range(20)]
            # Pushed frames land between the pipelined responses on the
            # same connection; the demux must deliver all 20 responses in
            # order and queue every push.
            assert client.apply_pipelined(items) == 20
            catch_up(subscription, start + 20)
            assert_matches_state(subscription, client)
