"""Satellite: concurrent readers only ever observe prefix states.

Reader threads hammer ``state`` / ``provenance`` / ``annotation_of``
while a writer streams updates through the admission queue (with fusion
enabled, so some writer cycles apply several requests as one
``apply_batch`` call).  Because one request carries one stream item, the
snapshot ``version`` *is* the prefix length — so every observation is
checked bit-identically (rows, liveness, identical interned annotation
objects) against the in-process replay of exactly its prefix.  A reader
that ever saw a half-applied batch or a torn transaction could not match
any prefix.

Readers record the **raw** wire payloads during the concurrent phase and
decode afterwards: decoding interns, and the test wants the writer to be
the only interner while the race is live (the atomic ``_intern`` makes
concurrent decoding safe, but keeping it out of the loop makes the
observations themselves the thing under test).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.db.database import Database
from repro.engine.engine import Engine
from repro.queries.updates import Delete, Insert, Modify, Transaction
from repro.server import ServerClient, ServerConfig, serve_in_thread
from repro.shard.codec import capture_engine, decode_capture
from repro.storage.exprjson import expr_from_dict

N_READERS = 3


def build_database() -> Database:
    return Database.from_rows(
        "items", ["id", "grp"], [(i, i % 4) for i in range(12)]
    )


def build_stream(database: Database) -> list:
    """~30 items: bare annotated queries and small transactions."""
    rel = database.relation("items")
    items: list = []
    for i in range(8):
        items.append(Insert("items", (100 + i, i % 4), annotation=f"ins{i}"))
    for g in range(4):
        items.append(
            Transaction(
                f"txn{g}",
                [
                    Modify.set(rel, where={"grp": g}, set_values={"grp": (g + 1) % 4}),
                    Insert.values(rel, (200 + g, g)),
                    Delete.where(rel, {"grp": (g + 2) % 4}),
                ],
            )
        )
    for i in range(8):
        items.append(
            Delete.where(rel, {"id": 100 + i}).annotated(f"del{i}")
            if i % 2
            else Insert("items", (300 + i, i % 4), annotation=f"late{i}")
        )
    for g in range(4):
        items.append(
            Transaction(
                f"fix{g}", [Modify.set(rel, where={"grp": g}, set_values={"grp": 0})]
            )
        )
    return items


def decode_rows(payload) -> dict:
    return {
        tuple(row): (None if enc is None else expr_from_dict(enc), bool(live))
        for row, enc, live in payload
    }


@pytest.mark.parametrize("policy", ["naive", "normal_form_batch"])
def test_concurrent_readers_observe_only_prefix_states(policy):
    database = build_database()
    stream = build_stream(database)
    sample_rows = [[3, 3], [100, 0], [201, 1]]  # probed by the annotation reader

    config = ServerConfig(port=0, policy=policy, admission_max=4)
    handle = serve_in_thread(database, config)
    stop = threading.Event()
    observations: list[list[tuple]] = [[] for _ in range(N_READERS)]
    failures: list[BaseException] = []

    def reader(k: int) -> None:
        try:
            with ServerClient(handle.host, handle.port) as connection:
                while not stop.is_set():
                    if k == 0:
                        response = connection._call("state")
                        observations[k].append(
                            ("state", response["version"], response["relations"])
                        )
                    elif k == 1:
                        response = connection._call("provenance", relation="items")
                        observations[k].append(
                            ("rows", response["version"], response["rows"])
                        )
                    else:
                        row = sample_rows[len(observations[k]) % len(sample_rows)]
                        response = connection._call(
                            "annotation_of", relation="items", row=row
                        )
                        observations[k].append(
                            ("ann", response["version"], (tuple(row), response))
                        )
                # One guaranteed post-stream observation per reader.
                response = connection._call("state")
                observations[k].append(
                    ("state", response["version"], response["relations"])
                )
        except BaseException as exc:  # noqa: BLE001 - re-raised in the main thread
            failures.append(exc)

    try:
        with ServerClient(handle.host, handle.port) as writer:
            # Explicit version-0 observation before any update ships.
            response = writer._call("state")
            observations.append([("state", response["version"], response["relations"])])
            threads = [
                threading.Thread(target=reader, args=(k,), daemon=True)
                for k in range(N_READERS)
            ]
            for thread in threads:
                thread.start()
            for position, item in enumerate(stream):
                writer.apply(item, batch=position % 2 == 0)
                time.sleep(0.001)  # widen the mid-stream observation window
            stop.set()
            for thread in threads:
                thread.join(timeout=60)
    finally:
        stop.set()
        handle.stop()
    assert not failures, failures[0]

    # The writer is gone; now replay every prefix in-process and decode.
    prefix_states = []
    direct = Engine(build_database(), policy=policy)
    prefix_states.append(capture_engine(direct))
    for item in stream:
        direct.apply(item)
        prefix_states.append(capture_engine(direct))

    seen_versions: set[int] = set()
    for record in observations:
        last_version = -1
        for kind, version, payload in record:
            # Snapshot versions count applied admissions = stream items,
            # so each observation names its exact prefix.
            assert 0 <= version <= len(stream)
            assert version >= last_version  # monotone per connection
            last_version = version
            seen_versions.add(version)
            expected = prefix_states[version]["items"]
            if kind == "state":
                # The state op ships the arena wire form; decode_capture
                # handles it (and re-interns, so equality is identity).
                assert decode_capture(payload)["items"] == {
                    row: entry for row, entry in expected.items()
                }
            elif kind == "rows":
                assert decode_rows(payload) == dict(expected)
            else:
                row, response = payload
                entry = expected.get(row)
                if entry is None:
                    assert response["expr"] is None and not response["stored"]
                else:
                    assert response["stored"]
                    assert response["live"] == entry[1]
                    assert expr_from_dict(response["expr"]) is entry[0]

    # Identity at full strength for the final states: the decoded
    # expression objects are the very nodes the direct engine holds.
    final_payload = observations[0][-1][2]
    for row, (expr, live) in decode_capture(final_payload)["items"].items():
        direct_expr, direct_live = prefix_states[-1]["items"][row]
        assert expr is direct_expr and live == direct_live

    # The pre-poll pins prefix 0 and the post-polls pin the full stream;
    # mid-stream prefixes show up as well under the 1ms stagger, but only
    # the invariant (every observation = some prefix) is load-bearing.
    assert {0, len(stream)} <= seen_versions
