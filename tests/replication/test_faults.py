"""Fault-injection sweep for journal shipping (ISSUE 10 acceptance).

A byte-budget TCP proxy sits between a follower and the primary's
shipping listener and kills the first session after exactly N forwarded
bytes — swept over **every frame boundary and inside every frame** of
the shipped stream, including inside the control frame that precedes
it.  After each cut the follower must reconnect, resume from its last
durable sequence, and converge to a journal holding every sequence
exactly once — no frame applied twice, none skipped — with state
bit-identical to the primary's.

The checkpoint transfer gets the same treatment: a cut mid-transfer
must leave the follower directory either untouched or fully
bootstrapped, never half.
"""

from __future__ import annotations

import socket
import threading
import time
from pathlib import Path

import pytest

from repro.db.database import Database
from repro.errors import ReplicationError, ServerError
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Insert, Modify, Transaction
from repro.replication.follower import FollowerCore, fetch_checkpoint
from repro.replication.hub import ReplicationHub, ReplicationListener
from repro.server.protocol import encode_frame
from repro.wal import JournaledEngine
from repro.wal.checkpoint import CHECKPOINT_FILE, JOURNAL_FILE
from repro.wal.journal import tail_journal

POLICY = "normal_form_batch"


def fresh_database():
    return Database.from_rows("R", ["a", "b"], [(i, i % 3) for i in range(9)])


def shipping_log():
    return [
        Transaction("p", [Delete("R", Pattern(2, eq={1: 0})), Insert("R", (100, 100))]),
        Transaction("q", [Modify("R", Pattern(2, eq={1: 1}), {1: 7})]),
        Transaction("r", [Delete("R", Pattern(2, eq={1: 7})), Insert("R", (101, 7))]),
        Transaction("s", [Modify("R", Pattern(2, eq={1: 7}), {0: 0})]),
    ]


def observed_state(engine):
    engine.support_count()
    return engine.executor.store.state()


def assert_bit_identical(follower_engine, primary_engine):
    a, b = observed_state(follower_engine), observed_state(primary_engine)
    assert a.keys() == b.keys()
    for name in a:
        assert a[name].keys() == b[name].keys()
        for row, (ann, live) in a[name].items():
            ref_ann, ref_live = b[name][row]
            assert live == ref_live, (name, row)
            assert ann is ref_ann, (name, row)  # identical interned object


def wait_until(predicate, timeout: float = 20.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail(f"timed out waiting for {message}")
        time.sleep(0.005)


class CuttingProxy:
    """A TCP proxy that cuts chosen sessions after a byte budget.

    ``budget_for(session_index)`` returns how many upstream->client bytes
    that session may forward before both sides are torn down (``None`` =
    unlimited).  Client->upstream bytes (the follower's sync requests)
    always flow — the cut models the shipping direction dying mid-frame.
    """

    def __init__(self, upstream: tuple[str, int], budget_for):
        self.upstream = upstream
        self.budget_for = budget_for
        self.sessions = 0
        self._server = socket.create_server(("127.0.0.1", 0))
        self._server.settimeout(0.1)
        self.address = self._server.getsockname()[:2]
        self._stop = threading.Event()
        self._socks: set = set()
        self._lock = threading.Lock()
        self._accepter = threading.Thread(target=self._accept_loop, daemon=True)
        self._accepter.start()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _ = self._server.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            session = self.sessions
            self.sessions += 1
            try:
                server = socket.create_connection(self.upstream)
            except OSError:
                client.close()
                continue
            with self._lock:
                self._socks.update({client, server})
            budget = self.budget_for(session)
            threading.Thread(
                target=self._pump, args=(client, server, None), daemon=True
            ).start()
            threading.Thread(
                target=self._pump, args=(server, client, budget), daemon=True
            ).start()

    def _pump(self, src: socket.socket, dst: socket.socket, budget) -> None:
        remaining = budget
        try:
            while True:
                data = src.recv(4096)
                if not data:
                    break
                if remaining is not None:
                    data = data[:remaining]
                    remaining -= len(data)
                if data:
                    dst.sendall(data)
                if remaining == 0:
                    break  # budget exhausted: the cut
        except OSError:
            pass
        finally:
            for sock in (src, dst):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                sock.close()

    def close(self) -> None:
        self._stop.set()
        self._server.close()
        with self._lock:
            socks = list(self._socks)
        for sock in socks:
            sock.close()


@pytest.fixture
def primary(tmp_path):
    """A journaled primary with the whole shipping log already applied."""
    engine = JournaledEngine(fresh_database(), tmp_path / "primary", policy=POLICY)
    engine.apply(shipping_log())
    hub = ReplicationHub(engine.journal)
    listener = ReplicationListener(hub, engine.checkpoints.checkpoint_path)
    try:
        yield engine, listener
    finally:
        listener.stop()
        engine.journal.close()


def converge_follower(directory, address, expect_seq, prefetch_from=None):
    """Bootstrap a follower against ``address`` and wait for ``expect_seq``.

    ``prefetch_from`` fetches the checkpoint directly (off-proxy) first,
    so the byte budget applies to the shipping stream alone.  Returns the
    stopped :class:`FollowerCore` for inspection.
    """
    if prefetch_from is not None:
        fetch_checkpoint(prefetch_from, directory)
    core = FollowerCore(
        directory,
        address,
        backoff=0.01,
        max_backoff=0.05,
        coalesce_delay=0.0,  # apply frames as they land: prompt convergence
        checkpoint_every=10**9,  # keep every shipped record in the journal
    )
    core.bootstrap()
    runner = threading.Thread(target=core.run, daemon=True)
    runner.start()
    try:
        wait_until(
            lambda: core.applied_seq >= expect_seq,
            message=f"follower to reach seq {expect_seq} (at {core.applied_seq})",
        )
    finally:
        core.stop()
        runner.join(timeout=10)
    return core


def stream_cut_budgets(lines, reply: bytes) -> list[int]:
    """Every frame boundary and a spread of mid-frame offsets."""
    budgets = [0, 1, len(reply) // 2, len(reply) - 1]  # inside the control frame
    offset = len(reply)
    for line in lines:
        budgets.append(offset)  # boundary: previous frame complete
        budgets.append(offset + 1)  # first byte of this frame
        budgets.append(offset + len(line) // 2)  # torn mid-frame
        offset += len(line)
    budgets.append(offset)  # clean end of the whole stream
    return budgets


def test_cut_at_every_frame_boundary_and_midframe(tmp_path, primary):
    engine, listener = primary
    last_seq = engine.journal.last_seq
    tail = tail_journal(engine.checkpoints.journal_path, 0)
    assert tail.last_seq == last_seq and not tail.pending_bytes
    reply = encode_frame({"ok": True, "mode": "stream", "from_seq": 0})

    for budget in stream_cut_budgets(tail.lines, reply):
        proxy = CuttingProxy(
            listener.address, lambda s, b=budget: b if s == 0 else None
        )
        try:
            directory = tmp_path / f"budget-{budget}"
            core = converge_follower(
                directory, proxy.address, last_seq, prefetch_from=listener.address
            )
        finally:
            proxy.close()
        # The cut actually happened and the follower lived through it.
        assert proxy.sessions >= (2 if budget < len(reply) + sum(map(len, tail.lines)) else 1)
        # No frame applied twice, none skipped: the follower journal holds
        # every shipped sequence exactly once, byte-identical lines.
        follower_tail = tail_journal(core.applier.journal.path, 0)
        assert [r["seq"] for r in follower_tail.records] == list(
            range(1, last_seq + 1)
        ), f"budget {budget}"
        assert follower_tail.lines == tail.lines, f"budget {budget}"
        assert_bit_identical(core.engine, engine)
        core.close()


def test_checkpoint_transfer_cut_is_atomic(tmp_path, primary):
    engine, listener = primary
    last_seq = engine.journal.last_seq
    checkpoint_bytes = engine.checkpoints.checkpoint_path.read_bytes()
    reply = encode_frame(
        {"ok": True, "mode": "checkpoint", "size": len(checkpoint_bytes)}
    )

    cut_points = [
        1,
        len(reply) - 1,
        len(reply),  # control frame complete, zero payload bytes
        len(reply) + 1,
        len(reply) + len(checkpoint_bytes) // 2,
        len(reply) + len(checkpoint_bytes) - 1,
    ]
    for budget in cut_points:
        directory = tmp_path / f"fetch-{budget}"
        proxy = CuttingProxy(
            listener.address, lambda s, b=budget: b if s == 0 else None
        )
        try:
            with pytest.raises((ReplicationError, ServerError)):
                fetch_checkpoint(proxy.address, directory)
            # Atomicity: the cut left no checkpoint and no journal behind.
            assert not (directory / CHECKPOINT_FILE).exists(), f"budget {budget}"
            assert not (directory / JOURNAL_FILE).exists(), f"budget {budget}"
            # The empty-handed retry bootstraps fully and converges.
            core = converge_follower(directory, proxy.address, last_seq)
        finally:
            proxy.close()
        assert_bit_identical(core.engine, engine)
        core.close()


def test_repeated_kills_under_live_appends(tmp_path, primary):
    """Every session dies young while the primary keeps appending."""
    engine, listener = primary
    reply_floor = len(encode_frame({"ok": True, "mode": "stream", "from_seq": 0}))
    budget = reply_floor + 200  # a handful of frames per session, then cut

    stop_appending = threading.Event()

    def append_more() -> None:
        i = 0
        while not stop_appending.is_set():
            engine.apply(Transaction(f"live{i}", [Insert("R", (200 + i, i))]))
            i += 1
            time.sleep(0.002)

    directory = tmp_path / "chased"
    fetch_checkpoint(listener.address, directory)
    proxy = CuttingProxy(listener.address, lambda s: budget)  # EVERY session cut
    core = FollowerCore(
        directory,
        proxy.address,
        backoff=0.01,
        max_backoff=0.05,
        coalesce_delay=0.0,
        checkpoint_every=10**9,
    )
    core.bootstrap()
    runner = threading.Thread(target=core.run, daemon=True)
    appender = threading.Thread(target=append_more, daemon=True)
    appender.start()
    runner.start()
    try:
        # Chase the moving tail through the kills for a genuine stretch.
        wait_until(
            lambda: core.applied_seq >= 60,
            message=f"follower to chase past seq 60 (at {core.applied_seq})",
        )
    finally:
        stop_appending.set()
        appender.join(timeout=10)
    last_seq = engine.journal.last_seq
    try:
        wait_until(
            lambda: core.applied_seq >= last_seq,
            message=f"follower to converge at seq {last_seq} (at {core.applied_seq})",
        )
    finally:
        core.stop()
        runner.join(timeout=10)
        proxy.close()
    assert proxy.sessions > 1  # the kills kept coming; progress survived them
    follower_tail = tail_journal(core.applier.journal.path, 0)
    assert [r["seq"] for r in follower_tail.records] == list(range(1, last_seq + 1))
    assert_bit_identical(core.engine, engine)
    core.close()
