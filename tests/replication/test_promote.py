"""Promote-on-failure: kill the primary, promote, lose nothing acked.

Real process topology (``repro replicate`` subprocesses over TCP): a
primary takes acknowledged transactions, two followers ship them, the
primary is SIGKILLed, and :func:`choose_promotion_candidate` picks the
most-advanced follower for ``promote``.  Every acknowledged transaction
must survive the failover, writes must continue against the promoted
node on the shipped journal sequence, and the re-pointed run's final
state must be bit-identical to a direct single-engine replay of the
same transaction stream — the failover changed who holds the pen, not
what got written.
"""

from __future__ import annotations

import time

import pytest

from repro.db.database import Database
from repro.engine.engine import Engine
from repro.queries.updates import Insert, Transaction
from repro.replication.client import ReplicatedClient
from repro.replication.node import choose_promotion_candidate
from repro.replication.process import spawn_follower, spawn_primary
from repro.server.client import ServerClient

POLICY = "normal_form_batch"
RELATION = "events"

ACKED_TXNS = 25  # transactions acknowledged before the crash
POST_TXNS = 15  # transactions written against the promoted node


def txn(i: int) -> Transaction:
    return Transaction(f"t{i}", [Insert(RELATION, (i, f"v{i}"))])


def wait_until(predicate, timeout: float = 30.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail(f"timed out waiting for {message}")
        time.sleep(0.01)


def version_of(client: ServerClient) -> int:
    return int(client.stats()["server"]["version"])


def assert_states_bit_identical(state, reference):
    assert state.keys() == reference.keys()
    for name in state:
        assert state[name].keys() == reference[name].keys(), name
        for row, (ann, live) in state[name].items():
            ref_ann, ref_live = reference[name][row]
            assert live == ref_live, (name, row)
            assert ann is ref_ann, (name, row)  # identical interned Expr


def test_promote_most_advanced_follower_loses_no_acked_txn(tmp_path):
    primary = spawn_primary(
        tmp_path / "primary", schema=[f"{RELATION}:id,value"], policy=POLICY
    )
    nodes = []
    clients = []
    client = None
    try:
        for i in range(2):
            nodes.append(
                spawn_follower(tmp_path / f"follower-{i}", primary.replication_address)
            )
        client = ReplicatedClient(
            primary.address,
            [node.address for node in nodes],
            max_lag=10**9,
            connect_retry=10.0,
        )
        for i in range(ACKED_TXNS):
            client.apply(txn(i))
        acked_seq = client.last_write_seq
        assert acked_seq == 2 * ACKED_TXNS  # one query + one txn_end each

        # Quiesce shipping until at least one follower holds every
        # acknowledged record: asynchronous shipping can only promise
        # "no acked transaction lost" for what has actually shipped, so
        # the operator's runbook promotes the *most-advanced* follower
        # once the stream has drained.
        clients = [ServerClient(*node.address, connect_retry=10.0) for node in nodes]
        wait_until(
            lambda: max(version_of(c) for c in clients) >= acked_seq,
            message=f"a follower to reach acked seq {acked_seq}",
        )

        primary.kill()  # the crash: SIGKILL, no flush, no goodbye
        wait_until(lambda: not primary.alive(), message="primary to die")

        candidate, candidate_seq = choose_promotion_candidate(clients)
        assert candidate_seq >= acked_seq  # most-advanced holds every ack
        outcome = candidate.promote()
        assert outcome == {"role": "primary", "seq": candidate_seq}
        assert candidate.stats()["server"]["role"] == "primary"

        # No acknowledged transaction was lost across the failover.
        promoted_state = candidate.state()
        for i in range(ACKED_TXNS):
            ann, live = promoted_state[RELATION][(i, f"v{i}")]
            assert live, i

        # Re-point writes at the promoted node; the journal sequence
        # continues where the shipped stream left off.
        promoted = nodes[clients.index(candidate)]
        client.repoint(promoted.address)
        for i in range(ACKED_TXNS, ACKED_TXNS + POST_TXNS):
            client.apply(txn(i))
        assert client.last_write_seq == candidate_seq + 2 * POST_TXNS

        # The re-pointed run is bit-identical to a direct replay of the
        # same transaction stream on one engine that never failed over.
        reference = Engine(
            Database.from_rows(RELATION, ["id", "value"], []), policy=POLICY
        )
        reference.apply([txn(i) for i in range(ACKED_TXNS + POST_TXNS)])
        reference.support_count()  # flush, then snapshot
        assert_states_bit_identical(
            candidate.state(), reference.executor.store.state()
        )
    finally:
        if client is not None:
            client.close()
        for c in clients:
            c.close()
        for node in nodes:
            node.stop()
        primary.kill()
