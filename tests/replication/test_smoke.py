"""CI replication smoke: a real topology under multiprocess load.

One ``repro replicate`` primary plus two follower subprocesses take a
full multiprocess loadgen run whose readers route through the
read/write splitter.  Afterwards the topology is drained and quiesced,
and all three nodes must serve **bit-identical** ``state`` at the same
journal version — the keel, observed end-to-end across process
boundaries.  The run's ``BENCH_loadgen_*.json`` must be well-formed
and carry ``replica_lag`` samples (the follower-read staleness
histogram the splitter feeds).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.loadgen import profile_from_name, run_loadgen, schema_specs, write_result
from repro.queries.updates import Insert, Transaction
from repro.replication.process import spawn_follower, spawn_primary
from repro.server.client import ServerClient

POLICY = "normal_form_batch"


def wait_until(predicate, timeout: float = 60.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail(f"timed out waiting for {message}")
        time.sleep(0.01)


def assert_states_bit_identical(state, reference):
    assert state.keys() == reference.keys()
    for name in state:
        assert state[name].keys() == reference[name].keys(), name
        for row, (ann, live) in state[name].items():
            ref_ann, ref_live = reference[name][row]
            assert live == ref_live, (name, row)
            assert ann is ref_ann, (name, row)  # identical interned Expr


def test_topology_survives_multiprocess_load_and_quiesces_identical(tmp_path):
    profile = profile_from_name("tiny")
    primary = spawn_primary(
        tmp_path / "primary", schema=schema_specs(profile), policy=POLICY
    )
    nodes = []
    clients = []
    try:
        for i in range(2):
            nodes.append(
                spawn_follower(tmp_path / f"follower-{i}", primary.replication_address)
            )
        result = run_loadgen(
            profile,
            host=primary.address[0],
            port=primary.address[1],
            mode="process",  # the real swarm: one OS process per worker
            followers=[node.address for node in nodes],
            max_lag=10**9,  # every read scales out; lag lands in the histogram
        )
        assert result.errors_total == 0
        assert result.hists["replica_lag"].count > 0

        # The persisted trajectory is well-formed and keeps the samples.
        path = write_result(result, tmp_path)
        payload = json.loads(path.read_text())
        assert payload["kind"] == "loadgen"
        assert payload["schema_version"] >= 1
        lag = payload["payload"]["ops"]["replica_lag"]
        assert lag["summary"]["count"] == result.hists["replica_lag"].count
        assert lag["histogram"]["count"] == lag["summary"]["count"]

        # Drain and quiesce: a marker write yields the primary's final
        # journal sequence (a primary's stats version counts admission
        # groups, not journal records — only write acks carry the seq),
        # then both followers catch up to exactly that sequence.
        writer = ServerClient(*primary.address, connect_retry=10.0)
        clients = [writer] + [
            ServerClient(*node.address, connect_retry=10.0) for node in nodes
        ]
        writer.apply(Transaction("quiesce", [Insert("load_0", (10**6, 0, 0))]))
        seq = writer.last_seq
        assert seq
        wait_until(
            lambda: all(
                int(c.stats()["server"]["version"]) >= seq for c in clients[1:]
            ),
            message=f"followers to drain to seq {seq}",
        )

        # Three-way bit-identical state at the same journal sequence: a
        # follower's snapshot version IS its applied seq, so the version
        # check pins both reads to the drained sequence.
        states = [writer.state()]
        for client in clients[1:]:
            states.append(client.state())
            assert client.last_version == seq
        assert_states_bit_identical(states[1], states[0])
        assert_states_bit_identical(states[2], states[0])
    finally:
        for client in clients:
            client.close()
        for node in nodes:
            node.stop()
        primary.stop()
