"""Proposition 5.1: the naive construction's exponential blowup, verified."""

from repro.bench.measure import series_run
from repro.db.database import Database
from repro.queries.pattern import Pattern
from repro.queries.updates import Modify, Transaction
from repro.workloads.logs import UpdateLog


def alternating_log(n_queries: int) -> tuple[Database, UpdateLog]:
    db = Database.from_rows("R", ["value"], [("a",), ("b",)])
    u12 = Modify("R", Pattern(1, eq={0: "a"}), {0: "b"})
    u21 = Modify("R", Pattern(1, eq={0: "b"}), {0: "a"})
    queries = [u12 if i % 2 == 0 else u21 for i in range(n_queries)]
    return db, UpdateLog([Transaction("p", queries)])


def test_naive_expanded_size_is_exponential():
    db, log = alternating_log(20)
    run = series_run(db, log, "naive", list(range(2, 21, 2)))
    sizes = [cp.expanded_size for cp in run.checkpoints]
    # Proposition 5.1: |P^{2i}(t2)| > 2^i; check the even checkpoints.
    for i, size in enumerate(sizes, start=1):
        assert size > 2**i
    # Strictly (and rapidly) growing: each step at least x1.5.
    for previous, current in zip(sizes, sizes[1:]):
        assert current > 1.5 * previous


def test_normal_form_size_is_constant_on_the_same_log():
    db, log = alternating_log(20)
    run = series_run(db, log, "normal_form", list(range(2, 21, 2)))
    sizes = [cp.expanded_size for cp in run.checkpoints]
    assert max(sizes) <= 16  # both tuples in bounded Theorem 5.3 shapes
    assert len(set(sizes)) <= 2  # reaches its fixpoint immediately


def test_naive_and_normal_form_agree_on_the_result():
    db, log = alternating_log(15)
    from repro.engine.engine import Engine

    naive = Engine(db, policy="naive").apply(log)
    nf = Engine(db, policy="normal_form").apply(log)
    vanilla = Engine(db, policy="none").apply(log)
    assert naive.result().same_contents(vanilla.result())
    assert nf.result().same_contents(vanilla.result())


def test_naive_dag_size_stays_linear():
    """Hash-consing keeps the *stored* size linear even as trees explode."""
    db, log = alternating_log(24)
    run = series_run(db, log, "naive", [24])
    final = run.final()
    assert final.expanded_size > 2**12
    assert final.stored_size < 24 * 10
