"""The Theorem 5.3 normal-form state machine (shapes and transitions)."""

import pytest

from repro.core.expr import ZERO, minus, plus_i, plus_m, ssum, times_m, var
from repro.core.normal_form import Contribution, NormalForm, Shape, merge_contributions

P = var("p")
Q = var("q")
A = var("a")
B = var("b")
C = var("c")


def untouched(e=A):
    return NormalForm.untouched(e)


class TestShapes:
    def test_untouched_to_expr(self):
        assert untouched().to_expr() is A

    def test_absent_is_zero(self):
        assert NormalForm.absent().to_expr() is ZERO

    def test_ins_shape(self):
        nf = NormalForm(Shape.INS, A, (), P)
        assert nf.to_expr() is plus_i(A, P)

    def test_del_shape(self):
        nf = NormalForm(Shape.DEL, A, (), P)
        assert nf.to_expr() is minus(A, P)

    def test_mod_shape(self):
        nf = NormalForm(Shape.MOD, A, (B, C), P)
        assert nf.to_expr() is plus_m(A, times_m(ssum([B, C]), P))

    def test_delmod_shape(self):
        nf = NormalForm(Shape.DELMOD, A, (B,), P)
        assert nf.to_expr() is plus_m(minus(A, P), times_m(B, P))

    def test_mod_with_zero_base_zero_folds(self):
        """Proposition 5.5's third form: (b0 + ... + bn) *M p."""
        nf = NormalForm(Shape.MOD, ZERO, (B, C), P)
        assert nf.to_expr() is times_m(ssum([B, C]), P)

    def test_non_untouched_requires_annotation(self):
        with pytest.raises(ValueError):
            NormalForm(Shape.INS, A, (), None)
        with pytest.raises(ValueError):
            NormalForm(Shape.DEL, A, (), plus_i(A, P))  # not a variable

    def test_untouched_cannot_carry_annotation(self):
        with pytest.raises(ValueError):
            NormalForm(Shape.UNTOUCHED, A, (), P)

    def test_only_mod_shapes_carry_sources(self):
        with pytest.raises(ValueError):
            NormalForm(Shape.INS, A, (B,), P)


class TestInsertTransitions:
    """Rule 1: insertion overrides previous same-annotation updates."""

    def test_insert_on_untouched(self):
        assert untouched().on_insert(P).to_expr() is plus_i(A, P)

    def test_insert_on_absent(self):
        assert NormalForm.absent().on_insert(P).to_expr() is P  # 0 +I p = p

    def test_insert_idempotent(self):
        nf = untouched().on_insert(P).on_insert(P)
        assert nf.to_expr() is plus_i(A, P)

    def test_insert_after_delete_axiom_10(self):
        nf = untouched().on_delete(P).on_insert(P)
        assert nf.to_expr() is plus_i(A, P)

    def test_insert_after_mod_axiom_9(self):
        nf = untouched().absorb(Contribution((B,)), P).on_insert(P)
        assert nf.to_expr() is plus_i(A, P)

    def test_insert_under_new_annotation_freezes(self):
        nf = untouched().on_delete(P).on_insert(Q)
        assert nf.to_expr() is plus_i(minus(A, P), Q)


class TestDeleteTransitions:
    """Rule 2: deletion overrides previous same-annotation updates."""

    def test_delete_on_untouched(self):
        assert untouched().on_delete(P).to_expr() is minus(A, P)

    def test_delete_idempotent_axiom_4(self):
        nf = untouched().on_delete(P).on_delete(P)
        assert nf.to_expr() is minus(A, P)

    def test_delete_after_insert_axiom_7(self):
        nf = untouched().on_insert(P).on_delete(P)
        assert nf.to_expr() is minus(A, P)

    def test_delete_after_mod_axiom_2(self):
        nf = untouched().absorb(Contribution((B,)), P).on_delete(P)
        assert nf.to_expr() is minus(A, P)

    def test_delete_after_delmod(self):
        nf = untouched().on_delete(P).absorb(Contribution((B,)), P).on_delete(P)
        assert nf.to_expr() is minus(A, P)

    def test_delete_under_new_annotation_freezes(self):
        nf = untouched().on_insert(P).on_delete(Q)
        assert nf.to_expr() is minus(plus_i(A, P), Q)


class TestContributions:
    """Rules 3/4/7/8: what a source passes to its modification target."""

    def test_untouched_contributes_its_expression(self):
        assert untouched().contribution(P) == Contribution((A,))

    def test_absent_contributes_nothing(self):
        assert NormalForm.absent().contribution(P).is_empty

    def test_deleted_source_contributes_nothing_rule_3(self):
        assert untouched().on_delete(P).contribution(P).is_empty

    def test_inserted_source_contributes_insertion_marker_rule_4(self):
        c = untouched().on_insert(P).contribution(P)
        assert c.inserted and not c.sources

    def test_modified_source_flattens_rule_7(self):
        nf = untouched().absorb(Contribution((B, C)), P)
        assert set(nf.contribution(P).sources) == {A, B, C}

    def test_delmod_source_drops_deleted_spine_rule_8(self):
        nf = untouched().on_delete(P).absorb(Contribution((B,)), P)
        assert nf.contribution(P).sources == (B,)

    def test_mod_with_zero_base_contributes_only_sources(self):
        nf = NormalForm.absent().absorb(Contribution((B,)), P)
        assert nf.contribution(P).sources == (B,)

    def test_cross_annotation_contribution_is_frozen_expression(self):
        nf = untouched().on_delete(P)
        c = nf.contribution(Q)
        assert c.sources == (minus(A, P),)

    def test_merge_dedups_and_accumulates_inserted(self):
        merged = merge_contributions(
            [Contribution((A, B)), Contribution((B, C)), Contribution((), True)]
        )
        assert merged.sources == (A, B, C)
        assert merged.inserted


class TestAbsorb:
    """Rules 4/5/6: how a target integrates a contribution."""

    def test_absorb_on_untouched_makes_mod(self):
        nf = untouched().absorb(Contribution((B,)), P)
        assert nf.shape is Shape.MOD
        assert nf.to_expr() is plus_m(A, times_m(B, P))

    def test_absorb_empty_contribution_is_noop(self):
        nf = untouched()
        assert nf.absorb(Contribution(), P) is nf

    def test_absorb_inserted_contribution_rule_4(self):
        nf = untouched().absorb(Contribution((), True), P)
        assert nf.to_expr() is plus_i(A, P)

    def test_inserted_target_absorbs_rule_5(self):
        nf = untouched().on_insert(P).absorb(Contribution((B,)), P)
        assert nf.to_expr() is plus_i(A, P)

    def test_successive_mods_factorize_rule_6(self):
        nf = untouched().absorb(Contribution((B,)), P).absorb(Contribution((C,)), P)
        assert nf.shape is Shape.MOD
        assert set(nf.sources) == {B, C}

    def test_absorb_on_deleted_target_makes_delmod(self):
        nf = untouched().on_delete(P).absorb(Contribution((B,)), P)
        assert nf.shape is Shape.DELMOD
        assert nf.to_expr() is plus_m(minus(A, P), times_m(B, P))

    def test_delmod_absorbs_more_sources(self):
        nf = (
            untouched()
            .on_delete(P)
            .absorb(Contribution((B,)), P)
            .absorb(Contribution((C,)), P)
        )
        assert nf.shape is Shape.DELMOD
        assert set(nf.sources) == {B, C}

    def test_absorb_dedups_sources(self):
        nf = untouched().absorb(Contribution((B,)), P).absorb(Contribution((B,)), P)
        assert nf.sources == (B,)

    def test_absorb_under_new_annotation_freezes_first(self):
        nf = untouched().absorb(Contribution((B,)), P).absorb(Contribution((C,)), Q)
        frozen = plus_m(A, times_m(B, P))
        assert nf.to_expr() is plus_m(frozen, times_m(C, Q))


class TestSizeBounds:
    def test_linear_size_within_transaction(self):
        """Theorem 5.3: per-tuple size linear in sources, constant in updates."""
        nf = untouched()
        for i in range(100):
            nf = nf.absorb(Contribution((var(f"b{i % 5}"),)), P)
        # Five distinct sources at most, regardless of 100 updates.
        assert len(nf.sources) == 5
        assert nf.to_expr().size() <= 2 * 5 + 5

    def test_added_size_is_constant_plus_sources(self):
        nf = NormalForm(Shape.DELMOD, A, (B, C), P)
        assert nf.added_size() <= 8


class TestEquality:
    def test_source_order_irrelevant(self):
        nf1 = NormalForm(Shape.MOD, A, (B, C), P)
        nf2 = NormalForm(Shape.MOD, A, (C, B), P)
        assert nf1 == nf2 and hash(nf1) == hash(nf2)

    def test_different_shapes_differ(self):
        assert NormalForm(Shape.INS, A, (), P) != NormalForm(Shape.DEL, A, (), P)

    def test_repr_shows_shape_and_expression(self):
        nf = NormalForm(Shape.DEL, A, (), P)
        assert "del" in repr(nf) and "(a - p)" in repr(nf)
