"""Unit tests for UP[X] expression construction and measures."""

import pytest

from repro.core.expr import (
    MINUS,
    PLUS_I,
    PLUS_M,
    SUM,
    TIMES_M,
    VAR,
    ZERO,
    Expr,
    depth,
    evaluate,
    minus,
    plus_i,
    plus_m,
    postorder,
    size,
    ssum,
    subexpressions,
    substitute,
    times_m,
    to_infix,
    to_tree,
    var,
    variables,
)
from repro.core.equivalence import BoolStructure


class TestConstruction:
    def test_var_is_interned(self):
        assert var("p") is var("p")

    def test_distinct_names_distinct_nodes(self):
        assert var("p") is not var("q")

    def test_var_requires_nonempty_string(self):
        with pytest.raises(TypeError):
            var("")
        with pytest.raises(TypeError):
            var(3)  # type: ignore[arg-type]

    def test_binary_nodes_are_interned(self):
        a, p = var("a"), var("p")
        assert plus_i(a, p) is plus_i(a, p)
        assert minus(a, p) is minus(a, p)
        assert plus_m(a, p) is plus_m(a, p)
        assert times_m(a, p) is times_m(a, p)

    def test_kinds(self):
        a, p = var("a"), var("p")
        assert plus_i(a, p).kind == PLUS_I
        assert minus(a, p).kind == MINUS
        assert plus_m(a, p).kind == PLUS_M
        assert times_m(a, p).kind == TIMES_M
        assert ssum([a, p]).kind == SUM
        assert a.kind == VAR and ZERO.kind == "zero"

    def test_left_right_accessors(self):
        e = minus(var("a"), var("p"))
        assert e.left is var("a") and e.right is var("p")
        with pytest.raises(ValueError):
            var("a").left

    def test_direct_instantiation_discouraged_but_isolated(self):
        # Direct Expr() bypasses interning; it must not corrupt the table.
        rogue = Expr(VAR, "a", ())
        assert rogue is not var("a")


class TestZeroAxioms:
    """The Section 3.1 zero-related axioms, applied by the constructors."""

    def test_minus_zero_left_annihilates(self):
        assert minus(ZERO, var("p")) is ZERO

    def test_minus_zero_right_is_identity(self):
        assert minus(var("a"), ZERO) is var("a")

    def test_plus_i_zero_left(self):
        assert plus_i(ZERO, var("p")) is var("p")

    def test_plus_i_zero_right(self):
        assert plus_i(var("a"), ZERO) is var("a")

    def test_plus_m_zero_left(self):
        assert plus_m(ZERO, var("p")) is var("p")

    def test_plus_m_zero_right(self):
        assert plus_m(var("a"), ZERO) is var("a")

    def test_times_m_zero_annihilates_both_sides(self):
        assert times_m(ZERO, var("p")) is ZERO
        assert times_m(var("a"), ZERO) is ZERO

    def test_example_3_1_target_annotation(self):
        # 0 +M ((p1 + p3) *M p) = (p1 + p3) *M p
        contribution = times_m(ssum([var("p1"), var("p3")]), var("p"))
        assert plus_m(ZERO, contribution) is contribution


class TestSum:
    def test_empty_sum_is_zero(self):
        assert ssum([]) is ZERO

    def test_singleton_sum_unwraps(self):
        assert ssum([var("a")]) is var("a")

    def test_zero_terms_dropped(self):
        assert ssum([ZERO, var("a"), ZERO]) is var("a")

    def test_nested_sums_flatten(self):
        inner = ssum([var("a"), var("b")])
        outer = ssum([inner, var("c")])
        assert outer.children == (var("a"), var("b"), var("c"))

    def test_duplicates_kept_by_default(self):
        s = ssum([var("a"), var("a")])
        assert s.children == (var("a"), var("a"))

    def test_dedup_preserves_first_occurrence_order(self):
        s = ssum([var("b"), var("a"), var("b")], dedup=True)
        assert s.children == (var("b"), var("a"))


class TestMeasures:
    def test_leaf_sizes(self):
        assert size(var("a")) == 1
        assert size(ZERO) == 1
        assert depth(var("a")) == 1

    def test_size_counts_shared_nodes_with_multiplicity(self):
        a = plus_i(var("x"), var("p"))  # 3 nodes
        e = plus_m(a, times_m(a, var("p")))  # tree: 1 + 3 + (1 + 3 + 1)
        assert size(e) == 9
        assert len(subexpressions(e)) == 5  # x, p, a, a*Mp, root

    def test_exponential_expanded_size_small_dag(self):
        e = var("x")
        for _ in range(30):
            e = plus_m(e, times_m(e, var("p")))
        assert size(e) > 2**30
        assert len(subexpressions(e)) <= 2 + 2 * 30

    def test_depth(self):
        e = minus(plus_i(var("a"), var("p")), var("q"))
        assert depth(e) == 3

    def test_variables(self):
        e = plus_m(minus(var("a"), var("p")), times_m(var("b"), var("p")))
        assert variables(e) == {"a", "b", "p"}
        assert e.variables() == {"a", "b", "p"}

    def test_zero_has_no_variables(self):
        assert variables(ZERO) == frozenset()


class TestTraversal:
    def test_postorder_children_before_parents(self):
        e = plus_m(var("a"), times_m(var("b"), var("p")))
        order = list(postorder(e))
        assert order.index(var("b")) < order.index(times_m(var("b"), var("p")))
        assert order[-1] is e

    def test_postorder_yields_shared_nodes_once(self):
        shared = plus_i(var("a"), var("p"))
        e = plus_m(shared, times_m(shared, var("p")))
        order = list(postorder(e))
        assert order.count(shared) == 1

    def test_deep_chain_does_not_recurse(self):
        e = var("x")
        for i in range(5000):
            e = minus(e, var(f"p{i % 7}"))
        assert size(e) == 5001 + 5000  # leaf + (node + annotation) per step - adjust
        # 1 leaf, each minus adds 1 node + 1 annotation leaf occurrence
        assert depth(e) == 5001


class TestEvaluate:
    def test_boolean_evaluation(self):
        s = BoolStructure()
        e = plus_m(minus(var("a"), var("p")), times_m(var("b"), var("p")))
        assert evaluate(e, s, {"a": True, "b": False, "p": False}) is True
        assert evaluate(e, s, {"a": True, "b": False, "p": True}) is False
        assert evaluate(e, s, {"a": False, "b": True, "p": True}) is True

    def test_env_callable(self):
        s = BoolStructure()
        e = plus_i(var("a"), var("p"))
        assert evaluate(e, s, lambda name: name == "p") is True

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            evaluate(var("a"), BoolStructure(), {})

    def test_sum_evaluation(self):
        s = BoolStructure()
        e = times_m(ssum([var("a"), var("b"), var("c")]), var("p"))
        env = {"a": False, "b": False, "c": True, "p": True}
        assert evaluate(e, s, env) is True

    def test_evaluation_on_shared_dag_is_polynomial(self):
        # 60 doublings = 2^60 expanded nodes; evaluation must still be instant.
        e = var("x")
        for _ in range(60):
            e = plus_m(e, times_m(e, var("p")))
        assert evaluate(e, BoolStructure(), {"x": True, "p": True}) is True


class TestSubstitute:
    def test_substitute_variable(self):
        e = plus_i(var("a"), var("p"))
        out = substitute(e, {"a": var("b")})
        assert out is plus_i(var("b"), var("p"))

    def test_substitute_zero_triggers_zero_axioms(self):
        e = plus_m(var("a"), times_m(var("b"), var("p")))
        assert substitute(e, {"p": ZERO}) is var("a")

    def test_substitute_missing_names_untouched(self):
        e = minus(var("a"), var("p"))
        assert substitute(e, {}) is e

    def test_paper_section_3_1_assignment_example(self):
        # p1 +M (p2 *M p): p := 1-like (leave), p2 := 0 gives p1.
        e = plus_m(var("p1"), times_m(var("p2"), var("p")))
        assert substitute(e, {"p2": ZERO}) is var("p1")


class TestRendering:
    def test_infix(self):
        e = minus(plus_m(var("p1"), times_m(var("p3"), var("p"))), var("p"))
        assert to_infix(e) == "((p1 +M (p3 *M p)) - p)"

    def test_infix_zero(self):
        assert to_infix(ZERO) == "0"

    def test_str_and_repr(self):
        e = plus_i(var("a"), var("p"))
        assert str(e) == "(a +I p)"
        assert "a +I p" in repr(e)

    def test_tree_rendering_contains_all_labels(self):
        e = plus_m(var("a"), times_m(ssum([var("b"), var("c")]), var("p")))
        rendered = to_tree(e)
        for label in ("+M", "*M", "+", "a", "b", "c", "p"):
            assert label in rendered
