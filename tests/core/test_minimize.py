"""Proposition 5.5 minimization (zero-axiom post-processing)."""

from repro.core.expr import Expr, MINUS, PLUS_M, TIMES_M, ZERO, minus, plus_i, plus_m, ssum, times_m, var
from repro.core.minimize import is_minimized, minimize

A, B, P = var("a"), var("b"), var("p")


def raw(kind: str, *children: Expr) -> Expr:
    """Build a node bypassing the smart constructors (simulates foreign input)."""
    return Expr(kind, None, children)


def test_constructor_output_is_already_minimized():
    e = plus_m(minus(A, P), times_m(ssum([A, B]), P))
    assert minimize(e) is e
    assert is_minimized(e)


def test_raw_zero_plus_m_folds():
    e = raw(PLUS_M, ZERO, raw(TIMES_M, A, P))
    assert minimize(e) is times_m(A, P)


def test_raw_zero_minus_folds_to_zero():
    e = raw(MINUS, ZERO, P)
    assert minimize(e) is ZERO


def test_raw_times_zero_annihilates():
    e = raw(PLUS_M, A, raw(TIMES_M, ZERO, P))
    assert minimize(e) is A


def test_deep_raw_chain_minimizes_iteratively():
    e: Expr = ZERO
    for _ in range(3000):
        e = raw(MINUS, e, P)
    assert minimize(e) is ZERO


def test_proposition_5_5_forms():
    """Minimized normal forms are: a shape, 0, or (b0+...+bn) *M p."""
    # shape 5 with base 0: ((0 - p) +M ((b) *M p)) -> (b *M p)
    e = raw(PLUS_M, raw(MINUS, ZERO, P), raw(TIMES_M, B, P))
    assert minimize(e) is times_m(B, P)
    # all-zero: 0
    assert minimize(raw(TIMES_M, ZERO, ZERO)) is ZERO
    # untouched shapes minimize to themselves
    assert minimize(plus_i(A, P)) is plus_i(A, P)


def test_minimize_is_idempotent():
    e = raw(PLUS_M, raw(MINUS, ZERO, P), raw(TIMES_M, ssum([A, B]), P))
    once = minimize(e)
    assert minimize(once) is once


def test_is_minimized_detects_foreign_zeros():
    assert not is_minimized(raw(PLUS_M, ZERO, A))
    assert is_minimized(A)
    assert is_minimized(ZERO)
