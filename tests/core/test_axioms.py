"""The twelve Figure 3 axioms: structure checks and symbolic instances."""

import itertools

import pytest

from repro.bdd import Bdd, expr_to_bdd
from repro.core.axioms import ALL_AXIOMS, AXIOMS_BY_NAME, axiom_violations, check_structure
from repro.core.equivalence import BoolStructure
from repro.errors import StructureError
from repro.semantics.boolean import BooleanStructure
from repro.semantics.sets import SetStructure
from repro.semantics.trust import TrustStructure, TrustValue

BOOL_ELEMENTS = [False, True]
SET_ELEMENTS = [
    frozenset(c) for r in range(3) for c in itertools.combinations(("x", "y"), r)
]
TRUST_ELEMENTS = [
    TrustValue(1.0, "T"),
    TrustValue(0.0, "F"),
    TrustValue(0.9, "U"),
    TrustValue(0.2, "U"),
]


def test_axiom_catalog_is_complete():
    assert len(ALL_AXIOMS) == 12
    assert set(AXIOMS_BY_NAME) == {f"axiom_{i}" for i in range(1, 13)}


@pytest.mark.parametrize("axiom", ALL_AXIOMS, ids=lambda a: a.name)
def test_axioms_hold_in_boolean_structure_exhaustively(axiom):
    for case in itertools.product(BOOL_ELEMENTS, repeat=len(axiom.params)):
        assert axiom.holds_in(BooleanStructure(), dict(zip(axiom.params, case)))


@pytest.mark.parametrize("axiom", ALL_AXIOMS, ids=lambda a: a.name)
def test_axioms_hold_in_set_structure_exhaustively(axiom):
    structure = SetStructure({"x", "y"})
    for case in itertools.product(SET_ELEMENTS, repeat=len(axiom.params)):
        assert axiom.holds_in(structure, dict(zip(axiom.params, case)))


@pytest.mark.parametrize("axiom", ALL_AXIOMS, ids=lambda a: a.name)
def test_axioms_hold_in_trust_structure_exhaustively(axiom):
    structure = TrustStructure(0.5)
    for case in itertools.product(TRUST_ELEMENTS, repeat=len(axiom.params)):
        assert axiom.holds_in(structure, dict(zip(axiom.params, case)))


@pytest.mark.parametrize("axiom", ALL_AXIOMS, ids=lambda a: a.name)
def test_axioms_hold_symbolically_under_bdd_semantics(axiom):
    """Both sides of every axiom denote the same Boolean function."""
    lhs, rhs = axiom.instantiate()
    bdd = Bdd(sorted(lhs.variables() | rhs.variables()))
    assert expr_to_bdd(lhs, bdd) == expr_to_bdd(rhs, bdd)


def test_check_structure_passes_boolean():
    assert check_structure(BooleanStructure(), BOOL_ELEMENTS)


def test_axiom_violations_empty_for_valid_structure():
    assert axiom_violations(SetStructure({"x"}), [frozenset(), frozenset({"x"})]) == []


class _BrokenMinus(BooleanStructure):
    """Monus-like minus (truncated), which the paper notes fails axiom 10."""

    name = "broken"

    def minus(self, a: bool, b: bool) -> bool:
        return a  # ignores b entirely: (a - b) +I b != a +I b fails axiom 2 etc.


def test_axiom_violations_detects_broken_structure():
    violations = axiom_violations(_BrokenMinus(), BOOL_ELEMENTS)
    assert violations
    names = {name for name, _ in violations}
    # Deleting must actually remove: axiom 2 (mod-then-delete) breaks.
    assert "axiom_2" in names


def test_check_axioms_method_raises_with_witness():
    with pytest.raises(StructureError) as err:
        _BrokenMinus().check_axioms(BOOL_ELEMENTS)
    assert "axiom" in str(err.value)


def test_instantiate_with_custom_mapping():
    from repro.core.expr import var

    axiom = AXIOMS_BY_NAME["axiom_4"]
    lhs, rhs = axiom.instantiate({"a": var("t1"), "b": var("q")})
    assert str(lhs) == "((t1 - q) - q)"
    assert str(rhs) == "(t1 - q)"


def test_example_3_3_derivation():
    """(a +M (b *M c)) - c = a - c — the axiom the paper derives first."""
    axiom = AXIOMS_BY_NAME["axiom_2"]
    lhs, rhs = axiom.instantiate()
    assert str(lhs) == "((a +M (b *M c)) - c)"
    assert str(rhs) == "(a - c)"


def test_axiom_sampling_path_large_carrier():
    """Big carriers trigger the sampling branch instead of exhaustion."""
    structure = SetStructure(set(range(8)))
    elements = [frozenset({i}) for i in range(8)] + [frozenset(), frozenset(range(8))]
    assert check_structure(structure, elements, max_cases=500)
