"""Hash-consing guarantees of the expression store."""

from repro.core.expr import (
    intern_table_size,
    minus,
    plus_i,
    plus_m,
    ssum,
    times_m,
    var,
)


def test_structural_equality_is_identity():
    e1 = plus_m(minus(var("a"), var("p")), times_m(ssum([var("a"), var("b")]), var("p")))
    e2 = plus_m(minus(var("a"), var("p")), times_m(ssum([var("a"), var("b")]), var("p")))
    assert e1 is e2


def test_table_grows_only_for_new_structures():
    base = intern_table_size()
    x = plus_i(var("fresh_intern_x"), var("fresh_intern_p"))
    grown = intern_table_size()
    assert grown >= base + 3  # two vars + the node
    _again = plus_i(var("fresh_intern_x"), var("fresh_intern_p"))
    assert intern_table_size() == grown  # nothing new


def test_clear_semantics_in_isolated_process():
    """Clearing drops identity for prior expressions but restores interning.

    Run in a subprocess: clearing the process-global table would break the
    identity guarantees every *other* test in this suite relies on.
    """
    import subprocess
    import sys

    from ..conftest import subprocess_env

    env = subprocess_env()
    script = (
        "from repro.core.expr import ZERO, clear_intern_table, minus, var\n"
        "before = minus(var('a'), var('p'))\n"
        "clear_intern_table()\n"
        "after = minus(var('a'), var('p'))\n"
        "assert str(after) == str(before)\n"
        "assert after is not before\n"
        "assert minus(var('a'), var('p')) is after\n"
        "assert minus(ZERO, var('q')) is ZERO\n"
        "print('ok')\n"
    )
    completed = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, text=True, timeout=60
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip() == "ok"
