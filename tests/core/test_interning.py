"""Hash-consing guarantees of the expression store."""

from repro.core.expr import (
    intern_table_size,
    minus,
    plus_i,
    plus_m,
    ssum,
    times_m,
    var,
)


def test_structural_equality_is_identity():
    e1 = plus_m(minus(var("a"), var("p")), times_m(ssum([var("a"), var("b")]), var("p")))
    e2 = plus_m(minus(var("a"), var("p")), times_m(ssum([var("a"), var("b")]), var("p")))
    assert e1 is e2


def test_table_grows_only_for_new_structures():
    base = intern_table_size()
    x = plus_i(var("fresh_intern_x"), var("fresh_intern_p"))
    grown = intern_table_size()
    assert grown >= base + 3  # two vars + the node
    _again = plus_i(var("fresh_intern_x"), var("fresh_intern_p"))
    assert intern_table_size() == grown  # nothing new


def test_clear_semantics_in_isolated_process():
    """Clearing drops identity for prior expressions but restores interning.

    Run in a subprocess: clearing the process-global table would break the
    identity guarantees every *other* test in this suite relies on.
    """
    import subprocess
    import sys

    from ..conftest import subprocess_env

    env = subprocess_env()
    script = (
        "from repro.core.expr import ZERO, clear_intern_table, minus, var\n"
        "before = minus(var('a'), var('p'))\n"
        "clear_intern_table()\n"
        "after = minus(var('a'), var('p'))\n"
        "assert str(after) == str(before)\n"
        "assert after is not before\n"
        "assert minus(var('a'), var('p')) is after\n"
        "assert minus(ZERO, var('q')) is ZERO\n"
        "print('ok')\n"
    )
    completed = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, text=True, timeout=60
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip() == "ok"


def test_concurrent_interning_yields_one_object_per_shape():
    """The intern table is race-free under concurrent construction (PR 5).

    The provenance server runs its writer on a thread beside client
    decoders in the same process, so two threads may intern the same
    shape simultaneously.  ``_intern``'s miss path goes through the
    atomic ``dict.setdefault``, so both must receive the single table
    entry — a check-then-insert would let each escape with its own node,
    silently breaking structural-equality-iff-identity for the process.
    """
    import threading

    n_threads, n_shapes = 8, 300
    results: list[list] = [[] for _ in range(n_threads)]
    barrier = threading.Barrier(n_threads)

    def worker(k: int) -> None:
        barrier.wait()  # maximize overlap on the miss path
        for i in range(n_shapes):
            results[k].append(
                plus_m(
                    minus(var(f"race_a{i}"), var(f"race_p{i}")),
                    times_m(var(f"race_a{i}"), var(f"race_p{i}")),
                )
            )

    threads = [threading.Thread(target=worker, args=(k,)) for k in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    for k in range(1, n_threads):
        assert len(results[k]) == n_shapes
        for left, right in zip(results[0], results[k]):
            assert left is right


def _run_isolated(script: str) -> None:
    """Run a GC-enabled interning scenario in its own interpreter.

    Sweeping reclaims any unrooted expression, so a sweep in the shared
    test process would eat other tests' interned nodes; every GC test
    gets a fresh process instead.
    """
    import subprocess
    import sys

    from ..conftest import subprocess_env

    completed = subprocess.run(
        [sys.executable, "-c", script],
        env=subprocess_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip() == "ok"


def test_gc_sweep_reclaims_garbage_and_preserves_rooted_identity():
    """A sweep drops unrooted shapes but never a rooted node's identity.

    Nodes survive the sweep that sees them in the nursery (one full
    generation), so reclamation needs two sweeps; rooted nodes must come
    back ``is``-identical from a fresh intern of the same shape after any
    number of sweeps.
    """
    _run_isolated(
        "from repro.core.expr import (intern_sweep_stats, intern_table_size,\n"
        "    minus, plus_m, register_expr_roots, set_intern_gc,\n"
        "    sweep_intern_table, var)\n"
        "set_intern_gc(True)\n"
        "rooted = plus_m(var('keep_a'), minus(var('keep_b'), var('keep_p')))\n"
        "class Roots:\n"
        "    def expr_roots(self):\n"
        "        yield rooted\n"
        "provider = Roots()\n"
        "register_expr_roots(provider)\n"
        "for i in range(400):\n"
        "    plus_m(var(f'garbage_{i}'), var('keep_p'))\n"
        "peak = intern_table_size()\n"
        "sweep_intern_table()\n"
        "sweep_intern_table()\n"
        "after = intern_table_size()\n"
        "assert after < peak - 300, (peak, after)\n"
        "assert plus_m(var('keep_a'), minus(var('keep_b'), var('keep_p'))) is rooted\n"
        "again = plus_m(var('garbage_7'), var('keep_p'))\n"
        "assert plus_m(var('garbage_7'), var('keep_p')) is again\n"
        "stats = intern_sweep_stats()\n"
        "assert stats['gc_active'] and stats['sweeps'] >= 2\n"
        "assert stats['swept_total'] >= 300\n"
        "print('ok')\n"
    )


def test_gc_concurrent_interning_with_sweeps_keeps_identity():
    """Sweeps racing concurrent intern misses never split a live shape.

    Worker threads intern the same fresh shapes while a sweeper thread
    runs full sweeps beside them; everything the workers hold is exposed
    through a root provider.  The nursery (appended before the table's
    ``setdefault``) keeps in-flight nodes alive through the sweep that
    observes them, and rooted nodes stay pinned — so every thread must
    end up holding the single canonical object per shape.
    """
    _run_isolated(
        "import threading, time\n"
        "from repro.core.expr import (minus, plus_m, register_expr_roots,\n"
        "    set_intern_gc, sweep_intern_table, times_m, var)\n"
        "set_intern_gc(True)\n"
        "n_threads, n_shapes = 6, 200\n"
        "results = [[] for _ in range(n_threads)]\n"
        "class Roots:\n"
        "    def expr_roots(self):\n"
        "        for held in results:\n"
        "            yield from list(held)\n"
        "provider = Roots()\n"
        "register_expr_roots(provider)\n"
        "barrier = threading.Barrier(n_threads + 1)\n"
        "stop = threading.Event()\n"
        "def worker(k):\n"
        "    barrier.wait()\n"
        "    for i in range(n_shapes):\n"
        "        results[k].append(plus_m(\n"
        "            minus(var(f'gcrace_a{i}'), var(f'gcrace_p{i}')),\n"
        "            times_m(var(f'gcrace_a{i}'), var(f'gcrace_p{i}'))))\n"
        "def sweeper():\n"
        "    barrier.wait()\n"
        "    while not stop.is_set():\n"
        "        sweep_intern_table()\n"
        "        time.sleep(0.001)\n"
        "threads = [threading.Thread(target=worker, args=(k,)) for k in range(n_threads)]\n"
        "sweep_thread = threading.Thread(target=sweeper)\n"
        "for t in threads: t.start()\n"
        "sweep_thread.start()\n"
        "for t in threads: t.join(timeout=90)\n"
        "stop.set()\n"
        "sweep_thread.join(timeout=30)\n"
        "for k in range(1, n_threads):\n"
        "    assert len(results[k]) == n_shapes\n"
        "    for left, right in zip(results[0], results[k]):\n"
        "        assert left is right\n"
        "print('ok')\n"
    )
