"""Hash-consing guarantees of the expression store."""

from repro.core.expr import (
    intern_table_size,
    minus,
    plus_i,
    plus_m,
    ssum,
    times_m,
    var,
)


def test_structural_equality_is_identity():
    e1 = plus_m(minus(var("a"), var("p")), times_m(ssum([var("a"), var("b")]), var("p")))
    e2 = plus_m(minus(var("a"), var("p")), times_m(ssum([var("a"), var("b")]), var("p")))
    assert e1 is e2


def test_table_grows_only_for_new_structures():
    base = intern_table_size()
    x = plus_i(var("fresh_intern_x"), var("fresh_intern_p"))
    grown = intern_table_size()
    assert grown >= base + 3  # two vars + the node
    _again = plus_i(var("fresh_intern_x"), var("fresh_intern_p"))
    assert intern_table_size() == grown  # nothing new


def test_clear_semantics_in_isolated_process():
    """Clearing drops identity for prior expressions but restores interning.

    Run in a subprocess: clearing the process-global table would break the
    identity guarantees every *other* test in this suite relies on.
    """
    import subprocess
    import sys

    from ..conftest import subprocess_env

    env = subprocess_env()
    script = (
        "from repro.core.expr import ZERO, clear_intern_table, minus, var\n"
        "before = minus(var('a'), var('p'))\n"
        "clear_intern_table()\n"
        "after = minus(var('a'), var('p'))\n"
        "assert str(after) == str(before)\n"
        "assert after is not before\n"
        "assert minus(var('a'), var('p')) is after\n"
        "assert minus(ZERO, var('q')) is ZERO\n"
        "print('ok')\n"
    )
    completed = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, text=True, timeout=60
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip() == "ok"


def test_concurrent_interning_yields_one_object_per_shape():
    """The intern table is race-free under concurrent construction (PR 5).

    The provenance server runs its writer on a thread beside client
    decoders in the same process, so two threads may intern the same
    shape simultaneously.  ``_intern``'s miss path goes through the
    atomic ``dict.setdefault``, so both must receive the single table
    entry — a check-then-insert would let each escape with its own node,
    silently breaking structural-equality-iff-identity for the process.
    """
    import threading

    n_threads, n_shapes = 8, 300
    results: list[list] = [[] for _ in range(n_threads)]
    barrier = threading.Barrier(n_threads)

    def worker(k: int) -> None:
        barrier.wait()  # maximize overlap on the miss path
        for i in range(n_shapes):
            results[k].append(
                plus_m(
                    minus(var(f"race_a{i}"), var(f"race_p{i}")),
                    times_m(var(f"race_a{i}"), var(f"race_p{i}")),
                )
            )

    threads = [threading.Thread(target=worker, args=(k,)) for k in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    for k in range(1, n_threads):
        assert len(results[k]) == n_shapes
        for left, right in zip(results[0], results[k]):
            assert left is right
