"""The replay normalizer (Theorem 5.3) and its agreement with the rules."""

import random

import pytest

from repro.bdd import Bdd, expr_to_bdd
from repro.core.expr import ZERO, minus, plus_i, plus_m, ssum, times_m, var
from repro.core.normal_form import Shape
from repro.core.normalize import normalize, normalize_expr
from repro.core.rules import normalize_with_rules

A, B, C, P, Q = (var(n) for n in "abcpq")


def mod(base, sources, p):
    return plus_m(base, times_m(ssum(sources), p))


def boolean_equal(e1, e2) -> bool:
    bdd = Bdd(sorted(e1.variables() | e2.variables()))
    return expr_to_bdd(e1, bdd) == expr_to_bdd(e2, bdd)


class TestBasicShapes:
    def test_leaf(self):
        assert normalize(A).shape is Shape.UNTOUCHED
        assert normalize_expr(A) is A

    def test_insert_chain(self):
        e = plus_i(plus_i(A, P), P)
        assert normalize_expr(e) is plus_i(A, P)

    def test_delete_after_insert(self):
        assert normalize_expr(minus(plus_i(A, P), P)) is minus(A, P)

    def test_example_5_7_first_tuple(self):
        """(p1 +M (p3 *M p)) - p simplifies to p1 - p (Rule 2)."""
        p1, p3, p = var("p1"), var("p3"), var("p")
        e = minus(plus_m(p1, times_m(p3, p)), p)
        assert normalize_expr(e) is minus(p1, p)

    def test_example_5_7_third_tuple(self):
        """0 +M ((p1 +M (p3 *M p)) *M p) simplifies to (p1 + p3) *M p."""
        p1, p3, p = var("p1"), var("p3"), var("p")
        e = plus_m(ZERO, times_m(plus_m(p1, times_m(p3, p)), p))
        assert normalize_expr(e) is times_m(ssum([p1, p3]), p)

    def test_example_3_9_cross_transaction(self):
        """((p1 +M (p3 *M p)) - p) *M p' keeps the frozen (p1 - p) base."""
        p1, p3, p, pp = var("p1"), var("p3"), var("p"), var("p'")
        inner = minus(plus_m(p1, times_m(p3, p)), p)
        e = plus_m(ZERO, times_m(inner, pp))
        out = normalize_expr(e)
        assert out is times_m(minus(p1, p), pp)


class TestCrossAnnotationFreezing:
    def test_different_annotations_do_not_collapse(self):
        e = minus(plus_i(A, P), Q)
        assert normalize_expr(e) is e

    def test_nested_transactions_normalize_inner_first(self):
        inner = minus(mod(A, [B], P), P)  # -> a - p
        e = plus_i(inner, Q)
        assert normalize_expr(e) is plus_i(minus(A, P), Q)


class TestAgreementWithRules:
    @pytest.mark.parametrize("seed", range(12))
    def test_replay_and_rules_agree_on_random_chains(self, seed):
        """Two independent normalizers must produce identical output."""
        rng = random.Random(seed)
        leaves = [var(f"x{i}") for i in range(4)] + [ZERO]
        annotations = [P, Q]

        def random_chain(depth: int):
            e = rng.choice(leaves)
            for _ in range(depth):
                p = rng.choice(annotations)
                roll = rng.random()
                if roll < 0.25:
                    e = plus_i(e, p)
                elif roll < 0.5:
                    e = minus(e, p)
                else:
                    k = rng.randint(1, 3)
                    sources = [random_chain(rng.randint(0, 2)) for _ in range(k)]
                    e = plus_m(e, times_m(ssum(sources), p))
            return e

        e = random_chain(5)
        via_replay = normalize_expr(e)
        via_rules = normalize_with_rules(e)
        assert boolean_equal(e, via_replay)
        assert boolean_equal(via_replay, via_rules)

    def test_size_never_grows(self):
        e = mod(mod(mod(A, [B], P), [C], P), [minus(B, P)], P)
        assert normalize_expr(e).size() <= e.size()


class TestGracefulDegradation:
    def test_hand_built_non_construction_expression(self):
        # annotation position is not a variable: treated as opaque.
        weird = plus_i(A, plus_i(B, P))
        assert normalize_expr(weird) is weird

    def test_times_m_with_non_variable_right(self):
        weird = times_m(A, plus_i(B, P))
        assert normalize_expr(weird) is weird
