"""The memoized rewrite engine: hits, sharing, and the invalidation contract.

The ``clear_intern_table()`` tests run in a subprocess: clearing the intern
table severs identity between pre- and post-clear expressions, and other
test modules hold expressions at module scope for the whole session.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap

import pytest

from ..conftest import subprocess_env

from repro.core import expr as E
from repro.core.equivalence import canonical
from repro.core.memo import (
    ExprMemo,
    clear_memos,
    memo_stats,
    memoization,
    memoization_enabled,
    set_memoization,
)
from repro.core.minimize import minimize
from repro.core.normalize import _NORMALIZE_MEMO, normalize, normalize_expr
from repro.core.rules import normalize_with_rules


@pytest.fixture(autouse=True)
def fresh_memos():
    """Each test starts from empty tables and ends with memoization on."""
    clear_memos()
    set_memoization(True)
    yield
    set_memoization(True)
    clear_memos()


def naive_chain(n: int, base: str = "x") -> E.Expr:
    """An n-update naive construction chain over one tuple annotation."""
    expr = E.var(base)
    for i in range(n):
        p = E.var(f"p{i}")
        if i % 3 == 0:
            expr = E.plus_i(expr, p)
        elif i % 3 == 1:
            expr = E.minus(expr, p)
        else:
            expr = E.plus_m(expr, E.times_m(expr, p))
    return expr


# ---------------------------------------------------------------------------
# Cache-hit behavior
# ---------------------------------------------------------------------------


def test_repeat_normalization_is_a_pure_hit():
    expr = naive_chain(9)
    first = normalize(expr)
    hits, misses = _NORMALIZE_MEMO.hits, _NORMALIZE_MEMO.misses
    second = normalize(expr)
    assert second is first
    assert _NORMALIZE_MEMO.hits == hits + 1
    assert _NORMALIZE_MEMO.misses == misses


def test_shared_subexpressions_are_normalized_once():
    base = naive_chain(6)
    normalize(base)
    misses = _NORMALIZE_MEMO.misses
    # Layer one more update on the shared base: only the new nodes miss.
    extended = E.minus(base, E.var("q"))
    normalize(extended)
    assert _NORMALIZE_MEMO.misses == misses + 2  # the new MINUS node and var q
    assert _NORMALIZE_MEMO.hits >= 1  # the shared base was pruned, not re-walked


def test_sharing_across_sibling_expressions():
    base = naive_chain(6)
    left = E.plus_i(base, E.var("q"))
    right = E.minus(base, E.var("r"))
    normalize(left)
    misses = _NORMALIZE_MEMO.misses
    normalize(right)
    # Only right's two fresh nodes are computed; base comes from the table.
    assert _NORMALIZE_MEMO.misses == misses + 2


def test_all_rewrites_agree_with_their_uncached_selves():
    for n in (1, 4, 11):
        expr = naive_chain(n)
        assert normalize(expr, memo=True) == normalize(expr, memo=False)
        assert normalize_with_rules(expr, memo=True) is normalize_with_rules(expr, memo=False)
        assert minimize(expr, memo=True) is minimize(expr, memo=False)
        assert canonical(expr, memo=True) is canonical(expr, memo=False)
        assert canonical(expr, False, memo=True) is canonical(expr, False, memo=False)


# ---------------------------------------------------------------------------
# Invalidation under clear_intern_table() (subprocess: severs identities)
# ---------------------------------------------------------------------------


def run_isolated(body: str) -> None:
    """Run ``body`` in a fresh interpreter with this repro on the path."""
    preamble = textwrap.dedent(
        """
        from repro.core import expr as E
        from repro.core.normalize import _NORMALIZE_MEMO, normalize, normalize_expr


        def naive_chain(n, base="x"):
            expr = E.var(base)
            for i in range(n):
                p = E.var(f"p{i}")
                if i % 3 == 0:
                    expr = E.plus_i(expr, p)
                elif i % 3 == 1:
                    expr = E.minus(expr, p)
                else:
                    expr = E.plus_m(expr, E.times_m(expr, p))
            return expr
        """
    )
    result = subprocess.run(
        [sys.executable, "-c", preamble + textwrap.dedent(body)],
        env=subprocess_env(),
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr


def test_clear_intern_table_invalidates_memos():
    run_isolated(
        """
        expr = naive_chain(5)
        nf_before = normalize(expr)
        assert len(_NORMALIZE_MEMO) > 0
        generation = E.intern_generation()

        E.clear_intern_table()
        assert E.intern_generation() == generation + 1

        rebuilt = naive_chain(5)  # structurally equal, new identities
        nf_after = normalize(rebuilt)
        # The stale table must not have answered: the result renders the
        # same but is built from post-clear nodes only.
        assert str(nf_after.to_expr()) == str(nf_before.to_expr())
        assert nf_after.to_expr() is not nf_before.to_expr()
        assert _NORMALIZE_MEMO.stats().invalidations >= 1
        """
    )


def test_post_clear_results_use_post_clear_identities():
    run_isolated(
        """
        expr = naive_chain(4)
        normalize_expr(expr)
        E.clear_intern_table()
        rebuilt = naive_chain(4)
        result = normalize_expr(rebuilt)
        # The normalized expression must share the *new* interning world:
        # rebuilding it through the constructors yields the identical object.
        again = normalize_expr(naive_chain(4))
        assert result is again
        """
    )


def test_explicit_clear_memos_empties_tables():
    normalize(naive_chain(5))
    assert len(_NORMALIZE_MEMO) > 0
    clear_memos()
    assert len(_NORMALIZE_MEMO) == 0


# ---------------------------------------------------------------------------
# The global switch and stats surface
# ---------------------------------------------------------------------------


def test_memoization_switch_round_trips():
    assert memoization_enabled()
    with memoization(False):
        assert not memoization_enabled()
        expr = naive_chain(3)
        normalize(expr)
        assert len(_NORMALIZE_MEMO) == 0  # disabled: persistent table untouched
    assert memoization_enabled()


def test_memo_stats_reports_all_registered_tables():
    stats = memo_stats()
    for name in (
        "normalize",
        "normalize_with_rules",
        "minimize",
        "canonical:fold",
        "canonical:nofold",
        "canonical:key",
    ):
        assert name in stats
    expr = naive_chain(4)
    normalize(expr)
    assert memo_stats()["normalize"].entries > 0
    assert 0.0 <= memo_stats()["normalize"].hit_rate <= 1.0


def test_detached_memo_not_registered():
    before = set(memo_stats())
    ExprMemo("scratch", register=False)
    assert set(memo_stats()) == before
