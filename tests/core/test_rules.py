"""The Figure 6 rules as standalone rewrites: shape matching + soundness."""

import itertools

import pytest

from repro.bdd import Bdd, expr_to_bdd
from repro.core.expr import ZERO, minus, plus_i, plus_m, ssum, times_m, var
from repro.core.normal_form import Shape
from repro.core.rules import (
    ALL_RULES,
    apply_rules_once,
    match_normal_form,
    normalize_with_rules,
    rule_1_insert_collapse,
    rule_2_delete_collapse,
    rule_3_deleted_sources,
    rule_4_inserted_source,
    rule_5_insert_absorbs,
    rule_6_target_factorize,
    rule_7_source_flatten,
    rule_8_drop_deleted_source,
)

A, B, C, D, P, Q = (var(n) for n in "abcdpq")


def mod(base, sources, p):
    return plus_m(base, times_m(ssum(sources), p))


def boolean_equal(e1, e2) -> bool:
    bdd = Bdd(sorted(e1.variables() | e2.variables()))
    return expr_to_bdd(e1, bdd) == expr_to_bdd(e2, bdd)


class TestMatchNormalForm:
    def test_leaves(self):
        assert match_normal_form(A).shape is Shape.UNTOUCHED
        assert match_normal_form(ZERO).shape is Shape.UNTOUCHED

    def test_ins(self):
        nf = match_normal_form(plus_i(A, P))
        assert nf.shape is Shape.INS and nf.base is A and nf.p is P

    def test_del(self):
        nf = match_normal_form(minus(A, P))
        assert nf.shape is Shape.DEL

    def test_mod(self):
        nf = match_normal_form(mod(A, [B, C], P))
        assert nf.shape is Shape.MOD and set(nf.sources) == {B, C}

    def test_delmod(self):
        nf = match_normal_form(plus_m(minus(A, P), times_m(B, P)))
        assert nf.shape is Shape.DELMOD

    def test_zero_folded_mod(self):
        nf = match_normal_form(times_m(ssum([B, C]), P))
        assert nf.shape is Shape.MOD and nf.base is ZERO

    def test_non_shape_returns_none(self):
        # annotation position holds a non-variable
        assert match_normal_form(plus_i(A, plus_i(B, P))) is None


class TestIndividualRules:
    def test_rule_1_collapses_spine(self):
        assert rule_1_insert_collapse(plus_i(minus(A, P), P)) is plus_i(A, P)
        assert rule_1_insert_collapse(plus_i(mod(A, [B], P), P)) is plus_i(A, P)

    def test_rule_1_respects_annotations(self):
        assert rule_1_insert_collapse(plus_i(minus(A, Q), P)) is None

    def test_rule_2_collapses_spine(self):
        assert rule_2_delete_collapse(minus(plus_i(A, P), P)) is minus(A, P)
        assert rule_2_delete_collapse(minus(mod(A, [B], P), P)) is minus(A, P)

    def test_rule_2_respects_annotations(self):
        assert rule_2_delete_collapse(minus(plus_i(A, Q), P)) is None

    def test_rule_3_all_sources_deleted(self):
        e = mod(A, [minus(B, P), minus(C, P)], P)
        assert rule_3_deleted_sources(e) is A

    def test_rule_3_not_applicable_with_live_source(self):
        e = mod(A, [minus(B, P), C], P)
        assert rule_3_deleted_sources(e) is None

    def test_rule_4_inserted_source(self):
        e = mod(A, [B, plus_i(C, P)], P)
        assert rule_4_inserted_source(e) is plus_i(A, P)

    def test_rule_5_inserted_target(self):
        e = plus_m(plus_i(A, P), times_m(B, P))
        assert rule_5_insert_absorbs(e) is plus_i(A, P)

    def test_rule_6_factorizes(self):
        e = plus_m(mod(A, [B], P), times_m(C, P))
        assert rule_6_target_factorize(e) is mod(A, [B, C], P)

    def test_rule_6_different_annotations_blocked(self):
        e = plus_m(mod(A, [B], Q), times_m(C, P))
        assert rule_6_target_factorize(e) is None

    def test_rule_7_flattens_modified_source(self):
        e = mod(A, [mod(B, [C], P), D], P)
        out = rule_7_source_flatten(e)
        assert out is mod(A, [B, C, D], P)

    def test_rule_8_drops_deleted_source(self):
        e = mod(A, [minus(B, P), C], P)
        assert rule_8_drop_deleted_source(e) is mod(A, [C], P)

    def test_rule_8_keeps_other_annotations(self):
        e = mod(A, [minus(B, Q), C], P)
        assert rule_8_drop_deleted_source(e) is None


@pytest.mark.parametrize(
    "expr",
    [
        plus_i(minus(A, P), P),
        plus_i(mod(A, [B], P), P),
        plus_i(plus_m(minus(A, P), times_m(B, P)), P),
        minus(plus_i(A, P), P),
        minus(mod(A, [B, C], P), P),
        minus(minus(A, P), P),
        mod(A, [minus(B, P), minus(C, P)], P),
        mod(A, [B, plus_i(C, P)], P),
        plus_m(plus_i(A, P), times_m(B, P)),
        plus_m(mod(A, [B], P), times_m(C, P)),
        mod(A, [mod(B, [C], P), D], P),
        mod(A, [minus(B, P), C], P),
        plus_m(minus(A, P), times_m(mod(B, [C], P), P)),
    ],
    ids=str,
)
def test_every_rewrite_preserves_boolean_semantics(expr):
    """Each rule is implied by the axioms, hence sound in every instance."""
    rewritten = apply_rules_once(expr)
    assert rewritten is not None, f"no rule applied to {expr}"
    assert boolean_equal(expr, rewritten)


class TestNormalizeWithRules:
    def test_reaches_a_shape(self):
        e = minus(plus_i(mod(A, [B], P), P), P)
        out = normalize_with_rules(e)
        assert match_normal_form(out) is not None
        assert out is minus(A, P)

    def test_is_idempotent(self):
        e = mod(A, [mod(B, [C], P), minus(D, P)], P)
        once = normalize_with_rules(e)
        assert normalize_with_rules(once) is once

    def test_preserves_semantics_on_nested_chain(self):
        e = A
        for i in range(6):
            e = mod(e, [minus(B, P) if i % 2 else plus_m(C, times_m(D, P))], P)
        out = normalize_with_rules(e)
        assert boolean_equal(e, out)
        assert out.size() <= e.size()

    def test_rule_order_covers_all(self):
        assert len(ALL_RULES) == 8
