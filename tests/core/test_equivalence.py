"""Equivalence deciders: canonical forms, BDD-exact, randomized refuter."""

from repro.core.equivalence import (
    canonical,
    equivalent,
    equivalent_boolean,
    equivalent_canonical,
    find_distinguishing_valuation,
)
from repro.core.expr import ZERO, minus, plus_i, plus_m, ssum, times_m, var

A, B, C, P, Q = (var(n) for n in "abcpq")


def mod(base, sources, p):
    return plus_m(base, times_m(ssum(sources), p))


class TestCanonical:
    def test_sorts_source_disjunctions(self):
        e1 = mod(A, [C, B], P)
        e2 = mod(A, [B, C], P)
        assert canonical(e1) is canonical(e2)

    def test_dedups_sum_terms(self):
        assert canonical(mod(A, [B, B], P)) is canonical(mod(A, [B], P))

    def test_folds_self_update(self):
        """(a - p) +M ((a + b) *M p) == a +M (b *M p) in all instances."""
        e1 = plus_m(minus(A, P), times_m(ssum([A, B]), P))
        e2 = mod(A, [B], P)
        assert canonical(e1) is canonical(e2)
        assert equivalent_boolean(e1, e2)

    def test_fold_disabled(self):
        e1 = plus_m(minus(A, P), times_m(ssum([A, B]), P))
        assert canonical(e1, fold_self_update=False) is not canonical(
            mod(A, [B], P), fold_self_update=False
        )

    def test_identity_on_plain_shapes(self):
        for e in (A, ZERO, plus_i(A, P), minus(A, P)):
            assert canonical(e) is e


class TestEquivalentBoolean:
    def test_axiom_2_instance(self):
        assert equivalent_boolean(minus(mod(A, [B], P), P), minus(A, P))

    def test_axiom_10_instance(self):
        assert equivalent_boolean(plus_i(minus(A, P), P), plus_i(A, P))

    def test_inequivalent(self):
        assert not equivalent_boolean(minus(A, P), plus_i(A, P))

    def test_zero_equivalence(self):
        assert equivalent_boolean(times_m(minus(A, P), ZERO), ZERO)


class TestEquivalentFrontend:
    def test_canonical_path(self):
        assert equivalent_canonical(mod(A, [B, C], P), mod(A, [C, B], P))

    def test_auto_falls_back_to_bdd(self):
        # Equivalent but canonically different: (a - p) - q vs (a - q) - p.
        e1 = minus(minus(A, P), Q)
        e2 = minus(minus(A, Q), P)
        assert not equivalent_canonical(e1, e2)
        assert equivalent(e1, e2)

    def test_method_selection(self):
        e1, e2 = minus(A, P), minus(A, P)
        assert equivalent(e1, e2, method="canonical")
        assert equivalent(e1, e2, method="boolean")

    def test_unknown_method_raises(self):
        import pytest

        with pytest.raises(ValueError):
            equivalent(A, A, method="magic")


class TestRefuter:
    def test_finds_witness_for_inequivalent(self):
        witness = find_distinguishing_valuation(minus(A, P), plus_i(A, P))
        assert witness is not None
        from repro.core.equivalence import BoolStructure
        from repro.core.expr import evaluate

        s = BoolStructure()
        assert evaluate(minus(A, P), s, witness) != evaluate(plus_i(A, P), s, witness)

    def test_no_witness_for_equivalent(self):
        e1 = minus(mod(A, [B], P), P)
        e2 = minus(A, P)
        assert find_distinguishing_valuation(e1, e2, trials=64) is None
