"""Hyperplane pattern matching and its little algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.db.schema import Relation
from repro.errors import QueryError
from repro.queries.pattern import Pattern

REL = Relation("r", ["a", "b", "c"])


class TestMatching:
    def test_any_matches_everything(self):
        assert Pattern.any(3).matches((1, "x", None))

    def test_equality_constraint(self):
        p = Pattern(3, eq={0: 1})
        assert p.matches((1, 2, 3))
        assert not p.matches((2, 2, 3))

    def test_disequality_constraint(self):
        p = Pattern(3, neq={1: {"x", "y"}})
        assert p.matches((0, "z", 0))
        assert not p.matches((0, "x", 0))

    def test_exact(self):
        p = Pattern.exact((1, 2, 3))
        assert p.is_exact and p.as_row() == (1, 2, 3)
        assert p.matches((1, 2, 3)) and not p.matches((1, 2, 4))

    def test_as_row_requires_exact(self):
        with pytest.raises(QueryError):
            Pattern(2, eq={0: 1}).as_row()

    def test_build_by_names(self):
        p = Pattern.build(REL, where={"a": 5}, where_not={"b": "x"})
        assert p.matches((5, "y", 0)) and not p.matches((5, "x", 0))

    def test_build_where_not_accepts_iterables_but_not_strings(self):
        p = Pattern.build(REL, where_not={"b": {"x", "y"}})
        assert p.neq[1] == {"x", "y"}
        p2 = Pattern.build(REL, where_not={"b": "xy"})
        assert p2.neq[1] == {"xy"}  # a string is one constant, not two

    def test_empty_disequality_sets_dropped(self):
        p = Pattern(2, neq={0: set()})
        assert 0 not in p.neq

    def test_position_out_of_range(self):
        with pytest.raises(QueryError):
            Pattern(2, eq={5: 1})

    def test_contradictory_pattern_rejected(self):
        with pytest.raises(QueryError, match="contradictory"):
            Pattern(2, eq={0: 1}, neq={0: {1}})

    def test_equality_subsumes_compatible_disequality(self):
        p = Pattern(2, eq={0: 1}, neq={0: {2}})
        assert 0 not in p.neq  # a=1 already implies a != 2


class TestSubsumption:
    def test_any_subsumes_all(self):
        assert Pattern.any(2).subsumes(Pattern(2, eq={0: 1}))

    def test_constant_subsumes_same_constant(self):
        assert Pattern(2, eq={0: 1}).subsumes(Pattern(2, eq={0: 1, 1: 2}))
        assert not Pattern(2, eq={0: 1}).subsumes(Pattern(2, eq={1: 2}))

    def test_disequality_subsumption(self):
        wide = Pattern(1, neq={0: {5}})
        narrow = Pattern(1, neq={0: {5, 6}})
        assert wide.subsumes(narrow)
        assert not narrow.subsumes(wide)

    def test_disequality_vs_constant(self):
        p = Pattern(1, neq={0: {5}})
        assert p.subsumes(Pattern(1, eq={0: 4}))
        assert not p.subsumes(Pattern(1, eq={0: 5}))

    def test_different_arity_never_subsumes(self):
        assert not Pattern.any(1).subsumes(Pattern.any(2))


class TestDisjointness:
    def test_different_constants_disjoint(self):
        assert Pattern(1, eq={0: 1}).disjoint_from(Pattern(1, eq={0: 2}))

    def test_constant_vs_exclusion(self):
        assert Pattern(1, eq={0: 1}).disjoint_from(Pattern(1, neq={0: {1}}))
        assert Pattern(1, neq={0: {1}}).disjoint_from(Pattern(1, eq={0: 1}))

    def test_variables_overlap(self):
        assert not Pattern.any(1).disjoint_from(Pattern(1, neq={0: {5}}))


class TestIntersect:
    def test_intersection_matches_conjunction(self):
        p1 = Pattern(2, eq={0: 1})
        p2 = Pattern(2, neq={1: {"x"}})
        both = p1.intersect(p2)
        assert both.matches((1, "y")) and not both.matches((1, "x"))
        assert not both.matches((2, "y"))

    def test_disjoint_intersection_is_none(self):
        assert Pattern(1, eq={0: 1}).intersect(Pattern(1, eq={0: 2})) is None

    def test_intersection_drops_neq_under_eq(self):
        p1 = Pattern(1, eq={0: 3})
        p2 = Pattern(1, neq={0: {5}})
        both = p1.intersect(p2)
        assert both.eq == {0: 3} and not both.neq


@given(
    eq_val=st.integers(0, 3),
    row=st.tuples(st.integers(0, 3), st.integers(0, 3)),
    excluded=st.sets(st.integers(0, 3), max_size=2),
)
def test_matching_definition_property(eq_val, row, excluded):
    """matches() agrees with the paper's t |= u definition."""
    if eq_val in excluded:
        return
    p = Pattern(2, eq={0: eq_val}, neq={1: excluded})
    expected = row[0] == eq_val and row[1] not in excluded
    assert p.matches(row) == expected


def test_describe_with_and_without_relation():
    p = Pattern.build(REL, where={"a": 5}, where_not={"b": "x"})
    assert "a=5" in p.describe(REL)
    assert "$0=5" in p.describe()
    assert Pattern.any(3).describe() == "true"


def test_equality_and_hash():
    p1 = Pattern(2, eq={0: 1}, neq={1: {2}})
    p2 = Pattern(2, eq={0: 1}, neq={1: {2}})
    assert p1 == p2 and hash(p1) == hash(p2)
