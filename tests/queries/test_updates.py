"""Insert / Delete / Modify query objects and Transaction plumbing."""

import pytest

from repro.db.schema import Relation
from repro.errors import QueryError
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Insert, Modify, Transaction

REL = Relation("products", ["product", "category", "price"])


class TestInsert:
    def test_values_with_mapping(self):
        q = Insert.values(REL, {"product": "x", "category": "y", "price": 1})
        assert q.row == ("x", "y", 1)

    def test_values_with_sequence(self):
        q = Insert.values(REL, ("x", "y", 1))
        assert q.row == ("x", "y", 1)

    def test_values_missing_attribute(self):
        with pytest.raises(QueryError, match="misses"):
            Insert.values(REL, {"product": "x"})

    def test_annotated_copy(self):
        q = Insert("products", ("x", "y", 1))
        q2 = q.annotated("p")
        assert q.annotation is None and q2.annotation == "p"
        assert q2.row == q.row

    def test_equality(self):
        assert Insert("r", (1,)) == Insert("r", (1,))
        assert Insert("r", (1,)) != Insert("r", (1,), annotation="p")


class TestDelete:
    def test_where_builder(self):
        q = Delete.where(REL, where={"category": "Fashion"})
        assert q.pattern.matches(("x", "Fashion", 1))
        assert not q.pattern.matches(("x", "Sport", 1))

    def test_where_not_builder(self):
        q = Delete.where(REL, where={"category": "Sport"}, where_not={"product": "bike"})
        assert q.pattern.matches(("ball", "Sport", 1))
        assert not q.pattern.matches(("bike", "Sport", 1))

    def test_repr_mentions_pattern(self):
        q = Delete.where(REL, where={"category": "Fashion"}, annotation="p")
        assert "products-" in repr(q) and "p" in repr(q)


class TestModify:
    def test_set_builder_and_image(self):
        q = Modify.set(REL, where={"category": "Sport"}, set_values={"price": 50})
        assert q.apply_to_row(("x", "Sport", 70)) == ("x", "Sport", 50)

    def test_needs_at_least_one_assignment(self):
        with pytest.raises(QueryError):
            Modify("products", Pattern(3), {})

    def test_assignment_position_range(self):
        with pytest.raises(QueryError):
            Modify("products", Pattern(3), {7: 1})

    def test_is_identity(self):
        q = Modify.set(REL, where={"category": "Sport"}, set_values={"category": "Sport"})
        assert q.is_identity
        q2 = Modify.set(REL, where={"category": "Sport"}, set_values={"category": "Kids"})
        assert not q2.is_identity

    def test_image_pattern(self):
        q = Modify.set(
            REL,
            where={"category": "Sport"},
            where_not={"product": "bike"},
            set_values={"category": "Bicycles"},
        )
        image = q.image_pattern()
        assert image.matches(("ball", "Bicycles", 1))
        assert not image.matches(("bike", "Bicycles", 1))
        assert not image.matches(("ball", "Sport", 1))

    def test_compose_assignments_later_wins(self):
        q1 = Modify("products", Pattern(3), {1: "A", 2: 10})
        q2 = Modify("products", Pattern(3), {2: 20})
        assert q1.compose_assignments(q2) == {1: "A", 2: 20}


class TestTransaction:
    def test_stamps_annotation_on_queries(self):
        t = Transaction("p", [Insert("products", ("x", "y", 1))])
        assert all(q.annotation == "p" for q in t)
        assert t.annotation == "p"

    def test_len_and_iter(self):
        t = Transaction("p", [Insert("r", (1,)), Delete("r", Pattern(1))])
        assert len(t) == 2
        assert [q.kind for q in t] == ["insert", "delete"]

    def test_needs_name(self):
        with pytest.raises(QueryError):
            Transaction("", [])

    def test_equality(self):
        q = Insert("r", (1,))
        assert Transaction("p", [q]) == Transaction("p", [q])
        assert Transaction("p", [q]) != Transaction("q", [q])

    def test_annotation_required_to_execute(self):
        from repro.db.database import Database
        from repro.engine.engine import Engine

        db = Database.from_rows("r", ["a"], [(1,)])
        with pytest.raises(QueryError, match="no annotation"):
            Engine(db, policy="normal_form").apply(Insert("r", (2,)))

    def test_relation_required(self):
        with pytest.raises(QueryError):
            Insert("", (1,))
