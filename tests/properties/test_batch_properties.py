"""Property tests for the batched pipeline and the rewrite memo.

The load-bearing property (ISSUE 1): applying a random update log batched
and sequentially normalizes to the same expression, row for row, under
every provenance policy.
"""

from __future__ import annotations

from hypothesis import given

from repro.core.equivalence import canonical, equivalent
from repro.core.expr import ZERO
from repro.core.memo import memoization
from repro.core.normalize import normalize_expr
from repro.engine.engine import Engine

from .strategies import arbitrary_exprs, databases, logs


def normalized_provenance(engine, relation):
    return {
        row: canonical(normalize_expr(expr)) for row, expr, _live in engine.provenance(relation)
    }


@given(databases, logs())
def test_batched_and_sequential_normalize_identically(db, log):
    """Fused runs replay the sequential semantics exactly (normal_form)."""
    sequential = Engine(db, policy="normal_form").apply(log)
    batched = Engine(db, policy="normal_form").apply_batch(log)
    for relation in db.schema.names:
        assert normalized_provenance(sequential, relation) == normalized_provenance(
            batched, relation
        )
        assert sequential.live_rows(relation) == batched.live_rows(relation)


@given(databases, logs())
def test_deferred_batch_policy_equivalent_to_incremental(db, log):
    """One deferred normalization at the end == per-update rule application."""
    incremental = Engine(db, policy="normal_form").apply(log)
    deferred = Engine(db, policy="normal_form_batch").apply_batch(log)
    for relation in db.schema.names:
        inc = {row: expr for row, expr, _live in incremental.provenance(relation)}
        dfd = {row: expr for row, expr, _live in deferred.provenance(relation)}
        # Supports may differ on rows whose annotation is ≡ 0 but not
        # syntactically 0 (the zero axioms can fold away insertion markers
        # the incremental state machine still sees, and vice versa); absent
        # rows denote annotation 0.
        for row in set(inc) | set(dfd):
            assert equivalent(inc.get(row, ZERO), dfd.get(row, ZERO))
        assert incremental.live_rows(relation) == deferred.live_rows(relation)


@given(arbitrary_exprs())
def test_memoized_rewrites_equal_uncached_rewrites(expr):
    """The memo layer never changes a rewrite's result, only its cost."""
    with memoization(True):
        cached = normalize_expr(expr)
    with memoization(False):
        uncached = normalize_expr(expr)
    assert cached is uncached
