"""Property-based coherence of the pattern algebra.

`subsumes`, `disjoint_from` and `intersect` are the soundness-critical
helpers behind the Karabeg–Vianu rewrites: a wrong answer there would make
the Prop-3.5 generator produce *inequivalent* "equivalent" pairs.  These
properties pin their meaning against brute-force row enumeration over a
small closed domain.
"""

import itertools

from hypothesis import given, strategies as st

from repro.queries.pattern import Pattern

DOMAIN = (0, 1, 2)
ARITY = 2
ALL_ROWS = list(itertools.product(DOMAIN, repeat=ARITY))


@st.composite
def patterns(draw):
    eq = draw(st.dictionaries(st.integers(0, ARITY - 1), st.sampled_from(DOMAIN), max_size=ARITY))
    neq = {}
    for i in range(ARITY):
        if i in eq:
            continue
        excluded = draw(st.sets(st.sampled_from(DOMAIN), max_size=2))
        if excluded:
            neq[i] = excluded
    return Pattern(ARITY, eq=eq, neq=neq)


def rows_of(pattern: Pattern) -> set[tuple]:
    return {row for row in ALL_ROWS if pattern.matches(row)}


@given(patterns(), patterns())
def test_subsumes_implies_containment(p1, p2):
    if p1.subsumes(p2):
        assert rows_of(p2) <= rows_of(p1)


@given(patterns(), patterns())
def test_disjoint_implies_empty_intersection(p1, p2):
    if p1.disjoint_from(p2):
        assert not (rows_of(p1) & rows_of(p2))


@given(patterns(), patterns())
def test_intersect_matches_conjunction(p1, p2):
    both = p1.intersect(p2)
    expected = rows_of(p1) & rows_of(p2)
    if both is None:
        # Sound: a None intersection means provably disjoint.
        assert not expected
    else:
        assert rows_of(both) == expected


@given(patterns())
def test_subsumes_is_reflexive(p):
    assert p.subsumes(p)


@given(patterns(), patterns(), patterns())
def test_subsumes_is_transitive(p1, p2, p3):
    if p1.subsumes(p2) and p2.subsumes(p3):
        assert p1.subsumes(p3)


@given(patterns(), patterns())
def test_disjoint_is_symmetric_on_row_sets(p1, p2):
    # disjoint_from is a sufficient syntactic test; whenever it fires in
    # either direction the row sets must not overlap.
    if p1.disjoint_from(p2) or p2.disjoint_from(p1):
        assert not (rows_of(p1) & rows_of(p2))
