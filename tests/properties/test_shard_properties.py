"""Property tests: sharded == unsharded under random update streams.

Seeded generators produce mixed streams — routed and broadcast
selections, inserts, modifications (including identity anchors),
transactions and bare annotated queries, applied through ``apply`` or
``apply_batch`` — over a shard key whose values mix ints, floats, bools,
strings and ``None``, so the stable hash's ``==``-consistency across
numeric types is load-bearing, not incidental.
"""

from __future__ import annotations

import random

import pytest

from repro.db.database import Database
from repro.db.schema import Relation, Schema
from repro.engine.engine import Engine
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Insert, Modify, Transaction
from repro.shard import ShardedEngine

from ..shard.util import assert_bit_identical

#: Shard-key domain deliberately spanning ==-equal numeric spellings.
KEY_DOMAIN = [0, 1, 2, 3, True, False, 1.0, 2.0, "hot", "cold", "", None]
VALUE_DOMAIN = list(range(6))
ARITY = 3  # r(k, g, v) sharded on g (position 1)


def _random_database(rng: random.Random, n_rows: int) -> Database:
    schema = Schema([Relation("r", ["k", "g", "v"])])
    db = Database(schema)
    rows = db.rows("r")
    while len(rows) < n_rows:
        rows.add((len(rows), rng.choice(KEY_DOMAIN), rng.choice(VALUE_DOMAIN)))
    return db


def _random_query(rng: random.Random, next_id: list[int]):
    roll = rng.random()
    if roll < 0.30:
        next_id[0] += 1
        return Insert("r", (next_id[0], rng.choice(KEY_DOMAIN), rng.choice(VALUE_DOMAIN)))
    # Routed (shard-key equality) or broadcast (value equality, diseq, any).
    selector = rng.random()
    if selector < 0.5:
        pattern = Pattern(ARITY, eq={1: rng.choice(KEY_DOMAIN)})
    elif selector < 0.75:
        pattern = Pattern(ARITY, eq={2: rng.choice(VALUE_DOMAIN)})
    elif selector < 0.9:
        pattern = Pattern(ARITY, neq={1: {rng.choice(KEY_DOMAIN)}})
    else:
        pattern = Pattern.any(ARITY)
    if roll < 0.65:
        return Delete("r", pattern)
    if rng.random() < 0.1 and pattern.eq:
        # Identity anchor: assign a pinned position its own constant.
        anchor = min(pattern.eq)
        return Modify("r", pattern, {anchor: pattern.eq[anchor]})
    return Modify("r", pattern, {2: rng.choice(VALUE_DOMAIN)})


def _random_stream(rng: random.Random, n_queries: int):
    next_id = [10_000]
    items = []
    txn = 0
    while n_queries > 0:
        if rng.random() < 0.6:
            take = min(rng.randint(1, 4), n_queries)
            items.append(
                Transaction(f"t{txn}", [_random_query(rng, next_id) for _ in range(take)])
            )
            n_queries -= take
            txn += 1
        else:
            items.append(_random_query(rng, next_id).annotated(f"q{txn}"))
            n_queries -= 1
            txn += 1
    return items


@pytest.mark.parametrize("policy", ["naive", "normal_form_batch"])
@pytest.mark.parametrize("seed", range(8))
def test_random_streams_are_bit_identical(seed, policy):
    rng = random.Random(1000 * seed + 17)
    database = _random_database(rng, n_rows=rng.randint(20, 60))
    stream = _random_stream(rng, n_queries=rng.randint(15, 45))
    n_shards = rng.randint(2, 5)
    batched = rng.random() < 0.5

    unsharded = Engine(database, policy=policy)
    sharded = ShardedEngine(database, n_shards=n_shards, policy=policy, shard_keys={"r": "g"})
    if batched:
        unsharded.apply_batch(stream)
        sharded.apply_batch(stream)
    else:
        unsharded.apply(stream)
        sharded.apply(stream)
    assert_bit_identical(unsharded, sharded, database.schema)
    assert sharded.stats.queries == unsharded.stats.queries
    assert sharded.stats.rows_matched == unsharded.stats.rows_matched
    assert sharded.stats.rows_created == unsharded.stats.rows_created


@pytest.mark.parametrize("seed", [1, 2])
def test_random_streams_none_policy(seed):
    """Vanilla physical deletes shard identically (support == live rows)."""
    rng = random.Random(seed)
    database = _random_database(rng, n_rows=40)
    stream = _random_stream(rng, n_queries=30)
    unsharded = Engine(database, policy="none").apply(stream)
    sharded = ShardedEngine(
        database, n_shards=3, policy="none", shard_keys={"r": "g"}
    ).apply(stream)
    assert_bit_identical(unsharded, sharded, database.schema)
