"""Round-trip properties of every serialization format."""

from hypothesis import given

from repro.db.schema import Schema
from repro.lang.datalog import format_query, parse_query
from repro.lang.sql import format_sql, parse_sql
from repro.storage.exprjson import (
    expr_from_dict,
    expr_from_nested,
    expr_to_dict,
    expr_to_nested,
)
from repro.workloads.logs import UpdateLog, log_from_json, log_to_json, query_from_dict, query_to_dict

from .strategies import arbitrary_exprs, construction_exprs, logs, queries

SCHEMA = Schema.build({"R": ["a", "b"]})


@given(arbitrary_exprs())
def test_expr_dag_json_round_trip(expr):
    assert expr_from_dict(expr_to_dict(expr)) is expr


@given(construction_exprs())
def test_expr_nested_round_trip(expr):
    assert expr_from_nested(expr_to_nested(expr)) is expr


@given(queries)
def test_query_dict_round_trip(query):
    assert query_from_dict(query_to_dict(query)) == query


@given(logs())
def test_log_json_round_trip(items):
    log = UpdateLog(items, meta={"name": "prop"})
    again, schema = log_from_json(log_to_json(log, SCHEMA))
    assert again == log
    assert schema.relation("R").attributes == ("a", "b")


@given(queries)
def test_sql_round_trip(query):
    text = format_sql(query.annotated("p"), SCHEMA)
    assert parse_sql(text, SCHEMA) == query.annotated("p")


@given(queries)
def test_datalog_round_trip(query):
    annotated = query.annotated("p")
    text = format_query(annotated)
    assert parse_query(text, SCHEMA) == annotated
