"""Round-trip properties of the integer-id expression arena.

The arena is the flat at-rest/wire form of hash-consed expressions
(``kind[]/a[]/b[]/args[]`` integer tables).  Because decoding goes back
through the smart constructors, a round trip must hand back the *same*
interned objects — identity, not just structural equality — for any
expression shape, and an arena-form capture must be bit-identical to the
legacy per-row object form for every policy the wire carries.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arena import ExprArena
from repro.db.database import Database
from repro.engine.engine import Engine
from repro.shard.codec import capture_engine, decode_capture, encode_capture
from repro.storage.exprjson import exprs_from_arena, exprs_to_arena

from .strategies import arbitrary_exprs, logs

#: Policies whose captures carry expressions over the wire (the vanilla
#: pair captures ``None`` annotations, which the list round-trip covers).
WIRE_POLICIES = ("naive", "no_axioms", "normal_form", "normal_form_batch")


@given(arbitrary_exprs())
def test_arena_round_trip_is_identity(expr):
    arena = ExprArena()
    assert arena.get_expr(arena.add_expr(expr)) is expr


@given(arbitrary_exprs())
def test_arena_payload_round_trip_is_identity(expr):
    """Serializing the arena's tables and decoding elsewhere re-interns."""
    arena = ExprArena()
    nid = arena.add_expr(expr)
    again = ExprArena.from_payload(arena.to_payload())
    assert again.get_expr(nid) is expr


@given(st.lists(st.one_of(st.none(), arbitrary_exprs()), max_size=6))
def test_shared_arena_wire_round_trip(exprs):
    """Many expressions through one shared node table, ``None`` passing through."""
    payload, roots = exprs_to_arena(exprs)
    decoded = exprs_from_arena(payload, roots)
    assert len(decoded) == len(exprs)
    for original, again in zip(exprs, decoded):
        assert again is original


@settings(max_examples=25, deadline=None)
@given(logs())
def test_capture_arena_form_matches_object_form(items):
    """Arena-encoded captures decode bit-identical to the per-row object form.

    The same update history runs under every provenance-carrying policy;
    for each, the capture round-tripped through ``encode_capture(...,
    arena=True)`` must hold the identical interned expression per row as
    both the legacy object-form round trip and the capture itself.
    """
    for policy in WIRE_POLICIES:
        engine = Engine(
            Database.from_rows("R", ["a", "b"], [(0, 0), (1, 2), (3, 1)]),
            policy=policy,
        )
        for transaction in items:
            engine.apply(transaction)
        capture = capture_engine(engine)
        via_arena = decode_capture(encode_capture(capture, arena=True))
        via_objects = decode_capture(encode_capture(capture))
        assert via_arena.keys() == capture.keys() == via_objects.keys()
        for name, rows in capture.items():
            assert via_arena[name].keys() == rows.keys()
            for row, (expr, live) in rows.items():
                arena_expr, arena_live = via_arena[name][row]
                assert arena_expr is expr, (policy, row)
                assert arena_live == live
                assert via_objects[name][row][0] is expr
