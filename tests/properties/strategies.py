"""Hypothesis strategies shared by the property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.expr import ZERO, minus, plus_i, plus_m, ssum, times_m, var
from repro.db.database import Database
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Insert, Modify, Transaction

#: Small closed domain: collisions (and therefore interesting interactions
#: between updates) are the norm, not the exception.
VALUES = st.integers(min_value=0, max_value=3)
ARITY = 2
ANNOTATIONS = ("p", "q")

tuple_vars = st.sampled_from(["x1", "x2", "x3"]).map(var)
annotation_vars = st.sampled_from(list(ANNOTATIONS)).map(var)


def construction_exprs(max_updates: int = 5):
    """Expressions the Section 3.1 semantics can actually produce.

    A random update history replayed over a leaf: each step wraps the
    current expression in ``+I p``, ``- p`` or ``+M ((...) *M p)`` where
    the modification sources are themselves construction-shaped.
    """
    leaves = st.one_of(tuple_vars, st.just(ZERO))

    def extend(children):
        base = st.one_of(leaves, children)
        inserted = st.builds(plus_i, base, annotation_vars)
        deleted = st.builds(minus, base, annotation_vars)
        modified = st.builds(
            lambda b, sources, p: plus_m(b, times_m(ssum(sources), p)),
            base,
            st.lists(base, min_size=1, max_size=3),
            annotation_vars,
        )
        return st.one_of(inserted, deleted, modified)

    return st.recursive(leaves, extend, max_leaves=max_updates)


def arbitrary_exprs():
    """Arbitrary UP[X] expressions (not necessarily construction-shaped)."""
    leaves = st.one_of(tuple_vars, annotation_vars, st.just(ZERO))

    def extend(children):
        binary = st.sampled_from([plus_i, minus, plus_m, times_m])
        return st.one_of(
            st.builds(lambda f, a, b: f(a, b), binary, children, children),
            st.lists(children, min_size=1, max_size=3).map(ssum),
        )

    return st.recursive(leaves, extend, max_leaves=12)


patterns = st.builds(
    lambda eq, neq: Pattern(
        ARITY,
        eq=eq,
        neq={i: vals - {eq[i]} if i in eq else vals for i, vals in neq.items()},
    ),
    st.dictionaries(st.integers(0, ARITY - 1), VALUES, max_size=ARITY),
    st.dictionaries(
        st.integers(0, ARITY - 1), st.sets(VALUES, min_size=1, max_size=2), max_size=1
    ),
)

rows = st.tuples(VALUES, VALUES)

inserts = st.builds(lambda row: Insert("R", row), rows)
deletes = st.builds(lambda pattern: Delete("R", pattern), patterns)
modifies = st.builds(
    lambda pattern, assignments: Modify("R", pattern, assignments),
    patterns,
    st.dictionaries(st.integers(0, ARITY - 1), VALUES, min_size=1, max_size=ARITY),
)

queries = st.one_of(inserts, deletes, modifies)


def transactions(name: str = "p", max_queries: int = 5):
    return st.lists(queries, min_size=1, max_size=max_queries).map(
        lambda qs: Transaction(name, qs)
    )


def logs(max_transactions: int = 3, max_queries: int = 4, queries=queries):
    """A list of transactions with distinct annotations t0, t1, ...

    ``queries`` swaps the per-transaction query strategy — e.g. a
    shard-safe one whose modifications never assign the shard key.
    """

    def build(query_lists):
        return [
            Transaction(f"t{i}", queries) for i, queries in enumerate(query_lists)
        ]

    return st.lists(
        st.lists(queries, min_size=1, max_size=max_queries),
        min_size=1,
        max_size=max_transactions,
    ).map(build)


databases = st.sets(rows, min_size=0, max_size=8).map(
    lambda initial: Database.from_rows("R", ["a", "b"], list(initial))
)
