"""The store's load-bearing property: indexed matching == linear scanning.

The planner's index-intersection path must return exactly the rows the
guaranteed linear-scan fallback returns — same rows, same row ids, same
order — for any relation contents and any hyperplane pattern.  Checked
both with hypothesis over the shared strategies and with a seeded-random
loop over mixed arities (including churn: tombstones, frees, re-adds).
"""

from __future__ import annotations

import random

from hypothesis import given, strategies as st

from repro.db.schema import Relation
from repro.engine.engine import Engine
from repro.queries.pattern import Pattern
from repro.store import PlannerStats, RelationStore

from .strategies import databases, logs, patterns, rows


def paired_stores(arity: int, attributes=None):
    relation = Relation("R", attributes or [f"c{i}" for i in range(arity)])
    indexed = RelationStore(relation, PlannerStats(), use_indexes=True)
    scanned = RelationStore(relation, PlannerStats(), use_indexes=False)
    return indexed, scanned


@given(st.sets(rows, max_size=12), patterns)
def test_indexed_matching_equals_linear_scan(initial, pattern):
    indexed, scanned = paired_stores(2, ["a", "b"])
    for row in sorted(initial):
        indexed.add(row)
        scanned.add(row)
    assert indexed.matching(pattern) == scanned.matching(pattern)


@given(databases, logs())
def test_engine_with_and_without_indexes_is_bit_identical(db, log):
    """Whole-engine version: identical provenance objects, identical liveness."""
    indexed = Engine(db, policy="normal_form").apply(log)
    linear = Engine(db, policy="normal_form")
    linear.executor.store.use_indexes = False
    linear.apply(log)
    for relation in db.schema.names:
        a = {row: expr for row, expr, _live in indexed.provenance(relation)}
        b = {row: expr for row, expr, _live in linear.provenance(relation)}
        assert set(a) == set(b)
        assert all(a[row] is b[row] for row in a)
        assert indexed.live_rows(relation) == linear.live_rows(relation)
    assert indexed.stats.rows_matched == linear.stats.rows_matched
    assert indexed.stats.rows_created == linear.stats.rows_created


def random_pattern(rng: random.Random, arity: int) -> Pattern:
    domain = list(range(6)) + ["s", "t"]
    eq = {
        i: rng.choice(domain)
        for i in range(arity)
        if rng.random() < 0.4
    }
    neq = {
        i: {rng.choice(domain) for _ in range(rng.randint(1, 2))}
        for i in range(arity)
        if i not in eq and rng.random() < 0.3
    }
    # Unhashable constants are legal pattern members; the planner must
    # leave them to the predicate.  (Not at positions with disequalities:
    # Pattern's contradiction check hashes the constant there.)
    position = rng.randrange(arity)
    if position not in neq and rng.random() < 0.1:
        eq[position] = [1, 2]
    return Pattern(arity, eq=eq, neq=neq)


def test_randomized_relations_and_patterns_agree_under_churn():
    rng = random.Random(1234)
    for _trial in range(40):
        arity = rng.randint(1, 4)
        indexed, scanned = paired_stores(arity)
        support: list[tuple] = []

        def add_random_rows(count):
            for _ in range(count):
                row = tuple(rng.randrange(6) for _ in range(arity))
                if row not in indexed.rows:
                    indexed.add(row, live=rng.random() < 0.7)
                    scanned.add(row, live=indexed.rows.is_live(indexed.rows.rid_of(row)))
                    support.append(row)

        add_random_rows(rng.randint(0, 40))
        for _step in range(6):
            pattern = random_pattern(rng, arity)
            assert indexed.matching(pattern) == scanned.matching(pattern)
            # Churn: free a few rows, add a few more, compare again.
            rng.shuffle(support)
            for row in support[: rng.randint(0, 3)]:
                rid = indexed.rows.rid_of(row)
                if rid is not None:
                    indexed.free(rid)
                    scanned.free(scanned.rows.rid_of(row))
            support = [row for row in support if row in indexed.rows]
            add_random_rows(rng.randint(0, 5))
