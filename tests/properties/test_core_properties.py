"""Property-based tests of the expression algebra and the normal form."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import Bdd, expr_to_bdd
from repro.core.equivalence import BoolStructure, canonical
from repro.core.expr import evaluate, size, variables
from repro.core.minimize import is_minimized, minimize
from repro.core.normal_form import Shape
from repro.core.normalize import normalize, normalize_expr
from repro.core.rules import normalize_with_rules
from repro.semantics.sets import SetStructure

from .strategies import arbitrary_exprs, construction_exprs

SET_ELEMENTS = [frozenset(c) for r in range(3) for c in itertools.combinations(("u", "v"), r)]


def boolean_equal(e1, e2) -> bool:
    bdd = Bdd(sorted(variables(e1) | variables(e2)))
    return expr_to_bdd(e1, bdd) == expr_to_bdd(e2, bdd)


@given(construction_exprs())
def test_normalize_preserves_boolean_semantics(expr):
    assert boolean_equal(expr, normalize_expr(expr))


@given(construction_exprs(), st.data())
def test_normalize_preserves_set_semantics(expr, data):
    """Theorem 5.3 equivalence specialized to the access-control structure."""
    structure = SetStructure({"u", "v"})
    names = sorted(variables(expr))
    env = {
        name: data.draw(st.sampled_from(SET_ELEMENTS), label=name) for name in names
    }
    assert evaluate(expr, structure, env) == evaluate(normalize_expr(expr), structure, env)


@given(construction_exprs())
def test_normalize_is_idempotent(expr):
    once = normalize_expr(expr)
    assert normalize_expr(once) is once


@given(construction_exprs())
def test_normalize_never_grows(expr):
    assert size(normalize_expr(expr)) <= size(expr)


@given(construction_exprs())
def test_normalized_expression_is_a_theorem_5_3_shape(expr):
    nf = normalize(expr)
    assert nf.shape in set(Shape)
    # And the denoted expression is recognized back by the matcher.
    from repro.core.rules import match_normal_form

    assert match_normal_form(nf.to_expr()) is not None


@given(construction_exprs())
def test_replay_normalizer_agrees_with_rule_normalizer(expr):
    assert boolean_equal(normalize_expr(expr), normalize_with_rules(expr))


@given(arbitrary_exprs())
def test_minimize_is_idempotent_and_semantics_preserving(expr):
    mini = minimize(expr)
    assert minimize(mini) is mini
    assert is_minimized(mini)
    assert boolean_equal(expr, mini)


@given(arbitrary_exprs())
def test_canonical_is_idempotent_and_semantics_preserving(expr):
    canon = canonical(expr)
    assert canonical(canon) is canon
    assert boolean_equal(expr, canon)


@given(construction_exprs())
def test_canonical_normal_forms_equal_implies_equivalent(expr):
    """The cheap equivalence layer is sound (never merges inequivalent)."""
    other = normalize_expr(expr)
    if canonical(other) is canonical(expr):
        assert boolean_equal(expr, other)


@given(arbitrary_exprs())
def test_evaluation_agrees_with_bdd_bridge(expr):
    names = sorted(variables(expr))
    bdd = Bdd(names)
    node = expr_to_bdd(expr, bdd)
    structure = BoolStructure()
    for bits in itertools.product([False, True], repeat=min(len(names), 4)):
        env = dict(zip(names, bits))
        for name in names[4:]:
            env[name] = True
        assert bdd.evaluate(node, env) == evaluate(expr, structure, env)


@given(arbitrary_exprs())
def test_size_and_depth_positive_and_consistent(expr):
    from repro.core.expr import depth

    assert size(expr) >= 1
    assert 1 <= depth(expr) <= size(expr)
