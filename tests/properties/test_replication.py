"""Property-based equivalence of shipped-journal replay (ISSUE 10).

A follower fed a primary's journal lines through the
:class:`ShipmentApplier` must reconstruct, at every transaction
boundary, exactly the state a fresh engine reaches by applying the
original transaction prefix directly — same rows, same liveness, and
the very same interned annotation ``Expr`` objects — across the
``none``, ``normal_form`` and ``normal_form_batch`` policies.  For the
checkpoint-resumable policy the same must hold against ``recover()``
on a copy of the primary's directory whose journal is truncated at a
random sequence: shipping and crash recovery are the *same* replay.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, seed, strategies as st

from repro.core.expr import Expr
from repro.core.normal_form import NormalForm
from repro.engine.engine import Engine
from repro.replication.apply import ShipmentApplier
from repro.wal.checkpoint import JOURNAL_FILE
from repro.wal.engine import JournaledEngine
from repro.wal.journal import TXN_END, Journal, tail_journal
from repro.wal.recovery import recover

from .strategies import databases, logs

POLICIES = ("none", "normal_form", "normal_form_batch")

SEED = 20260808  # fixed: the sweep is reproducible run to run


def observed_state(engine):
    engine.support_count()  # force any pending batch flush, then snapshot
    return engine.executor.store.state()


def assert_annotations_identical(ann, ref_ann, context):
    """Interned-object identity, one level into NormalForm wrappers.

    ``normal_form`` stores per-row :class:`NormalForm` state machines —
    fresh wrapper objects per engine — whose embedded expressions are
    the interned ``Expr`` objects the bit-identity keel is about.
    """
    if isinstance(ann, Expr):
        assert ann is ref_ann, context
    elif isinstance(ann, NormalForm):
        assert isinstance(ref_ann, NormalForm), context
        assert ann.shape is ref_ann.shape, context
        assert len(ann.expr_refs()) == len(ref_ann.expr_refs()), context
        for expr, ref_expr in zip(ann.expr_refs(), ref_ann.expr_refs()):
            assert expr is ref_expr, context
    else:
        assert ann == ref_ann, context


def assert_bit_identical(engine, reference):
    a, b = observed_state(engine), observed_state(reference)
    assert a.keys() == b.keys()
    for name in a:
        assert a[name].keys() == b[name].keys()
        for row, (ann, live) in a[name].items():
            ref_ann, ref_live = b[name][row]
            assert live == ref_live, (name, row)
            assert_annotations_identical(ann, ref_ann, (name, row))


def journaled_primary(db, log, policy, directory):
    """Apply ``log`` on a journaled primary of ``policy``; return it.

    ``normal_form_batch`` is checkpoint-resumable and goes through
    :class:`JournaledEngine` (checkpoints disabled so the journal keeps
    every record from sequence 1); the other policies journal through a
    bare :class:`Journal` hook.
    """
    directory = Path(directory)
    if policy == "normal_form_batch":
        engine = JournaledEngine(db, directory, policy=policy, checkpoint_every=10**9)
    else:
        directory.mkdir(parents=True, exist_ok=True)
        engine = Engine(db, policy=policy, journal=Journal(directory / JOURNAL_FILE))
    engine.apply(log)
    return engine


@pytest.mark.parametrize("policy", POLICIES)
@seed(SEED)
@given(databases, logs())
def test_shipped_replay_matches_direct_application(policy, db, log):
    with tempfile.TemporaryDirectory() as tmp:
        primary = journaled_primary(db, log, policy, tmp)
        try:
            tail = tail_journal(primary.journal.path, 0)
        finally:
            primary.journal.close()
        shipments = list(zip(tail.records, tail.lines))
        assert shipments, "every generated log journals at least one record"

        follower = Engine(db, policy=policy)  # journal hook detached
        applier = ShipmentApplier(follower)
        prefix = 0
        for record, line in shipments:
            applier.apply_lines([(record, line)])
            if record["kind"] == TXN_END:
                prefix += 1
                reference = Engine(db, policy=policy)
                reference.apply(log[:prefix])
                assert_bit_identical(follower, reference)
        assert prefix == len(log)
        assert applier.applied_seq == tail.last_seq
        assert_bit_identical(follower, primary)


@seed(SEED)
@given(databases, logs(), st.data())
def test_truncated_recover_matches_follower_at_seq(db, log, data):
    """Follower state at seq s == recover() of the journal truncated at s."""
    policy = "normal_form_batch"
    with tempfile.TemporaryDirectory() as tmp:
        primary_dir = Path(tmp) / "primary"
        primary = journaled_primary(db, log, policy, primary_dir)
        try:
            tail = tail_journal(primary.journal.path, 0)
        finally:
            primary.journal.close()
        shipments = list(zip(tail.records, tail.lines))

        s = data.draw(
            st.integers(min_value=0, max_value=len(shipments)), label="truncate_seq"
        )
        copy_dir = Path(tmp) / "truncated"
        shutil.copytree(primary_dir, copy_dir)
        (copy_dir / JOURNAL_FILE).write_bytes(b"".join(tail.lines[:s]))
        reference = recover(copy_dir)
        try:
            follower = Engine(db, policy=policy)
            applier = ShipmentApplier(follower)
            applier.apply_lines(shipments[:s])
            assert applier.applied_seq == s
            assert_bit_identical(follower, reference)
        finally:
            reference.journal.close()
