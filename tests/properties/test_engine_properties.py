"""Property-based tests of the provenance engine as a whole.

These are the paper's semantic guarantees, random-tested end to end:

* every provenance policy computes the vanilla set semantics;
* the Boolean all-true valuation of any policy's provenance recovers the
  set-semantics liveness of every stored row (annotated semantics subsumes
  set semantics);
* naive and normal-form provenance are UP[X]-equivalent row by row
  (Theorem 5.3 inside the engine);
* deletion propagation and transaction abortion valuations agree with
  literal re-execution (Proposition 4.2 in application form).
"""

from hypothesis import given, strategies as st

from repro.bdd import Bdd, expr_to_bdd
from repro.core.equivalence import BoolStructure
from repro.core.expr import ZERO, evaluate, variables
from repro.engine.engine import Engine

from .strategies import databases, logs


def run(db, log, policy):
    return Engine(db, policy=policy).apply(log)


@given(databases, logs())
def test_all_policies_compute_set_semantics(db, log):
    vanilla = run(db, log, "none").result()
    for policy in ("naive", "normal_form", "mv_tree", "mv_string"):
        assert run(db, log, policy).result().same_contents(vanilla), policy


@given(databases, logs())
def test_all_true_valuation_recovers_liveness(db, log):
    structure = BoolStructure()
    for policy in ("naive", "normal_form"):
        engine = run(db, log, policy)
        for row, expr, live in engine.provenance("R"):
            value = evaluate(expr, structure, lambda _name: True)
            assert value == live, (policy, row, str(expr))


@given(databases, logs())
def test_naive_and_normal_form_provenance_equivalent(db, log):
    naive = run(db, log, "naive")
    nf = run(db, log, "normal_form")
    prov_naive = {row: expr for row, expr, _ in naive.provenance("R")}
    prov_nf = {row: expr for row, expr, _ in nf.provenance("R")}
    names = sorted(
        set().union(*(variables(e) for e in prov_naive.values())) |
        set().union(*(variables(e) for e in prov_nf.values()))
        if (prov_naive or prov_nf)
        else set()
    )
    bdd = Bdd(names)
    for row in set(prov_naive) | set(prov_nf):
        e1 = prov_naive.get(row, ZERO)
        e2 = prov_nf.get(row, ZERO)
        assert expr_to_bdd(e1, bdd) == expr_to_bdd(e2, bdd), (row, str(e1), str(e2))


@given(databases, logs())
def test_normal_form_size_linear_in_input_and_log(db, log):
    """Theorem 5.3's bound, engine-level: total NF provenance is linear in
    initial tuples + queries touched rows (generous constant)."""
    nf = run(db, log, "normal_form")
    queries = sum(len(t) for t in log)
    touched = nf.stats.rows_matched + nf.stats.rows_created
    budget = 8 * (db.total_rows() + queries + touched + 1) * (1 + len(log))
    assert nf.provenance_dag_size() <= budget


@given(databases, logs(), st.data())
def test_deletion_propagation_matches_rerun(db, log, data):
    from repro.apps.deletion import DeletionPropagation

    initial = sorted(db.rows("R"))
    if not initial:
        return
    chosen = data.draw(
        st.sets(st.sampled_from(initial), max_size=min(3, len(initial))), label="deleted"
    )
    app = DeletionPropagation(db, log)
    deletions = [("R", row) for row in chosen]
    assert app.propagate(deletions).database.same_contents(app.baseline(deletions))


@given(databases, logs(), st.data())
def test_abortion_matches_rerun(db, log, data):
    from repro.apps.abortion import TransactionAbortion

    names = [t.name for t in log]
    aborted = data.draw(st.sets(st.sampled_from(names), max_size=len(names)), label="aborted")
    app = TransactionAbortion(db, log)
    assert app.abort(aborted).database.same_contents(app.baseline(aborted))


@given(databases, logs())
def test_support_only_grows_and_live_matches_vanilla_counts(db, log):
    engine = run(db, log, "normal_form")
    vanilla = run(db, log, "none")
    assert engine.support_count() >= engine.live_count()
    assert engine.live_count() == vanilla.result().total_rows()


@given(databases, logs())
def test_tombstones_never_resurrect_without_cause(db, log):
    """A row reported live must be exactly a row of the vanilla result."""
    engine = run(db, log, "normal_form")
    assert engine.live_rows("R") == run(db, log, "none").live_rows("R")
