"""Property tests: delta-maintained views equal full recompute at every version.

The live-view contract (ISSUE 8), random-tested end to end: seed a
standing view from the initial state, apply a random transaction log one
transaction per version, drain the engine's coalesced delta buffer at
each quiescent point, and the maintained answer set must be
*bit-identical* — same rows, same liveness, and the **identical interned
expression object** per row — to a fresh pattern-filtered capture at the
same version.  Checked across every delta-capable policy and both shard
streams (a shard key on the first column makes ``logs()``'s eq-on-a
selections routed and everything else broadcast), so coalescing,
deferred-normalization flushing, and the sequential shard backend's
shared sink all sit under the property.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.engine.engine import Engine
from repro.queries.pattern import Pattern
from repro.queries.updates import Modify
from repro.shard import ShardedEngine
from repro.shard.codec import capture_engine
from repro.views import DeltaBuffer, ViewRegistry, attach_delta_sink, flush_pending

from .strategies import ARITY, VALUES, databases, deletes, inserts, logs, patterns

#: Shard-safe queries: modifications only ever assign column ``b``, so a
#: shard key on ``a`` is never re-sharded — selections still mix routed
#: (eq on ``a``) and broadcast shapes.
sharded_queries = st.one_of(
    inserts,
    deletes,
    st.builds(lambda pattern, value: Modify("R", pattern, {1: value}), patterns, VALUES),
)

#: Engine flavors under the property: every delta-capable policy, plus
#: sequential sharded backends whose random streams mix routed (shard-key
#: equality) and broadcast (everything else) deltas through one shared sink.
PLAIN_FLAVORS = {
    "naive": lambda db: Engine(db, policy="naive"),
    "normal_form": lambda db: Engine(db, policy="normal_form"),
    "normal_form_batch": lambda db: Engine(db, policy="normal_form_batch"),
}

SHARDED_FLAVORS = {
    "sharded_naive": lambda db: ShardedEngine(
        db, n_shards=2, policy="naive", shard_keys={"R": "a"}
    ),
    "sharded_batch": lambda db: ShardedEngine(
        db, n_shards=2, policy="normal_form_batch", shard_keys={"R": "a"}
    ),
}


def _recompute(engine) -> dict:
    """A fresh full capture of R — the ground truth a view must equal."""
    if isinstance(engine, ShardedEngine):
        return engine.state()["R"]
    return capture_engine(engine)["R"]


def _assert_bit_identical(view, recompute, version):
    expected = {
        row: payload for row, payload in recompute.items() if view.pattern.matches(row)
    }
    assert view.version == version
    assert view.rows.keys() == expected.keys(), view.describe()
    for row, (expr, live) in expected.items():
        got_expr, got_live = view.rows[row]
        # Expressions are interned: the delta stream must deliver the very
        # object a capture shows, not a structurally equal reconstruction.
        assert got_expr is expr, (view.describe(), row)
        assert got_live == live, (view.describe(), row)


def _check_views_track_recompute(engine, log, pattern):
    buffer = DeltaBuffer()
    attach_delta_sink(engine, buffer)
    registry = ViewRegistry()
    views = [
        registry.register("R", Pattern.any(ARITY)),  # the whole relation
        registry.register("R", pattern),  # a random selective slice
    ]
    initial = _recompute(engine)
    for view in views:
        view.seed_from_state(initial, 0)

    for version, transaction in enumerate(log, start=1):
        engine.apply(transaction)
        # The quiescent point: deferred normalization materializes into
        # this batch, then the drain stamps it with the version.
        flush_pending(engine)
        registry.apply(buffer.drain(version))
        recompute = _recompute(engine)
        for view in views:
            _assert_bit_identical(view, recompute, version)


@pytest.mark.parametrize("flavor", sorted(PLAIN_FLAVORS))
@given(databases, logs(), patterns)
def test_view_equals_recompute_at_every_version(flavor, db, log, pattern):
    _check_views_track_recompute(PLAIN_FLAVORS[flavor](db), log, pattern)


@pytest.mark.parametrize("flavor", sorted(SHARDED_FLAVORS))
@given(databases, logs(queries=sharded_queries), patterns)
def test_sharded_view_equals_recompute_at_every_version(flavor, db, log, pattern):
    _check_views_track_recompute(SHARDED_FLAVORS[flavor](db), log, pattern)
