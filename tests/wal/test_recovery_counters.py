"""Recovery counter continuity (PR 4 regression fix).

Pre-fix, ``EngineStats.sync_planner`` copied the rebuilt store's planner
counters over the WAL-restored lifetime totals on the first post-recovery
query; now the restored totals are a baseline offset the store's (honestly
zero-restarting) counters are added to.
"""

from __future__ import annotations

import pytest

from repro.engine.engine import Engine
from repro.engine.stats import EngineStats
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete
from repro.wal import JournaledEngine, recover
from repro.workloads.synthetic import synthetic_workload


@pytest.fixture
def workload():
    return synthetic_workload(
        n_tuples=400,
        n_queries=60,
        n_groups=6,
        group_size=4,
        queries_per_transaction=5,
        seed=11,
    )


def _planner_triple(stats) -> tuple[int, int, int]:
    return (stats.index_hits, stats.fallback_scans, stats.index_rows_examined)


@pytest.mark.parametrize("policy", ["naive", "normal_form_batch"])
def test_planner_counters_continue_across_checkpoint_and_replay(
    tmp_path, workload, policy
):
    engine = JournaledEngine(
        workload.database, tmp_path, policy=policy, checkpoint_every=25
    )
    engine.apply(workload.log)
    before = _planner_triple(engine.stats)
    queries_before = engine.stats.queries
    assert before[0] > 0  # the workload is selective: indexes were used
    engine.journal.close()  # crash: tail left in place

    recovered = recover(tmp_path, checkpoint_every=25)
    assert recovered.recovery.tail_records > 0  # a genuine tail replayed
    # Lifetime totals are continuous immediately after recovery...
    assert _planner_triple(recovered.stats) == before
    assert recovered.stats.queries == queries_before
    # ...while the rebuilt store honestly counts only post-checkpoint work.
    store = recovered.executor.store.stats
    assert 0 < store.index_hits < before[0]

    # The first post-recovery queries ADD to the totals instead of
    # overwriting them with the store's smaller cumulative counters.
    relation = workload.database.schema.relation("synthetic")
    grp = relation.index_of("grp")
    for group in range(3):
        recovered.apply(
            Delete("synthetic", Pattern(relation.arity, eq={grp: group}), "post")
        )
    after = _planner_triple(recovered.stats)
    assert after[0] == before[0] + 3
    assert after[0] > before[0] >= store.index_hits
    recovered.journal.close()


@pytest.mark.parametrize("policy", ["naive", "normal_form_batch"])
def test_recovered_totals_match_an_uncrashed_run(tmp_path, workload, policy):
    """Recovered counters equal a never-crashed engine's, to the unit."""
    engine = JournaledEngine(
        workload.database, tmp_path, policy=policy, checkpoint_every=30
    )
    engine.apply(workload.log)
    engine.journal.close()
    recovered = recover(tmp_path, checkpoint_every=30)
    plain = Engine(workload.database, policy=policy).apply(workload.log)
    assert _planner_triple(recovered.stats) == _planner_triple(plain.stats)
    assert recovered.stats.queries == plain.stats.queries
    assert recovered.stats.rows_matched == plain.stats.rows_matched
    recovered.journal.close()


def test_restore_sets_planner_baseline():
    restored = EngineStats.restore(
        {"index_hits": 7, "fallback_scans": 2, "index_rows_examined": 40}
    )
    assert restored.planner_base == (7, 2, 40)

    class FakePlanner:
        index_hits = 3
        fallback_scans = 1
        rows_examined = 10

    restored.sync_planner(FakePlanner())
    assert _planner_triple(restored) == (10, 3, 50)
    # Syncing is idempotent per store state: totals mirror, never re-add.
    restored.sync_planner(FakePlanner())
    assert _planner_triple(restored) == (10, 3, 50)
