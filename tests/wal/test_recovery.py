"""Checkpointed recovery: bit-identical to full replay, crash by crash.

The recovery invariant under test (ISSUE 3 acceptance): loading the
newest checkpoint and replaying the journal tail yields *bit-identical*
state — same rows, same liveness, the identical interned annotation
object per row — to replaying the entire update history from scratch,
for every resumable policy and every crash point.
"""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.engine.engine import Engine
from repro.errors import EngineError, QueryError, StorageError
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Insert, Modify, Transaction
from repro.wal import JournaledEngine, recover, scan_journal
from repro.wal.journal import records_to_events

POLICIES = ["naive", "normal_form_batch"]


def fresh_database():
    return Database.from_rows(
        "R", ["a", "b"], [(i, i % 3) for i in range(9)]
    )


def sample_log():
    return [
        Transaction("p", [Delete("R", Pattern(2, eq={1: 0})), Insert("R", (100, 100))]),
        Transaction("q", [Modify("R", Pattern(2, eq={1: 1}), {1: 7})]),
        Transaction("r", [Delete("R", Pattern(2, eq={1: 7})), Insert("R", (101, 7))]),
        Transaction("s", [Modify("R", Pattern(2, eq={1: 7}), {0: 0})]),
    ]


def observed_state(engine):
    """Store state after a full provenance observation (forces flushes)."""
    engine.support_count()
    return engine.executor.store.state()


def assert_bit_identical(recovered, reference):
    a, b = observed_state(recovered), observed_state(reference)
    assert a.keys() == b.keys()
    for name in a:
        assert a[name].keys() == b[name].keys()
        for row, (ann, live) in a[name].items():
            ref_ann, ref_live = b[name][row]
            assert live == ref_live, (name, row)
            assert ann is ref_ann, (name, row)  # identical interned object


def full_replay(policy, items):
    return Engine(fresh_database(), policy=policy).apply(items)


@pytest.mark.parametrize("policy", POLICIES)
class TestRecoveryInvariant:
    def test_empty_log_recovers_initial_state(self, tmp_path, policy):
        engine = JournaledEngine(fresh_database(), tmp_path, policy=policy)
        engine.journal.close()
        recovered = recover(tmp_path)
        assert recovered.recovery.tail_records == 0
        assert_bit_identical(recovered, Engine(fresh_database(), policy=policy))
        assert recovered.live_rows("R") == fresh_database().rows("R")

    def test_checkpoint_only_no_tail(self, tmp_path, policy):
        engine = JournaledEngine(fresh_database(), tmp_path, policy=policy)
        engine.apply(sample_log())
        engine.close()  # final checkpoint truncates the journal
        assert scan_journal(engine.checkpoints.journal_path).records == []
        recovered = recover(tmp_path)
        assert recovered.recovery.tail_records == 0
        assert recovered.recovery.replayed_queries == 0
        assert_bit_identical(recovered, full_replay(policy, sample_log()))

    def test_checkpoint_plus_tail_matches_full_replay(self, tmp_path, policy):
        # checkpoint_every=3 fires after transactions 1 and 3 of the
        # 4-transaction log, so recovery replays a genuine tail.
        engine = JournaledEngine(
            fresh_database(), tmp_path, policy=policy, checkpoint_every=3
        )
        engine.apply(sample_log())
        engine.journal.close()  # crash: replayed tail, no final checkpoint
        recovered = recover(tmp_path)
        assert recovered.recovery.tail_records > 0
        assert_bit_identical(recovered, full_replay(policy, sample_log()))

    def test_batched_pipeline_journal_recovers(self, tmp_path, policy):
        engine = JournaledEngine(
            fresh_database(), tmp_path, policy=policy, checkpoint_every=5
        )
        engine.apply_batch(sample_log())
        engine.journal.close()
        recovered = recover(tmp_path)
        reference = Engine(fresh_database(), policy=policy).apply_batch(sample_log())
        assert_bit_identical(recovered, reference)

    def test_tombstones_survive_checkpoint_and_replay(self, tmp_path, policy):
        engine = JournaledEngine(
            fresh_database(), tmp_path, policy=policy, checkpoint_every=5
        )
        engine.apply(sample_log())
        engine.journal.close()
        recovered = recover(tmp_path)
        state = observed_state(recovered)["R"]
        tombstones = {row for row, (_ann, live) in state.items() if not live}
        assert tombstones  # deletions and modification sources stay stored
        assert recovered.support_count() > recovered.live_count()
        reference_state = observed_state(full_replay(policy, sample_log()))["R"]
        assert tombstones == {
            row for row, (_ann, live) in reference_state.items() if not live
        }

    def test_kill_at_every_record_torn_write_sweep(self, tmp_path, policy):
        """Recovery is exact at every crash point, torn bytes included.

        Journal a run with no intermediate checkpoints, then cut the file
        at *every byte offset*; each cut must recover to exactly the full
        replay of the surviving record prefix, and the torn record must
        be gone from the journal afterwards.
        """
        directory = tmp_path / "wal"
        engine = JournaledEngine(
            fresh_database(), directory, policy=policy, checkpoint_every=10_000
        )
        engine.apply(sample_log())
        engine.journal.close()
        data = (directory / "journal.log").read_bytes()
        checkpoint_bytes = (directory / "checkpoint.sqlite").read_bytes()

        for cut in range(len(data) + 1):
            crashed = tmp_path / f"crash-{cut}"
            crashed.mkdir()
            (crashed / "checkpoint.sqlite").write_bytes(checkpoint_bytes)
            (crashed / "journal.log").write_bytes(data[:cut])
            recovered = recover(crashed)
            # Expected: replay exactly the surviving record prefix.
            surviving = scan_journal(crashed / "journal.log")
            assert not surviving.torn  # recovery truncated the torn tail
            expected = Engine(fresh_database(), policy=policy)
            for kind, payload in records_to_events(surviving.records):
                if kind == "query":
                    expected._apply_query(payload)
                else:
                    expected.executor.on_transaction_end(payload)
            assert_bit_identical(recovered, expected)
            recovered.journal.close()

    def test_recovered_engine_continues_and_recovers_again(self, tmp_path, policy):
        items = sample_log()
        engine = JournaledEngine(
            fresh_database(), tmp_path, policy=policy, checkpoint_every=5
        )
        engine.apply(items[:2])
        engine.journal.close()
        recovered = recover(tmp_path)
        recovered.apply(items[2:])
        recovered.journal.close()
        again = recover(tmp_path)
        assert_bit_identical(again, full_replay(policy, items))

    def test_resumable_stats_continue_across_recovery(self, tmp_path, policy):
        engine = JournaledEngine(
            fresh_database(), tmp_path, policy=policy, checkpoint_every=3
        )
        engine.apply(sample_log())
        engine.journal.close()
        recovered = recover(tmp_path)
        reference = full_replay(policy, sample_log())
        for key in ("queries", "inserts", "deletes", "modifies", "transactions",
                    "rows_created", "rows_matched"):
            assert getattr(recovered.stats, key) == getattr(reference.stats, key), key
        # Planner counters keep counting monotonically after recovery.
        before = recovered.stats.index_hits
        recovered.apply(Transaction("t", [Delete("R", Pattern(2, eq={1: 2}))]))
        assert recovered.stats.index_hits > before
        recovered.journal.close()

    def test_tuple_vars_survive_recovery(self, tmp_path, policy):
        engine = JournaledEngine(fresh_database(), tmp_path, policy=policy)
        engine.apply(sample_log())
        engine.journal.close()
        recovered = recover(tmp_path)
        reference = full_replay(policy, sample_log())
        for row in fresh_database().rows("R"):
            assert recovered.tuple_var("R", row) == reference.tuple_var("R", row)
        assert recovered.tuple_var_names() == reference.tuple_var_names()

    def test_custom_annotate_names_survive_recovery(self, tmp_path, policy):
        """Initial-tuple names from a custom callback are checkpoint state.

        The callback itself cannot be persisted, but it only ever names
        *initial* tuples (inserts are named by their query annotation),
        and those names ride along in the checkpoint's ``tuple_vars``
        metadata — so a recovered engine answers what-ifs identically.
        """
        namer = lambda rel, row, i: f"{rel}#{i}"  # noqa: E731
        engine = JournaledEngine(
            fresh_database(), tmp_path, policy=policy, annotate=namer,
            checkpoint_every=3,
        )
        engine.apply(sample_log())
        engine.journal.close()
        recovered = recover(tmp_path)
        reference = Engine(fresh_database(), policy=policy, annotate=namer).apply(
            sample_log()
        )
        assert_bit_identical(recovered, reference)
        for row in fresh_database().rows("R"):
            name = recovered.tuple_var("R", row)
            assert name == reference.tuple_var("R", row)
            assert name is not None and name.startswith("R#")


class TestLifecycle:
    def test_fresh_engine_refuses_existing_directory(self, tmp_path):
        JournaledEngine(fresh_database(), tmp_path).journal.close()
        with pytest.raises(StorageError, match="use repro.wal.recover"):
            JournaledEngine(fresh_database(), tmp_path)

    def test_recover_requires_a_checkpoint(self, tmp_path):
        with pytest.raises(StorageError, match="no checkpoint"):
            recover(tmp_path / "void")
        # Recovery is read-only: a mistyped path is not created.
        assert not (tmp_path / "void").exists()

    def test_non_resumable_policies_rejected(self, tmp_path):
        for policy in ("none", "normal_form", "mv_tree"):
            with pytest.raises(EngineError, match="cannot be journaled"):
                JournaledEngine(fresh_database(), tmp_path / policy, policy=policy)

    def test_context_manager_checkpoints_on_clean_exit(self, tmp_path):
        with JournaledEngine(fresh_database(), tmp_path, checkpoint_every=10_000) as engine:
            engine.apply(sample_log())
        assert scan_journal(tmp_path / "journal.log").records == []
        recovered = recover(tmp_path)
        assert recovered.recovery.tail_records == 0
        assert_bit_identical(recovered, full_replay("naive", sample_log()))

    def test_context_manager_keeps_tail_on_exception(self, tmp_path):
        with pytest.raises(RuntimeError):
            with JournaledEngine(
                fresh_database(), tmp_path, checkpoint_every=10_000
            ) as engine:
                engine.apply(sample_log()[:1])
                raise RuntimeError("crash")
        assert scan_journal(tmp_path / "journal.log").records  # tail preserved
        recovered = recover(tmp_path)
        assert_bit_identical(recovered, full_replay("naive", sample_log()[:1]))

    def test_failed_apply_writes_abort_record(self, tmp_path):
        engine = JournaledEngine(fresh_database(), tmp_path, checkpoint_every=10_000)
        engine.apply(sample_log()[:1])
        with pytest.raises(QueryError, match="no annotation"):
            engine.apply(Delete("R", Pattern(2, eq={1: 1})))  # un-annotated
        state = observed_state(engine)
        engine.journal.close()
        recovered = recover(tmp_path)
        assert not recovered.recovery.skipped_final_record  # abort was durable
        assert observed_state(recovered) == state

    def test_crash_before_abort_record_skips_final_query(self, tmp_path):
        engine = JournaledEngine(fresh_database(), tmp_path, checkpoint_every=10_000)
        engine.apply(sample_log()[:1])
        with pytest.raises(QueryError):
            engine.apply(Delete("R", Pattern(2, eq={1: 1})))
        state = observed_state(engine)
        engine.journal.close()
        # Strip the trailing abort record: the crash beat it to disk.
        journal_path = tmp_path / "journal.log"
        lines = journal_path.read_bytes().splitlines(keepends=True)
        assert b'"kind":"abort"' in lines[-1]
        journal_path.write_bytes(b"".join(lines[:-1]))
        recovered = recover(tmp_path)
        assert recovered.recovery.skipped_final_record
        assert observed_state(recovered) == state
        recovered.journal.close()
        # The recovery appended the missing abort: future recoveries are clean.
        again = recover(tmp_path)
        assert not again.recovery.skipped_final_record
        assert observed_state(again) == state

    def test_failed_apply_batch_query_stays_recoverable(self, tmp_path):
        """Journaled runs write ahead per query, so a raising query inside
        a batched run is abort-compensated and the directory recovers to
        exactly the applied prefix."""
        engine = JournaledEngine(fresh_database(), tmp_path, checkpoint_every=10_000)
        good = Insert("R", (100, 100), "p")
        bad = Delete("R", Pattern(2, eq={1: 0}))  # un-annotated: raises
        with pytest.raises(QueryError, match="no annotation"):
            engine.apply_batch([good, bad, Insert("R", (101, 101), "p")])
        state = observed_state(engine)
        engine.journal.close()
        recovered = recover(tmp_path)
        assert observed_state(recovered) == state
        assert recovered.live_rows("R") >= {(100, 100)}  # prefix applied
        assert (101, 101) not in recovered.live_rows("R")  # suffix never ran
        recovered.journal.close()
        assert observed_state(recover(tmp_path)) == state  # and stays clean

    def test_torn_final_record_is_reported_and_truncated(self, tmp_path):
        engine = JournaledEngine(fresh_database(), tmp_path, checkpoint_every=10_000)
        engine.apply(sample_log())
        engine.journal.close()
        journal_path = tmp_path / "journal.log"
        data = journal_path.read_bytes()
        journal_path.write_bytes(data[:-3])  # tear the final record
        recovered = recover(tmp_path)
        assert recovered.recovery.torn_bytes_dropped > 0
        assert not scan_journal(journal_path).torn

    def test_row_threshold_triggers_checkpoints(self, tmp_path):
        engine = JournaledEngine(
            fresh_database(),
            tmp_path,
            checkpoint_every=10_000,
            checkpoint_rows=1,
        )
        written_before = engine.checkpoints.written
        engine.apply(sample_log()[:1])  # creates a row -> checkpoint due
        assert engine.checkpoints.written > written_before
        engine.journal.close()
