"""The write-ahead journal: record codec, sync policies, torn-tail scans."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Insert, Modify
from repro.wal.journal import (
    Journal,
    encode_record,
    parse_line,
    records_to_events,
    scan_journal,
    truncate_torn_tail,
)

QUERIES = [
    Insert("R", (1, "x"), "p"),
    Delete("R", Pattern(2, eq={1: "x"}), "p"),
    Modify("R", Pattern(2, eq={0: 1}), {1: "y"}, "q"),
]


@pytest.fixture
def journal_path(tmp_path):
    return tmp_path / "journal.log"


def write_sample(path, sync="flush"):
    with Journal(path, sync=sync) as journal:
        for query in QUERIES:
            journal.append_query(query)
        journal.append_txn_end("p")
        journal.append_batch_end(3)
    return path


class TestCodec:
    def test_lines_round_trip(self, journal_path):
        write_sample(journal_path)
        scan = scan_journal(journal_path)
        assert not scan.torn
        assert [r["kind"] for r in scan.records] == [
            "query", "query", "query", "txn_end", "batch_end",
        ]
        assert [r["seq"] for r in scan.records] == [1, 2, 3, 4, 5]

    def test_events_round_trip_queries_exactly(self, journal_path):
        write_sample(journal_path)
        events = list(records_to_events(scan_journal(journal_path).records))
        replayed = [payload for kind, payload in events if kind == "query"]
        assert replayed == QUERIES  # annotation, pattern, assignments intact
        assert events[-1] == ("txn_end", "p")  # batch_end is audit-only

    def test_parse_line_rejects_any_mutation(self):
        line = encode_record(1, "txn_end", {"name": "p"}).rstrip(b"\n")
        assert parse_line(line) is not None
        assert parse_line(line[:-1]) is None  # torn payload
        assert parse_line(b"zz" + line[2:]) is None  # bad checksum hex
        flipped = line[:9] + b"X" + line[10:]
        assert parse_line(flipped) is None  # payload no longer matches crc
        assert parse_line(b"") is None
        assert parse_line(b"deadbeef not-json") is None

    def test_abort_cancels_preceding_query(self, journal_path):
        with Journal(journal_path) as journal:
            journal.append_query(QUERIES[0])
            journal.append_query(QUERIES[1])
            journal.append_abort()
            journal.append_txn_end("p")
        events = list(records_to_events(scan_journal(journal_path).records))
        assert events == [("query", QUERIES[0]), ("txn_end", "p")]

    def test_orphan_abort_is_corruption(self):
        with pytest.raises(StorageError, match="abort without"):
            list(records_to_events([{"seq": 1, "kind": "abort", "undo": 0}]))


class TestScan:
    def test_missing_file_is_empty_journal(self, tmp_path):
        scan = scan_journal(tmp_path / "void.log")
        assert scan.records == [] and not scan.torn

    def test_torn_final_record_at_every_byte(self, journal_path, tmp_path):
        """Cutting the file anywhere loses at most the final record."""
        write_sample(journal_path)
        data = journal_path.read_bytes()
        complete = scan_journal(journal_path).records
        cut_path = tmp_path / "cut.log"
        for cut in range(len(data) + 1):
            cut_path.write_bytes(data[:cut])
            scan = scan_journal(cut_path)
            # The parsed prefix is always a prefix of the full record list.
            assert scan.records == complete[: len(scan.records)]
            assert scan.torn == (cut != scan.good_bytes)
            if scan.torn:
                assert truncate_torn_tail(cut_path, scan) == cut - scan.good_bytes
                clean = scan_journal(cut_path)
                assert not clean.torn and clean.records == scan.records

    def test_valid_record_after_garbage_is_corruption(self, journal_path):
        write_sample(journal_path)
        lines = journal_path.read_bytes().splitlines(keepends=True)
        lines[1] = b"garbage line\n"
        journal_path.write_bytes(b"".join(lines))
        with pytest.raises(StorageError, match="complete record after"):
            scan_journal(journal_path)

    def test_decreasing_sequence_is_corruption(self, journal_path):
        with open(journal_path, "wb") as handle:
            handle.write(encode_record(5, "txn_end", {"name": "p"}))
            handle.write(encode_record(3, "txn_end", {"name": "q"}))
        with pytest.raises(StorageError, match="sequence"):
            scan_journal(journal_path)


class TestJournal:
    @pytest.mark.parametrize("sync", ["none", "flush", "fsync"])
    def test_sync_policies_produce_identical_files(self, tmp_path, sync):
        path = write_sample(tmp_path / f"{sync}.log", sync=sync)
        assert path.read_bytes() == write_sample(tmp_path / "ref.log").read_bytes()

    def test_unknown_sync_policy(self, journal_path):
        with pytest.raises(StorageError, match="sync policy"):
            Journal(journal_path, sync="eventually")

    def test_reset_empties_file_but_not_sequence(self, journal_path):
        journal = Journal(journal_path)
        journal.append_txn_end("p")
        journal.reset()
        assert journal_path.read_bytes() == b""
        assert journal.records_since_reset == 0
        seq = journal.append_txn_end("q")
        assert seq == 2  # sequence numbers survive truncation
        journal.close()
        assert scan_journal(journal_path).records[0]["seq"] == 2

    def test_append_after_preexisting_tail(self, journal_path):
        write_sample(journal_path)
        journal = Journal(journal_path, start_seq=5, preexisting_records=5)
        journal.append_txn_end("r")
        journal.close()
        scan = scan_journal(journal_path)
        assert [r["seq"] for r in scan.records] == [1, 2, 3, 4, 5, 6]
        assert journal.records_since_reset == 6
