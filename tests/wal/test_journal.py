"""The write-ahead journal: record codec, sync policies, torn-tail scans."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.queries.pattern import Pattern
from repro.queries.updates import Delete, Insert, Modify
from repro.wal.journal import (
    Journal,
    encode_record,
    parse_line,
    records_to_events,
    scan_journal,
    tail_journal,
    truncate_torn_tail,
)

QUERIES = [
    Insert("R", (1, "x"), "p"),
    Delete("R", Pattern(2, eq={1: "x"}), "p"),
    Modify("R", Pattern(2, eq={0: 1}), {1: "y"}, "q"),
]


@pytest.fixture
def journal_path(tmp_path):
    return tmp_path / "journal.log"


def write_sample(path, sync="flush"):
    with Journal(path, sync=sync) as journal:
        for query in QUERIES:
            journal.append_query(query)
        journal.append_txn_end("p")
        journal.append_batch_end(3)
    return path


class TestCodec:
    def test_lines_round_trip(self, journal_path):
        write_sample(journal_path)
        scan = scan_journal(journal_path)
        assert not scan.torn
        assert [r["kind"] for r in scan.records] == [
            "query", "query", "query", "txn_end", "batch_end",
        ]
        assert [r["seq"] for r in scan.records] == [1, 2, 3, 4, 5]

    def test_events_round_trip_queries_exactly(self, journal_path):
        write_sample(journal_path)
        events = list(records_to_events(scan_journal(journal_path).records))
        replayed = [payload for kind, payload in events if kind == "query"]
        assert replayed == QUERIES  # annotation, pattern, assignments intact
        assert events[-1] == ("txn_end", "p")  # batch_end is audit-only

    def test_parse_line_rejects_any_mutation(self):
        line = encode_record(1, "txn_end", {"name": "p"}).rstrip(b"\n")
        assert parse_line(line) is not None
        assert parse_line(line[:-1]) is None  # torn payload
        assert parse_line(b"zz" + line[2:]) is None  # bad checksum hex
        flipped = line[:9] + b"X" + line[10:]
        assert parse_line(flipped) is None  # payload no longer matches crc
        assert parse_line(b"") is None
        assert parse_line(b"deadbeef not-json") is None

    def test_abort_cancels_preceding_query(self, journal_path):
        with Journal(journal_path) as journal:
            journal.append_query(QUERIES[0])
            journal.append_query(QUERIES[1])
            journal.append_abort()
            journal.append_txn_end("p")
        events = list(records_to_events(scan_journal(journal_path).records))
        assert events == [("query", QUERIES[0]), ("txn_end", "p")]

    def test_orphan_abort_is_corruption(self):
        with pytest.raises(StorageError, match="abort without"):
            list(records_to_events([{"seq": 1, "kind": "abort", "undo": 0}]))


class TestScan:
    def test_missing_file_is_empty_journal(self, tmp_path):
        scan = scan_journal(tmp_path / "void.log")
        assert scan.records == [] and not scan.torn

    def test_torn_final_record_at_every_byte(self, journal_path, tmp_path):
        """Cutting the file anywhere loses at most the final record."""
        write_sample(journal_path)
        data = journal_path.read_bytes()
        complete = scan_journal(journal_path).records
        cut_path = tmp_path / "cut.log"
        for cut in range(len(data) + 1):
            cut_path.write_bytes(data[:cut])
            scan = scan_journal(cut_path)
            # The parsed prefix is always a prefix of the full record list.
            assert scan.records == complete[: len(scan.records)]
            assert scan.torn == (cut != scan.good_bytes)
            if scan.torn:
                assert truncate_torn_tail(cut_path, scan) == cut - scan.good_bytes
                clean = scan_journal(cut_path)
                assert not clean.torn and clean.records == scan.records

    def test_valid_record_after_garbage_is_corruption(self, journal_path):
        write_sample(journal_path)
        lines = journal_path.read_bytes().splitlines(keepends=True)
        lines[1] = b"garbage line\n"
        journal_path.write_bytes(b"".join(lines))
        with pytest.raises(StorageError, match="complete record after"):
            scan_journal(journal_path)

    def test_decreasing_sequence_is_corruption(self, journal_path):
        with open(journal_path, "wb") as handle:
            handle.write(encode_record(5, "txn_end", {"name": "p"}))
            handle.write(encode_record(3, "txn_end", {"name": "q"}))
        with pytest.raises(StorageError, match="sequence"):
            scan_journal(journal_path)


class TestJournal:
    @pytest.mark.parametrize("sync", ["none", "flush", "fsync"])
    def test_sync_policies_produce_identical_files(self, tmp_path, sync):
        path = write_sample(tmp_path / f"{sync}.log", sync=sync)
        assert path.read_bytes() == write_sample(tmp_path / "ref.log").read_bytes()

    def test_unknown_sync_policy(self, journal_path):
        with pytest.raises(StorageError, match="sync policy"):
            Journal(journal_path, sync="eventually")

    def test_reset_empties_file_but_not_sequence(self, journal_path):
        journal = Journal(journal_path)
        journal.append_txn_end("p")
        journal.reset()
        assert journal_path.read_bytes() == b""
        assert journal.records_since_reset == 0
        seq = journal.append_txn_end("q")
        assert seq == 2  # sequence numbers survive truncation
        journal.close()
        assert scan_journal(journal_path).records[0]["seq"] == 2

    def test_append_after_preexisting_tail(self, journal_path):
        write_sample(journal_path)
        journal = Journal(journal_path, start_seq=5, preexisting_records=5)
        journal.append_txn_end("r")
        journal.close()
        scan = scan_journal(journal_path)
        assert [r["seq"] for r in scan.records] == [1, 2, 3, 4, 5, 6]
        assert journal.records_since_reset == 6


class TestTail:
    """The shipper's read primitive: complete frames only, resets visible."""

    def test_missing_file_at_offset_zero_is_clean_empty(self, tmp_path):
        tail = tail_journal(tmp_path / "void.log", 0)
        assert tail.records == [] and tail.lines == []
        assert tail.next_offset == 0 and tail.pending_bytes == 0
        assert not tail.truncated

    def test_missing_file_past_offset_zero_is_a_reset(self, tmp_path):
        # We had read bytes from a file that no longer exists: resync.
        assert tail_journal(tmp_path / "void.log", 40).truncated

    def test_negative_offset_rejected(self, journal_path):
        with pytest.raises(StorageError, match="offset"):
            tail_journal(journal_path, -1)

    def test_incremental_reads_cover_every_record_once(self, journal_path):
        write_sample(journal_path)
        full = scan_journal(journal_path).records
        offset, last_seq, seen = 0, None, []
        # One record per read: offsets resume exactly where they left off.
        while True:
            tail = tail_journal(journal_path, offset, last_seq)
            assert not tail.truncated and tail.pending_bytes == 0
            if not tail.records:
                break
            seen.extend(tail.records)
            offset, last_seq = tail.next_offset, tail.last_seq
        assert seen == full

    def test_raw_lines_are_byte_verbatim(self, journal_path):
        write_sample(journal_path)
        tail = tail_journal(journal_path)
        assert b"".join(tail.lines) == journal_path.read_bytes()
        assert all(line.endswith(b"\n") for line in tail.lines)
        assert [parse_line(line[:-1]) for line in tail.lines] == tail.records

    def test_partial_final_frame_is_pending_not_shipped(self, journal_path):
        """The silent-gap hazard: a torn/in-progress final frame must be
        reported as pending, never parsed as complete or treated as EOF."""
        write_sample(journal_path)
        data = journal_path.read_bytes()
        full = scan_journal(journal_path)
        boundaries = [0]
        for record_end in range(len(data)):
            if data[record_end : record_end + 1] == b"\n":
                boundaries.append(record_end + 1)
        cut_path = journal_path.parent / "cut.log"
        for cut in range(len(data) + 1):
            cut_path.write_bytes(data[:cut])
            tail = tail_journal(cut_path, 0)
            good = max(b for b in boundaries if b <= cut)
            assert not tail.truncated
            assert tail.next_offset == good
            assert tail.pending_bytes == cut - good
            assert b"".join(tail.lines) == data[:good]
            assert tail.records == full.records[: len(tail.records)]
            # Once the frame completes, a resumed read ships exactly it.
            if tail.pending_bytes:
                cut_path.write_bytes(data)
                resumed = tail_journal(cut_path, tail.next_offset, tail.last_seq)
                assert resumed.records == full.records[len(tail.records) :]

    def test_reset_below_offset_is_truncated_not_clean_end(self, journal_path):
        write_sample(journal_path)
        tail = tail_journal(journal_path)
        assert tail.next_offset > 0
        journal_path.write_bytes(b"")  # checkpoint reset
        after = tail_journal(journal_path, tail.next_offset, tail.last_seq)
        assert after.truncated  # naive tailing would call this a clean EOF
        assert after.records == [] and after.pending_bytes == 0

    def test_complete_but_corrupt_line_raises(self, journal_path):
        journal_path.write_bytes(b"deadbeef not-a-record\n")
        with pytest.raises(StorageError, match="unreadable complete line"):
            tail_journal(journal_path)

    def test_non_increasing_sequence_raises(self, journal_path):
        with open(journal_path, "wb") as handle:
            handle.write(encode_record(5, "txn_end", {"name": "p"}))
            handle.write(encode_record(3, "txn_end", {"name": "q"}))
        with pytest.raises(StorageError, match="sequence 3 after 5"):
            tail_journal(journal_path)
        # ...and against the caller's own bookkeeping via last_seq.
        with pytest.raises(StorageError, match="sequence 5 after 9"):
            tail_journal(journal_path, 0, last_seq=9)


class TestReplicationHooks:
    def test_on_append_fires_per_record_with_verbatim_line(self, journal_path):
        shipped = []
        journal = Journal(journal_path)
        journal.on_append = lambda seq, line: shipped.append((seq, line))
        for query in QUERIES:
            journal.append_query(query)
        journal.append_txn_end("p")
        journal.close()
        assert [seq for seq, _ in shipped] == [1, 2, 3, 4]
        assert b"".join(line for _, line in shipped) == journal_path.read_bytes()

    def test_on_reset_reports_covered_seq(self, journal_path):
        resets = []
        journal = Journal(journal_path)
        journal.on_reset = resets.append
        journal.append_txn_end("p")
        journal.append_txn_end("q")
        journal.reset()
        journal.close()
        assert resets == [2]

    def test_append_raw_replays_primary_lines_byte_identical(
        self, journal_path, tmp_path
    ):
        write_sample(journal_path)
        replica_path = tmp_path / "replica.log"
        replica = Journal(replica_path)
        tail = tail_journal(journal_path)
        for record, line in zip(tail.records, tail.lines):
            replica.append_raw(line, record["seq"])
        replica.close()
        assert replica_path.read_bytes() == journal_path.read_bytes()
        assert replica.last_seq == tail.last_seq
        assert replica.appended == len(tail.records)

    def test_append_raw_rejects_gaps_and_duplicates(self, journal_path):
        line = encode_record(1, "txn_end", {"name": "p"})
        journal = Journal(journal_path)
        journal.append_raw(line, 1)
        with pytest.raises(StorageError, match="out of sequence"):
            journal.append_raw(line, 1)  # duplicate
        with pytest.raises(StorageError, match="got 3, expected 2"):
            journal.append_raw(encode_record(3, "txn_end", {"name": "q"}), 3)
        journal.close()
