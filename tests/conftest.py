"""Shared fixtures: the paper's running example and small workloads."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import HealthCheck, settings

import repro
from repro.db.database import Database
from repro.engine.engine import Engine
from repro.queries.updates import Modify, Transaction


def subprocess_env() -> dict[str, str]:
    """An environment for child interpreters that can ``import repro``.

    pytest's ``pythonpath`` config does not propagate to subprocesses, so
    tests that spawn one (examples, intern-table isolation) prepend the
    source directory this very test session imported repro from.
    """
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    return env

# One global hypothesis profile: property tests here run whole engines, so
# the default per-example deadline is meaningless noise.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=30,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

#: Figure 1a rows with their paper annotations.
PRODUCTS_ROWS = {
    ("Kids mnt bike", "Sport", 120): "p1",
    ("Tennis Racket", "Sport", 70): "p2",
    ("Kids mnt bike", "Kids", 120): "p3",
    ("Children sneakers", "Fashion", 40): "p4",
}


@pytest.fixture
def products_db() -> Database:
    """The Figure 1a products table."""
    return Database.from_rows(
        "products", ["product", "category", "price"], list(PRODUCTS_ROWS)
    )


@pytest.fixture
def products_namer():
    """Annotator assigning the paper's p1..p4 names to the initial rows."""
    return lambda _relation, row, _index: PRODUCTS_ROWS[row]


@pytest.fixture
def products_engine(products_db, products_namer):
    """A normal-form engine over the products table, not yet applied."""
    return Engine(products_db, policy="normal_form", annotate=products_namer)


def paper_transactions(db: Database) -> tuple[Transaction, Transaction, Transaction]:
    """T1 (Figure 2a), T1' (Figure 2b) and T2 (Figure 2c)."""
    rel = db.relation("products")
    t1 = Transaction(
        "p",
        [
            Modify.set(
                rel,
                where={"product": "Kids mnt bike", "category": "Kids"},
                set_values={"category": "Sport"},
            ),
            Modify.set(
                rel,
                where={"product": "Kids mnt bike", "category": "Sport"},
                set_values={"category": "Bicycles"},
            ),
        ],
    )
    t1_prime = Transaction(
        "p",
        [
            Modify.set(
                rel,
                where={"product": "Kids mnt bike", "category": "Kids"},
                set_values={"category": "Bicycles"},
            ),
            Modify.set(
                rel,
                where={"product": "Kids mnt bike", "category": "Sport"},
                set_values={"category": "Bicycles"},
            ),
        ],
    )
    t2 = Transaction(
        "p'", [Modify.set(rel, where={"category": "Sport"}, set_values={"price": 50})]
    )
    return t1, t1_prime, t2


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0)
