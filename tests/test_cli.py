"""The repro command line interface."""

import pytest

from repro.cli import build_parser, main


def test_version(capsys):
    with pytest.raises(SystemExit) as exit_info:
        main(["--version"])
    assert exit_info.value.code == 0
    assert "repro" in capsys.readouterr().out


def test_demo_reproduces_figure_4(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "Kids mnt bike" in out
    assert "(p1 + p3) *M p" in out or "(p3 + p1) *M p" in out
    assert "(p2 *M p')" in out
    # Example 4.4: aborting T1 brings back (Kids mnt bike, Sport, 50).
    assert "('Kids mnt bike', 'Sport', 50)" in out


def test_axioms_command(capsys):
    assert main(["axioms"]) == 0
    out = capsys.readouterr().out
    assert "boolean" in out and "sets" in out and "trust" in out
    assert "FAILED" not in out


def test_tpcc_command(capsys):
    assert main(["tpcc", "--queries", "40", "--warehouses", "1"]) == 0
    out = capsys.readouterr().out
    assert "TPC-C" in out and "provenance_size" in out


def test_tpcc_journal_then_recover(tmp_path, capsys):
    directory = str(tmp_path / "wal")
    code = main(
        [
            "tpcc", "--queries", "40", "--policy", "naive",
            "--journal", directory, "--checkpoint-every", "30",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "journal:" in out and "checkpoints" in out
    assert main(["recover", directory]) == 0
    out = capsys.readouterr().out
    assert "recovered" in out and "tail_records" in out and "lifetime" in out


def test_tpcc_sharded(capsys):
    assert main(["tpcc", "--queries", "40", "--shards", "3", "--policy", "naive"]) == 0
    out = capsys.readouterr().out
    assert "TPC-C" in out and "provenance_size" in out


def test_tpcc_sharded_journal_then_recover(tmp_path, capsys):
    directory = str(tmp_path / "sharded")
    code = main(
        [
            "tpcc", "--queries", "40", "--policy", "naive",
            "--shards", "3", "--journal", directory, "--checkpoint-every", "30",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "journal: 3 shard directories" in out
    # Sharded directories are auto-detected; --shards only validates.
    assert main(["recover", directory, "--shards", "3"]) == 0
    out = capsys.readouterr().out
    assert "3 shards" in out and "shard 00:" in out and "tail_records" in out
    assert main(["recover", directory, "--shards", "5"]) == 2
    assert "holds 3 shards" in capsys.readouterr().err


def test_tpcc_journal_rejects_non_resumable_policy(tmp_path, capsys):
    code = main(
        ["tpcc", "--queries", "10", "--policy", "normal_form",
         "--journal", str(tmp_path / "wal")]
    )
    assert code == 2
    assert "cannot be journaled" in capsys.readouterr().err


def test_recover_without_checkpoint(tmp_path, capsys):
    assert main(["recover", str(tmp_path / "void")]) == 2
    assert "no checkpoint" in capsys.readouterr().err


def test_figure_command_single(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
    assert main(["figure", "blowup"]) == 0
    out = capsys.readouterr().out
    assert "prop5.1" in out


def test_figure_command_unknown(capsys):
    assert main(["figure", "fig99"]) == 2
    assert "fig99" in capsys.readouterr().err


def test_figure_save(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
    assert main(["figure", "blowup", "--save", str(tmp_path)]) == 0
    assert (tmp_path / "prop5.1.json").exists()


def test_sql_command(tmp_path, capsys):
    script = tmp_path / "script.sql"
    script.write_text(
        """
        BEGIN TRANSACTION t1;
        UPDATE products SET price = 50 WHERE category = 'Sport';
        COMMIT;
        """
    )
    csv = tmp_path / "products.csv"
    csv.write_text("product,category,price\nRacket,Sport,70\nDress,Fashion,40\n")
    code = main(
        [
            "sql",
            str(script),
            "--schema",
            "products:product,category,price",
            "--csv",
            f"products={csv}",
            "--minimize",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "('Racket', 'Sport', 50)" in out
    assert "*M t1" in out


def test_sql_command_bad_schema_spec(capsys):
    assert main(["sql", "-", "--schema", "nocolumns"]) == 2
    assert "REL:a,b,c" in capsys.readouterr().err


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def free_port() -> int:
    """A port that was free a moment ago (good enough for test servers)."""
    import socket

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def test_serve_and_client_round_trip(tmp_path, capsys):
    """``repro serve`` in a child process, driven by ``repro client``."""
    import json
    import subprocess
    import sys

    from .conftest import subprocess_env

    directory = str(tmp_path / "state")
    port = str(free_port())
    log_file = tmp_path / "log.json"
    log_file.write_text(json.dumps({
        "meta": {},
        "items": [{
            "type": "transaction",
            "name": "t1",
            "queries": [{"kind": "insert", "relation": "items", "row": ["widget", 3]}],
        }],
    }))
    server = subprocess.Popen(
        [sys.executable, "-c",
         "from repro.cli import main; raise SystemExit(main("
         f"['serve', {directory!r}, '--backend', 'journaled', '--policy', 'naive',"
         " '--schema', 'items:sku,qty', '--port', " + repr(port) + "]))"],
        env=subprocess_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        client = ["client", "--port", port]  # --retry waits for the bind
        assert main([*client, "apply", str(log_file)]) == 0
        assert "applied 1 queries" in capsys.readouterr().out
        assert main([*client, "provenance", "items"]) == 0
        assert "('widget', 3)" in capsys.readouterr().out
        assert main([*client, "stats"]) == 0
        assert "admitted: 1" in capsys.readouterr().out
        assert main([*client, "shutdown"]) == 0
        output, _ = server.communicate(timeout=60)
    finally:
        if server.poll() is None:
            server.kill()
            server.communicate()
    assert server.returncode == 0, output
    assert "server stopped (flushed and checkpointed)" in output
    # The graceful shutdown checkpointed: the directory recovers cleanly.
    assert main(["recover", directory]) == 0
    assert "tail_records: 0" in capsys.readouterr().out


def test_client_without_server_reports_error(capsys):
    assert main(["client", "ping", "--port", str(free_port()), "--retry", "0.1"]) == 2
    assert "cannot connect" in capsys.readouterr().err


def test_loadgen_print_serve_args(capsys):
    assert main(["loadgen", "--profile", "tiny", "--print-serve-args"]) == 0
    out = capsys.readouterr().out
    assert "--schema load_0:id,grp,v0 --schema load_1:id,grp,v0" in out


def test_loadgen_rejects_unknown_profile_and_bad_specs(capsys):
    assert main(["loadgen", "--profile", "galactic"]) == 2
    assert "unknown profile" in capsys.readouterr().err
    assert main(["loadgen", "--slo", "apply-p99-fast"]) == 2
    assert "bad SLO" in capsys.readouterr().err
    assert main(["loadgen", "--mix", "apply=lots"]) == 2
    assert "bad mix weight" in capsys.readouterr().err


@pytest.fixture()
def loadgen_server():
    """An in-process server holding the tiny profile's relations."""
    from repro.db.database import Database
    from repro.loadgen import loadgen_schema, profile_from_name
    from repro.server.server import serve_in_thread
    from repro.server.service import ServerConfig

    database = Database(loadgen_schema(profile_from_name("tiny")))
    handle = serve_in_thread(database, ServerConfig(port=0, policy="normal_form_batch"))
    yield handle
    handle.stop()


def test_loadgen_run_writes_trajectory_and_csv(tmp_path, capsys, loadgen_server):
    import json

    code = main([
        "loadgen", "--port", str(loadgen_server.port), "--threads",
        "--profile", "tiny", "--ops", "30",
        "--slo", "apply:p99<5", "--slo", "state:max<10",
        "--save", str(tmp_path), "--csv", str(tmp_path / "quantiles.csv"),
    ])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "profile tiny: 60 ops over 2 workers" in out
    assert "p99" in out
    envelope = json.loads((tmp_path / "BENCH_loadgen_tiny.json").read_text())
    assert envelope["kind"] == "loadgen"
    assert envelope["payload"]["config"]["ops_per_worker"] == 30
    csv_text = (tmp_path / "quantiles.csv").read_text()
    assert csv_text.startswith("op,count,errors,p50,p90,p99,max,mean")


def test_loadgen_slo_violation_exits_nonzero(tmp_path, capsys, loadgen_server):
    code = main([
        "loadgen", "--port", str(loadgen_server.port), "--threads",
        "--profile", "tiny", "--ops", "20", "--report-every", "0",
        "--slo", "apply:p99<0.000001", "--save", str(tmp_path),
    ])
    captured = capsys.readouterr()
    assert code == 1
    assert "SLO violated: apply:p99<1e-06" in captured.err


def test_loadgen_refuses_a_server_missing_its_relations(tmp_path, capsys, loadgen_server):
    # Ask for more workers than the served schema has relations for.
    code = main([
        "loadgen", "--port", str(loadgen_server.port), "--threads",
        "--profile", "tiny", "--workers", "3", "--no-save",
    ])
    captured = capsys.readouterr()
    assert code == 2
    assert "missing loadgen relations" in captured.err
    assert "--schema load_2:id,grp,v0" in captured.err
