"""The SQL fragment corresponding to hyperplane queries.

Paper Section 2, "Note": hyperplane queries correspond to

1. single-row insertions — ``INSERT INTO R VALUES (c1, ..., cn)``;
2. deletions — ``DELETE FROM R WHERE s1 AND ... AND sm`` where every
   ``si`` is ``attribute op constant`` with ``op`` in ``{=, <>}``;
3. updates — ``UPDATE R SET l1, ..., ln WHERE s1 AND ... AND sm`` with
   the same restriction on the ``li`` and ``si``.

This module parses exactly that fragment (rejecting anything richer —
joins, subqueries, inter-attribute comparisons — with a pointed error),
plus two conveniences:

* ``BEGIN TRANSACTION <name>; ...; COMMIT;`` groups statements into an
  annotated :class:`~repro.queries.updates.Transaction`;
* a trailing ``-- @<annotation>`` comment annotates a single statement
  (comments are otherwise skipped, so the annotation marker is scanned
  textually before tokenization).

``<>`` and ``!=`` are both accepted for disequality; string literals use
single quotes with ``''`` as the escape; ``WHERE`` may be omitted
(matching every row).
"""

from __future__ import annotations

import re
from typing import Sequence

from ..db.schema import Relation, Schema
from ..errors import ParseError
from ..queries.pattern import Pattern
from ..queries.updates import Delete, Insert, Modify, Transaction, UpdateQuery
from .tokens import TokenStream

__all__ = ["parse_sql", "parse_sql_script", "format_sql", "format_sql_script"]

_ANNOTATION_COMMENT = re.compile(r"--\s*@([A-Za-z_][A-Za-z0-9_.']*)")


def _constant(stream: TokenStream) -> object:
    token = stream.peek()
    if token.kind in ("STRING", "NUMBER"):
        return stream.next().value
    if stream.at_name("NULL"):
        stream.next()
        return None
    if stream.at_name("TRUE"):
        stream.next()
        return True
    if stream.at_name("FALSE"):
        stream.next()
        return False
    raise stream.error("expected a constant (string, number, NULL, TRUE or FALSE)")


def _parse_condition(stream: TokenStream, relation: Relation) -> tuple[int, str, object]:
    attr_token = stream.expect("NAME")
    attribute = str(attr_token.value)
    position = relation.index_of(attribute)
    if stream.accept("OP", "="):
        op = "="
    elif stream.accept("OP", "<>") or stream.accept("OP", "!="):
        op = "<>"
    else:
        raise stream.error(
            "hyperplane conditions allow only = and <> against constants "
            "(no joins, ranges or subqueries)"
        )
    if stream.at("NAME") and not stream.at_name("NULL", "TRUE", "FALSE"):
        raise stream.error(
            f"right-hand side of {attribute} {op} ... must be a constant; "
            "comparisons between attributes are outside the hyperplane fragment"
        )
    return position, op, _constant(stream)


def _parse_where(stream: TokenStream, relation: Relation) -> Pattern:
    eq: dict[int, object] = {}
    neq: dict[int, set[object]] = {}
    if not stream.accept_name("WHERE"):
        return Pattern(relation.arity)
    while True:
        position, op, value = _parse_condition(stream, relation)
        if op == "=":
            if position in eq and eq[position] != value:
                raise stream.error(
                    f"contradictory equalities on {relation.attributes[position]}"
                )
            eq[position] = value
        else:
            neq.setdefault(position, set()).add(value)
        if stream.accept_name("AND"):
            continue
        if stream.at_name("OR"):
            raise stream.error("OR is outside the hyperplane fragment; use two statements")
        break
    return Pattern(relation.arity, eq=eq, neq=neq)


def _parse_insert(stream: TokenStream, schema: Schema, annotation: str | None) -> Insert:
    stream.expect_name("INTO")
    relation = schema.relation(str(stream.expect("NAME").value))
    columns: list[str] | None = None
    if stream.accept("OP", "("):
        columns = [str(stream.expect("NAME").value)]
        while stream.accept("OP", ","):
            columns.append(str(stream.expect("NAME").value))
        stream.expect("OP", ")")
    stream.expect_name("VALUES")
    stream.expect("OP", "(")
    values: list[object] = [_constant(stream)]
    while stream.accept("OP", ","):
        values.append(_constant(stream))
    stream.expect("OP", ")")
    if columns is not None:
        if len(columns) != len(values):
            raise stream.error(
                f"{len(columns)} columns but {len(values)} values in INSERT"
            )
        if set(columns) != set(relation.attributes):
            missing = [a for a in relation.attributes if a not in columns]
            raise stream.error(
                f"single-row INSERT must set every attribute; missing {missing}"
            )
        by_name = dict(zip(columns, values))
        values = [by_name[a] for a in relation.attributes]
    elif len(values) != relation.arity:
        raise stream.error(
            f"INSERT into {relation.name!r} needs {relation.arity} values, got {len(values)}"
        )
    return Insert(relation.name, values, annotation)


def _parse_delete(stream: TokenStream, schema: Schema, annotation: str | None) -> Delete:
    stream.expect_name("FROM")
    relation = schema.relation(str(stream.expect("NAME").value))
    pattern = _parse_where(stream, relation)
    return Delete(relation.name, pattern, annotation)


def _parse_update(stream: TokenStream, schema: Schema, annotation: str | None) -> Modify:
    relation = schema.relation(str(stream.expect("NAME").value))
    stream.expect_name("SET")
    assignments: dict[int, object] = {}
    while True:
        attribute = str(stream.expect("NAME").value)
        position = relation.index_of(attribute)
        stream.expect("OP", "=")
        if stream.at("NAME") and not stream.at_name("NULL", "TRUE", "FALSE"):
            raise stream.error(
                f"SET {attribute} = ... must assign a constant (hyperplane fragment)"
            )
        assignments[position] = _constant(stream)
        if not stream.accept("OP", ","):
            break
    pattern = _parse_where(stream, relation)
    return Modify(relation.name, pattern, assignments, annotation)


def _parse_statement(stream: TokenStream, schema: Schema, annotation: str | None) -> UpdateQuery:
    if stream.accept_name("INSERT"):
        return _parse_insert(stream, schema, annotation)
    if stream.accept_name("DELETE"):
        return _parse_delete(stream, schema, annotation)
    if stream.accept_name("UPDATE"):
        return _parse_update(stream, schema, annotation)
    token = stream.peek()
    if token.kind == "NAME" and str(token.value).upper() in ("SELECT", "MERGE", "CREATE", "DROP"):
        raise stream.error(
            f"{str(token.value).upper()} is not an update statement of the hyperplane fragment"
        )
    raise stream.error("expected INSERT, DELETE or UPDATE")


def parse_sql(
    text: str, schema: Schema, annotation: str | None = None
) -> UpdateQuery:
    """Parse a single SQL statement of the hyperplane fragment.

    A ``-- @p`` comment in ``text`` annotates the statement (an explicit
    ``annotation`` argument wins).
    """
    if annotation is None:
        match = _ANNOTATION_COMMENT.search(text)
        if match:
            annotation = match.group(1)
    stream = TokenStream(text)
    query = _parse_statement(stream, schema, annotation)
    stream.accept("OP", ";")
    stream.expect_end()
    return query


def parse_sql_script(
    text: str, schema: Schema
) -> list[UpdateQuery | Transaction]:
    """Parse a ``;``-separated script with optional transaction blocks.

    ``BEGIN TRANSACTION <name>; ... COMMIT;`` produces a
    :class:`~repro.queries.updates.Transaction` whose annotation is the
    block name; bare statements keep their ``-- @p`` annotations (if any).
    """
    # Annotation comments apply to the statement that precedes them on the
    # same line; collect them by offset before the lexer strips comments.
    annotations = [(m.start(), m.group(1)) for m in _ANNOTATION_COMMENT.finditer(text)]

    def annotation_after(position: int, limit: int) -> str | None:
        for offset, name in annotations:
            if position <= offset < limit:
                return name
        return None

    stream = TokenStream(text)
    out: list[UpdateQuery | Transaction] = []
    while not stream.at("END"):
        if stream.accept("OP", ";"):
            continue
        if stream.at_name("BEGIN"):
            stream.next()
            stream.accept_name("TRANSACTION")
            name = str(stream.expect("NAME").value)
            stream.accept("OP", ";")
            queries: list[UpdateQuery] = []
            while not stream.at_name("COMMIT"):
                if stream.at("END"):
                    raise stream.error(f"transaction {name!r} is missing COMMIT")
                queries.append(_parse_statement(stream, schema, None))
                stream.accept("OP", ";")
            stream.expect_name("COMMIT")
            stream.accept("OP", ";")
            out.append(Transaction(name, queries))
            continue
        start = stream.peek().position
        query = _parse_statement(stream, schema, None)
        stream.accept("OP", ";")
        end = stream.peek().position
        note = annotation_after(start, end if end > start else len(text))
        if note is not None:
            query = query.annotated(note)
        out.append(query)
    return out


# ---------------------------------------------------------------------------
# Formatting
# ---------------------------------------------------------------------------


def _format_value(value: object) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


def _format_where(pattern: Pattern, relation: Relation) -> str:
    conditions: list[str] = []
    for i in range(pattern.arity):
        name = relation.attributes[i]
        if i in pattern.eq:
            conditions.append(f"{name} = {_format_value(pattern.eq[i])}")
        elif i in pattern.neq:
            conditions.extend(
                f"{name} <> {_format_value(v)}" for v in sorted(pattern.neq[i], key=repr)
            )
    if not conditions:
        return ""
    return " WHERE " + " AND ".join(conditions)


def format_sql(query: UpdateQuery, schema: Schema, with_annotation: bool = True) -> str:
    """Render a query as a SQL statement (inverse of :func:`parse_sql`)."""
    relation = schema.relation(query.relation)
    note = ""
    if with_annotation and query.annotation:
        note = f"  -- @{query.annotation}"
    if isinstance(query, Insert):
        values = ", ".join(_format_value(v) for v in query.row)
        return f"INSERT INTO {query.relation} VALUES ({values});{note}"
    if isinstance(query, Delete):
        return f"DELETE FROM {query.relation}{_format_where(query.pattern, relation)};{note}"
    assert isinstance(query, Modify)
    sets = ", ".join(
        f"{relation.attributes[i]} = {_format_value(v)}"
        for i, v in sorted(query.assignments.items())
    )
    where = _format_where(query.pattern, relation)
    return f"UPDATE {query.relation} SET {sets}{where};{note}"


def format_sql_script(
    items: Sequence[UpdateQuery | Transaction], schema: Schema
) -> str:
    """Render queries/transactions as a script :func:`parse_sql_script` accepts."""
    lines: list[str] = []
    for item in items:
        if isinstance(item, Transaction):
            lines.append(f"BEGIN TRANSACTION {item.name};")
            lines.extend(
                f"    {format_sql(q, schema, with_annotation=False)}" for q in item.queries
            )
            lines.append("COMMIT;")
        else:
            lines.append(format_sql(item, schema))
    return "\n".join(lines)
