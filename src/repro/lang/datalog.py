"""The paper's datalog-style query notation.

Grammar (Section 2 / Section 3.1 of the paper, examples 2.1-2.4)::

    query      :=  relation marker [ "," annotation ] "(" terms ")" [ ":-" ]
    marker     :=  "+" | "-" | "M"
    terms      :=  term { "," term }
    term       :=  constant                       -- "Sport", 120
                |  variable                       -- a, b, c
                |  "[" variable { "!=" constant } "]"   -- [p != "Kids mnt bike"]

Examples accepted verbatim from the paper::

    products+,p("Lego bricks", "Kids", 90) :-
    products-,p(a, "Fashion", b) :-
    productsM,p("Kids mnt bike", a, b, "Kids mnt bike", "Bicycles", b) :-
    products-([p != "Kids mnt bike"], "Sport", c) :-

For a modification the term list holds ``u1`` followed by ``u2`` (twice the
relation's arity); per the paper's definition every ``u2`` entry either
repeats the corresponding ``u1`` variable (the value is kept) or is a
constant (the value is assigned).

The hyperplane restriction is enforced: a variable may occur at most once
in ``u1`` (repeating it would express an inter-attribute equality, which
the fragment excludes).

A *program* is a sequence of queries, optionally grouped into transactions
with ``transaction <name> { ... }`` blocks.
"""

from __future__ import annotations

from typing import Sequence

from ..db.schema import Relation, Schema
from ..errors import ParseError
from ..queries.pattern import Pattern
from ..queries.updates import Delete, Insert, Modify, Transaction, UpdateQuery
from .tokens import TokenStream

__all__ = ["parse_query", "parse_program", "format_query", "format_program"]


# Markers that cannot start an annotation or a term; "M" is special-cased
# because it is also a valid variable name.
_MARKERS = {"+": "insert", "-": "delete", "M": "modify"}


class _Const:
    __slots__ = ("value",)

    def __init__(self, value: object):
        self.value = value


class _Var:
    __slots__ = ("name", "excluded")

    def __init__(self, name: str, excluded: frozenset[object] = frozenset()):
        self.name = name
        self.excluded = excluded


_Term = _Const | _Var


def _parse_term(stream: TokenStream) -> _Term:
    if stream.at("STRING") or stream.at("NUMBER"):
        return _Const(stream.next().value)
    if stream.accept("OP", "["):
        name_token = stream.expect("NAME")
        name = str(name_token.value)
        excluded: set[object] = set()
        while True:
            if not (stream.accept("OP", "!=") or stream.accept("OP", "<>")):
                raise stream.error(f"expected != after variable {name!r}")
            const = stream.peek()
            if const.kind not in ("STRING", "NUMBER"):
                raise stream.error("disequality needs a constant right-hand side")
            excluded.add(stream.next().value)
            if not stream.accept("OP", ","):
                break
            repeat = stream.expect("NAME")
            if str(repeat.value) != name:
                raise stream.error(
                    f"all disequalities in one bracket constrain the same variable "
                    f"(got {repeat.value!r}, expected {name!r})"
                )
        stream.expect("OP", "]")
        return _Var(name, frozenset(excluded))
    if stream.at("NAME"):
        return _Var(str(stream.next().value))
    raise stream.error("expected a constant, a variable or a [var != const] term")


def _parse_head(stream: TokenStream) -> tuple[str, str, str | None]:
    """Parse ``relation marker [, annotation]`` and return the triple."""
    relation = str(stream.expect("NAME").value)
    kind: str | None = None
    # The modification marker "M" may be glued onto the relation name
    # (``productsM``) as in the paper's typesetting, or stand alone.
    if stream.at("OP", "+") or stream.at("OP", "-"):
        kind = _MARKERS[str(stream.next().value)]
    elif stream.at("NAME", "M"):
        stream.next()
        kind = "modify"
    elif relation.endswith("M") and len(relation) > 1 and stream.at("OP", ","):
        relation, kind = relation[:-1], "modify"
    elif relation.endswith("M") and len(relation) > 1 and stream.at("OP", "("):
        relation, kind = relation[:-1], "modify"
    if kind is None:
        raise stream.error(f"relation {relation!r} needs an update marker (+, - or M)")
    annotation: str | None = None
    if stream.accept("OP", ","):
        annotation = str(stream.expect("NAME").value)
    return relation, kind, annotation


def _build_insert(
    relation: Relation, terms: Sequence[_Term], annotation: str | None, stream: TokenStream
) -> Insert:
    row = []
    for i, term in enumerate(terms):
        if not isinstance(term, _Const):
            raise stream.error(
                f"insertion into {relation.name!r} requires constants; "
                f"position {i} ({relation.attributes[i]}) is a variable"
            )
        row.append(term.value)
    return Insert(relation.name, row, annotation)


def _pattern_of(relation: Relation, terms: Sequence[_Term], stream: TokenStream) -> Pattern:
    eq: dict[int, object] = {}
    neq: dict[int, frozenset[object]] = {}
    seen_vars: dict[str, int] = {}
    for i, term in enumerate(terms):
        if isinstance(term, _Const):
            eq[i] = term.value
            continue
        if term.name in seen_vars:
            raise stream.error(
                f"variable {term.name!r} occurs at positions {seen_vars[term.name]} and "
                f"{i}; hyperplane queries cannot compare attributes"
            )
        seen_vars[term.name] = i
        if term.excluded:
            neq[i] = term.excluded
    return Pattern(relation.arity, eq=eq, neq=neq)


def _build_modify(
    relation: Relation, terms: Sequence[_Term], annotation: str | None, stream: TokenStream
) -> Modify:
    arity = relation.arity
    u1, u2 = terms[:arity], terms[arity:]
    pattern = _pattern_of(relation, u1, stream)
    assignments: dict[int, object] = {}
    for i, (t1, t2) in enumerate(zip(u1, u2)):
        if isinstance(t2, _Const):
            if isinstance(t1, _Const) and t1.value == t2.value:
                continue  # same constant on both sides: value kept
            assignments[i] = t2.value
        elif isinstance(t1, _Var) and t1.name == t2.name:
            if t2.excluded and t2.excluded != t1.excluded:
                raise stream.error(
                    f"position {i}: disequalities belong on the u1 occurrence of "
                    f"{t1.name!r}"
                )
            continue  # same variable: value kept
        else:
            raise stream.error(
                f"position {i} of u2 must repeat u1's variable or be a constant"
            )
    if not assignments:
        # The paper allows u1 = u2 (an identity modification); Modify requires
        # at least one assignment, so pin one constrained position to itself.
        for i, t1 in enumerate(u1):
            if isinstance(t1, _Const):
                assignments[i] = t1.value
                break
        else:
            raise stream.error(
                "identity modification with no constants cannot be represented"
            )
    return Modify(relation.name, pattern, assignments, annotation)


def parse_query(text: str, schema: Schema) -> UpdateQuery:
    """Parse one datalog-style query against ``schema``."""
    stream = TokenStream(text)
    query = _parse_one(stream, schema)
    stream.expect_end()
    return query


def _parse_one(stream: TokenStream, schema: Schema) -> UpdateQuery:
    relation_name, kind, annotation = _parse_head(stream)
    relation = schema.relation(relation_name)
    stream.expect("OP", "(")
    terms: list[_Term] = [_parse_term(stream)]
    while stream.accept("OP", ","):
        terms.append(_parse_term(stream))
    stream.expect("OP", ")")
    stream.accept("OP", ":-")
    expected = relation.arity * (2 if kind == "modify" else 1)
    if len(terms) != expected:
        raise stream.error(
            f"{kind} on {relation.name!r} needs {expected} terms, got {len(terms)}"
        )
    if kind == "insert":
        return _build_insert(relation, terms, annotation, stream)
    if kind == "delete":
        return Delete(relation.name, _pattern_of(relation, terms, stream), annotation)
    return _build_modify(relation, terms, annotation, stream)


def parse_program(text: str, schema: Schema) -> list[UpdateQuery | Transaction]:
    """Parse a sequence of queries and ``transaction <name> { ... }`` blocks."""
    stream = TokenStream(text)
    out: list[UpdateQuery | Transaction] = []
    while not stream.at("END"):
        if stream.at_name("TRANSACTION"):
            stream.next()
            name = str(stream.expect("NAME").value)
            stream.expect("NAME", "do") if stream.at("NAME", "do") else None
            if not stream.accept("OP", "("):
                raise stream.error("transaction body must be parenthesized: transaction p ( ... )")
            queries: list[UpdateQuery] = []
            while not stream.at("OP", ")"):
                queries.append(_parse_one(stream, schema))
            stream.expect("OP", ")")
            out.append(Transaction(name, queries))
        else:
            out.append(_parse_one(stream, schema))
    return out


# ---------------------------------------------------------------------------
# Formatting (the inverse direction)
# ---------------------------------------------------------------------------


def _format_constant(value: object) -> str:
    if isinstance(value, str):
        return '"' + value.replace('"', '""') + '"'
    return repr(value)


def _variable_names(n: int) -> list[str]:
    """a, b, ..., z, v26, v27, ... — fresh per-query variable names."""
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    return [alphabet[i] if i < 26 else f"v{i}" for i in range(n)]


def _format_pattern_terms(pattern: Pattern) -> list[str]:
    names = _variable_names(pattern.arity)
    terms: list[str] = []
    for i in range(pattern.arity):
        if i in pattern.eq:
            terms.append(_format_constant(pattern.eq[i]))
        elif i in pattern.neq:
            conditions = ", ".join(
                f"{names[i]} != {_format_constant(v)}" for v in sorted(pattern.neq[i], key=repr)
            )
            terms.append(f"[{conditions}]")
        else:
            terms.append(names[i])
    return terms


def format_query(query: UpdateQuery) -> str:
    """Render a query in the paper's notation (inverse of :func:`parse_query`)."""
    p = f",{query.annotation}" if query.annotation else ""
    if isinstance(query, Insert):
        body = ", ".join(_format_constant(v) for v in query.row)
        return f"{query.relation}+{p}({body}) :-"
    if isinstance(query, Delete):
        body = ", ".join(_format_pattern_terms(query.pattern))
        return f"{query.relation}-{p}({body}) :-"
    assert isinstance(query, Modify)
    u1 = _format_pattern_terms(query.pattern)
    names = _variable_names(query.pattern.arity)
    u2: list[str] = []
    for i in range(query.pattern.arity):
        if i in query.assignments:
            u2.append(_format_constant(query.assignments[i]))
        elif i in query.pattern.eq:
            u2.append(_format_constant(query.pattern.eq[i]))
        else:
            u2.append(names[i])
    return f"{query.relation}M{p}({', '.join(u1)}, {', '.join(u2)}) :-"


def format_program(items: Sequence[UpdateQuery | Transaction]) -> str:
    """Render queries/transactions as a parseable program."""
    lines: list[str] = []
    for item in items:
        if isinstance(item, Transaction):
            lines.append(f"transaction {item.name} (")
            lines.extend(f"    {format_query(q)}" for q in item.queries)
            lines.append(")")
        else:
            lines.append(format_query(item))
    return "\n".join(lines)
