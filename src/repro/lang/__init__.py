"""Textual front-ends for hyperplane update queries.

Two surface syntaxes, both compiling to the same
:mod:`repro.queries` objects:

* :mod:`repro.lang.datalog` — the paper's datalog-style notation, e.g.
  ``products-,p(a, "Fashion", b) :-``;
* :mod:`repro.lang.sql` — the SQL fragment the paper's Section 2 "Note"
  identifies (single-row ``INSERT``, ``DELETE``/``UPDATE`` with
  conjunctions of ``attr = c`` / ``attr <> c``), plus
  ``BEGIN TRANSACTION .. COMMIT`` blocks for annotated transactions.
"""

from .datalog import format_program as format_datalog_program
from .datalog import format_query as format_datalog
from .datalog import parse_program as parse_datalog_program
from .datalog import parse_query as parse_datalog
from .sql import format_sql, format_sql_script, parse_sql, parse_sql_script

__all__ = [
    "format_datalog",
    "format_datalog_program",
    "format_sql",
    "format_sql_script",
    "parse_datalog",
    "parse_datalog_program",
    "parse_sql",
    "parse_sql_script",
]
