"""A small shared tokenizer for the two query languages.

Token kinds:

=========  ==========================================================
``NAME``   identifiers (relation/attribute/variable/keyword names)
``STRING`` quoted literals — double quotes in datalog, single in SQL
           (both accepted by the lexer; the escape is a doubled quote)
``NUMBER`` integer or decimal literals (kept as ``int``/``float``)
``OP``     punctuation and operators (``(``, ``)``, ``,``, ``=``,
           ``!=``, ``<>``, ``:-``, ``[``, ``]``, ``;``, ``*``, ``.``)
``END``    end of input (always the last token)
=========  ==========================================================

Comments — ``-- line`` and ``/* block */`` — are skipped.  Positions are
byte offsets into the original text, which :class:`~repro.errors.ParseError`
turns into line/column coordinates.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

from ..errors import ParseError

__all__ = ["Token", "tokenize", "TokenStream"]

_OPERATORS = (
    ":-",
    "!=",
    "<>",
    "<=",
    ">=",
    "(",
    ")",
    "[",
    "]",
    ",",
    ";",
    "=",
    "*",
    ".",
    "+",
    "-",
    "<",
    ">",
)

_NAME_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CONT = _NAME_START | frozenset("0123456789'")
_DIGITS = frozenset("0123456789")


class Token(NamedTuple):
    """One lexical token."""

    kind: str  # NAME | STRING | NUMBER | OP | END
    value: object
    position: int

    def matches(self, kind: str, value: object = None) -> bool:
        return self.kind == kind and (value is None or self.value == value)


def _scan_string(text: str, start: int, quote: str) -> tuple[str, int]:
    """Scan a quoted literal; the escape for a quote is doubling it."""
    out: list[str] = []
    i = start + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == quote:
            if i + 1 < n and text[i + 1] == quote:
                out.append(quote)
                i += 2
                continue
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise ParseError("unterminated string literal", position=start, text=text)


def _scan_number(text: str, start: int) -> tuple[object, int]:
    i = start
    n = len(text)
    if text[i] == "-":
        i += 1
    while i < n and text[i] in _DIGITS:
        i += 1
    is_float = False
    if i < n and text[i] == "." and i + 1 < n and text[i + 1] in _DIGITS:
        is_float = True
        i += 1
        while i < n and text[i] in _DIGITS:
            i += 1
    literal = text[start:i]
    return (float(literal) if is_float else int(literal)), i


def tokenize(text: str) -> Iterator[Token]:
    """Tokenize ``text``; always ends with an ``END`` token."""
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                raise ParseError("unterminated block comment", position=i, text=text)
            i = end + 2
            continue
        if ch in ("'", '"'):
            value, i_next = _scan_string(text, i, ch)
            yield Token("STRING", value, i)
            i = i_next
            continue
        if ch in _DIGITS or (
            ch == "-" and i + 1 < n and text[i + 1] in _DIGITS and not text.startswith("--", i)
        ):
            value, i_next = _scan_number(text, i)
            yield Token("NUMBER", value, i)
            i = i_next
            continue
        if ch in _NAME_START:
            j = i + 1
            while j < n and text[j] in _NAME_CONT:
                j += 1
            yield Token("NAME", text[i:j], i)
            i = j
            continue
        for op in _OPERATORS:
            if text.startswith(op, i):
                yield Token("OP", op, i)
                i += len(op)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", position=i, text=text)
    yield Token("END", None, n)


class TokenStream:
    """A peekable token cursor with error reporting helpers."""

    def __init__(self, text: str):
        self.text = text
        self._tokens = list(tokenize(text))
        self._pos = 0

    def peek(self) -> Token:
        return self._tokens[self._pos]

    def next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "END":
            self._pos += 1
        return token

    def at(self, kind: str, value: object = None) -> bool:
        return self.peek().matches(kind, value)

    def at_name(self, *names: str) -> bool:
        """True if the next token is one of the given keywords (case-insensitive)."""
        token = self.peek()
        return token.kind == "NAME" and str(token.value).upper() in names

    def accept(self, kind: str, value: object = None) -> Token | None:
        if self.at(kind, value):
            return self.next()
        return None

    def accept_name(self, *names: str) -> Token | None:
        if self.at_name(*names):
            return self.next()
        return None

    def expect(self, kind: str, value: object = None) -> Token:
        token = self.peek()
        if not token.matches(kind, value):
            wanted = value if value is not None else kind
            raise self.error(f"expected {wanted!r}, found {self._describe(token)}")
        return self.next()

    def expect_name(self, *names: str) -> Token:
        token = self.peek()
        if not token.kind == "NAME" or str(token.value).upper() not in names:
            raise self.error(f"expected {'/'.join(names)}, found {self._describe(token)}")
        return self.next()

    def expect_end(self) -> None:
        if not self.at("END"):
            raise self.error(f"trailing input: {self._describe(self.peek())}")

    def error(self, message: str) -> ParseError:
        return ParseError(message, position=self.peek().position, text=self.text)

    @staticmethod
    def _describe(token: Token) -> str:
        if token.kind == "END":
            return "end of input"
        return repr(token.value)
