"""Loadgen results: stats lines, SLO floors, CSV, and ``BENCH_*.json``.

A :class:`LoadgenResult` is the merged view of one run — per-op-kind
latency histograms, error counts, and the achieved aggregate rate.  It
renders three ways: human stats lines / a summary table, a CSV export
(one row per op kind), and a schema-versioned ``BENCH_loadgen_<profile>``
trajectory written through the shared bench writer
(:func:`repro.bench.measure.write_bench_json`), so every run leaves a
machine-readable latency record future PRs are measured against.

An :class:`SLO` is a latency floor in the operable sense: ``apply:p99<0.05``
reads "the 99th-percentile apply latency must stay under 50ms".
:func:`check_slos` returns human-readable violations; the CLI turns any
into a non-zero exit, and ``tests/bench`` asserts a tiny profile's floors
in tier-1 — latency gated the same way speedup ratios already are.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..errors import ReproError
from .histogram import LatencyHistogram
from .workload import LoadgenProfile

__all__ = [
    "SCHEMA_VERSION",
    "SLO",
    "LoadgenResult",
    "check_slos",
    "format_stats_line",
    "parse_slos",
    "write_result",
]

#: Version of the ``BENCH_loadgen_*.json`` payload layout.
SCHEMA_VERSION = 1

#: CSV column order of :meth:`LoadgenResult.to_csv`.
_CSV_COLUMNS = ("op", "count", "errors", "p50", "p90", "p99", "max", "mean")


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f}ms" if seconds < 10 else f"{seconds:.1f}s"


def format_stats_line(
    elapsed: float,
    ops: int,
    rate: float,
    hists: Mapping[str, LatencyHistogram],
    errors: int,
) -> str:
    """One periodic progress line: totals plus p50/p99 per op kind."""
    parts = [f"t={elapsed:6.1f}s", f"ops={ops}", f"rate={rate:.0f}/s", f"errors={errors}"]
    for kind in sorted(hists):
        summary = hists[kind].summary()
        parts.append(f"{kind} p50={_ms(summary['p50'])} p99={_ms(summary['p99'])}")
    return "loadgen " + " ".join(parts)


@dataclass
class LoadgenResult:
    """The merged outcome of one loadgen run."""

    profile: LoadgenProfile
    ops_total: int
    elapsed: float  #: the slowest worker's timed-section wall time
    achieved_rate: float  #: aggregate ops/sec actually sustained
    hists: dict[str, LatencyHistogram]
    errors: dict[str, int]
    worker_reports: list[dict] = field(default_factory=list)
    #: Periodic server-side memory observations (the driver's ``stats``
    #: polls): ``{"t", "rss_bytes", "intern_table_size", ...}`` per sample.
    memory_samples: list[dict] = field(default_factory=list)

    @property
    def errors_total(self) -> int:
        return sum(self.errors.values())

    def op_summaries(self) -> dict[str, dict[str, float | int]]:
        """``{op kind: {count, p50, p90, p99, max, mean, errors}}``."""
        return {
            kind: {**hist.summary(), "errors": self.errors.get(kind, 0)}
            for kind, hist in sorted(self.hists.items())
        }

    # -- rendering -------------------------------------------------------------

    def format_summary(self) -> str:
        """The end-of-run table the CLI prints."""
        lines = [
            f"profile {self.profile.name}: {self.ops_total} ops over "
            f"{self.profile.workers} workers in {self.elapsed:.2f}s "
            f"({self.achieved_rate:.0f} ops/s, {self.errors_total} errors)"
        ]
        header = f"  {'op':<14} {'count':>7} {'errors':>6} {'p50':>9} {'p90':>9} {'p99':>9} {'max':>9}"
        lines.append(header)
        for kind, summary in self.op_summaries().items():
            lines.append(
                f"  {kind:<14} {summary['count']:>7} {summary['errors']:>6} "
                f"{_ms(summary['p50']):>9} {_ms(summary['p90']):>9} "
                f"{_ms(summary['p99']):>9} {_ms(summary['max']):>9}"
            )
        return "\n".join(lines)

    def to_csv(self) -> str:
        """One CSV row per op kind (seconds, full float precision)."""
        out = io.StringIO()
        writer = csv.DictWriter(out, fieldnames=list(_CSV_COLUMNS))
        writer.writeheader()
        for kind, summary in self.op_summaries().items():
            writer.writerow({"op": kind, **{c: summary[c] for c in _CSV_COLUMNS[1:]}})
        return out.getvalue()

    # -- persistence -----------------------------------------------------------

    def as_payload(self) -> dict[str, object]:
        """The ``BENCH_loadgen_*`` body (the shared writer adds the envelope)."""
        return {
            "profile": self.profile.name,
            "config": self.profile.as_dict(),
            "workers": self.profile.workers,
            "ops_total": self.ops_total,
            "elapsed": self.elapsed,
            "achieved_rate": self.achieved_rate,
            "errors": dict(self.errors),
            "errors_total": self.errors_total,
            "ops": {
                kind: {
                    "summary": {**hist.summary(), "errors": self.errors.get(kind, 0)},
                    "histogram": hist.to_dict(),
                }
                for kind, hist in sorted(self.hists.items())
            },
            "per_worker": list(self.worker_reports),
            "memory": {
                "samples": list(self.memory_samples),
                "final": self.memory_samples[-1] if self.memory_samples else None,
            },
        }


def write_result(result: LoadgenResult, directory: str | Path = ".") -> Path:
    """Persist one run as ``BENCH_loadgen_<profile>.json`` under ``directory``."""
    from ..bench.measure import write_bench_json

    return write_bench_json(
        "loadgen", result.profile.name, result.as_payload(), directory
    )


# ---------------------------------------------------------------------------
# SLO floors
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SLO:
    """One latency floor: the ``quantile`` of ``op`` must stay under ``limit``.

    ``quantile`` is a fraction (0.99 for p99); 1.0 reads the exact
    maximum.  ``limit`` is in seconds.
    """

    op: str
    quantile: float
    limit: float

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile <= 1.0:
            raise ReproError(f"SLO quantile must be in (0, 1], got {self.quantile}")
        if self.limit <= 0:
            raise ReproError(f"SLO limit must be positive, got {self.limit}")

    @property
    def label(self) -> str:
        quantile = "max" if self.quantile == 1.0 else f"p{self.quantile * 100:g}"
        return f"{self.op}:{quantile}<{self.limit:g}"

    @classmethod
    def parse(cls, text: str) -> "SLO":
        """``"apply:p99<0.05"`` / ``"state:max<1"`` — seconds on the right."""
        head, sep, limit_text = text.partition("<")
        op, colon, quantile_text = head.strip().partition(":")
        if not sep or not colon:
            raise ReproError(f"bad SLO {text!r} (want OP:pNN<SECONDS or OP:max<SECONDS)")
        quantile_text = quantile_text.strip().lower()
        if quantile_text == "max":
            quantile = 1.0
        elif quantile_text.startswith("p"):
            try:
                quantile = float(quantile_text[1:]) / 100.0
            except ValueError as exc:
                raise ReproError(f"bad SLO quantile in {text!r}") from exc
        else:
            raise ReproError(f"bad SLO quantile in {text!r} (want pNN or max)")
        try:
            limit = float(limit_text)
        except ValueError as exc:
            raise ReproError(f"bad SLO limit in {text!r}") from exc
        return cls(op.strip(), quantile, limit)


def check_slos(result: LoadgenResult, slos: Iterable[SLO]) -> list[str]:
    """Human-readable violations (empty = all floors hold).

    An SLO naming an op kind the run never executed is itself a
    violation — a floor that silently never measures anything would make
    the gate advisory.
    """
    violations: list[str] = []
    for slo in slos:
        hist = result.hists.get(slo.op)
        if hist is None or hist.count == 0:
            violations.append(f"{slo.label}: no {slo.op!r} operations were measured")
            continue
        observed = hist.quantile(slo.quantile)
        if observed >= slo.limit:
            violations.append(
                f"{slo.label}: observed {observed * 1000:.2f}ms >= "
                f"limit {slo.limit * 1000:.2f}ms over {hist.count} ops"
            )
    return violations


def parse_slos(specs: Sequence[str]) -> list[SLO]:
    """Parse repeated ``--slo`` CLI specs."""
    return [SLO.parse(spec) for spec in specs]
