"""Seeded deterministic loadgen workloads over the ``workloads`` vocabulary.

Each worker owns one relation, ``load_<worker>(id, grp, v0)``, and a
deterministic operation stream derived from ``(seed, worker)`` alone:
running the same profile twice produces byte-identical operations, so an
SLO regression between two runs is attributable to the engine, never to
the generator.  Worker relations are disjoint, so any cross-worker
interleaving the server admits leaves the final state identical to
replaying the per-worker streams in order through a direct in-process
:class:`~repro.engine.engine.Engine` — the end-to-end bit-identity check.

Write operations reuse the synthetic workload's shape (insert into a hot
group, delete/modify by ``grp`` equality) and travel as the journal's
replay vocabulary; read operations exercise the server's snapshot path
(``state``, ``provenance``, ``annotation_of``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Mapping

from ..db.schema import Relation, Schema
from ..errors import ReproError
from ..queries.pattern import Pattern
from ..queries.updates import Delete, Insert, Modify, Transaction
from ..workloads.logs import query_to_dict

__all__ = [
    "ATTRIBUTES",
    "PROFILES",
    "LoadgenProfile",
    "MixSpec",
    "Op",
    "loadgen_schema",
    "ops_fingerprint",
    "profile_from_name",
    "schema_specs",
    "worker_ops",
    "worker_prelude",
    "worker_relation",
]

#: Attributes of every worker relation: a row id, the hot-group selector
#: (the column deletes/modifies select on), and one value column.
ATTRIBUTES = ("id", "grp", "v0")


def worker_relation(worker: int) -> str:
    return f"load_{worker}"


@dataclass(frozen=True)
class MixSpec:
    """Relative weights of the five operation kinds.

    ``apply`` ships an update transaction; ``state`` reads the full
    snapshot; ``provenance`` reads one relation's annotated rows;
    ``annotation_of`` reads a single row's expression; ``subscribe``
    exercises the live-view push path — the first such op registers a
    standing view on the worker's relation, later ones drain the pushed
    delta batches (their publish-to-receive latency lands in the
    ``delta_lag`` histogram, alongside the op-latency kinds).
    """

    apply: float = 0.55
    state: float = 0.1
    provenance: float = 0.25
    annotation_of: float = 0.1
    subscribe: float = 0.0

    def __post_init__(self) -> None:
        weights = self.as_dict()
        if min(weights.values()) < 0 or sum(weights.values()) <= 0:
            raise ReproError(f"mix weights must be non-negative and not all zero: {weights}")

    def as_dict(self) -> dict[str, float]:
        return {
            "apply": self.apply,
            "state": self.state,
            "provenance": self.provenance,
            "annotation_of": self.annotation_of,
            "subscribe": self.subscribe,
        }

    @classmethod
    def parse(cls, text: str) -> "MixSpec":
        """``"apply=0.6,provenance=0.3,state=0.1"`` — omitted kinds weigh 0."""
        weights = dict.fromkeys(cls().as_dict(), 0.0)
        for part in text.split(","):
            name, sep, value = part.partition("=")
            name = name.strip()
            if not sep or name not in weights:
                known = ", ".join(weights)
                raise ReproError(f"bad mix entry {part!r} (want kind=weight; kinds: {known})")
            try:
                weights[name] = float(value)
            except ValueError as exc:
                raise ReproError(f"bad mix weight in {part!r}") from exc
        return cls(**weights)


@dataclass(frozen=True)
class LoadgenProfile:
    """Everything that determines a loadgen run's operation streams.

    The operation streams are a pure function of this profile (see
    :func:`worker_ops`); pacing (``max_rate`` / ``schedule``) and
    transport (``pipeline``) shape *when* operations ship, never *what*
    ships, so they cannot perturb determinism or the final state.
    """

    name: str = "custom"
    workers: int = 2
    ops_per_worker: int = 200
    rows_per_worker: int = 60
    n_groups: int = 6
    domain_size: int = 100
    seed: int = 7
    mix: MixSpec = field(default_factory=MixSpec)
    #: Global ops/sec target across all workers; 0 = unpaced.
    max_rate: float = 0.0
    #: Ramp schedule, e.g. ``"50x5,200x10,0"`` (overrides ``max_rate``).
    schedule: str | None = None
    #: Max contiguous apply operations shipped as one pipelined burst.
    pipeline: int = 8
    #: Soak knob: each worker replays its op stream this many times.  The
    #: stream itself is unchanged, so a ``repeat`` run is the same workload
    #: sustained — what the bounded-RSS soak checks drive.
    repeat: int = 1

    def __post_init__(self) -> None:
        if self.workers < 1 or self.ops_per_worker < 1:
            raise ReproError("workers and ops_per_worker must be positive")
        if self.rows_per_worker < 1 or self.n_groups < 1:
            raise ReproError("rows_per_worker and n_groups must be positive")
        if self.pipeline < 1:
            raise ReproError("pipeline depth must be >= 1")
        if self.max_rate < 0:
            raise ReproError("max_rate must be non-negative")
        if self.repeat < 1:
            raise ReproError("repeat must be >= 1")

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "workers": self.workers,
            "ops_per_worker": self.ops_per_worker,
            "rows_per_worker": self.rows_per_worker,
            "n_groups": self.n_groups,
            "domain_size": self.domain_size,
            "seed": self.seed,
            "mix": self.mix.as_dict(),
            "max_rate": self.max_rate,
            "schedule": self.schedule,
            "pipeline": self.pipeline,
            "repeat": self.repeat,
        }


#: Named profiles: ``tiny`` is the CI/tier-1 floor scale, ``smoke`` a
#: quick local check, ``medium`` a real measurement.
PROFILES: Mapping[str, LoadgenProfile] = {
    "tiny": LoadgenProfile(name="tiny", workers=2, ops_per_worker=60, rows_per_worker=20),
    "smoke": LoadgenProfile(name="smoke", workers=2, ops_per_worker=300, rows_per_worker=60),
    "medium": LoadgenProfile(
        name="medium", workers=4, ops_per_worker=2_000, rows_per_worker=400, n_groups=20
    ),
}


def profile_from_name(name: str, **overrides: object) -> LoadgenProfile:
    if name not in PROFILES:
        raise ReproError(f"unknown profile {name!r} (known: {', '.join(PROFILES)})")
    profile = PROFILES[name]
    return replace(profile, **overrides) if overrides else profile


def loadgen_schema(profile: LoadgenProfile) -> Schema:
    """One relation per worker: ``load_<w>(id, grp, v0)``."""
    return Schema(
        Relation(worker_relation(worker), list(ATTRIBUTES))
        for worker in range(profile.workers)
    )


def schema_specs(profile: LoadgenProfile) -> list[str]:
    """The ``repro serve --schema`` specs a matching server needs."""
    attrs = ",".join(ATTRIBUTES)
    return [f"{worker_relation(w)}:{attrs}" for w in range(profile.workers)]


@dataclass(frozen=True)
class Op:
    """One generated operation: an apply transaction or a snapshot read."""

    kind: str  #: apply | state | provenance | annotation_of | subscribe
    item: Transaction | None = None  #: the update (apply only)
    relation: str | None = None  #: target relation (provenance / annotation_of)
    row: tuple | None = None  #: target row (annotation_of only)


def _rng(profile: LoadgenProfile, worker: int) -> random.Random:
    # A string seed hashes through SHA-512, stable across processes and
    # Python versions — the determinism the property test pins down.
    return random.Random(f"loadgen:{profile.seed}:{worker}")


def worker_prelude(profile: LoadgenProfile, worker: int) -> Transaction:
    """The setup transaction populating the worker's relation.

    Applied (and journaled, and replayed by the bit-identity check) like
    any update, but executed before the timed section so a tiny profile's
    latency picture is not dominated by one bulk insert.
    """
    rng = _rng(profile, worker)
    relation = worker_relation(worker)
    inserts = [
        Insert(relation, (row_id, row_id % profile.n_groups, rng.randrange(profile.domain_size)))
        for row_id in range(profile.rows_per_worker)
    ]
    return Transaction(f"w{worker}-init", inserts)


def worker_ops(profile: LoadgenProfile, worker: int) -> list[Op]:
    """The worker's timed operation stream, deterministic in ``(seed, worker)``.

    The prelude's rng draws are replayed first so the stream is identical
    whether or not the caller also materialized :func:`worker_prelude`.
    """
    rng = _rng(profile, worker)
    relation = worker_relation(worker)
    arity = len(ATTRIBUTES)
    grp_pos = ATTRIBUTES.index("grp")
    v_pos = ATTRIBUTES.index("v0")
    initial_rows = [
        (row_id, row_id % profile.n_groups, rng.randrange(profile.domain_size))
        for row_id in range(profile.rows_per_worker)
    ]
    next_id = profile.rows_per_worker

    weights = profile.mix.as_dict()
    kinds = list(weights)
    total = sum(weights.values())
    thresholds = []
    cumulative = 0.0
    for kind in kinds:
        cumulative += weights[kind] / total
        thresholds.append((cumulative, kind))

    def pick_kind() -> str:
        roll = rng.random()
        for threshold, kind in thresholds:
            if roll < threshold:
                return kind
        return kinds[-1]

    def one_update(index: int) -> Transaction:
        nonlocal next_id
        group = rng.randrange(profile.n_groups)
        roll = rng.random()
        if roll < 1 / 3:
            row = (next_id, group, rng.randrange(profile.domain_size))
            next_id += 1
            query = Insert(relation, row)
        elif roll < 2 / 3:
            query = Delete(relation, Pattern(arity, eq={grp_pos: group}))
        else:
            constant = rng.randrange(profile.domain_size)
            query = Modify(
                relation, Pattern(arity, eq={grp_pos: group}), {v_pos: constant}
            )
        return Transaction(f"w{worker}t{index}", [query])

    ops: list[Op] = []
    for index in range(profile.ops_per_worker):
        kind = pick_kind()
        if kind == "apply":
            ops.append(Op("apply", item=one_update(index)))
        elif kind == "state":
            ops.append(Op("state"))
        elif kind == "provenance":
            ops.append(Op("provenance", relation=relation))
        elif kind == "subscribe":
            ops.append(Op("subscribe", relation=relation))
        else:  # annotation_of: a deterministic pick from the initial rows
            ops.append(
                Op("annotation_of", relation=relation, row=rng.choice(initial_rows))
            )
    return ops


def ops_fingerprint(profile: LoadgenProfile, worker: int) -> list:
    """A JSON-comparable encoding of the worker's full stream.

    Two runs are the same workload iff their fingerprints are equal —
    exactly what the seeded-determinism property test asserts.
    """
    prelude = worker_prelude(profile, worker)
    encoded: list = [["prelude", prelude.name, [query_to_dict(q) for q in prelude.queries]]]
    for op in worker_ops(profile, worker):
        if op.kind == "apply":
            encoded.append(
                ["apply", op.item.name, [query_to_dict(q) for q in op.item.queries]]
            )
        else:
            encoded.append(
                [op.kind, op.relation, list(op.row) if op.row is not None else None]
            )
    return encoded
