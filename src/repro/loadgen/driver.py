"""The multiprocess load driver: a client swarm with per-op latency capture.

:func:`run_loadgen` launches one worker per ``profile.workers`` — OS
processes by default, threads for in-process hosting (the tier-1 SLO
test drives a :func:`~repro.server.server.serve_in_thread` server this
way) — each holding one TCP connection to the target server.  A worker
applies its setup prelude untimed, meets the others at a barrier so the
timed sections align, then executes its deterministic operation stream
under the profile's pacing schedule, recording every operation's latency
into per-kind :class:`~repro.loadgen.histogram.LatencyHistogram`\\ s.

Contiguous ``apply`` operations ship as one pipelined burst (up to
``profile.pipeline`` deep) through
:meth:`~repro.server.client.ServerClient.apply_pipelined` with its
per-request timing hooks, so pipelined operations get honest individual
latencies — the admission queue sees realistic depth without the
measurements degenerating into batch-amortized averages.

A mix with ``subscribe`` weight exercises the live-view push path: a
worker's first subscribe op registers a standing view on its own
relation, later ones drain the pushed delta batches — each event's
publish-to-receive latency lands in a ``delta_lag`` histogram that flows
through the same ticks, stats lines, and ``BENCH_loadgen_*.json`` as the
op-latency kinds.  After a server-side slow-consumer drop the next
subscribe op re-subscribes for a fresh seed.

Given ``followers``, each worker holds a
:class:`~repro.replication.client.ReplicatedClient` instead of a plain
:class:`~repro.server.client.ServerClient`: writes still hit the
primary, reads route to the least-lagged follower within ``max_lag``,
and every satisfied read's staleness (journal records behind the
primary) lands in a ``replica_lag`` histogram alongside the latency
kinds.

Workers stream periodic ticks (operation counts plus serialized
histograms) to the driver, which prints merged stats lines during the
run and folds everything into one :class:`~repro.loadgen.report.LoadgenResult`.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import time
from typing import Callable

from ..errors import ServerError
from ..replication.client import ReplicatedClient
from ..server.client import ServerClient
from ..server.protocol import DEFAULT_PORT
from .histogram import LatencyHistogram
from .report import LoadgenResult, format_stats_line
from .schedule import Pacer, phases_for
from .workload import LoadgenProfile, worker_ops, worker_prelude

__all__ = ["run_loadgen"]

#: A worker emits at most one tick per this many seconds.
TICK_EVERY = 0.5
#: Workers abandon the start barrier (and report failure) after this long.
BARRIER_TIMEOUT = 60.0
#: The driver gives up when the swarm goes silent for this long.
SILENCE_TIMEOUT = 120.0


def _worker_main(
    host: str,
    port: int,
    profile: LoadgenProfile,
    worker: int,
    followers,
    max_lag: int,
    results,
    barrier,
) -> None:
    """One swarm member: prelude, barrier, then the timed paced stream.

    Runs in a child process (or a thread, in ``thread`` mode); every
    outcome — ticks, the final report, or a failure — travels through
    ``results``.  Operation errors the server answers (``ServerError``)
    are counted per kind and the stream continues; anything else (a dead
    connection, a bug) fails the worker.
    """
    try:
        # repeat > 1 replays the identical stream back to back — the soak
        # shape: sustained churn with no new distinct operations.
        ops = worker_ops(profile, worker) * profile.repeat
        hists: dict[str, LatencyHistogram] = {}
        errors: dict[str, int] = {}
        subscription = None  # the worker's standing view, once subscribed

        def record(kind: str, seconds: float) -> None:
            hists.setdefault(kind, LatencyHistogram()).record(seconds)

        if followers:
            # Read/write split: reads route to followers within max_lag,
            # each satisfied read's staleness lands under replica_lag
            # (integer journal records; sub-bucket values count in the
            # lowest bin, so lag=0 reads still show up).
            client_factory = lambda: ReplicatedClient(  # noqa: E731
                (host, port),
                followers,
                max_lag=max_lag,
                connect_retry=10.0,
                on_lag=lambda lag: record("replica_lag", lag),
            )
        else:
            client_factory = lambda: ServerClient(  # noqa: E731
                host, port, connect_retry=10.0
            )
        with client_factory() as client:
            client.apply(worker_prelude(profile, worker))
            barrier.wait(timeout=BARRIER_TIMEOUT)
            pacer = Pacer(
                phases_for(profile.max_rate, profile.schedule),
                scale=1.0 / profile.workers,
            )
            started = time.perf_counter()
            last_tick = started
            index = 0
            done = 0
            while index < len(ops):
                op = ops[index]
                if op.kind == "apply":
                    burst = [op]
                    while (
                        len(burst) < profile.pipeline
                        and index + len(burst) < len(ops)
                        and ops[index + len(burst)].kind == "apply"
                    ):
                        burst.append(ops[index + len(burst)])
                    # The burst consumes one token per operation, so
                    # pipelining never cheats the schedule.
                    delay = sum(pacer.delay() for _ in burst)
                    if delay > 0:
                        time.sleep(delay)
                    timings: list[tuple[float, float]] = []
                    try:
                        client.apply_pipelined(
                            [b.item for b in burst], timings=timings
                        )
                    except ServerError:
                        errors["apply"] = errors.get("apply", 0) + 1
                    for send, recv in timings:
                        record("apply", recv - send)
                    index += len(burst)
                    done += len(burst)
                else:
                    delay = pacer.delay()
                    if delay > 0:
                        time.sleep(delay)
                    start = time.perf_counter()
                    try:
                        if op.kind == "state":
                            # raw: latency measures the server round-trip,
                            # not this client's local expression decoding.
                            client.raw_state()
                        elif op.kind == "provenance":
                            client.provenance(op.relation)
                        elif op.kind == "subscribe":
                            if subscription is None or not subscription.active:
                                subscription = client.subscribe(op.relation)
                            else:
                                # Latency of the drain itself lands under
                                # "subscribe"; each event's push-to-receive
                                # distance under "delta_lag".
                                for event in subscription.drain():
                                    if event.lag is not None:
                                        record("delta_lag", event.lag)
                                if subscription.lagged:
                                    subscription.unsubscribe()
                                    subscription = None
                        else:
                            client.annotation_of(op.relation, op.row)
                    except ServerError:
                        errors[op.kind] = errors.get(op.kind, 0) + 1
                    record(op.kind, time.perf_counter() - start)
                    index += 1
                    done += 1
                now = time.perf_counter()
                if now - last_tick >= TICK_EVERY:
                    last_tick = now
                    results.put(
                        (
                            "tick",
                            worker,
                            {
                                "ops": done,
                                "elapsed": now - started,
                                "hists": {k: h.to_dict() for k, h in hists.items()},
                                "errors": dict(errors),
                            },
                        )
                    )
            elapsed = time.perf_counter() - started
            if subscription is not None:
                subscription.unsubscribe()
        results.put(
            (
                "done",
                worker,
                {
                    "worker": worker,
                    "ops": done,
                    "elapsed": elapsed,
                    "hists": {k: h.to_dict() for k, h in hists.items()},
                    "errors": dict(errors),
                },
            )
        )
    except BaseException as exc:  # noqa: BLE001 - shipped to the driver
        results.put(("fail", worker, f"{type(exc).__name__}: {exc}"))


def run_loadgen(
    profile: LoadgenProfile,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    mode: str = "process",
    progress: Callable[[str], None] | None = None,
    report_every: float = 1.0,
    followers: list[tuple[str, int]] | None = None,
    max_lag: int = 64,
) -> LoadgenResult:
    """Run one load profile against a server; returns the merged result.

    ``mode`` is ``"process"`` (the real swarm: one OS process per worker,
    each with its own interpreter, socket, and histograms) or
    ``"thread"`` (workers as threads — for tests hosting the server in
    the same process).  ``progress`` receives one merged stats line at
    most every ``report_every`` seconds, e.g.::

        loadgen t=  2.0s ops=1480 rate=740/s errors=0 apply p50=0.9ms p99=4.1ms ...

    ``followers`` (a list of ``(host, port)`` read replicas) turns each
    worker into a read/write splitter — see the module docstring.
    """
    follower_list = list(followers or [])
    if mode == "thread":
        results: "queue_module.Queue | multiprocessing.Queue" = queue_module.Queue()
        barrier = threading.Barrier(profile.workers)
        workers = [
            threading.Thread(
                target=_worker_main,
                args=(host, port, profile, w, follower_list, max_lag, results, barrier),
                name=f"loadgen-{w}",
                daemon=True,
            )
            for w in range(profile.workers)
        ]
    elif mode == "process":
        context = multiprocessing.get_context()
        results = context.Queue()
        barrier = context.Barrier(profile.workers)
        workers = [
            context.Process(
                target=_worker_main,
                args=(host, port, profile, w, follower_list, max_lag, results, barrier),
                name=f"loadgen-{w}",
                daemon=True,
            )
            for w in range(profile.workers)
        ]
    else:
        raise ServerError(f"unknown loadgen mode {mode!r} (known: process, thread)")

    for member in workers:
        member.start()

    latest: dict[int, dict] = {}  # newest tick/done payload per worker
    reports: dict[int, dict] = {}
    failures: dict[int, str] = {}
    memory_samples: list[dict] = []
    monitor = _MemoryMonitor(host, port)
    run_started = time.perf_counter()
    last_line = run_started
    try:
        while len(reports) + len(failures) < profile.workers:
            try:
                kind, worker, payload = results.get(timeout=SILENCE_TIMEOUT)
            except queue_module.Empty:
                raise ServerError(
                    f"loadgen swarm went silent for {SILENCE_TIMEOUT:.0f}s "
                    f"({len(reports)}/{profile.workers} workers reported)"
                ) from None
            if kind == "fail":
                failures[worker] = str(payload)
                continue
            latest[worker] = payload
            if kind == "done":
                reports[worker] = payload
            now = time.perf_counter()
            if now - last_line >= report_every:
                last_line = now
                sample = monitor.sample(now - run_started)
                if sample is not None:
                    memory_samples.append(sample)
                if progress is not None:
                    progress(_merged_line(latest, now - run_started, sample))
    finally:
        for member in workers:
            member.join(timeout=10.0)

    if failures:
        worker, message = sorted(failures.items())[0]
        raise ServerError(f"loadgen worker {worker} failed: {message}")

    # One final sample after the swarm drained (the settled server view).
    final_sample = monitor.sample(time.perf_counter() - run_started)
    if final_sample is not None:
        memory_samples.append(final_sample)
    monitor.close()

    ordered = [reports[w] for w in sorted(reports)]
    hists: dict[str, LatencyHistogram] = {}
    errors: dict[str, int] = {}
    for report in ordered:
        for op_kind, data in report["hists"].items():
            partial = LatencyHistogram.from_dict(data)
            hists.setdefault(op_kind, LatencyHistogram()).merge(partial)
        for op_kind, n in report["errors"].items():
            errors[op_kind] = errors.get(op_kind, 0) + int(n)
    elapsed = max((report["elapsed"] for report in ordered), default=0.0)
    ops_total = sum(report["ops"] for report in ordered)
    result = LoadgenResult(
        profile=profile,
        ops_total=ops_total,
        elapsed=elapsed,
        achieved_rate=ops_total / elapsed if elapsed > 0 else 0.0,
        hists=hists,
        errors=errors,
        worker_reports=[
            {"worker": r["worker"], "ops": r["ops"], "elapsed": r["elapsed"], "errors": r["errors"]}
            for r in ordered
        ],
        memory_samples=memory_samples,
    )
    if progress is not None:
        progress(
            _merged_line(latest, time.perf_counter() - run_started, final_sample)
        )
    return result


class _MemoryMonitor:
    """The driver's own ``stats`` connection, sampling the server's memory.

    Lazy and fault-tolerant: the connection is opened on the first sample
    (the swarm's workers already wait out server startup), and any failure
    disables further sampling instead of failing the run — the latency
    measurement must not depend on the memory axis being observable.
    """

    def __init__(self, host: str, port: int):
        self._host = host
        self._port = port
        self._client: ServerClient | None = None
        self._dead = False

    def sample(self, elapsed: float) -> dict | None:
        if self._dead:
            return None
        try:
            if self._client is None:
                self._client = ServerClient(self._host, self._port, connect_retry=5.0)
            memory = self._client.stats().get("memory")
        except Exception:  # noqa: BLE001 - sampling is best-effort
            self._dead = True
            self.close()
            return None
        if not isinstance(memory, dict):
            self._dead = True
            return None
        return {"t": elapsed, **memory}

    def close(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            except Exception:  # noqa: BLE001 - already torn down
                pass
            self._client = None


def _merged_line(
    latest: dict[int, dict], elapsed: float, memory: dict | None = None
) -> str:
    """One stats line over the newest payload from every reporting worker."""
    ops = sum(payload["ops"] for payload in latest.values())
    errors = sum(
        sum(payload["errors"].values()) for payload in latest.values()
    )
    merged: dict[str, LatencyHistogram] = {}
    for payload in latest.values():
        for op_kind, data in payload["hists"].items():
            merged.setdefault(op_kind, LatencyHistogram()).merge(
                LatencyHistogram.from_dict(data)
            )
    rate = ops / elapsed if elapsed > 0 else 0.0
    line = format_stats_line(elapsed, ops, rate, merged, errors)
    if memory is not None:
        line += (
            f" rss={memory.get('rss_bytes', 0) / 1048576:.0f}MB"
            f" intern={memory.get('intern_table_size', 0)}"
        )
    return line
