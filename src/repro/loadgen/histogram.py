"""Fixed-bucket latency histograms that merge across worker processes.

Every :class:`LatencyHistogram` shares one global bucket scheme —
geometrically spaced edges, :data:`PER_DECADE` buckets per decade from
:data:`LOWEST` to :data:`HIGHEST` seconds — so merging is plain
element-wise addition: associative, commutative, and loss-free, which is
what lets each loadgen worker process keep its own histograms and the
driver fold them into one run-wide view in any order.

Quantiles are read from bucket upper edges, so a reported ``p99`` is an
*upper bound* on the true sample quantile, at most one bucket ratio
(``10 ** (1 / PER_DECADE)``, about 12%) above it — tight enough for SLO
floors, and safe in the direction that matters (a passing floor never
hides a violation).  The maximum is tracked exactly, outside the bucket
grid, and values beyond :data:`HIGHEST` land in a dedicated overflow
bucket whose quantile reads report that exact maximum.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from ..errors import ReproError

__all__ = ["LatencyHistogram", "merge_histograms", "HIGHEST", "LOWEST", "PER_DECADE"]

#: Lower edge of the first bucket (1 microsecond).
LOWEST = 1e-6
#: Buckets per decade; the bucket ratio is ``10 ** (1 / PER_DECADE)``.
PER_DECADE = 20
#: Eight decades: 1 µs .. 100 s.  Anything slower overflows.
_DECADES = 8
#: Upper edge of the last regular bucket.
HIGHEST = LOWEST * 10**_DECADES

_N_BUCKETS = _DECADES * PER_DECADE
#: ``_EDGES[i]`` is the lower edge of bucket ``i``; bucket ``i`` covers
#: ``[_EDGES[i], _EDGES[i + 1])``.
_EDGES = tuple(LOWEST * 10 ** (i / PER_DECADE) for i in range(_N_BUCKETS + 1))

#: Written into every serialized histogram; a mismatch on load means the
#: counts were recorded under a different grid and cannot merge.
_SCHEME = {"lowest": LOWEST, "per_decade": PER_DECADE, "decades": _DECADES}


def _bucket_index(value: float) -> int:
    """The regular-bucket index of ``value``; ``_N_BUCKETS`` = overflow."""
    if value < _EDGES[1]:  # everything at or below the first edge
        return 0
    if value >= HIGHEST:
        return _N_BUCKETS
    index = int(math.log10(value / LOWEST) * PER_DECADE)
    # Float log rounding can land one bucket off either way near an edge;
    # nudge until the half-open invariant _EDGES[i] <= value < _EDGES[i+1]
    # holds (at most one step).
    if value < _EDGES[index]:
        index -= 1
    elif value >= _EDGES[index + 1]:
        index += 1
    return index


class LatencyHistogram:
    """Latencies (seconds) in fixed geometric buckets, exact min/max/total."""

    __slots__ = ("counts", "overflow", "count", "total", "min_value", "max_value")

    def __init__(self) -> None:
        self.counts: list[int] = [0] * _N_BUCKETS
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = 0.0

    def record(self, seconds: float) -> None:
        """Record one latency.  Negative values clamp to zero (bucket 0)."""
        value = max(0.0, float(seconds))
        index = _bucket_index(value)
        if index >= _N_BUCKETS:
            self.overflow += 1
        else:
            self.counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    # -- merging ---------------------------------------------------------------

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram in place; returns ``self``."""
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.overflow += other.overflow
        self.count += other.count
        self.total += other.total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)
        return self

    def merged_with(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """A new histogram holding both sides' samples (pure merge)."""
        return LatencyHistogram().merge(self).merge(other)

    # -- reading ---------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """An upper bound on the ``q``-quantile of the recorded samples.

        Returns the upper edge of the bucket holding the rank-``ceil(q*n)``
        sample, clamped to the exact tracked maximum (so ``quantile(1.0)``
        is the true max, and overflow-bucket reads are exact too).
        """
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index, n in enumerate(self.counts):
            cumulative += n
            if cumulative >= target:
                return min(_EDGES[index + 1], self.max_value)
        return self.max_value  # rank falls in the overflow bucket

    def summary(self) -> dict[str, float | int]:
        """The quantile row every report shows: count/p50/p90/p99/max/mean."""
        return {
            "count": self.count,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "max": self.max_value,
            "mean": self.mean,
        }

    # -- serialization (crosses the worker-process boundary) -------------------

    def to_dict(self) -> dict[str, object]:
        """A JSON-ready dict; zero buckets are omitted (sparse counts)."""
        return {
            "scheme": dict(_SCHEME),
            "counts": {str(i): n for i, n in enumerate(self.counts) if n},
            "overflow": self.overflow,
            "count": self.count,
            "total": self.total,
            "min": self.min_value if self.count else None,
            "max": self.max_value,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "LatencyHistogram":
        if data.get("scheme") != _SCHEME:
            raise ReproError(
                f"histogram bucket scheme mismatch: {data.get('scheme')!r} != {_SCHEME!r}"
            )
        hist = cls()
        for key, n in dict(data.get("counts", {})).items():
            index = int(key)
            if not 0 <= index < _N_BUCKETS:
                raise ReproError(f"histogram bucket index {index} out of range")
            hist.counts[index] = int(n)
        hist.overflow = int(data.get("overflow", 0))
        hist.count = int(data["count"])
        hist.total = float(data["total"])
        minimum = data.get("min")
        hist.min_value = math.inf if minimum is None else float(minimum)
        hist.max_value = float(data["max"])
        return hist

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return (
            self.counts == other.counts
            and self.overflow == other.overflow
            and self.count == other.count
            and self.total == other.total
            and self.min_value == other.min_value
            and self.max_value == other.max_value
        )

    def __repr__(self) -> str:
        return f"LatencyHistogram(count={self.count}, max={self.max_value:.6f})"


def merge_histograms(histograms: Iterable[LatencyHistogram]) -> LatencyHistogram:
    """Fold any number of histograms into a fresh one (order-independent)."""
    merged = LatencyHistogram()
    for histogram in histograms:
        merged.merge(histogram)
    return merged
