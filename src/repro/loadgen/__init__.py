"""The latency load harness (PR 6).

A dbworkload-style driver against the PR-5 provenance service: a
multiprocess client swarm with a configurable read/write mix, seeded
deterministic workload generation, token-bucket pacing with ramp
schedules, and per-op latencies in fixed-bucket histograms that merge
across workers into p50/p90/p99/max — reported live, exported as CSV,
persisted as schema-versioned ``BENCH_loadgen_*.json`` trajectories, and
gated by SLO floors in tier-1.  See ``docs/OPERATIONS.md`` (loadgen
section) for the runbook.
"""

from .driver import run_loadgen
from .histogram import LatencyHistogram, merge_histograms
from .report import (
    SCHEMA_VERSION,
    SLO,
    LoadgenResult,
    check_slos,
    format_stats_line,
    parse_slos,
    write_result,
)
from .schedule import Pacer, RatePhase, parse_schedule, phases_for
from .workload import (
    ATTRIBUTES,
    PROFILES,
    LoadgenProfile,
    MixSpec,
    Op,
    loadgen_schema,
    ops_fingerprint,
    profile_from_name,
    schema_specs,
    worker_ops,
    worker_prelude,
    worker_relation,
)

__all__ = [
    "ATTRIBUTES",
    "PROFILES",
    "SCHEMA_VERSION",
    "SLO",
    "LatencyHistogram",
    "LoadgenProfile",
    "LoadgenResult",
    "MixSpec",
    "Op",
    "Pacer",
    "RatePhase",
    "check_slos",
    "format_stats_line",
    "loadgen_schema",
    "merge_histograms",
    "ops_fingerprint",
    "parse_schedule",
    "parse_slos",
    "phases_for",
    "profile_from_name",
    "run_loadgen",
    "schema_specs",
    "worker_ops",
    "worker_prelude",
    "worker_relation",
    "write_result",
]
