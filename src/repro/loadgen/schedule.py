"""Rate pacing: ``--max-rate`` token buckets and ramp schedules.

A schedule is a sequence of :class:`RatePhase` steps — ``"50x5,200x10,0"``
reads "50 ops/sec for 5 seconds, then 200 ops/sec for 10 seconds, then
unpaced for the rest of the run".  Each worker paces at the *global* rate
divided by the worker count, so the swarm's aggregate admission rate
tracks the schedule whatever the per-worker latencies are doing.

The pacer is a no-burst token bucket over an injectable clock: the next
permitted instant advances by one interval per operation and never falls
behind the present (idle time earns no credit), so a stall is followed by
the scheduled rate, not a compensating burst that would spike the very
tail latencies the harness exists to measure.  The injectable clock is
what makes pacing unit-testable without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import ReproError

__all__ = ["Pacer", "RatePhase", "parse_schedule", "phases_for"]


@dataclass(frozen=True)
class RatePhase:
    """One schedule step: ``rate`` ops/sec (0 = unpaced) for ``duration`` s."""

    rate: float
    duration: float | None = None  #: ``None`` = until the run ends

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ReproError(f"rate must be non-negative, got {self.rate}")
        if self.duration is not None and self.duration <= 0:
            raise ReproError(f"phase duration must be positive, got {self.duration}")


def parse_schedule(text: str) -> list[RatePhase]:
    """``"RATExSECONDS,RATExSECONDS,...,RATE"`` — a bare final rate is open-ended."""
    phases: list[RatePhase] = []
    parts = [part.strip() for part in text.split(",") if part.strip()]
    if not parts:
        raise ReproError("empty schedule")
    for index, part in enumerate(parts):
        rate_text, sep, duration_text = part.partition("x")
        try:
            rate = float(rate_text)
            duration = float(duration_text) if sep else None
        except ValueError as exc:
            raise ReproError(f"bad schedule step {part!r} (want RATE or RATExSECONDS)") from exc
        if duration is None and index != len(parts) - 1:
            raise ReproError(f"only the final schedule step may omit a duration: {part!r}")
        phases.append(RatePhase(rate, duration))
    return phases


def phases_for(max_rate: float, schedule: str | None) -> list[RatePhase]:
    """The effective schedule of a profile: ``schedule`` wins over ``max_rate``."""
    if schedule:
        return parse_schedule(schedule)
    return [RatePhase(max_rate)]


class Pacer:
    """A no-burst token bucket following a phase schedule.

    ``scale`` is this worker's share of the global rate (``1 / workers``).
    :meth:`delay` returns how long to sleep before the next operation may
    ship, advancing the bucket; the clock starts on the first call.
    """

    def __init__(
        self,
        phases: Sequence[RatePhase],
        scale: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not phases:
            raise ReproError("pacer needs at least one phase")
        if scale <= 0:
            raise ReproError(f"scale must be positive, got {scale}")
        self._phases = list(phases)
        self._scale = scale
        self._clock = clock
        self._start: float | None = None
        self._next = 0.0

    def _interval_at(self, elapsed: float) -> float:
        """Seconds between this worker's operations at ``elapsed`` into the run."""
        offset = 0.0
        for phase in self._phases:
            if phase.duration is None or elapsed < offset + phase.duration:
                return 1.0 / (phase.rate * self._scale) if phase.rate > 0 else 0.0
            offset += phase.duration
        return 0.0  # past the last bounded phase: unpaced

    def delay(self) -> float:
        """Seconds to wait before the next operation (0 = go now)."""
        now = self._clock()
        if self._start is None:
            self._start = now
            self._next = now
        interval = self._interval_at(now - self._start)
        if interval <= 0.0:
            self._next = now
            return 0.0
        wait = max(0.0, self._next - now)
        # No bursts: idle time earns no credit, so a stalled worker resumes
        # at the scheduled rate instead of spiking to catch up.
        self._next = max(self._next + interval, now)
        return wait
