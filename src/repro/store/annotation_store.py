"""The shared storage layer under every executor.

An :class:`AnnotationStore` holds, per relation, a
:class:`~repro.store.row_store.RowStore` (stable row ids, annotation
slots, liveness bits) together with one maintained
:class:`~repro.store.column_index.ColumnIndex` per attribute position.
Executors express *what* they store in the annotation slot (nothing,
UP[X] expressions, normal forms); the store owns *how* rows are found —
:meth:`RelationStore.matching` compiles each pattern through the planner
and either probes the maintained indexes or falls back to a linear scan,
with every decision counted in :class:`PlannerStats`.

Matching semantics: the support (tombstones included) is searched, and
matches are produced in ascending row-id order — exactly the order a
linear scan of the old per-executor dicts produced — so indexed and
scanned execution are bit-identical, not merely set-equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.arena import ExprArena
from ..core.expr import register_expr_roots
from ..db.schema import Relation, Schema
from ..errors import EngineError
from ..queries.pattern import Pattern
from .column_index import ColumnIndex
from .planner import SCAN, compile_plan
from .row_store import RowStore

__all__ = ["AnnotationStore", "PlannerStats", "RelationStore"]


@dataclass
class PlannerStats:
    """Planner decisions, accumulated over a store's lifetime."""

    #: pattern matchings served by probing column indexes.
    index_hits: int = 0
    #: pattern matchings that linear-scanned the whole support.
    fallback_scans: int = 0
    #: candidate rows the index handed to the predicate (indexed path only).
    rows_examined: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "index_hits": self.index_hits,
            "fallback_scans": self.fallback_scans,
            "rows_examined": self.rows_examined,
        }


class RelationStore:
    """One relation's rows plus its maintained per-column indexes."""

    __slots__ = ("relation", "rows", "indexes", "use_indexes", "_stats")

    def __init__(
        self,
        relation: Relation,
        stats: PlannerStats,
        use_indexes: bool = True,
        arena: ExprArena | None = None,
    ):
        self.relation = relation
        self.rows = RowStore(arena=arena)
        self.indexes = tuple(ColumnIndex() for _ in range(relation.arity))
        self.use_indexes = use_indexes
        self._stats = stats

    # -- mutation (indexes maintained incrementally) ----------------------------

    def add(self, row: tuple, ann: object = None, live: bool = True) -> int:
        rid = self.rows.add(row, ann, live)
        for index, value in zip(self.indexes, row):
            index.add(rid, value)
        return rid

    def free(self, rid: int) -> None:
        """Drop a row from the support (vanilla deletes, dead zero rows)."""
        row = self.rows.free(rid)
        for index, value in zip(self.indexes, row):
            index.remove(rid, value)

    def _maybe_compact(self) -> None:
        """Rebuild slots and indexes once freed slots dominate.

        Freed slots keep their ``None`` entries until compaction, so
        churn-heavy workloads (vanilla insert+delete cycles) would
        otherwise grow the slot lists — and every fallback scan — without
        bound.  Compaction runs at the top of :meth:`matching`, the one
        point where no caller holds row ids; amortized cost is O(1) per
        freed slot.
        """
        rows = self.rows
        if rows.slot_count() > 64 and rows.slot_count() > 2 * len(rows):
            rows.compact()
            indexes = tuple(ColumnIndex() for _ in self.indexes)
            for rid, row in rows.items():
                for index, value in zip(indexes, row):
                    index.add(rid, value)
            self.indexes = indexes

    # -- matching ---------------------------------------------------------------

    def matching(self, pattern: Pattern) -> list[tuple[int, tuple]]:
        """All support rows satisfying ``pattern``, as ``(rid, row)`` pairs.

        Materialized (not a generator) because every caller mutates the
        store while consuming the matches.
        """
        self._maybe_compact()
        plan = compile_plan(pattern) if self.use_indexes else SCAN
        if not plan.is_scan:
            sets = []
            for position in plan.positions:
                candidates = self.indexes[position].candidates(pattern.eq[position])
                if candidates is not None:
                    sets.append(candidates)
            if sets:
                sets.sort(key=len)
                survivors = sets[0]
                for other in sets[1:]:
                    survivors = survivors & other
                self._stats.index_hits += 1
                self._stats.rows_examined += len(survivors)
                rows = self.rows
                return [
                    (rid, row)
                    for rid in sorted(survivors)
                    if pattern.matches(row := rows.row(rid))
                ]
        self._stats.fallback_scans += 1
        return [(rid, row) for rid, row in self.rows.items() if pattern.matches(row)]

    # -- inspection -------------------------------------------------------------

    def items(self) -> Iterator[tuple[int, tuple]]:
        return self.rows.items()

    def __len__(self) -> int:
        return len(self.rows)


class AnnotationStore:
    """Per-relation :class:`RelationStore` map with shared planner stats."""

    __slots__ = ("schema", "stats", "arena", "_relations", "__weakref__")

    def __init__(self, schema: Schema, use_indexes: bool = True, arena: ExprArena | None = None):
        self.schema = schema
        self.stats = PlannerStats()
        self.arena = arena
        self._relations: dict[str, RelationStore] = {
            relation.name: RelationStore(relation, self.stats, use_indexes, arena=arena)
            for relation in schema
        }
        # Live annotations are intern-sweep roots; weakly registered, so a
        # discarded store stops pinning its expressions automatically.
        register_expr_roots(self)

    def expr_roots(self):
        """Raw annotation slots of every support row (sweep root set).

        Yields whatever the slots hold: expressions and normal forms in
        object mode (the sweep traverses them), arena node ids in arena
        mode (ignored by the sweep — the arena is the at-rest form).
        """
        for store in self._relations.values():
            rows = store.rows
            for rid, _row in rows.items():
                ann = rows.raw_annotation(rid)
                if ann is not None:
                    yield ann

    def compact_arena(self) -> tuple[int, int] | None:
        """Repack the shared arena, dropping dead nodes; ``None`` if object mode.

        Returns ``(nodes before, nodes after)``.  Only invoked at quiescent
        points (the same contract as the intern-table sweep): row slots are
        rewritten in place to ids in a fresh arena.
        """
        old = self.arena
        if old is None:
            return None
        fresh = ExprArena()
        for store in self._relations.values():
            store.rows.repack_arena(fresh)
        self.arena = fresh
        return (old.node_count, fresh.node_count)

    @property
    def use_indexes(self) -> bool:
        return all(store.use_indexes for store in self._relations.values())

    @use_indexes.setter
    def use_indexes(self, enabled: bool) -> None:
        for store in self._relations.values():
            store.use_indexes = enabled

    def relation(self, name: str) -> RelationStore:
        try:
            return self._relations[name]
        except KeyError:
            raise EngineError(f"unknown relation {name!r}") from None

    def relations(self) -> Iterator[tuple[str, RelationStore]]:
        return iter(self._relations.items())

    # -- whole-store inspection --------------------------------------------------

    def support_count(self) -> int:
        return sum(len(store.rows) for store in self._relations.values())

    def live_count(self) -> int:
        return sum(store.rows.live_count() for store in self._relations.values())

    def live_rows(self, name: str) -> set[tuple]:
        return self.relation(name).rows.live_rows()

    def items(self, name: str) -> Iterator[tuple[tuple, object, bool]]:
        """``(row, annotation, live)`` over one relation's support."""
        rows = self.relation(name).rows
        for rid, row in rows.items():
            yield row, rows.annotation(rid), rows.is_live(rid)

    def state(self) -> dict[str, dict[tuple, tuple[object, bool]]]:
        """A materialized ``{relation: {row: (annotation, live)}}`` capture.

        The row-id-free view of the whole store — what a checkpoint
        persists and what bit-identity comparisons compare (row ids and
        indexes are storage artifacts, rebuilt on load).  The returned
        dicts are detached from the store: mutating the store afterwards
        does not change a captured state.
        """
        return {
            name: {row: (ann, live) for row, ann, live in self.items(name)}
            for name in self.schema.names
        }
