"""Per-column hash indexes over a :class:`~repro.store.row_store.RowStore`.

A :class:`ColumnIndex` maintains one attribute position's ``value →
row-id set`` map, updated on every row addition and removal.  Rows are
immutable once stored (a modification tombstones the source and appends
the image as a new row), so the index never has to handle in-place value
changes.

Domain values are arbitrary Python objects; a value that does not hash
cannot live in a bucket, so its row id goes into a *residual* set that
every lookup includes.  The pattern predicate still filters every
candidate, so residual rows are matched exactly — just without index
acceleration.
"""

from __future__ import annotations

__all__ = ["ColumnIndex"]

_EMPTY: frozenset[int] = frozenset()


class ColumnIndex:
    """``value → row-id set`` for one attribute position."""

    __slots__ = ("_buckets", "_residual")

    def __init__(self):
        self._buckets: dict[object, set[int]] = {}
        self._residual: set[int] = set()

    def add(self, rid: int, value: object) -> None:
        try:
            bucket = self._buckets.get(value)
        except TypeError:  # unhashable value
            self._residual.add(rid)
            return
        if bucket is None:
            self._buckets[value] = {rid}
        else:
            bucket.add(rid)

    def remove(self, rid: int, value: object) -> None:
        try:
            bucket = self._buckets.get(value)
        except TypeError:
            self._residual.discard(rid)
            return
        if bucket is not None:
            bucket.discard(rid)
            if not bucket:
                del self._buckets[value]

    def candidates(self, value: object) -> frozenset[int] | set[int] | None:
        """Row ids that may carry ``value`` at this position.

        Returns ``None`` when ``value`` is unhashable — the index cannot
        serve the constraint and the planner must fall back.  The returned
        set is shared state; callers must not mutate it.
        """
        try:
            bucket = self._buckets.get(value, _EMPTY)
        except TypeError:
            return None
        if not self._residual:
            return bucket
        return set(bucket) | self._residual

    def distinct_values(self) -> int:
        return len(self._buckets)

    def __len__(self) -> int:
        """Indexed row entries (residual rows included)."""
        return sum(len(b) for b in self._buckets.values()) + len(self._residual)
