"""Row slots with stable integer ids.

A :class:`RowStore` holds the physical rows of one relation.  Every row
occupies one *slot*, addressed by a monotonically increasing integer row
id; a slot records the row value, an opaque annotation, and a
set-semantics liveness bit.  Slots are appended and freed, never reused,
so iterating row ids in ascending order is exactly insertion order — the
order the executors' hand-rolled ``dict`` bookkeeping used to iterate in,
which the provenance semantics (and the bit-identical batched replay)
depends on.  :meth:`RowStore.compact` renumbers ids densely when freed
slots pile up (churn-heavy vanilla workloads); it preserves relative id
order, so the insertion-order invariant survives, and is only invoked at
points where no row id is held by a caller.

Two notions of absence coexist, mirroring the executor semantics:

* a *freed* slot left the support entirely — vanilla physical deletes,
  and the deferred policy dropping dead zero-annotation rows;
* a stored slot with ``live == False`` is a *tombstone*: it stays in the
  support (updates still match it; paper Figure 4) but is invisible to
  set semantics.
"""

from __future__ import annotations

from typing import Iterator

from ..core.arena import ExprArena
from ..core.expr import Expr

__all__ = ["RowStore"]


class RowStore:
    """Append-only slots: row value, annotation, liveness, per row id.

    With an :class:`~repro.core.arena.ExprArena` attached, expression
    annotations are kept *at rest* as integer arena node ids — the slot
    list holds small ints instead of object DAGs — and are materialized
    back into interned :class:`~repro.core.expr.Expr` objects lazily on
    :meth:`annotation`.  Non-expression annotations (``None``, normal
    forms) pass through unchanged.
    """

    __slots__ = ("_rows", "_ann", "_live", "_id_of", "_arena")

    def __init__(self, arena: ExprArena | None = None):
        self._rows: list[tuple | None] = []
        self._ann: list[object] = []
        self._live: list[bool] = []
        #: row value -> row id, for rows currently in the support.
        self._id_of: dict[tuple, int] = {}
        self._arena = arena

    @property
    def arena(self) -> ExprArena | None:
        return self._arena

    def repack_arena(self, fresh: ExprArena) -> None:
        """Re-encode every encoded slot into ``fresh`` and switch to it.

        Arena compaction: the old arena is append-only, so churn leaves
        dead nodes behind; repacking copies only the still-referenced DAGs.
        """
        old = self._arena
        if old is not None:
            for rid, ann in enumerate(self._ann):
                if isinstance(ann, int):
                    self._ann[rid] = fresh.add_expr(old.get_expr(ann))
        self._arena = fresh

    def _encode(self, ann: object) -> object:
        if self._arena is not None and isinstance(ann, Expr):
            return self._arena.add_expr(ann)
        return ann

    # -- mutation -------------------------------------------------------------

    def add(self, row: tuple, ann: object = None, live: bool = True) -> int:
        """Store a new row; returns its (fresh) row id.

        The row must not already be in the support — executors look ids up
        first and mutate in place on a hit.
        """
        if row in self._id_of:
            raise ValueError(f"row {row!r} already stored (id {self._id_of[row]})")
        rid = len(self._rows)
        self._rows.append(row)
        self._ann.append(self._encode(ann))
        self._live.append(live)
        self._id_of[row] = rid
        return rid

    def free(self, rid: int) -> tuple:
        """Remove a slot from the support entirely; returns its row value."""
        row = self._rows[rid]
        if row is None:
            raise ValueError(f"row id {rid} already freed")
        del self._id_of[row]
        self._rows[rid] = None
        self._ann[rid] = None
        self._live[rid] = False
        return row

    def slot_count(self) -> int:
        """Allocated slots, freed ones included (compaction bookkeeping)."""
        return len(self._rows)

    def compact(self) -> None:
        """Drop freed slots, renumbering row ids densely.

        Relative id order — and therefore insertion-order iteration — is
        preserved.  Only safe while no caller holds row ids: ids are
        consumed within a single query application, so the store compacts
        between matchings (see ``RelationStore.matching``).
        """
        keep = [rid for rid, row in enumerate(self._rows) if row is not None]
        self._rows = [self._rows[rid] for rid in keep]
        self._ann = [self._ann[rid] for rid in keep]
        self._live = [self._live[rid] for rid in keep]
        self._id_of = {row: rid for rid, row in enumerate(self._rows)}

    def set_annotation(self, rid: int, ann: object) -> None:
        self._ann[rid] = self._encode(ann)

    def set_live(self, rid: int, live: bool) -> None:
        self._live[rid] = live

    # -- access ---------------------------------------------------------------

    def rid_of(self, row: tuple) -> int | None:
        """The row id of a stored row, or ``None``."""
        return self._id_of.get(row)

    def row(self, rid: int) -> tuple:
        value = self._rows[rid]
        if value is None:
            raise ValueError(f"row id {rid} is freed")
        return value

    def annotation(self, rid: int) -> object:
        ann = self._ann[rid]
        if self._arena is not None and isinstance(ann, int):
            return self._arena.get_expr(ann)
        return ann

    def raw_annotation(self, rid: int) -> object:
        """The slot value as stored (arena node id in arena mode).

        The intern-table sweep reads roots through this: in object mode it
        sees the expressions to mark, in arena mode it sees ints — the
        arena itself is the at-rest form, so there is nothing to pin.
        """
        return self._ann[rid]

    def is_live(self, rid: int) -> bool:
        return self._live[rid]

    def __contains__(self, row: tuple) -> bool:
        return row in self._id_of

    def __len__(self) -> int:
        """Stored rows (the support: live rows plus tombstones)."""
        return len(self._id_of)

    def live_count(self) -> int:
        return sum(1 for live in self._live if live)

    def items(self) -> Iterator[tuple[int, tuple]]:
        """``(rid, row)`` over the support, in insertion (ascending-id) order."""
        for rid, row in enumerate(self._rows):
            if row is not None:
                yield rid, row

    def live_rows(self) -> set[tuple]:
        return {row for rid, row in self.items() if self._live[rid]}
