"""Compile a hyperplane pattern into an index access plan.

Hyperplane patterns constrain attribute positions independently, so the
only planning decision is *which equality constraints to serve from
column indexes*.  The plan lists those positions; execution (in
:mod:`repro.store.annotation_store`) intersects their candidate row-id
sets smallest-first and then runs the full pattern predicate over the
survivors.  Disequality constraints and unindexable equalities are always
left to the predicate, never the index, so a plan's result set is
identical to a linear scan by construction — and a pattern with no usable
equality constraint compiles to the guaranteed linear-scan fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..queries.pattern import Pattern

__all__ = ["Plan", "SCAN", "compile_plan", "hashable"]


def hashable(value: object) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


@dataclass(frozen=True)
class Plan:
    """An index-intersection plan: the positions whose indexes to probe.

    An empty position tuple is the linear-scan fallback.
    """

    positions: tuple[int, ...] = ()

    @property
    def is_scan(self) -> bool:
        return not self.positions

    def describe(self) -> str:
        if self.is_scan:
            return "scan"
        return "index(" + ",".join(f"${i}" for i in self.positions) + ")"


#: The shared fallback plan.
SCAN = Plan()


def compile_plan(pattern: Pattern) -> Plan:
    """The plan for one pattern: every indexable equality constraint.

    An equality constant that does not hash cannot be an index key
    (patterns accept such constants; they simply match no hashable value)
    and is left to the predicate.  Positions are probed in pattern order;
    execution reorders candidate sets by size anyway.
    """
    positions = tuple(i for i, v in pattern.eq.items() if hashable(v))
    return Plan(positions) if positions else SCAN
