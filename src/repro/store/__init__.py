"""Indexed annotation storage shared by every executor.

Layering::

    AnnotationStore          per-relation stores + shared PlannerStats
      └─ RelationStore       one relation: rows + maintained indexes
           ├─ RowStore       stable row ids, annotation slots, liveness
           └─ ColumnIndex    per-position value → row-id sets
    planner.compile_plan     Pattern → index-intersection plan | scan
"""

from .annotation_store import AnnotationStore, PlannerStats, RelationStore
from .column_index import ColumnIndex
from .planner import SCAN, Plan, compile_plan
from .row_store import RowStore

__all__ = [
    "AnnotationStore",
    "ColumnIndex",
    "Plan",
    "PlannerStats",
    "RelationStore",
    "RowStore",
    "SCAN",
    "compile_plan",
]
