"""The ``repro`` command line interface.

Subcommands::

    repro demo                        the paper's Figure 1/4 walkthrough
    repro figure fig7 [fig8 ...]      regenerate evaluation figures
    repro figure all --save out/      all figures, JSON+CSV persisted
    repro tpcc --queries 400          generate + run a TPC-C log, report overheads
    repro tpcc --journal state/ --policy naive   same, durably (WAL + checkpoints)
    repro tpcc --shards 4             same, hash-partitioned with routed updates
    repro recover state/              resume a journaled directory after a crash
                                      (sharded directories are auto-detected)
    repro serve state/ --schema R:a,b serve the engine over TCP (recovers state/
                                      if it already holds a journaled deployment)
    repro client apply log.json       talk to a running server (also: ping, stats,
                                      provenance REL, state, checkpoint, shutdown)
    repro loadgen --profile tiny      drive a running server with a multiprocess
                                      client swarm; p50/p90/p99/max per op type,
                                      SLO floors, BENCH_loadgen_*.json trajectory
    repro sql --schema R:a,b script   execute a SQL-fragment script with provenance
    repro axioms                      check every shipped structure against Figure 3

Every command prints plain text; ``--save`` writes machine-readable copies.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Equivalence-invariant algebraic provenance for hyperplane updates "
        "(SIGMOD 2020 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the paper's products example (Figures 1-4)")
    demo.set_defaults(func=cmd_demo)

    figure = sub.add_parser("figure", help="regenerate evaluation figures")
    figure.add_argument(
        "names",
        nargs="+",
        help="figure ids (fig7 fig8 fig9a fig9b fig10 blowup ablation) or 'all'",
    )
    figure.add_argument("--scale", default=None, help="tiny | small | medium | paper")
    figure.add_argument("--save", default=None, metavar="DIR", help="write JSON/CSV here")
    figure.set_defaults(func=cmd_figure)

    tpcc = sub.add_parser("tpcc", help="generate and run a TPC-C update log")
    tpcc.add_argument("--queries", type=int, default=400)
    tpcc.add_argument("--warehouses", type=int, default=1)
    tpcc.add_argument("--seed", type=int, default=42)
    tpcc.add_argument(
        "--policy", default="normal_form", help="none | naive | normal_form | mv_tree | mv_string"
    )
    tpcc.add_argument(
        "--journal",
        metavar="DIR",
        default=None,
        help="run durably: write-ahead log + checkpoints in DIR (requires a "
        "resumable policy: naive or normal_form_batch)",
    )
    tpcc.add_argument(
        "--journal-sync",
        choices=["none", "flush", "fsync"],
        default="flush",
        help="journal sync policy (default: flush)",
    )
    tpcc.add_argument(
        "--checkpoint-every",
        type=int,
        default=1024,
        metavar="N",
        help="checkpoint after N journal records (default: 1024)",
    )
    tpcc.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="hash-partition every relation across N shard engines with "
        "pattern-routed updates (0 = unsharded; combines with --journal "
        "for one durable directory per shard)",
    )
    tpcc.add_argument(
        "--parallel-shards",
        action="store_true",
        help="run the shards in a process pool instead of in-process",
    )
    tpcc.set_defaults(func=cmd_tpcc)

    recover = sub.add_parser(
        "recover", help="recover a journaled engine directory (checkpoint + log tail)"
    )
    recover.add_argument("directory", help="directory holding checkpoint.sqlite + journal.log")
    recover.add_argument(
        "--journal-sync",
        choices=["none", "flush", "fsync"],
        default="flush",
        help="sync policy for the resumed journal (match the original run; "
        "default: flush)",
    )
    recover.add_argument(
        "--checkpoint-every",
        type=int,
        default=1024,
        metavar="N",
        help="checkpoint threshold for the resumed engine (match the original "
        "run; default: 1024)",
    )
    recover.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="expected shard count of a sharded directory (topology is "
        "auto-detected from shards.json; this only validates it)",
    )
    recover.add_argument(
        "--parallel-shards",
        action="store_true",
        help="recover and resume the shards in a process pool",
    )
    recover.set_defaults(func=cmd_recover)

    serve = sub.add_parser(
        "serve", help="serve the engine over TCP (length-prefixed JSON protocol)"
    )
    serve.add_argument(
        "directory",
        nargs="?",
        default=None,
        help="durable directory (journaled/sharded backends); an existing "
        "deployment there is recovered and resumed. Omit for a purely "
        "in-memory server",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=None, help="default: 7464")
    serve.add_argument(
        "--backend",
        choices=["auto", "plain", "journaled", "sharded"],
        default="auto",
        help="auto = journaled when a directory is given (sharded if it holds "
        "shards.json), plain otherwise",
    )
    serve.add_argument(
        "--policy",
        default="normal_form_batch",
        help="engine policy (journaled backends need a resumable one: naive "
        "or normal_form_batch; default: normal_form_batch)",
    )
    serve.add_argument(
        "--schema",
        action="append",
        default=[],
        metavar="REL:a,b,c",
        help="relation declaration for a fresh server (repeatable; ignored "
        "when recovering an existing directory)",
    )
    serve.add_argument(
        "--csv",
        action="append",
        default=[],
        metavar="REL=path",
        help="load initial rows for REL from a CSV file (repeatable)",
    )
    serve.add_argument("--shards", type=int, default=4, metavar="N")
    serve.add_argument("--parallel-shards", action="store_true")
    serve.add_argument(
        "--journal-sync", choices=["none", "flush", "fsync"], default="flush"
    )
    serve.add_argument("--checkpoint-every", type=int, default=1024, metavar="N")
    serve.add_argument(
        "--admission-max",
        type=int,
        default=256,
        metavar="N",
        help="most apply requests fused into one writer cycle (1 = per-call "
        "dispatch; default: 256)",
    )
    serve.add_argument(
        "--sweep-every",
        type=int,
        default=0,
        metavar="N",
        help="sweep the expression intern table every N writer cycles "
        "(bounds RSS under sustained churn; 0 = grow-only, the default)",
    )
    serve.add_argument(
        "--arena",
        action="store_true",
        help="hold annotations arena-encoded at rest (flat integer tables "
        "instead of object DAGs; backend plain only)",
    )
    serve.set_defaults(func=cmd_serve)

    client = sub.add_parser("client", help="talk to a running repro server")
    client.add_argument(
        "action",
        choices=[
            "ping",
            "stats",
            "state",
            "provenance",
            "apply",
            "checkpoint",
            "subscribe",
            "shutdown",
        ],
    )
    client.add_argument(
        "argument",
        nargs="?",
        default=None,
        help="relation name (provenance), update-log JSON file (apply), or "
        "REL[:attr=val,...] standing pattern (subscribe)",
    )
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=None, help="default: 7464")
    client.add_argument(
        "--retry",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="keep retrying the connection this long (default: 5)",
    )
    client.set_defaults(func=cmd_client)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a running repro server with a multiprocess load swarm "
        "(per-op latency histograms, SLO floors, BENCH_*.json trajectory)",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=None, help="default: 7464")
    loadgen.add_argument(
        "--follower",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="replication follower to route reads to (repeatable; writes "
        "stay on --host/--port and a replica_lag histogram is recorded)",
    )
    loadgen.add_argument(
        "--max-lag",
        type=int,
        default=64,
        metavar="N",
        help="staleness bound for follower reads, in journal records "
        "(default: 64; reads outside the bound fall back to the primary)",
    )
    loadgen.add_argument(
        "--profile",
        default="tiny",
        help="named profile (tiny | smoke | medium) the flags below override",
    )
    loadgen.add_argument("--workers", type=int, default=None, metavar="N")
    loadgen.add_argument(
        "--ops", type=int, default=None, metavar="N", help="timed operations per worker"
    )
    loadgen.add_argument(
        "--rows", type=int, default=None, metavar="N", help="prelude rows per worker"
    )
    loadgen.add_argument("--seed", type=int, default=None)
    loadgen.add_argument(
        "--mix",
        default=None,
        metavar="KIND=W,...",
        help=(
            "op mix weights, e.g. apply=0.6,provenance=0.25,state=0.1,"
            "annotation_of=0.05 (a subscribe weight adds live-view drains "
            "with a delta_lag histogram)"
        ),
    )
    loadgen.add_argument(
        "--max-rate",
        type=float,
        default=None,
        metavar="OPS/S",
        help="token-bucket pace the whole swarm at this aggregate rate (0 = unpaced)",
    )
    loadgen.add_argument(
        "--schedule",
        default=None,
        metavar="RATExSECS,...",
        help="ramp schedule, e.g. 50x5,200x10,0 (overrides --max-rate)",
    )
    loadgen.add_argument(
        "--pipeline",
        type=int,
        default=None,
        metavar="N",
        help="max contiguous applies shipped as one pipelined burst",
    )
    loadgen.add_argument(
        "--repeat",
        type=int,
        default=None,
        metavar="N",
        help="soak: each worker replays its op stream N times (default: 1)",
    )
    loadgen.add_argument(
        "--threads",
        action="store_true",
        help="run workers as threads instead of processes (testing/debugging)",
    )
    loadgen.add_argument(
        "--slo",
        action="append",
        default=[],
        metavar="OP:pNN<SECS",
        help="latency floor, e.g. apply:p99<0.05 (repeatable; violations exit 1)",
    )
    loadgen.add_argument(
        "--save",
        default=".",
        metavar="DIR",
        help="directory for the BENCH_loadgen_<profile>.json trajectory (default: .)",
    )
    loadgen.add_argument(
        "--no-save", action="store_true", help="skip writing the trajectory file"
    )
    loadgen.add_argument(
        "--csv", default=None, metavar="PATH", help="also export per-op quantiles as CSV"
    )
    loadgen.add_argument(
        "--report-every",
        type=float,
        default=1.0,
        metavar="SECS",
        help="periodic stats-line interval (0 = quiet until the summary)",
    )
    loadgen.add_argument(
        "--print-serve-args",
        action="store_true",
        help="print the repro serve --schema flags this profile needs, then exit",
    )
    loadgen.set_defaults(func=cmd_loadgen)

    replicate = sub.add_parser(
        "replicate",
        help="read-scaling replication: journal-shipping primary, "
        "snapshot-isolated followers, promote-on-failure",
    )
    rsub = replicate.add_subparsers(dest="role", required=True)

    rprimary = rsub.add_parser(
        "primary", help="serve a journaled writer with a shipping endpoint"
    )
    rprimary.add_argument("directory", help="durable directory (recovered if it exists)")
    rprimary.add_argument("--host", default="127.0.0.1")
    rprimary.add_argument("--port", type=int, default=None, help="default: 7464")
    rprimary.add_argument(
        "--replication-port",
        type=int,
        default=0,
        metavar="PORT",
        help="shipping endpoint followers connect to (default: ephemeral, printed)",
    )
    rprimary.add_argument("--policy", default="normal_form_batch")
    rprimary.add_argument(
        "--schema", action="append", default=[], metavar="REL:a,b,c",
        help="relation declaration for a fresh primary (repeatable)",
    )
    rprimary.add_argument("--csv", action="append", default=[], metavar="REL=path")
    rprimary.add_argument(
        "--journal-sync", choices=["none", "flush", "fsync"], default="flush"
    )
    rprimary.add_argument("--checkpoint-every", type=int, default=1024, metavar="N")
    rprimary.add_argument("--admission-max", type=int, default=256, metavar="N")
    rprimary.add_argument(
        "--buffer-records",
        type=int,
        default=4096,
        metavar="N",
        help="shipped records retained in memory for streaming followers "
        "(size above --checkpoint-every; default: 4096)",
    )
    rprimary.set_defaults(func=cmd_replicate)

    rfollower = rsub.add_parser(
        "follower", help="bootstrap from the primary and serve bounded-stale reads"
    )
    rfollower.add_argument("directory", help="durable directory for this follower")
    rfollower.add_argument(
        "--primary", required=True, metavar="HOST:PORT",
        help="the primary's shipping endpoint (from its startup line)",
    )
    rfollower.add_argument("--host", default="127.0.0.1")
    rfollower.add_argument(
        "--port", type=int, default=0, help="read-serving port (default: ephemeral, printed)"
    )
    rfollower.add_argument(
        "--journal-sync", choices=["none", "flush", "fsync"], default="flush"
    )
    rfollower.add_argument("--checkpoint-every", type=int, default=1024, metavar="N")
    rfollower.set_defaults(func=cmd_replicate)

    rpromote = rsub.add_parser(
        "promote", help="turn a follower into a writer (after the primary died)"
    )
    rpromote.add_argument("--host", default="127.0.0.1")
    rpromote.add_argument("--port", type=int, required=True)
    rpromote.add_argument("--retry", type=float, default=5.0, metavar="SECONDS")
    rpromote.set_defaults(func=cmd_replicate)

    rstatus = rsub.add_parser("status", help="one node's role and stream health")
    rstatus.add_argument("--host", default="127.0.0.1")
    rstatus.add_argument("--port", type=int, required=True)
    rstatus.add_argument("--retry", type=float, default=5.0, metavar="SECONDS")
    rstatus.set_defaults(func=cmd_replicate)

    sql = sub.add_parser("sql", help="run a SQL-fragment script with provenance tracking")
    sql.add_argument("script", help="path to the script, or '-' for stdin")
    sql.add_argument(
        "--schema",
        action="append",
        required=True,
        metavar="REL:a,b,c",
        help="relation declaration (repeatable)",
    )
    sql.add_argument(
        "--csv",
        action="append",
        default=[],
        metavar="REL=path",
        help="load initial rows for REL from a CSV file (repeatable)",
    )
    sql.add_argument("--policy", default="normal_form")
    sql.add_argument("--minimize", action="store_true", help="apply Prop. 5.5 minimization")
    sql.set_defaults(func=cmd_sql)

    axioms = sub.add_parser("axioms", help="verify shipped structures against Figure 3")
    axioms.set_defaults(func=cmd_axioms)

    return parser


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def cmd_demo(_args: argparse.Namespace) -> int:
    from .db.database import Database
    from .engine.engine import Engine
    from .queries.updates import Modify, Transaction

    db = Database.from_rows(
        "products",
        ["product", "category", "price"],
        [
            ("Kids mnt bike", "Sport", 120),
            ("Tennis Racket", "Sport", 70),
            ("Kids mnt bike", "Kids", 120),
            ("Children sneakers", "Fashion", 40),
        ],
    )
    rel = db.relation("products")
    names = {
        ("Kids mnt bike", "Sport", 120): "p1",
        ("Tennis Racket", "Sport", 70): "p2",
        ("Kids mnt bike", "Kids", 120): "p3",
        ("Children sneakers", "Fashion", 40): "p4",
    }
    print("Initial table (Figure 1a):")
    for row, name in names.items():
        print(f"  {row!r:48} {name}")
    t1 = Transaction(
        "p",
        [
            Modify.set(
                rel,
                where={"product": "Kids mnt bike", "category": "Kids"},
                set_values={"category": "Sport"},
            ),
            Modify.set(
                rel,
                where={"product": "Kids mnt bike", "category": "Sport"},
                set_values={"category": "Bicycles"},
            ),
        ],
    )
    t2 = Transaction(
        "p'", [Modify.set(rel, where={"category": "Sport"}, set_values={"price": 50})]
    )
    engine = Engine(db, policy="normal_form", annotate=lambda r, row, i: names[row])
    engine.apply(t1).apply(t2)
    print("\nAfter T1 (Figure 2a) and T2 (Figure 2c), annotated output (cf. Figure 4):")
    for row, expr, live in sorted(engine.provenance("products"), key=repr):
        flag = "live" if live else "gone"
        print(f"  [{flag}] {row!r:42} {expr}")
    print("\nWhat-if: abort T1 (assign False to p) — Example 4.4:")
    from .semantics.boolean import BooleanStructure

    structure = BooleanStructure()
    from .core.expr import evaluate

    env = lambda name: name != "p"  # noqa: E731
    for row, expr, _live in sorted(engine.provenance("products"), key=repr):
        if evaluate(expr, structure, env):
            print(f"  {row!r}")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    import os

    if args.scale:
        os.environ["REPRO_BENCH_SCALE"] = args.scale
    from .bench.figures import ALL_FIGURES, run_figures

    names = list(ALL_FIGURES) if "all" in args.names else args.names
    try:
        for result in run_figures(names):
            result.print()
            if args.save:
                path = result.save(Path(args.save))
                print(f"saved {path}")
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_tpcc(args: argparse.Namespace) -> int:
    from .engine.engine import Engine
    from .errors import ReproError
    from .tpcc.driver import generate_tpcc
    from .tpcc.loader import TPCCScale

    workload = generate_tpcc(
        TPCCScale(warehouses=args.warehouses), n_queries=args.queries, seed=args.seed
    )
    print(
        f"TPC-C: {workload.database.total_rows():,} initial tuples, "
        f"{workload.log.query_count()} update queries "
        f"({', '.join(f'{k}={v}' for k, v in workload.mix_counts.items() if v)})"
    )
    baseline = Engine(workload.database, policy="none").apply(workload.log)
    try:
        if args.shards:
            from .shard import ShardedEngine

            engine = ShardedEngine(
                workload.database,
                n_shards=args.shards,
                policy=args.policy,
                parallel=args.parallel_shards,
                journal_dir=args.journal,
                sync=args.journal_sync,
                checkpoint_every=args.checkpoint_every,
            )
            engine.apply(workload.log)
        elif args.journal:
            from .wal import JournaledEngine

            engine = JournaledEngine(
                workload.database,
                args.journal,
                policy=args.policy,
                sync=args.journal_sync,
                checkpoint_every=args.checkpoint_every,
            )
            engine.apply(workload.log)
        else:
            engine = Engine(workload.database, policy=args.policy).apply(workload.log)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Observation stays inside the handler: on the process-pool backend a
    # dead shard worker surfaces here as an EngineError, and the workers
    # stop serving captures once closed.
    try:
        report = engine.overhead_report(baseline)
        for key, value in report.items():
            print(f"  {key}: {value}")
        diverged = not engine.result().same_contents(baseline.result())
        if args.shards:
            if args.journal:
                print(
                    f"  journal: {args.shards} shard directories "
                    f"({engine.stats.checkpoint_time:.3f}s checkpointing) -> {args.journal}"
                )
            engine.close()
        elif args.journal:
            engine.close()
            print(
                f"  journal: {engine.journal.appended} records appended, "
                f"{engine.checkpoints.written} checkpoints "
                f"({engine.stats.checkpoint_time:.3f}s) -> {args.journal}"
            )
    except ReproError as exc:
        if args.shards:
            engine.close(checkpoint=False)
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if diverged:
        print("error: provenance run diverged from the vanilla result", file=sys.stderr)
        return 1
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    from .errors import ReproError
    from .shard import is_sharded_directory, recover_sharded
    from .wal import recover

    if is_sharded_directory(args.directory):
        try:
            engine = recover_sharded(
                args.directory,
                parallel=args.parallel_shards,
                sync=args.journal_sync,
                checkpoint_every=args.checkpoint_every,
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        report = engine.recovery
        if args.shards is not None and report.n_shards != args.shards:
            print(
                f"error: {args.directory} holds {report.n_shards} shards, "
                f"--shards says {args.shards}",
                file=sys.stderr,
            )
            engine.close(checkpoint=False)
            return 2
        print(
            f"recovered {args.directory} "
            f"(policy {report.policy}, {report.n_shards} shards)"
        )
        for key, value in report.as_dict().items():
            if key not in ("policy", "n_shards", "shards"):
                print(f"  {key}: {value}")
        for shard, shard_report in enumerate(report.shards):
            print(
                f"  shard {shard:02d}: tail {shard_report['tail_records']} records, "
                f"{shard_report['replayed_queries']} queries replayed, "
                f"{shard_report['support_rows']} support rows"
            )
        # close() force-checkpoints every journaled shard, folding the
        # replayed tails in so the next recovery starts clean.
        engine.close()
        return 0
    try:
        engine = recover(
            args.directory,
            sync=args.journal_sync,
            checkpoint_every=args.checkpoint_every,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = engine.recovery
    print(f"recovered {args.directory} (policy {report.policy})")
    for key, value in report.as_dict().items():
        if key != "policy":
            print(f"  {key}: {value}")
    stats = engine.stats
    print(
        f"  lifetime: {stats.queries} queries in {stats.transactions} transactions, "
        f"{stats.rows_created} rows created"
    )
    # Fold the replayed tail into a fresh checkpoint so the next recovery
    # starts clean, and close the journal.
    engine.close()
    return 0


def _database_from_specs(schema_specs: list[str], csv_specs: list[str]):
    """Build a Database from repeated ``REL:a,b`` / ``REL=path`` options."""
    from .db.database import Database
    from .db.schema import Relation, Schema
    from .errors import ReproError
    from .storage.csvio import load_csv

    relations = []
    for spec in schema_specs:
        name, _, attrs = spec.partition(":")
        if not attrs:
            raise ReproError(f"schema spec {spec!r} must look like REL:a,b,c")
        relations.append(Relation(name.strip(), [a.strip() for a in attrs.split(",")]))
    db = Database(Schema(relations))
    for item in csv_specs:
        name, _, path = item.partition("=")
        if not path:
            raise ReproError(f"--csv spec {item!r} must look like REL=path")
        loaded = load_csv(path, f"__tmp_{name}")
        db.extend(name, loaded.rows(f"__tmp_{name}"))
    return db


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .errors import ReproError
    from .server.protocol import DEFAULT_PORT
    from .server.server import ProvenanceServer
    from .server.service import ProvenanceService, ServerConfig, build_engine

    backend = args.backend
    if backend == "auto":
        if args.directory is None:
            backend = "plain"
        else:
            from .shard import is_sharded_directory

            backend = "sharded" if is_sharded_directory(args.directory) else "journaled"
    config = ServerConfig(
        host=args.host,
        port=args.port if args.port is not None else DEFAULT_PORT,
        backend=backend,
        policy=args.policy,
        directory=args.directory,
        shards=args.shards,
        parallel_shards=args.parallel_shards,
        sync=args.journal_sync,
        checkpoint_every=args.checkpoint_every,
        admission_max=args.admission_max,
        sweep_every=args.sweep_every,
        arena=args.arena,
    )

    async def _run() -> int:
        try:
            if args.csv and not args.schema:
                raise ReproError("--csv needs --schema to declare its relation")
            database = _database_from_specs(args.schema, args.csv) if args.schema else None
            service = ProvenanceService(build_engine(database, config), config)
            server = ProvenanceServer(service)
            await server.start()
        except (ReproError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        recovery = getattr(service.engine, "recovery", None)
        if recovery is not None:
            print(f"recovered {args.directory}: {recovery.as_dict()}")
        memory_knobs = ""
        if config.sweep_every or config.arena:
            memory_knobs = f", sweep_every={config.sweep_every}, arena={config.arena}"
        print(
            f"serving on {server.host}:{server.port} "
            f"(backend={backend}, policy={config.policy}, "
            f"admission_max={config.admission_max}{memory_knobs})",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        # The loop holds only a weak reference to tasks; keep a strong one
        # so the graceful stop cannot be garbage-collected mid-shutdown.
        stop_tasks: list[asyncio.Task] = []
        try:
            import signal

            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(
                    signum,
                    lambda: stop_tasks.append(loop.create_task(server.stop())),
                )
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-posix
            pass
        await server.wait_stopped()
        print("server stopped (flushed and checkpointed)")
        return 0

    return asyncio.run(_run())


def _client_subscribe(client, spec: str) -> int:
    """``repro client subscribe REL[:attr=val,...]``: stream deltas until ^C.

    Constants parse as int, then float, then stay strings — the same
    scalars the wire protocol ships.  The seeded answer set prints first
    (so the terminal mirrors the view from version 0 of the stream), then
    one line per delta as batches arrive.
    """
    from .errors import ReproError
    from .db.schema import Relation
    from .queries.pattern import Pattern

    relation_name, _, constraint = spec.partition(":")
    schema = client.ping()["schema"]
    if relation_name not in schema:
        raise ReproError(
            f"unknown relation {relation_name!r} (schema: {', '.join(schema)})"
        )
    relation = Relation(relation_name, list(schema[relation_name]))
    where: dict[str, object] = {}
    if constraint:
        for part in constraint.split(","):
            attr, eq, raw = part.partition("=")
            if not eq:
                raise ReproError(f"bad pattern term {part!r} (want attr=val)")
            value: object = raw
            for cast in (int, float):
                try:
                    value = cast(raw)
                    break
                except ValueError:
                    continue
            where[attr.strip()] = value
    pattern = Pattern.build(relation, where=where) if where else None
    subscription = client.subscribe(relation_name, pattern)
    described = (pattern or Pattern.any(relation.arity)).describe(relation)
    print(
        f"subscribed #{subscription.view_id} to {relation_name}[{described}] "
        f"at version {subscription.version}"
    )
    for row, (expr, live) in sorted(subscription.rows.items(), key=repr):
        flag = "live" if live else "gone"
        print(f"  [seed] [{flag}] {row!r}  ::  {expr}")
    try:
        for event in subscription:
            if event.lagged:
                print("!! lagged: server dropped this subscription; re-subscribe")
                return 3
            for delta in event.batch:
                flag = "live" if delta.live else "gone"
                print(
                    f"  [v{event.batch.version}] {delta.kind:<10} [{flag}] "
                    f"{delta.row!r}  ::  {delta.expr}"
                )
    except KeyboardInterrupt:
        subscription.unsubscribe()
        print("unsubscribed")
    return 0


def cmd_client(args: argparse.Namespace) -> int:
    from .errors import ReproError
    from .server.client import ServerClient
    from .server.protocol import DEFAULT_PORT
    from .workloads.logs import log_from_json

    port = args.port if args.port is not None else DEFAULT_PORT
    try:
        with ServerClient(args.host, port, connect_retry=args.retry) as client:
            if args.action == "ping":
                for key, value in client.ping().items():
                    print(f"  {key}: {value}")
            elif args.action == "stats":
                stats = client.stats()
                for section in ("engine", "server", "memory"):
                    print(f"-- {section}")
                    for key, value in stats[section].items():
                        print(f"  {key}: {value}")
            elif args.action == "state":
                for relation, rows in client.state().items():
                    print(f"-- {relation}")
                    for row, (expr, live) in sorted(rows.items(), key=repr):
                        flag = "live" if live else "gone"
                        print(f"  [{flag}] {row!r}  ::  {expr}")
            elif args.action == "provenance":
                if not args.argument:
                    raise ReproError("provenance needs a relation name argument")
                for row, expr, live in sorted(
                    client.provenance(args.argument), key=repr
                ):
                    flag = "live" if live else "gone"
                    print(f"  [{flag}] {row!r}  ::  {expr}")
            elif args.action == "apply":
                if not args.argument:
                    raise ReproError("apply needs an update-log JSON file argument")
                log, _schema = log_from_json(Path(args.argument).read_text())
                applied = client.apply_batch(log.items)
                print(f"applied {applied} queries")
            elif args.action == "checkpoint":
                print(f"checkpoints written: {client.checkpoint()}")
            elif args.action == "subscribe":
                if not args.argument:
                    raise ReproError(
                        "subscribe needs a REL[:attr=val,...] argument"
                    )
                return _client_subscribe(client, args.argument)
            elif args.action == "shutdown":
                client.shutdown()
                print("server shutting down")
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    from .errors import ReproError, ServerError
    from .loadgen import (
        ATTRIBUTES,
        check_slos,
        parse_slos,
        profile_from_name,
        run_loadgen,
        schema_specs,
        worker_relation,
        write_result,
    )
    from .server.client import ServerClient
    from .server.protocol import DEFAULT_PORT

    try:
        overrides: dict[str, object] = {}
        if args.workers is not None:
            overrides["workers"] = args.workers
        if args.ops is not None:
            overrides["ops_per_worker"] = args.ops
        if args.rows is not None:
            overrides["rows_per_worker"] = args.rows
        if args.seed is not None:
            overrides["seed"] = args.seed
        if args.mix is not None:
            from .loadgen import MixSpec

            overrides["mix"] = MixSpec.parse(args.mix)
        if args.max_rate is not None:
            overrides["max_rate"] = args.max_rate
        if args.schedule is not None:
            overrides["schedule"] = args.schedule
        if args.pipeline is not None:
            overrides["pipeline"] = args.pipeline
        if args.repeat is not None:
            overrides["repeat"] = args.repeat
        profile = profile_from_name(args.profile, **overrides)
        slos = parse_slos(args.slo)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.print_serve_args:
        print(" ".join(f"--schema {spec}" for spec in schema_specs(profile)))
        return 0

    port = args.port if args.port is not None else DEFAULT_PORT
    try:
        with ServerClient(args.host, port, connect_retry=10.0) as client:
            served = client.ping().get("schema", {})
        missing = [
            worker_relation(w)
            for w in range(profile.workers)
            if list(served.get(worker_relation(w), [])) != list(ATTRIBUTES)
        ]
        if missing:
            wanted = " ".join(f"--schema {spec}" for spec in schema_specs(profile))
            raise ServerError(
                f"server is missing loadgen relations {missing}; "
                f"start it with: repro serve {wanted}"
            )
        result = run_loadgen(
            profile,
            host=args.host,
            port=port,
            mode="thread" if args.threads else "process",
            progress=print if args.report_every > 0 else None,
            report_every=args.report_every,
            followers=[_parse_address(spec) for spec in (args.follower or [])],
            max_lag=args.max_lag,
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(result.format_summary())
    if not args.no_save:
        path = write_result(result, args.save)
        print(f"wrote {path}")
    if args.csv:
        Path(args.csv).write_text(result.to_csv())
        print(f"wrote {args.csv}")
    violations = check_slos(result, slos)
    for violation in violations:
        print(f"SLO violated: {violation}", file=sys.stderr)
    return 1 if violations else 0


def _parse_address(spec: str) -> tuple[str, int]:
    from .errors import ReproError

    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise ReproError(f"address {spec!r} must look like HOST:PORT")
    return host, int(port)


def _wait_until_stopped(is_closed) -> None:
    """Block the main thread until SIGINT/SIGTERM or the node shuts down."""
    import signal
    import threading

    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, lambda *_: stop.set())
        except ValueError:  # pragma: no cover - non-main thread
            break
    while not stop.is_set() and not is_closed():
        stop.wait(0.2)


def cmd_replicate(args: argparse.Namespace) -> int:
    from .errors import ReproError
    from .server.protocol import DEFAULT_PORT
    from .server.service import ServerConfig

    try:
        if args.role == "primary":
            from .replication import serve_primary

            config = ServerConfig(
                host=args.host,
                port=args.port if args.port is not None else DEFAULT_PORT,
                backend="journaled",
                policy=args.policy,
                directory=args.directory,
                sync=args.journal_sync,
                checkpoint_every=args.checkpoint_every,
                admission_max=args.admission_max,
            )
            if args.csv and not args.schema:
                raise ReproError("--csv needs --schema to declare its relation")
            database = (
                _database_from_specs(args.schema, args.csv) if args.schema else None
            )
            handle = serve_primary(
                database,
                config,
                replication_host=args.host,
                replication_port=args.replication_port,
                buffer_records=args.buffer_records,
            )
            print(
                f"primary serving on {handle.server.host}:{handle.server.port} "
                f"shipping on {handle.listener.host}:{handle.listener.port} "
                f"(policy={config.policy}, seq={handle.hub.last_seq})",
                flush=True,
            )
            try:
                _wait_until_stopped(lambda: handle.service.closed)
            finally:
                handle.stop()
            print("primary stopped (flushed and checkpointed)")
            return 0

        if args.role == "follower":
            from .replication import FollowerNode

            config = ServerConfig(
                host=args.host,
                port=args.port,
                backend="journaled",
                directory=args.directory,
                sync=args.journal_sync,
                checkpoint_every=args.checkpoint_every,
            )
            node = FollowerNode(
                args.directory, _parse_address(args.primary), config
            )
            node.start()
            print(
                f"follower serving on {node.address[0]}:{node.address[1]} "
                f"tracking {args.primary} (seq={node.applied_seq})",
                flush=True,
            )
            try:
                _wait_until_stopped(lambda: node.service.closed)
            finally:
                node.stop()
            print("follower stopped (journal tail kept for the next bootstrap)")
            return 0

        from .server.client import ServerClient

        with ServerClient(args.host, args.port, connect_retry=args.retry) as client:
            if args.role == "promote":
                result = client.promote()
                print(f"promoted: now {result['role']} at seq {result['seq']}")
                return 0
            # status
            stats = client.stats()
            for key, value in stats["server"].items():
                print(f"  {key}: {value}")
            for key, value in stats.get("replication", {}).items():
                print(f"  replication.{key}: {value}")
            return 0
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def cmd_sql(args: argparse.Namespace) -> int:
    from .core.minimize import minimize
    from .db.database import Database
    from .db.schema import Relation, Schema
    from .engine.engine import Engine
    from .errors import ReproError
    from .lang.sql import parse_sql_script
    from .storage.csvio import load_csv

    try:
        relations = []
        for spec in args.schema:
            name, _, attrs = spec.partition(":")
            if not attrs:
                raise ReproError(f"schema spec {spec!r} must look like REL:a,b,c")
            relations.append(Relation(name.strip(), [a.strip() for a in attrs.split(",")]))
        schema = Schema(relations)
        db = Database(schema)
        for item in args.csv:
            name, _, path = item.partition("=")
            if not path:
                raise ReproError(f"--csv spec {item!r} must look like REL=path")
            loaded = load_csv(path, f"__tmp_{name}")
            db.extend(name, loaded.rows(f"__tmp_{name}"))
        text = sys.stdin.read() if args.script == "-" else Path(args.script).read_text()
        items = parse_sql_script(text, schema)
        engine = Engine(db, policy=args.policy)
        engine.apply(items)
        for relation in schema.names:
            print(f"-- {relation}")
            for row, expr, live in sorted(engine.provenance(relation), key=repr):
                shown = minimize(expr) if args.minimize else expr
                flag = "live" if live else "gone"
                print(f"  [{flag}] {row!r}  ::  {shown}")
        stats = engine.stats
        print(
            f"-- planner: {stats.index_hits} index hits, "
            f"{stats.fallback_scans} fallback scans, "
            f"{stats.index_rows_examined} rows examined via indexes"
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_axioms(_args: argparse.Namespace) -> int:
    import itertools

    from .semantics.boolean import BooleanStructure
    from .semantics.sets import SetStructure
    from .semantics.trust import TrustStructure, TrustValue

    checks = [
        (BooleanStructure(), [False, True]),
        (
            SetStructure({"a", "b"}),
            [
                frozenset(s)
                for r in range(3)
                for s in itertools.combinations(("a", "b"), r)
            ],
        ),
        (
            TrustStructure(0.5),
            [TrustValue(1.0, "T"), TrustValue(0.0, "F"), TrustValue(0.9, "U"), TrustValue(0.1, "U")],
        ),
    ]
    failed = False
    for structure, elements in checks:
        try:
            structure.check_zero_axioms(elements)
            structure.check_axioms(elements)
            print(f"  {structure.name}: all 12 axioms + zero axioms hold")
        except Exception as exc:  # surface the witness
            failed = True
            print(f"  {structure.name}: FAILED — {exc}")
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
