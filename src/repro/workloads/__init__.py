"""Evaluation workloads: update logs and the synthetic generator (§6.1)."""

from .logs import UpdateLog, log_from_json, log_to_json
from .synthetic import (
    SyntheticConfig,
    SyntheticWorkload,
    synthetic_database,
    synthetic_log,
    synthetic_workload,
)

__all__ = [
    "SyntheticConfig",
    "SyntheticWorkload",
    "UpdateLog",
    "log_from_json",
    "log_to_json",
    "synthetic_database",
    "synthetic_log",
    "synthetic_workload",
]
