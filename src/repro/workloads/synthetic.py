"""The synthetic evaluation workload (paper Section 6.1).

The paper's synthetic setup: a table populated with uniform random values
from a fixed domain; a sequence of update queries whose type (insertion /
deletion / modification) is uniform; deletions and modifications select on
a numeric column; and a control knob for the number of *affected tuples* —
the tuples the transaction sequence touches (0.02%–0.1% of the table in
Figures 8/9a) — or, alternatively, for the number of tuples affected *per
query* (Figure 9b).

We realize the affected-tuple control with a numeric *selection column*
``grp``: the affected set is partitioned into ``n_groups`` groups of
``group_size`` rows sharing one ``grp`` value; every deletion/modification
selects one group (``grp = g``), touching exactly ``group_size`` rows, and
over the sequence the whole affected set of ``n_groups * group_size`` rows
churns repeatedly.  Cold rows carry ``grp = -1`` and are never selected.
That reproduces the quantity the paper varies:

* total affected tuples = ``n_groups * group_size``   (Figure 9a)
* affected tuples per query = ``group_size``           (Figure 9b)
* updates per affected tuple grows with the query count for a fixed
  affected set — the regime where the normal form pays off (§6.3).

Everything is deterministic under ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from ..db.database import Database
from ..db.schema import Relation, Schema
from ..errors import QueryError
from ..queries.pattern import Pattern
from ..queries.updates import Delete, Insert, Modify, Transaction
from .logs import UpdateLog

__all__ = [
    "SyntheticConfig",
    "SyntheticWorkload",
    "synthetic_database",
    "synthetic_log",
    "synthetic_workload",
]

#: Name of the generated relation.
RELATION_NAME = "synthetic"

#: Value columns carry uniform values from ``range(domain_size)``.
COLD_GROUP = -1


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the synthetic database + update log.

    Defaults give the paper's shape at test-friendly scale: the paper used
    1M rows with 200 affected tuples (0.02%); scaling both down by ~20x
    preserves every ratio the evaluation reports.
    """

    n_tuples: int = 50_000
    n_value_columns: int = 3
    domain_size: int = 1_000
    n_groups: int = 20
    group_size: int = 10
    n_queries: int = 500
    queries_per_transaction: int = 1
    #: (insert, delete, modify) mix; the paper uses the uniform mix.
    weights: tuple[float, float, float] = (1.0, 1.0, 1.0)
    seed: int = 7

    def __post_init__(self):
        if self.n_tuples <= 0 or self.n_queries < 0:
            raise QueryError("n_tuples must be positive and n_queries non-negative")
        if self.n_groups <= 0 or self.group_size <= 0:
            raise QueryError("n_groups and group_size must be positive")
        if self.affected_tuples > self.n_tuples:
            raise QueryError(
                f"affected set ({self.affected_tuples}) exceeds table size ({self.n_tuples})"
            )
        if self.n_value_columns < 1:
            raise QueryError("need at least one value column to modify")
        if min(self.weights) < 0 or sum(self.weights) == 0:
            raise QueryError("weights must be non-negative and not all zero")

    @property
    def affected_tuples(self) -> int:
        """Total size of the affected set (the Figure 9a x-axis)."""
        return self.n_groups * self.group_size

    @property
    def affected_fraction(self) -> float:
        return self.affected_tuples / self.n_tuples

    def with_affected(self, total: int, per_query: int | None = None) -> "SyntheticConfig":
        """A copy with the affected set resized.

        ``per_query`` is the group size (tuples touched by one query);
        defaults to the current group size when it divides ``total``.
        """
        per_query = per_query or self.group_size
        if total % per_query:
            raise QueryError(f"total affected {total} not a multiple of per-query {per_query}")
        return replace(self, n_groups=total // per_query, group_size=per_query)


def synthetic_schema(config: SyntheticConfig) -> Schema:
    """``synthetic(id, grp, v0, ..., v{k-1})``."""
    attributes = ["id", "grp"] + [f"v{i}" for i in range(config.n_value_columns)]
    return Schema([Relation(RELATION_NAME, attributes)])


def synthetic_database(config: SyntheticConfig) -> Database:
    """The populated table: hot rows first (grouped), then cold rows."""
    rng = random.Random(config.seed)
    schema = synthetic_schema(config)
    db = Database(schema)
    rows = db.rows(RELATION_NAME)
    hot = config.affected_tuples
    for row_id in range(config.n_tuples):
        grp = row_id // config.group_size if row_id < hot else COLD_GROUP
        values = tuple(rng.randrange(config.domain_size) for _ in range(config.n_value_columns))
        rows.add((row_id, grp) + values)
    return db


def synthetic_log(config: SyntheticConfig) -> UpdateLog:
    """The update log over the database of :func:`synthetic_database`.

    Queries (uniform over the weighted kinds):

    * **insert** — a fresh row in a random hot group (so it joins the
      affected set and churns with it);
    * **delete** — ``DELETE WHERE grp = g`` for a random hot group;
    * **modify** — ``UPDATE SET v<j> = c WHERE grp = g``, a random value
      column set to a random domain constant.

    Queries are grouped into transactions of ``queries_per_transaction``
    queries; each transaction carries a distinct annotation ``q<i>``.
    """
    rng = random.Random(config.seed + 1)
    schema = synthetic_schema(config)
    relation = schema.relation(RELATION_NAME)
    arity = relation.arity
    grp_pos = relation.index_of("grp")
    next_id = config.n_tuples

    total = sum(config.weights)
    w_insert = config.weights[0] / total
    w_delete = w_insert + config.weights[1] / total

    def one_query():
        nonlocal next_id
        group = rng.randrange(config.n_groups)
        roll = rng.random()
        if roll < w_insert:
            values = tuple(
                rng.randrange(config.domain_size) for _ in range(config.n_value_columns)
            )
            row = (next_id, group) + values
            next_id += 1
            return Insert(RELATION_NAME, row)
        if roll < w_delete:
            return Delete(RELATION_NAME, Pattern(arity, eq={grp_pos: group}))
        column = rng.randrange(config.n_value_columns)
        position = relation.index_of(f"v{column}")
        constant = rng.randrange(config.domain_size)
        return Modify(RELATION_NAME, Pattern(arity, eq={grp_pos: group}), {position: constant})

    items: list[Transaction] = []
    queries_left = config.n_queries
    txn_index = 0
    while queries_left > 0:
        take = min(config.queries_per_transaction, queries_left)
        items.append(Transaction(f"q{txn_index}", [one_query() for _ in range(take)]))
        txn_index += 1
        queries_left -= take
    meta = {
        "name": "synthetic",
        "n_tuples": config.n_tuples,
        "affected_tuples": config.affected_tuples,
        "group_size": config.group_size,
        "n_queries": config.n_queries,
        "seed": config.seed,
    }
    return UpdateLog(items, meta)


@dataclass
class SyntheticWorkload:
    """A config together with its generated database and log."""

    config: SyntheticConfig
    database: Database = field(repr=False)
    log: UpdateLog = field(repr=False)

    @property
    def schema(self) -> Schema:
        return self.database.schema


def synthetic_workload(config: SyntheticConfig | None = None, **overrides) -> SyntheticWorkload:
    """Build database and log in one call.

    Keyword overrides are applied to the (default) config, e.g.
    ``synthetic_workload(n_tuples=10_000, n_queries=200)``.
    """
    config = replace(config or SyntheticConfig(), **overrides) if overrides else (
        config or SyntheticConfig()
    )
    return SyntheticWorkload(config, synthetic_database(config), synthetic_log(config))
