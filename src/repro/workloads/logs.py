"""Update logs: ordered sequences of (annotated) queries and transactions.

An :class:`UpdateLog` is what the evaluation executes: the TPC-C driver and
the synthetic generator both produce one, the benchmark harness replays
prefixes of one against each engine policy ("as a function of the number of
updates"), and logs serialize to JSON so that a generated workload can be
stored and replayed bit-identically.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, Mapping, Sequence

from ..db.schema import Relation, Schema
from ..errors import StorageError
from ..queries.pattern import Pattern
from ..queries.updates import Delete, Insert, Modify, Transaction, UpdateQuery

__all__ = [
    "UpdateLog",
    "log_to_json",
    "log_from_json",
    "log_from_events",
    "query_to_dict",
    "query_from_dict",
    "pattern_to_dict",
    "pattern_from_dict",
]

LogItem = UpdateQuery | Transaction


class UpdateLog:
    """An ordered sequence of update queries / transactions plus metadata."""

    def __init__(self, items: Iterable[LogItem] = (), meta: Mapping[str, object] | None = None):
        self.items: list[LogItem] = list(items)
        self.meta: dict[str, object] = dict(meta or {})

    # -- basic container behaviour -------------------------------------------

    def append(self, item: LogItem) -> None:
        self.items.append(item)

    def __iter__(self) -> Iterator[LogItem]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> LogItem:
        return self.items[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UpdateLog):
            return NotImplemented
        return self.items == other.items

    def __repr__(self) -> str:
        return f"UpdateLog({len(self.items)} items, {self.query_count()} queries)"

    # -- query-level views -----------------------------------------------------

    def queries(self) -> Iterator[UpdateQuery]:
        """All queries in execution order, transactions flattened."""
        for item in self.items:
            if isinstance(item, Transaction):
                yield from item.queries
            else:
                yield item

    def query_count(self) -> int:
        """Total number of individual update queries."""
        return sum(len(item) if isinstance(item, Transaction) else 1 for item in self.items)

    def annotations(self) -> list[str]:
        """Distinct annotations in first-use order."""
        seen: dict[str, None] = {}
        for query in self.queries():
            if query.annotation is not None:
                seen.setdefault(query.annotation, None)
        return list(seen)

    def prefix(self, n_queries: int) -> "UpdateLog":
        """The log truncated to its first ``n_queries`` queries.

        A transaction straddling the cut is truncated (keeping its name),
        matching how the paper's evaluation sweeps "number of updates".
        """
        out: list[LogItem] = []
        remaining = n_queries
        for item in self.items:
            if remaining <= 0:
                break
            if isinstance(item, Transaction):
                take = min(len(item), remaining)
                if take == len(item):
                    out.append(item)
                else:
                    out.append(Transaction(item.name, item.queries[:take]))
                remaining -= take
            else:
                out.append(item)
                remaining -= 1
        meta = dict(self.meta)
        meta["prefix_of"] = self.meta.get("name", "log")
        meta["prefix_queries"] = n_queries
        return UpdateLog(out, meta)

    def events(self) -> Iterator[tuple[str, object]]:
        """The log as a flat event stream: ``("query", q)`` / ``("txn_end", name)``.

        This is the vocabulary the write-ahead journal records (one event
        per durable record) and the recovery replay consumes: queries
        carry their annotation, and a ``txn_end`` event marks exactly the
        point where :meth:`Executor.on_transaction_end` fires.  A bare
        query emits no ``txn_end``.
        """
        for item in self.items:
            if isinstance(item, Transaction):
                for query in item.queries:
                    yield ("query", query)
                yield ("txn_end", item.name)
            else:
                yield ("query", item)

    def kind_counts(self) -> dict[str, int]:
        """``{"insert": n, "delete": n, "modify": n}`` over all queries."""
        counts = {"insert": 0, "delete": 0, "modify": 0}
        for query in self.queries():
            counts[query.kind] += 1
        return counts

    def as_single_transaction(self, name: str = "p") -> "UpdateLog":
        """The whole log as *one* annotated transaction.

        This is the paper's Section 3 execution model — a transaction is a
        sequence of update queries sharing one annotation — and the setup
        of its Section 6 experiments (tuple-level provenance usage, all
        normal-form rules live across the whole log).  The multi-item view
        with per-transaction annotations is the Section 3's "sequence of
        transactions" generalization needed by the abortion application.
        """
        meta = dict(self.meta)
        meta["single_annotation"] = name
        return UpdateLog([Transaction(name, list(self.queries()))], meta)


def log_from_events(
    events: Iterable[tuple[str, object]], meta: Mapping[str, object] | None = None
) -> UpdateLog:
    """Rebuild an :class:`UpdateLog` from an :meth:`UpdateLog.events` stream.

    Each ``txn_end`` event closes a :class:`Transaction` over the maximal
    suffix of pending queries stamped with its annotation; pending
    queries carrying other annotations stay bare items (a transaction's
    constructor stamps its name onto every member, so membership is
    recoverable from the annotation alone).  Trailing queries with no
    closing ``txn_end`` — a journal tail cut short by a crash
    mid-transaction — also stay bare, so replaying the rebuilt log fires
    no transaction-end hook for the unfinished transaction (exactly the
    crash semantics).

    Replaying the rebuilt log is always equivalent to replaying the
    original event stream.  The *item structure* also round-trips —
    ``log_from_events(log.events()).items == log.items`` — except in one
    ambiguous case the events cannot distinguish: a bare query whose
    annotation happens to equal the name of the transaction immediately
    following it is absorbed into that transaction (the hook still fires
    at the same point, so replay is unaffected).
    """
    items: list[LogItem] = []
    pending: list[UpdateQuery] = []
    for kind, payload in events:
        if kind == "query":
            if not isinstance(payload, UpdateQuery):
                raise StorageError(f"query event carries {type(payload).__name__}")
            pending.append(payload)
        elif kind == "txn_end":
            name = str(payload)
            split = len(pending)
            while split > 0 and pending[split - 1].annotation == name:
                split -= 1
            items.extend(pending[:split])
            items.append(Transaction(name, pending[split:]))
            pending = []
        else:
            raise StorageError(f"unknown log event kind {kind!r}")
    items.extend(pending)
    return UpdateLog(items, meta)


# ---------------------------------------------------------------------------
# JSON (de)serialization
# ---------------------------------------------------------------------------

#: JSON cannot tell a list from a tuple; rows/constants are restricted to
#: JSON scalars, which all shipped workloads satisfy.
_SCALARS = (str, int, float, bool, type(None))


def _check_scalar(value: object) -> object:
    if not isinstance(value, _SCALARS):
        raise StorageError(
            f"only JSON scalar constants serialize, got {type(value).__name__}: {value!r}"
        )
    return value


def _pattern_to_dict(pattern: Pattern) -> dict[str, object]:
    return {
        "arity": pattern.arity,
        "eq": [[i, _check_scalar(v)] for i, v in sorted(pattern.eq.items())],
        "neq": [
            [i, sorted((_check_scalar(v) for v in values), key=repr)]
            for i, values in sorted(pattern.neq.items())
        ],
    }


def _pattern_from_dict(data: Mapping[str, object]) -> Pattern:
    return Pattern(
        int(data["arity"]),
        eq={int(i): v for i, v in data.get("eq", ())},
        neq={int(i): set(vs) for i, vs in data.get("neq", ())},
    )


#: Public names for the pattern codec: subscriptions ship bare patterns
#: (no enclosing query), in exactly the replay vocabulary's encoding.
pattern_to_dict = _pattern_to_dict
pattern_from_dict = _pattern_from_dict


def query_to_dict(query: UpdateQuery) -> dict[str, object]:
    """A JSON-ready dict for one query."""
    out: dict[str, object] = {"kind": query.kind, "relation": query.relation}
    if query.annotation is not None:
        out["annotation"] = query.annotation
    if isinstance(query, Insert):
        out["row"] = [_check_scalar(v) for v in query.row]
    elif isinstance(query, Delete):
        out["pattern"] = _pattern_to_dict(query.pattern)
    elif isinstance(query, Modify):
        out["pattern"] = _pattern_to_dict(query.pattern)
        out["assignments"] = [[i, _check_scalar(v)] for i, v in sorted(query.assignments.items())]
    else:
        raise StorageError(f"cannot serialize query type {type(query).__name__}")
    return out


def query_from_dict(data: Mapping[str, object]) -> UpdateQuery:
    """Inverse of :func:`query_to_dict`."""
    kind = data.get("kind")
    relation = str(data["relation"])
    annotation = data.get("annotation")
    annotation = str(annotation) if annotation is not None else None
    if kind == "insert":
        return Insert(relation, tuple(data["row"]), annotation)
    if kind == "delete":
        return Delete(relation, _pattern_from_dict(data["pattern"]), annotation)
    if kind == "modify":
        return Modify(
            relation,
            _pattern_from_dict(data["pattern"]),
            {int(i): v for i, v in data["assignments"]},
            annotation,
        )
    raise StorageError(f"unknown query kind {kind!r}")


def _schema_to_dict(schema: Schema) -> dict[str, list[str]]:
    return {relation.name: list(relation.attributes) for relation in schema}


def _schema_from_dict(data: Mapping[str, Sequence[str]]) -> Schema:
    return Schema(Relation(name, attrs) for name, attrs in data.items())


def log_to_json(log: UpdateLog, schema: Schema | None = None, indent: int | None = None) -> str:
    """Serialize a log (optionally with its schema) to a JSON string."""
    items: list[dict[str, object]] = []
    for item in log.items:
        if isinstance(item, Transaction):
            items.append(
                {
                    "type": "transaction",
                    "name": item.name,
                    "queries": [query_to_dict(q) for q in item.queries],
                }
            )
        else:
            entry = query_to_dict(item)
            entry["type"] = "query"
            items.append(entry)
    payload: dict[str, object] = {"meta": log.meta, "items": items}
    if schema is not None:
        payload["schema"] = _schema_to_dict(schema)
    return json.dumps(payload, indent=indent)


def log_from_json(text: str) -> tuple[UpdateLog, Schema | None]:
    """Inverse of :func:`log_to_json`; returns ``(log, schema-or-None)``."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise StorageError(f"invalid log JSON: {exc}") from exc
    items: list[LogItem] = []
    for entry in payload.get("items", ()):
        if entry.get("type") == "transaction":
            queries = [query_from_dict(q) for q in entry["queries"]]
            items.append(Transaction(str(entry["name"]), queries))
        else:
            items.append(query_from_dict(entry))
    schema = None
    if "schema" in payload:
        schema = _schema_from_dict(payload["schema"])
    return UpdateLog(items, payload.get("meta", {})), schema
