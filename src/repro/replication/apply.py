"""Applying shipped journal frames to a follower engine.

The applier is the follower-side half of the replication contract.  It
receives ``(record, line)`` pairs — the decoded record plus the exact
bytes the primary wrote — and for each one:

1. appends the line verbatim to the follower's own journal
   (:meth:`Journal.append_raw`), so durability is settled *before* the
   state change, exactly as on the primary (redo-log discipline);
2. applies the record through the same replay vocabulary
   :func:`repro.wal.recovery.recover` uses, so the follower's engine
   state at sequence *s* is bit-identical to the primary's at *s* —
   rows, liveness, and the very same interned annotation objects.

Exactly-once sequencing is structural: frames at or below the applied
sequence are skipped (a reconnect re-ships from the follower's durable
seq, which may trail its applied seq by an in-flight frame), and a gap
raises :class:`ReplicationError` rather than silently losing records.

Aborted queries need care.  The primary journals a failing query and
then an ``abort`` record; both lines are shipped.  The follower applies
the query, *expects* it to fail identically (the failure is
deterministic validation), and checks the abort record confirms it —
any asymmetry (primary aborted but the follower succeeded, or vice
versa) is divergence and fatal.  If the follower crashes between the
query and its abort, recovery appends its own abort record — which is
byte-identical to the primary's (same sequence, same ``undo`` payload,
hence the same CRC) — and the re-shipped copy is skipped as a duplicate.

Checkpoints fire only after ``txn_end`` / ``batch_end`` records: those
are the primary's own flush points, so observing provenance there (which
a checkpoint does) cannot flush the ``normal_form_batch`` policy at a
point the primary did not.
"""

from __future__ import annotations

from ..errors import ReplicationError, ReproError
from ..wal.journal import ABORT, BATCH_END, QUERY, TXN_END, Journal
from ..workloads.logs import query_from_dict

__all__ = ["ShipmentApplier"]


class ShipmentApplier:
    """Applies shipped journal frames onto a follower engine.

    ``engine`` must have its journal hook detached (``engine.journal is
    None``): the applier owns durability through ``journal``, and the
    engine journaling the replayed query itself would double-write it.
    ``journal`` may be ``None`` for an in-memory follower (property
    tests); such a follower cannot resume after a crash.
    """

    def __init__(self, engine, journal: Journal | None = None):
        if engine.journal is not None:
            raise ReplicationError(
                "follower engine must have its journal hook detached; "
                "the applier appends shipped lines itself"
            )
        self.engine = engine
        self.journal = journal
        #: highest sequence number applied to the engine.
        self.applied_seq = journal.last_seq if journal is not None else 0
        #: sequence of a query that failed locally and now awaits the
        #: primary's confirming abort record.
        self._pending_failed: int | None = None
        #: frames skipped as duplicates (reconnect overlap).
        self.skipped = 0
        #: checkpoints written while applying.
        self.checkpoints_written = 0

    # -- applying -------------------------------------------------------------

    def apply_lines(self, shipments) -> int:
        """Apply ``(record, line)`` pairs in order; returns frames applied.

        Duplicates (``seq <= applied_seq``) are skipped; a gap raises.
        """
        applied = 0
        for record, line in shipments:
            seq = record["seq"]
            if seq <= self.applied_seq:
                self.skipped += 1
                continue
            if seq != self.applied_seq + 1:
                raise ReplicationError(
                    f"sequence gap in shipped frames: got {seq}, "
                    f"expected {self.applied_seq + 1}"
                )
            if self.journal is not None:
                self.journal.append_raw(line, seq)
            self._apply_record(record)
            self.applied_seq = seq
            applied += 1
        return applied

    def _apply_record(self, record: dict) -> None:
        kind = record["kind"]
        if self._pending_failed is not None and kind != ABORT:
            raise ReplicationError(
                f"divergence at seq {self._pending_failed}: the query "
                "failed here but the primary applied it (no abort record "
                "followed)"
            )
        if kind == QUERY:
            query = query_from_dict(record["query"])
            try:
                self.engine._apply_query(query)
            except ReproError:
                # Deterministic validation failure: the primary's next
                # record must be the confirming abort.
                self._pending_failed = record["seq"]
        elif kind == TXN_END:
            self.engine.executor.on_transaction_end(str(record["name"]))
            self.engine.stats.transactions += 1
            self._maybe_checkpoint()
        elif kind == ABORT:
            if self._pending_failed != record["seq"] - 1:
                raise ReplicationError(
                    f"divergence at seq {record['seq']}: the primary "
                    "aborted a query the follower applied successfully"
                )
            self._pending_failed = None
        elif kind == BATCH_END:
            # Audit-only on replay; also a safe checkpoint point.
            self._maybe_checkpoint()
        else:  # pragma: no cover - parse_line filters unknown kinds
            raise ReplicationError(f"unknown shipped record kind {kind!r}")

    # -- checkpointing --------------------------------------------------------

    def _maybe_checkpoint(self) -> bool:
        """Checkpoint at a flush boundary if the engine's policy is due.

        Mirrors :meth:`JournaledEngine.maybe_checkpoint`, but against the
        applier's journal (the engine's own hook is detached).
        """
        checkpoints = getattr(self.engine, "checkpoints", None)
        if checkpoints is None or self.journal is None:
            return False
        rows_since = (
            self.engine.stats.rows_created - self.engine._rows_at_checkpoint
        )
        if not checkpoints.due(self.journal.records_since_reset, rows_since):
            return False
        checkpoints.write(self.engine, self.journal)
        self.engine._rows_at_checkpoint = self.engine.stats.rows_created
        self.checkpoints_written += 1
        return True

    # -- promotion ------------------------------------------------------------

    def promote(self) -> None:
        """Reattach the journal hook: the engine becomes a writer.

        After this the applier must not receive further shipments; the
        engine journals its own updates, continuing the shipped sequence.
        """
        if self._pending_failed is not None:
            raise ReplicationError(
                "cannot promote with an unconfirmed aborting query; the "
                "stream stopped mid-abort — recover the directory instead"
            )
        if self.journal is None:
            raise ReplicationError("cannot promote an in-memory follower")
        self.engine.journal = self.journal
        self.journal = None

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()
