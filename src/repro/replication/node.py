"""Process-level replication wiring: primaries, follower nodes, promotion.

:func:`serve_primary` hosts an ordinary journaled provenance server and
bolts the shipping side on: a :class:`ReplicationHub` on the engine's
journal plus a :class:`ReplicationListener` followers connect to.

:class:`FollowerNode` is a whole follower: it bootstraps a
:class:`FollowerCore`, serves the full read surface from the recovered
engine through a read-only :class:`ProvenanceService`, and pumps shipped
frames into the service's ``replicate`` admission — so replication
serializes with reads on the writer thread, readers see whole shipped
batches, and the published snapshot's version is the applied journal
sequence.  Because the follower's version only advances when frames
arrive, repeated reads between shipments are served from the *cached*
published snapshot — the read-scaling lever the replication benchmark
measures.

Promotion (`repro replicate promote`, or the ``promote`` wire op) stops
the shipping stream, joins the receiver, and flips the service's role on
the writer thread; the engine reattaches the journal and continues the
shipped sequence as a writer.
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path

from ..errors import ReplicationError, ServerError
from ..server.server import ServerHandle, serve_in_thread
from ..server.service import ProvenanceService, ServerConfig
from ..wal.engine import JournaledEngine
from .follower import FollowerCore
from .hub import DEFAULT_BUFFER_RECORDS, ReplicationHub, ReplicationListener

__all__ = [
    "DEFAULT_APPLY_BATCH",
    "FollowerNode",
    "PrimaryHandle",
    "choose_promotion_candidate",
    "serve_primary",
]

#: Most shipped records one ``replicate`` admission may carry.  Bulk
#: catch-up (a reconnect after a long outage) can hand the pump tens of
#: thousands of records at once; splitting them bounds any single
#: writer-cycle — the worst-case wait for a reader's snapshot capture —
#: without adding version churn in steady state (the cap sits well above
#: the pump's coalescing threshold, so a normal coalesced batch is one
#: admission and one version bump).
DEFAULT_APPLY_BATCH = 2048


class PrimaryHandle:
    """A serving primary plus its shipping endpoint."""

    def __init__(self, server: ServerHandle, hub: ReplicationHub, listener: ReplicationListener):
        self.server = server
        self.hub = hub
        self.listener = listener

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    @property
    def replication_address(self) -> tuple[str, int]:
        return self.listener.address

    @property
    def service(self) -> ProvenanceService:
        return self.server.service

    def stop(self, checkpoint: bool = True) -> None:
        """Stop shipping first, then the server (its final checkpoint
        would otherwise race followers into a needless resync)."""
        self.listener.stop()
        self.server.stop(checkpoint=checkpoint)

    def __enter__(self) -> "PrimaryHandle":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


def serve_primary(
    database=None,
    config: ServerConfig | None = None,
    replication_host: str = "127.0.0.1",
    replication_port: int = 0,
    buffer_records: int = DEFAULT_BUFFER_RECORDS,
    start_timeout: float = 30.0,
) -> PrimaryHandle:
    """Start a journaled primary with a replication shipping endpoint."""
    config = config or ServerConfig(backend="journaled")
    if config.backend != "journaled":
        raise ServerError(
            f"replication requires backend 'journaled', not {config.backend!r} "
            "(the journal is the wire format)"
        )
    server = serve_in_thread(database, config, start_timeout=start_timeout)
    engine = server.service.engine
    if not isinstance(engine, JournaledEngine):  # pragma: no cover - config gate
        server.stop()
        raise ServerError("primary engine is not journaled")
    hub = ReplicationHub(engine.journal, buffer_records=buffer_records)
    listener = ReplicationListener(
        hub,
        engine.checkpoints.checkpoint_path,
        host=replication_host,
        port=replication_port,
    )
    return PrimaryHandle(server, hub, listener)


class FollowerNode:
    """One follower process: bootstrap, serve reads, pump the stream."""

    def __init__(
        self,
        directory: str | Path,
        primary: tuple[str, int],
        config: ServerConfig | None = None,
        apply_batch: int = DEFAULT_APPLY_BATCH,
    ):
        self.apply_batch = max(1, int(apply_batch))
        self.directory = Path(directory)
        self.config = config or ServerConfig(backend="journaled")
        self.config.backend = "journaled"
        self.config.directory = str(self.directory)
        self.core = FollowerCore(
            self.directory,
            primary,
            sync=self.config.sync,
            checkpoint_every=self.config.checkpoint_every,
        )
        self._handle: ServerHandle | None = None
        self._receiver: threading.Thread | None = None
        #: fatal stream failure (divergence, sequence gap, fell behind).
        self.stream_error: str | None = None

    # -- lifecycle ------------------------------------------------------------

    def start(self, start_timeout: float = 30.0) -> "FollowerNode":
        engine = self.core.bootstrap()

        def factory() -> ProvenanceService:
            service = ProvenanceService(engine, self.config)
            service.role = "follower"
            service.applier = self.core.applier
            service._version = self.core.applier.applied_seq
            service.replication = self._replication_info
            service.promoter = self.promote
            return service

        self._handle = serve_in_thread(
            config=self.config, service_factory=factory, start_timeout=start_timeout
        )
        self._receiver = threading.Thread(
            target=self._receive_loop, name="repl-receiver", daemon=True
        )
        self._receiver.start()
        return self

    @property
    def service(self) -> ProvenanceService:
        return self._handle.service

    @property
    def address(self) -> tuple[str, int]:
        return self._handle.address

    @property
    def applied_seq(self) -> int:
        return self.core.applied_seq

    def _replication_info(self) -> dict:
        return {
            "applied_seq": self.core.applied_seq,
            "connects": self.core.connects,
            "frames_received": self.core.frames_received,
            "primary": f"{self.core.primary[0]}:{self.core.primary[1]}",
            "last_error": self.core.last_error,
            "stream_error": self.stream_error,
        }

    # -- the stream pump -------------------------------------------------------

    def _ship(self, shipments: list) -> None:
        # Hop onto the service's writer via a replicate admission and wait
        # for it — the receiver thread never outruns the writer, which is
        # the natural backpressure bounding memory under a fast primary.
        # Chunked to ``apply_batch`` records per admission so concurrent
        # reads never wait out one giant catch-up batch on the writer.
        for base in range(0, len(shipments), self.apply_batch):
            future = asyncio.run_coroutine_threadsafe(
                self.service.replicate(shipments[base : base + self.apply_batch]),
                self._handle._loop,
            )
            future.result()

    def _receive_loop(self) -> None:
        try:
            self.core.run(apply=self._ship)
        except ReplicationError as exc:
            self.stream_error = str(exc)
        except ServerError:
            pass  # service shut down under the stream; stop() is running

    # -- promotion -------------------------------------------------------------

    def promote(self) -> dict:
        """Stop the stream, join the receiver, flip the role.  Blocking —
        callable from the ``promote`` wire op's executor hop or directly."""
        self.core.stop()
        if self._receiver is not None:
            self._receiver.join(timeout=30)
            if self._receiver.is_alive():  # pragma: no cover - stuck pump
                raise ReplicationError("stream receiver did not stop in time")
        if self.stream_error is not None:
            raise ReplicationError(
                f"cannot promote a diverged follower: {self.stream_error}"
            )
        future = asyncio.run_coroutine_threadsafe(
            self.service.promote(), self._handle._loop
        )
        return future.result(timeout=30)

    def stop(self, checkpoint: bool = True) -> None:
        self.core.stop()
        if self._receiver is not None:
            self._receiver.join(timeout=30)
        if self._handle is not None:
            self._handle.stop(checkpoint=checkpoint)

    def __enter__(self) -> "FollowerNode":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


def choose_promotion_candidate(clients) -> tuple[object, int]:
    """The most-advanced follower among ``clients`` (ServerClient-like).

    Returns ``(client, applied_seq)``; promotion should pick this one so
    no shipped-and-applied transaction is lost.  Raises when none of the
    clients is a follower.
    """
    best, best_seq = None, -1
    for client in clients:
        try:
            info = client.stats()["server"]
        except ServerError:
            continue  # unreachable follower cannot be a candidate
        if info.get("role") != "follower":
            continue
        seq = int(info.get("version", -1))
        if seq > best_seq:
            best, best_seq = client, seq
    if best is None:
        raise ReplicationError("no reachable follower to promote")
    return best, best_seq
