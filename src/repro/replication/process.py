"""Subprocess topologies: real primary/follower processes for tests.

The fault sweep, the CI smoke test and the replication benchmark all
need *actual process isolation* — separate interpreters, separate intern
tables, real TCP between them — so these helpers spawn ``repro
replicate`` nodes as child processes and parse their startup lines for
the bound addresses.  Graceful stop is SIGTERM (the CLI installs
handlers that flush and checkpoint); :meth:`NodeProcess.kill` is the
crash used by promote-on-failure tests.
"""

from __future__ import annotations

import os
import re
import select
import signal
import subprocess
import sys
import time
from pathlib import Path

from ..errors import ReplicationError

__all__ = ["NodeProcess", "spawn_primary", "spawn_follower"]

_SRC_ROOT = str(Path(__file__).resolve().parents[2])

_PRIMARY_LINE = re.compile(
    r"primary serving on ([\w.\-]+):(\d+) shipping on ([\w.\-]+):(\d+)"
)
_FOLLOWER_LINE = re.compile(r"follower serving on ([\w.\-]+):(\d+) tracking")


def _env() -> dict:
    env = dict(os.environ)
    path = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = _SRC_ROOT + (os.pathsep + path if path else "")
    return env


class NodeProcess:
    """One spawned replication node (primary or follower)."""

    def __init__(self, process: subprocess.Popen, address: tuple[str, int],
                 replication_address: tuple[str, int] | None = None):
        self.process = process
        self.address = address
        #: the shipping endpoint (primaries only).
        self.replication_address = replication_address

    @property
    def pid(self) -> int:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.poll() is None

    def stop(self, timeout: float = 30.0) -> int:
        """Graceful shutdown: SIGTERM, wait (flushes and checkpoints)."""
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck node
                self.process.kill()
                self.process.wait(timeout=timeout)
        return self.process.returncode

    def kill(self) -> None:
        """The crash: SIGKILL, no flush, no checkpoint."""
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=30)

    def __enter__(self) -> "NodeProcess":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


def _spawn(argv: list[str], line_pattern: re.Pattern, timeout: float) -> tuple:
    process = subprocess.Popen(
        [sys.executable, "-c", "from repro.cli import main; raise SystemExit(main())",
         *argv],
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    seen: list[str] = []
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            break
        ready, _, _ = select.select([process.stdout], [], [], 0.2)
        if not ready:
            continue
        line = process.stdout.readline()
        if not line:
            break
        seen.append(line)
        match = line_pattern.search(line)
        if match:
            return process, match
    process.kill()
    raise ReplicationError(
        f"node did not report its address within {timeout}s; output:\n"
        + "".join(seen)
    )


def spawn_primary(
    directory: str | Path,
    schema: list[str] = (),
    policy: str = "normal_form_batch",
    host: str = "127.0.0.1",
    checkpoint_every: int = 1024,
    buffer_records: int = 4096,
    sync: str = "flush",
    admission_max: int = 256,
    timeout: float = 30.0,
) -> NodeProcess:
    """Spawn ``repro replicate primary`` on ephemeral ports."""
    argv = [
        "replicate", "primary", str(directory),
        "--host", host, "--port", "0",
        "--policy", policy,
        "--journal-sync", sync,
        "--checkpoint-every", str(checkpoint_every),
        "--buffer-records", str(buffer_records),
        "--admission-max", str(admission_max),
    ]
    for spec in schema:
        argv += ["--schema", spec]
    process, match = _spawn(argv, _PRIMARY_LINE, timeout)
    return NodeProcess(
        process,
        address=(match.group(1), int(match.group(2))),
        replication_address=(match.group(3), int(match.group(4))),
    )


def spawn_follower(
    directory: str | Path,
    primary: tuple[str, int],
    host: str = "127.0.0.1",
    checkpoint_every: int = 1024,
    sync: str = "flush",
    timeout: float = 30.0,
) -> NodeProcess:
    """Spawn ``repro replicate follower`` bootstrapping from ``primary``."""
    argv = [
        "replicate", "follower", str(directory),
        "--primary", f"{primary[0]}:{primary[1]}",
        "--host", host, "--port", "0",
        "--journal-sync", sync,
        "--checkpoint-every", str(checkpoint_every),
    ]
    process, match = _spawn(argv, _FOLLOWER_LINE, timeout)
    return NodeProcess(process, address=(match.group(1), int(match.group(2))))
