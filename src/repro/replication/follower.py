"""The follower's shipping loop: bootstrap, stream, reconnect, resume.

A follower is a journaled directory like any other — ``checkpoint.sqlite``
plus ``journal.log`` — whose records arrive over TCP instead of from a
local engine.  Bootstrap is therefore just :func:`recover` on that
directory, fetching the primary's checkpoint first if the directory is
empty.  After a disconnect the follower reconnects and syncs from its
**last durable sequence** (the applier appends before it applies, so
durable ≥ applied at every instant and they are equal between frames);
the primary re-ships anything in flight and the applier's duplicate skip
makes the overlap harmless.

A frame cut mid-transfer needs no special handling: only complete
newline-terminated lines leave the receive buffer, so a partial frame is
simply discarded with the dead connection and re-shipped whole on the
next sync.

Shipped frames are **coalesced** before applying: the pump accumulates
complete frames until ``coalesce_records`` pile up or the oldest waits
``coalesce_delay`` seconds, then applies them as one batch.  A follower
publishes one snapshot version per applied batch, so coalescing is the
read-scaling lever — between batches every read is served from the
cached published snapshot, while a primary under write load invalidates
its snapshot every writer cycle.  The cost is bounded extra staleness
(at most ``coalesce_delay`` plus one receive poll), which the client's
``max_lag`` bound already accounts for.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from pathlib import Path

from ..errors import ReplicationError, ServerError
from ..server.protocol import recv_frame, send_frame
from ..wal.checkpoint import CHECKPOINT_FILE, DEFAULT_EVERY_RECORDS, JOURNAL_FILE
from ..wal.journal import parse_line
from ..wal.recovery import recover
from .apply import ShipmentApplier

__all__ = ["FollowerCore", "fetch_checkpoint"]

_RECV_POLL = 0.25
_RECV_CHUNK = 1 << 16

#: Coalescing defaults: apply when this many frames piled up ...
DEFAULT_COALESCE_RECORDS = 512
#: ... or when the oldest pending frame has waited this long (seconds).
DEFAULT_COALESCE_DELAY = 0.05


def fetch_checkpoint(primary: tuple[str, int], directory: str | Path) -> Path:
    """Fetch the primary's newest checkpoint into ``directory``.

    Writes ``checkpoint.sqlite`` atomically and truncates ``journal.log``
    (the checkpoint supersedes whatever tail a previous life left), so a
    cut mid-transfer leaves the directory either untouched or fully
    bootstrapped — never half.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    with socket.create_connection(primary) as sock:
        send_frame(sock, {"op": "sync", "from_seq": -1})
        reply = recv_frame(sock)
        if not reply.get("ok") or reply.get("mode") != "checkpoint":
            raise ReplicationError(
                f"primary at {primary[0]}:{primary[1]} refused the "
                f"checkpoint fetch: {reply!r}"
            )
        size = int(reply["size"])
        chunks: list[bytes] = []
        remaining = size
        while remaining:
            chunk = sock.recv(min(remaining, _RECV_CHUNK))
            if not chunk:
                raise ReplicationError(
                    f"checkpoint transfer cut at {size - remaining} of {size} bytes"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
    target = directory / CHECKPOINT_FILE
    staging = directory / (CHECKPOINT_FILE + ".fetch")
    staging.write_bytes(b"".join(chunks))
    os.replace(staging, target)
    (directory / JOURNAL_FILE).write_bytes(b"")
    return target


class FollowerCore:
    """Bootstraps a follower directory and keeps it fed from the primary."""

    def __init__(
        self,
        directory: str | Path,
        primary: tuple[str, int],
        sync: str = "flush",
        checkpoint_every: int = DEFAULT_EVERY_RECORDS,
        backoff: float = 0.05,
        max_backoff: float = 1.0,
        coalesce_records: int = DEFAULT_COALESCE_RECORDS,
        coalesce_delay: float = DEFAULT_COALESCE_DELAY,
    ):
        self.directory = Path(directory)
        self.primary = (primary[0], int(primary[1]))
        self.sync = sync
        self.checkpoint_every = checkpoint_every
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.coalesce_records = max(1, int(coalesce_records))
        self.coalesce_delay = coalesce_delay
        self.stop_event = threading.Event()
        self.engine = None
        self.applier: ShipmentApplier | None = None
        #: monitoring counters.
        self.connects = 0
        self.frames_received = 0
        self.last_error: str | None = None

    # -- bootstrap ------------------------------------------------------------

    def bootstrap(self):
        """Recover the local directory, fetching a checkpoint if empty.

        Returns the follower engine, journal hook detached — the
        :class:`ShipmentApplier` owns durability from here on.
        """
        if not (self.directory / CHECKPOINT_FILE).exists():
            fetch_checkpoint(self.primary, self.directory)
        engine = recover(
            self.directory, sync=self.sync, checkpoint_every=self.checkpoint_every
        )
        journal = engine.journal
        engine.journal = None
        self.engine = engine
        self.applier = ShipmentApplier(engine, journal)
        return engine

    @property
    def applied_seq(self) -> int:
        return self.applier.applied_seq if self.applier is not None else -1

    # -- streaming ------------------------------------------------------------

    def run(self, apply=None) -> None:
        """Stream until stopped, reconnecting with backoff after cuts.

        ``apply`` receives ``[(record, line), ...]`` batches; it defaults
        to the local applier, and a follower node injects its service
        admission so applies serialize with reads.  Divergence and
        sequence gaps (:class:`ReplicationError`) are fatal and propagate.
        """
        if self.applier is None:
            raise ReplicationError("bootstrap() the follower before run()")
        if apply is None:
            apply = self.applier.apply_lines
        backoff = self.backoff
        while not self.stop_event.is_set():
            try:
                self._stream_once(apply)
                backoff = self.backoff  # a successful session resets it
            except (OSError, ServerError) as exc:
                self.last_error = f"{type(exc).__name__}: {exc}"
            if self.stop_event.wait(backoff):
                return
            backoff = min(backoff * 2, self.max_backoff)

    def _stream_once(self, apply) -> None:
        with socket.create_connection(self.primary) as sock:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self.connects += 1
            send_frame(sock, {"op": "sync", "from_seq": self.applier.applied_seq})
            reply = recv_frame(sock)
            if not reply.get("ok"):
                raise ReplicationError(f"primary refused sync: {reply!r}")
            if reply.get("mode") != "stream":
                # The primary checkpointed past our seq and out of its
                # shipping buffer.  A live engine cannot be swapped under
                # its readers; the operator restarts the follower, whose
                # empty-handed bootstrap then takes the checkpoint path.
                raise ReplicationError(
                    f"follower at seq {self.applier.applied_seq} fell behind "
                    "the primary's checkpoint; restart it to re-bootstrap"
                )
            self._pump(sock, apply)

    def _pump(self, sock: socket.socket, apply) -> None:
        sock.settimeout(_RECV_POLL)
        buffer = bytearray()
        pending: list[tuple[dict, bytes]] = []
        pending_since = 0.0

        def flush() -> None:
            nonlocal pending
            if pending:
                batch, pending = pending, []
                apply(batch)
                self.frames_received += len(batch)

        try:
            while not self.stop_event.is_set():
                try:
                    chunk = sock.recv(_RECV_CHUNK)
                except TimeoutError:
                    flush()  # stream gone quiet: publish what we hold
                    continue
                if not chunk:
                    return  # primary hung up cleanly
                buffer += chunk
                while True:
                    newline = buffer.find(b"\n")
                    if newline == -1:
                        break  # partial frame stays buffered, never applied
                    line = bytes(buffer[: newline + 1])
                    del buffer[: newline + 1]
                    record = parse_line(line[:-1])
                    if record is None:
                        raise ReplicationError(
                            "unreadable shipped frame (CRC or codec mismatch)"
                        )
                    if not pending:
                        pending_since = time.monotonic()
                    pending.append((record, line))
                if len(pending) >= self.coalesce_records or (
                    pending
                    and time.monotonic() - pending_since >= self.coalesce_delay
                ):
                    flush()
        finally:
            # Complete frames are applied even as the session ends — a cut
            # mid-accumulation must not discard them (they would only be
            # re-shipped and skipped as duplicates after reconnect anyway),
            # and promotion must not lose a received-but-unapplied tail.
            flush()

    def stop(self) -> None:
        self.stop_event.set()

    def close(self) -> None:
        self.stop()
        if self.applier is not None:
            self.applier.close()
