"""The read/write splitter: writes to the primary, reads to followers.

:class:`ReplicatedClient` holds one :class:`ServerClient` per node.
Writes go to the primary; every apply response carries the journal
``seq`` it reached, which becomes the client's staleness yardstick.
Reads go to the least-lagged follower whose version satisfies the
client's bound::

    read_at >= last_write_seq - max_lag

A follower's snapshot version *is* its applied journal sequence (see
:mod:`repro.replication.node`), so the bound is checked directly on the
response — no extra round-trip.  A read that comes back too stale falls
through to the next-freshest follower and ultimately to the primary, so
the bound is honored even mid-catch-up.  ``max_lag=0`` gives
read-your-writes; larger bounds trade freshness for read scaling (see
docs/OPERATIONS.md for choosing it).

Each satisfied read records a ``replica_lag`` sample — how many journal
records behind the primary the serving follower was — through the
``on_lag`` hook (the loadgen aggregates these into a histogram).
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..errors import ServerError
from ..server.client import ServerClient

__all__ = ["ReplicatedClient"]


class ReplicatedClient:
    """Routes writes to the primary and bounded-staleness reads to followers."""

    def __init__(
        self,
        primary: tuple[str, int],
        followers: Iterable[tuple[str, int]] = (),
        max_lag: int = 64,
        timeout: float = 60.0,
        connect_retry: float = 5.0,
        on_lag: Callable[[int], None] | None = None,
    ):
        if max_lag < 0:
            raise ServerError("max_lag must be >= 0")
        self.max_lag = max_lag
        self.on_lag = on_lag
        self._timeout = timeout
        self._connect_retry = connect_retry
        self.primary = ServerClient(
            primary[0], primary[1], timeout=timeout, connect_retry=connect_retry
        )
        self.followers = [
            ServerClient(host, port, timeout=timeout, connect_retry=connect_retry)
            for host, port in followers
        ]
        #: routing counters.
        self.follower_reads = 0
        self.primary_reads = 0
        self.stale_rejects = 0

    # -- writes (primary only) -------------------------------------------------

    def apply(self, item, batch: bool = False) -> int:
        return self.primary.apply(item, batch=batch)

    def apply_batch(self, item) -> int:
        return self.primary.apply_batch(item)

    def apply_pipelined(self, items, **kwargs) -> int:
        return self.primary.apply_pipelined(items, **kwargs)

    def checkpoint(self) -> int:
        return self.primary.checkpoint()

    @property
    def last_write_seq(self) -> int:
        """The journal seq the newest acknowledged write reached (0 = none)."""
        return self.primary.last_seq or 0

    # -- reads (least-lagged follower within the bound) --------------------------

    def _read(self, operation):
        """Run one read on the freshest follower satisfying the bound."""
        target = self.last_write_seq - self.max_lag
        # Freshest-known first: versions observed on earlier reads order
        # the candidates, so a lagging follower is tried last, not first.
        candidates = sorted(
            self.followers, key=lambda c: c.last_version or -1, reverse=True
        )
        for follower in candidates:
            try:
                result = operation(follower)
            except ServerError:
                continue  # unreachable or mid-restart; try the next one
            version = follower.last_version or 0
            if version >= target:
                self.follower_reads += 1
                if self.on_lag is not None:
                    self.on_lag(max(0, self.last_write_seq - version))
                return result
            self.stale_rejects += 1
        result = operation(self.primary)
        self.primary_reads += 1
        if self.on_lag is not None:
            self.on_lag(0)
        return result

    def state(self):
        return self._read(lambda client: client.state())

    def raw_state(self):
        return self._read(lambda client: client.raw_state())

    def provenance(self, relation: str):
        return self._read(lambda client: client.provenance(relation))

    def annotation_of(self, relation: str, row):
        return self._read(lambda client: client.annotation_of(relation, row))

    def specialize(self, env, default: bool = True):
        return self._read(lambda client: client.specialize(env, default=default))

    def subscribe(self, relation: str, pattern=None):
        """Subscribe on a follower within the bound (pushes ride its
        connection; later deltas keep flowing as the follower applies)."""
        return self._read(lambda client: client.subscribe(relation, pattern))

    # -- topology --------------------------------------------------------------

    def ping(self) -> dict:
        return self.primary.ping()

    def stats(self) -> dict:
        return self.primary.stats()

    def follower_versions(self) -> list[int]:
        """Last observed version (= applied seq) per follower."""
        return [client.last_version or 0 for client in self.followers]

    def repoint(self, primary: tuple[str, int]) -> None:
        """Route writes to a new primary (after promote-on-failure).

        A promoted follower still serving in ``self.followers`` keeps
        serving reads — a primary answers every read op too.
        """
        old = self.primary
        self.primary = ServerClient(
            primary[0],
            primary[1],
            timeout=self._timeout,
            connect_retry=self._connect_retry,
        )
        try:
            old.close()
        except Exception:  # noqa: BLE001 - the old primary is likely dead
            pass

    def close(self) -> None:
        for client in [self.primary, *self.followers]:
            client.close()

    def __enter__(self) -> "ReplicatedClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
