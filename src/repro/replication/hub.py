"""The primary's shipping side: journal fan-out and the TCP endpoint.

:class:`ReplicationHub` hangs off the live :class:`Journal`'s
replication hooks.  Every appended record lands in a bounded in-memory
buffer of ``(seq, line)`` pairs; a follower that keeps up is served
straight from that buffer, one that reconnects after a gap is served
from the journal file via :func:`tail_journal` (complete frames only —
the torn-tail distinction is exactly why that primitive exists), and one
that has fallen behind the newest checkpoint *and* out of the buffer
gets a checkpoint transfer instead.

The buffer deliberately survives checkpoint resets: records the
checkpoint covered are gone from the file but still perfectly shippable
from memory, so a live follower never needs a re-bootstrap just because
the primary checkpointed.  Size the buffer above ``checkpoint_every``
and streaming followers stay streaming (see docs/OPERATIONS.md).

Wire protocol (over :mod:`repro.server.protocol` frames for control,
raw journal bytes for data)::

    follower -> {"op": "sync", "from_seq": N}      # N = -1: no local state
    primary  -> {"ok": true, "mode": "stream", "from_seq": N}
                <raw journal lines, verbatim, forever>
             or {"ok": true, "mode": "checkpoint", "size": B, "seq": S}
                <B bytes of checkpoint.sqlite>
                # follower recovers locally, then sends a fresh sync on
                # the same connection.
"""

from __future__ import annotations

import socket
import threading
from collections import deque
from pathlib import Path

from ..errors import ReplicationError, ServerError
from ..server.protocol import recv_frame, send_frame
from ..wal.journal import tail_journal

__all__ = ["ReplicationHub", "ReplicationListener", "DEFAULT_BUFFER_RECORDS"]

#: Records retained in memory for streaming followers.  Deliberately
#: larger than the default checkpoint threshold (1024) so a checkpoint
#: reset never pushes a live follower into a checkpoint transfer.
DEFAULT_BUFFER_RECORDS = 4096

_POLL_SECONDS = 0.25


class ReplicationHub:
    """Fans the primary's journal appends out to shipping connections."""

    def __init__(self, journal, buffer_records: int = DEFAULT_BUFFER_RECORDS):
        self.journal = journal
        self.path = Path(journal.path)
        self._cond = threading.Condition()
        self._buffer: deque = deque()
        self._buffer_records = buffer_records
        #: sequence the newest checkpoint covers (file holds seq > this).
        self.base_seq = journal.last_seq - journal.records_since_reset
        self.last_seq = journal.last_seq
        self._closed = False
        journal.on_append = self._on_append
        journal.on_reset = self._on_reset

    # -- journal hooks (run on the appending thread; must not raise) ---------

    def _on_append(self, seq: int, line: bytes) -> None:
        with self._cond:
            self._buffer.append((seq, line))
            while len(self._buffer) > self._buffer_records:
                self._buffer.popleft()
            self.last_seq = seq
            self._cond.notify_all()

    def _on_reset(self, covered_seq: int) -> None:
        with self._cond:
            self.base_seq = covered_seq
            self._cond.notify_all()

    # -- serving --------------------------------------------------------------

    def records_after(self, last_seq: int, timeout: float | None = None):
        """Complete frames with ``seq > last_seq``, as ``(seq, line)`` pairs.

        Blocks up to ``timeout`` for new records (empty list on timeout).
        Raises :class:`ReplicationError` if ``last_seq`` predates both the
        buffer and the journal file — the caller needs a checkpoint.
        """
        with self._cond:
            while True:
                if self._closed:
                    raise ReplicationError("replication hub closed")
                if self.last_seq > last_seq:
                    if self._buffer and self._buffer[0][0] <= last_seq + 1:
                        return [
                            (seq, line)
                            for seq, line in self._buffer
                            if seq > last_seq
                        ]
                    if last_seq < self.base_seq:
                        raise ReplicationError(
                            f"follower at seq {last_seq} fell behind the "
                            f"newest checkpoint (seq {self.base_seq}); "
                            "checkpoint transfer required"
                        )
                    # Catch-up from the file: frames with a visible
                    # newline are durable and complete by construction.
                    tail = tail_journal(self.path, 0)
                    if tail.truncated:  # racing reset; loop re-evaluates
                        continue
                    shipments = [
                        (record["seq"], line)
                        for record, line in zip(tail.records, tail.lines)
                        if record["seq"] > last_seq
                    ]
                    if shipments:
                        return shipments
                if not self._cond.wait(timeout):
                    return []

    def needs_checkpoint(self, from_seq: int) -> bool:
        with self._cond:
            if from_seq >= self.base_seq:
                return False
            return not (self._buffer and self._buffer[0][0] <= from_seq + 1)

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self.journal.on_append == self._on_append:
            self.journal.on_append = None
        if self.journal.on_reset == self._on_reset:
            self.journal.on_reset = None


class ReplicationListener:
    """The primary's TCP shipping endpoint (one feeder thread per follower)."""

    def __init__(
        self,
        hub: ReplicationHub,
        checkpoint_path: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.hub = hub
        self.checkpoint_path = Path(checkpoint_path)
        self._sock = socket.create_server((host, port))
        self.host, self.port = self._sock.getsockname()[:2]
        self._stopping = threading.Event()
        self._conns: set = set()
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repl-accept", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            with self._lock:
                if self._stopping.is_set():
                    conn.close()
                    return
                self._conns.add(conn)
                thread = threading.Thread(
                    target=self._feed, args=(conn,), name="repl-feed", daemon=True
                )
                self._threads.append(thread)
            thread.start()

    def _feed(self, conn: socket.socket) -> None:
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while not self._stopping.is_set():
                request = recv_frame(conn)
                if request.get("op") != "sync":
                    return
                from_seq = int(request.get("from_seq", -1))
                if from_seq < 0 or self.hub.needs_checkpoint(from_seq):
                    if not self._send_checkpoint(conn):
                        return
                    continue  # follower recovers, then re-syncs
                send_frame(
                    conn, {"ok": True, "mode": "stream", "from_seq": from_seq}
                )
                self._stream(conn, from_seq)
                return
        except (OSError, ServerError, ReplicationError):
            pass  # follower went away or fell behind; it will reconnect
        finally:
            with self._lock:
                self._conns.discard(conn)
            conn.close()

    def _send_checkpoint(self, conn: socket.socket) -> bool:
        # os.replace keeps the file atomically consistent; its journal_seq
        # metadata tells the follower exactly where it stands afterwards.
        try:
            payload = self.checkpoint_path.read_bytes()
        except FileNotFoundError:
            send_frame(conn, {"ok": False, "error": "primary has no checkpoint"})
            return False
        send_frame(conn, {"ok": True, "mode": "checkpoint", "size": len(payload)})
        conn.sendall(payload)
        return True

    def _stream(self, conn: socket.socket, from_seq: int) -> None:
        last = from_seq
        while not self._stopping.is_set():
            shipments = self.hub.records_after(last, timeout=_POLL_SECONDS)
            if not shipments:
                continue
            conn.sendall(b"".join(line for _seq, line in shipments))
            last = shipments[-1][0]

    def stop(self) -> None:
        self._stopping.set()
        try:
            self._sock.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        self.hub.close()
        self._accept_thread.join(timeout=5)
        for thread in self._threads:
            thread.join(timeout=5)
