"""Read-scaling replication: journal shipping to snapshot-isolated followers.

A single writer (the *primary*) streams its CRC-framed journal verbatim
over TCP to N *follower* processes.  Each follower bootstraps via a
checkpoint fetch plus :func:`repro.wal.recovery.recover`, then applies
shipped frames through the same replay vocabulary recovery uses — so a
follower at journal sequence *s* is bit-identical to the primary at *s*:
same rows, same liveness, the same interned annotation objects.

Layers, bottom up:

:mod:`~repro.replication.apply`
    :class:`ShipmentApplier` — durable-append-then-apply of shipped
    frames onto a follower engine, with exactly-once sequencing.
:mod:`~repro.replication.hub`
    :class:`ReplicationHub` (journal append fan-out) and
    :class:`ReplicationListener` (the primary's shipping endpoint).
:mod:`~repro.replication.follower`
    :class:`FollowerCore` — bootstrap, connect, resume-from-durable-seq,
    reconnect with backoff.
:mod:`~repro.replication.node`
    Process-level wiring: :func:`serve_primary`, :class:`FollowerNode`
    (a follower serving the read surface), promotion.
:mod:`~repro.replication.client`
    :class:`ReplicatedClient` — the read/write splitter (writes to the
    primary, reads to the least-lagged follower within ``max_lag``).
:mod:`~repro.replication.process`
    Subprocess helpers that spawn ``repro replicate`` topologies for
    tests and benchmarks.
"""

from .apply import ShipmentApplier
from .client import ReplicatedClient
from .follower import FollowerCore, fetch_checkpoint
from .hub import ReplicationHub, ReplicationListener
from .node import FollowerNode, choose_promotion_candidate, serve_primary

__all__ = [
    "FollowerCore",
    "FollowerNode",
    "ReplicatedClient",
    "ReplicationHub",
    "ReplicationListener",
    "ShipmentApplier",
    "choose_promotion_candidate",
    "fetch_checkpoint",
    "serve_primary",
]
