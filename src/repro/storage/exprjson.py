"""JSON serialization of UP[X] expressions.

Two encodings:

* :func:`expr_to_json` / :func:`expr_from_json` — a *DAG* encoding: a node
  table in topological order plus a root index.  Sharing is preserved, so
  even the naive construction's exponential-expansion expressions
  round-trip in space proportional to their DAG size.
* :func:`expr_to_nested` / :func:`expr_from_nested` — a human-readable
  nested encoding (lists), convenient for small expressions and fixtures;
  sharing is lost.

Both decoders rebuild through the smart constructors, so zero axioms are
re-applied; on expressions produced by this library that is the identity.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

from ..core.expr import (
    Expr,
    MINUS,
    PLUS_I,
    PLUS_M,
    SUM,
    TIMES_M,
    VAR,
    ZERO,
    ZERO_KIND,
    minus,
    plus_i,
    plus_m,
    postorder,
    ssum,
    times_m,
    var,
)
from ..errors import StorageError

__all__ = [
    "expr_to_dict",
    "expr_from_dict",
    "expr_to_json",
    "expr_from_json",
    "expr_to_nested",
    "expr_from_nested",
    "exprs_to_arena",
    "exprs_from_arena",
]

_BUILDERS = {
    PLUS_I: plus_i,
    MINUS: minus,
    PLUS_M: plus_m,
    TIMES_M: times_m,
}


def expr_to_dict(expr: Expr) -> dict[str, object]:
    """The DAG encoding as a JSON-ready dict."""
    index: dict[int, int] = {}
    nodes: list[object] = []
    for node in postorder(expr):
        if node.kind == VAR:
            encoded: object = ["var", node.name]
        elif node.kind == ZERO_KIND:
            encoded = ["zero"]
        else:
            encoded = [node.kind, *(index[id(c)] for c in node.children)]
        index[id(node)] = len(nodes)
        nodes.append(encoded)
    return {"nodes": nodes, "root": index[id(expr)]}


def expr_from_dict(data: Mapping[str, object]) -> Expr:
    """Inverse of :func:`expr_to_dict` (rebuilds through smart constructors)."""
    try:
        nodes: Sequence[Sequence[object]] = data["nodes"]  # type: ignore[assignment]
        root = int(data["root"])  # type: ignore[arg-type]
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(f"malformed expression payload: {exc}") from exc
    built: list[Expr] = []
    for position, encoded in enumerate(nodes):
        if not encoded:
            raise StorageError(f"empty node record at index {position}")
        kind = encoded[0]
        if kind == "var":
            built.append(var(str(encoded[1])))
        elif kind == "zero":
            built.append(ZERO)
        else:
            try:
                children = [built[int(i)] for i in encoded[1:]]
            except (IndexError, ValueError) as exc:
                raise StorageError(
                    f"node {position} references an undefined child: {encoded!r}"
                ) from exc
            if kind == SUM:
                built.append(ssum(children))
            elif kind in _BUILDERS:
                if len(children) != 2:
                    raise StorageError(f"{kind} node needs 2 children, got {len(children)}")
                built.append(_BUILDERS[kind](*children))
            else:
                raise StorageError(f"unknown node kind {kind!r}")
    if not 0 <= root < len(built):
        raise StorageError(f"root index {root} out of range")
    return built[root]


def exprs_to_arena(exprs: Sequence[Expr | None]) -> tuple[dict, list[int | None]]:
    """Encode many expressions into one shared arena.

    Returns ``(arena payload, root ids)``: the third wire encoding — one
    flat node table for a whole batch of expressions, so structure shared
    *across* expressions (bases, transaction variables) is shipped once
    instead of once per row.  ``None`` entries pass through as ``None``.
    """
    from ..core.arena import ExprArena  # local: storage stays importable alone

    arena = ExprArena()
    roots = [None if expr is None else arena.add_expr(expr) for expr in exprs]
    return arena.to_payload(), roots


def exprs_from_arena(payload: Mapping, roots: Sequence[int | None]) -> list[Expr | None]:
    """Inverse of :func:`exprs_to_arena`; re-interns every node."""
    from ..core.arena import ArenaError, ExprArena

    try:
        arena = ExprArena.from_payload(dict(payload))
        return [None if r is None else arena.get_expr(int(r)) for r in roots]
    except (ArenaError, TypeError, ValueError) as exc:
        raise StorageError(f"malformed arena payload: {exc}") from exc


def expr_to_json(expr: Expr, indent: int | None = None) -> str:
    return json.dumps(expr_to_dict(expr), indent=indent)


def expr_from_json(text: str) -> Expr:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise StorageError(f"invalid expression JSON: {exc}") from exc
    return expr_from_dict(payload)


# ---------------------------------------------------------------------------
# Nested encoding
# ---------------------------------------------------------------------------


def expr_to_nested(expr: Expr) -> object:
    """Readable nested lists: ``["+M", ["var", "p1"], ...]``; sharing lost."""
    memo: dict[int, object] = {}
    for node in postorder(expr):
        if node.kind == VAR:
            memo[id(node)] = ["var", node.name]
        elif node.kind == ZERO_KIND:
            memo[id(node)] = ["zero"]
        else:
            memo[id(node)] = [node.kind, *(memo[id(c)] for c in node.children)]
    return memo[id(expr)]


def expr_from_nested(data: object) -> Expr:
    """Inverse of :func:`expr_to_nested` (iterative, deep-chain safe)."""
    if not isinstance(data, (list, tuple)) or not data:
        raise StorageError(f"malformed nested expression: {data!r}")
    # Iterative post-order over the nested lists.
    results: dict[int, Expr] = {}
    stack: list[tuple[object, bool]] = [(data, False)]
    while stack:
        node, expanded = stack.pop()
        if not isinstance(node, (list, tuple)) or not node:
            raise StorageError(f"malformed nested expression node: {node!r}")
        kind = node[0]
        if kind == "var":
            results[id(node)] = var(str(node[1]))
            continue
        if kind == "zero":
            results[id(node)] = ZERO
            continue
        if expanded:
            children = [results[id(c)] for c in node[1:]]
            if kind == SUM:
                results[id(node)] = ssum(children)
            elif kind in _BUILDERS and len(children) == 2:
                results[id(node)] = _BUILDERS[kind](*children)
            else:
                raise StorageError(f"unknown or malformed node {node[:1]!r}")
        else:
            stack.append((node, True))
            for child in node[1:]:
                stack.append((child, False))
    return results[id(data)]
