"""Serialization and persistence: expression JSON, sqlite snapshots, CSV."""

from .csvio import dump_csv, load_csv
from .exprjson import (
    expr_from_dict,
    expr_from_json,
    expr_from_nested,
    expr_to_dict,
    expr_to_json,
    expr_to_nested,
)
from .snapshot import (
    AnnotatedSnapshot,
    load_snapshot,
    restore_executor,
    save_snapshot,
    store_from_snapshot,
)

__all__ = [
    "AnnotatedSnapshot",
    "dump_csv",
    "expr_from_dict",
    "expr_from_json",
    "expr_from_nested",
    "expr_to_dict",
    "expr_to_json",
    "expr_to_nested",
    "load_csv",
    "load_snapshot",
    "restore_executor",
    "save_snapshot",
    "store_from_snapshot",
]
