"""CSV loading and dumping for plain databases.

Minimal, dependency-free I/O so examples and users can feed real tables
into the engine.  Values are strings by default; ``types`` converts
columns on load (e.g. ``{"price": int}``).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable, Mapping, Sequence

from ..db.database import Database
from ..db.schema import Relation, Schema
from ..errors import StorageError

__all__ = ["load_csv", "dump_csv"]


def load_csv(
    path: str | Path,
    relation: str,
    types: Mapping[str, Callable[[str], object]] | None = None,
    database: Database | None = None,
) -> Database:
    """Load a headered CSV file as one relation.

    The header row names the attributes.  With ``database`` given, the
    relation is added to it (the schema must not already contain it);
    otherwise a fresh single-relation database is returned.
    """
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no CSV file at {path}")
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise StorageError(f"{path} is empty (a header row is required)") from None
        converters: list[Callable[[str], object] | None] = [
            (types or {}).get(column) for column in header
        ]
        rows: list[tuple[object, ...]] = []
        for lineno, record in enumerate(reader, start=2):
            if len(record) != len(header):
                raise StorageError(
                    f"{path}:{lineno}: expected {len(header)} fields, got {len(record)}"
                )
            try:
                rows.append(
                    tuple(
                        convert(value) if convert else value
                        for convert, value in zip(converters, record)
                    )
                )
            except (TypeError, ValueError) as exc:
                raise StorageError(f"{path}:{lineno}: {exc}") from exc
    db = database or Database()
    db.add_relation(Relation(relation, header))
    db.extend(relation, rows)
    return db


def dump_csv(database: Database, relation: str, path: str | Path) -> None:
    """Write one relation (header + sorted rows) to a CSV file."""
    rel = database.schema.relation(relation)
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(rel.attributes)
        for row in sorted(database.rows(relation), key=repr):
            writer.writerow(row)
