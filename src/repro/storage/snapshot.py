"""Annotated-database snapshots and their sqlite3 persistence.

An :class:`AnnotatedSnapshot` is the provenance-bearing state of an engine
at a point in time: per relation, every stored row with its UP[X]
expression and its set-semantics liveness.  Snapshots detach provenance
from the engine that produced it — they can be saved to a sqlite3 file,
re-loaded later (or elsewhere), specialized, minimized and queried without
replaying the log.

Sqlite layout (one file per snapshot)::

    meta(key TEXT PRIMARY KEY, value TEXT)
    relations(name TEXT PRIMARY KEY, attributes TEXT)       -- JSON list
    rows(relation TEXT, row TEXT, live INTEGER, expr TEXT)  -- JSON row/DAG

Expression DAGs are serialized per row; sharing across rows is therefore
not preserved on disk (the common case — normal-form snapshots — has
little cross-row sharing to lose, and the format stays row-independent).
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path
from typing import Callable, Iterator, Mapping

from ..core.expr import Expr, evaluate
from ..core.minimize import minimize
from ..db.database import Database
from ..db.schema import Relation, Schema
from ..errors import StorageError
from ..store.annotation_store import AnnotationStore
from .exprjson import expr_from_dict, expr_to_dict

__all__ = [
    "AnnotatedSnapshot",
    "restore_executor",
    "save_snapshot",
    "load_snapshot",
    "store_from_snapshot",
]


class AnnotatedSnapshot:
    """Per-relation ``{row: (expression, live)}`` plus the schema."""

    def __init__(self, schema: Schema, meta: Mapping[str, object] | None = None):
        self.schema = schema
        self.meta: dict[str, object] = dict(meta or {})
        self._rows: dict[str, dict[tuple, tuple[Expr, bool]]] = {
            relation.name: {} for relation in schema
        }

    @classmethod
    def from_engine(cls, engine, meta: Mapping[str, object] | None = None) -> "AnnotatedSnapshot":
        """Capture the current annotated state of a provenance engine."""
        snapshot = cls(engine.executor.schema, meta)
        for name in engine.executor.schema.names:
            bucket = snapshot._rows[name]
            for row, expr, live in engine.provenance(name):
                if not isinstance(expr, Expr):
                    raise StorageError(
                        f"policy {engine.policy!r} stores {type(expr).__name__} "
                        "annotations; snapshots hold UP[X] expressions"
                    )
                bucket[row] = (expr, live)
        return snapshot

    @classmethod
    def from_store(
        cls, store: AnnotationStore, meta: Mapping[str, object] | None = None
    ) -> "AnnotatedSnapshot":
        """Capture an :class:`AnnotationStore` whose slots hold expressions."""
        snapshot = cls(store.schema, meta)
        for name, _relation_store in store.relations():
            bucket = snapshot._rows[name]
            for row, ann, live in store.items(name):
                if not isinstance(ann, Expr):
                    raise StorageError(
                        f"store slot holds {type(ann).__name__}; snapshots hold "
                        "UP[X] expressions"
                    )
                bucket[row] = (ann, live)
        return snapshot

    # -- content access ---------------------------------------------------------

    def set(self, relation: str, row: tuple, expr: Expr, live: bool) -> None:
        checked = self.schema.relation(relation).check_row(row)
        self._rows[relation][checked] = (expr, live)

    def annotation(self, relation: str, row: tuple) -> Expr | None:
        entry = self._rows.get(relation, {}).get(tuple(row))
        return entry[0] if entry else None

    def items(self, relation: str) -> Iterator[tuple[tuple, Expr, bool]]:
        for row, (expr, live) in self._rows[relation].items():
            yield row, expr, live

    def live_database(self) -> Database:
        db = Database(self.schema)
        for name, rows in self._rows.items():
            db.extend(name, (row for row, (_expr, live) in rows.items() if live))
        return db

    def row_count(self) -> int:
        return sum(len(rows) for rows in self._rows.values())

    def provenance_size(self) -> int:
        return sum(
            expr.size() for rows in self._rows.values() for (expr, _live) in rows.values()
        )

    # -- transformations -----------------------------------------------------------

    def minimized(self) -> "AnnotatedSnapshot":
        """A copy with every annotation put through Proposition 5.5."""
        out = AnnotatedSnapshot(self.schema, self.meta)
        for name, rows in self._rows.items():
            out._rows[name] = {
                row: (minimize(expr), live) for row, (expr, live) in rows.items()
            }
        return out

    def specialize(
        self,
        structure,
        env: Mapping[str, object] | Callable[[str], object],
    ) -> dict[str, dict[tuple, object]]:
        """Evaluate every annotation in a concrete Update-Structure."""
        return {
            name: {row: evaluate(expr, structure, env) for row, (expr, _live) in rows.items()}
            for name, rows in self._rows.items()
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AnnotatedSnapshot):
            return NotImplemented
        return (
            {r.name: r.attributes for r in self.schema}
            == {r.name: r.attributes for r in other.schema}
            and self._rows == other._rows
        )

    def __repr__(self) -> str:
        return f"AnnotatedSnapshot({self.row_count()} rows, size={self.provenance_size()})"


# ---------------------------------------------------------------------------
# Store round-trip
# ---------------------------------------------------------------------------


def store_from_snapshot(
    snapshot: AnnotatedSnapshot, use_indexes: bool = True
) -> AnnotationStore:
    """Rebuild an :class:`AnnotationStore` from a snapshot.

    Only row values, liveness bits and expression annotations are
    persisted; row ids and the per-column indexes are storage artifacts
    and are rebuilt here, one :meth:`RelationStore.add` per stored row.
    """
    store = AnnotationStore(snapshot.schema, use_indexes=use_indexes)
    for name in snapshot.schema.names:
        relation_store = store.relation(name)
        for row, expr, live in snapshot.items(name):
            relation_store.add(row, expr, live)
    return store


def restore_executor(snapshot: AnnotatedSnapshot, policy: str = "naive"):
    """An executor resuming from a snapshot's annotated state.

    Only policies whose annotation slots hold plain UP[X] expressions can
    resume — ``naive`` and ``normal_form_batch`` (the incremental
    ``normal_form`` policy keeps Theorem 5.3 state machines that a
    detached expression does not determine).  Initial-tuple variable names
    are not part of a snapshot, so :meth:`Executor.tuple_var` lookups on
    the restored executor return ``None``.
    """
    from ..engine.engine import make_executor
    from ..engine.executors import NaiveExecutor

    executor = make_executor(Database(snapshot.schema), policy)
    if not isinstance(executor, NaiveExecutor):  # includes normal_form_batch
        raise StorageError(
            f"policy {policy!r} cannot resume from an expression snapshot; "
            "use 'naive' or 'normal_form_batch'"
        )
    executor.store = store_from_snapshot(snapshot)
    return executor


# ---------------------------------------------------------------------------
# Sqlite persistence
# ---------------------------------------------------------------------------

_SCHEMA_SQL = """
CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE relations (name TEXT PRIMARY KEY, attributes TEXT NOT NULL);
CREATE TABLE rows (
    relation TEXT NOT NULL REFERENCES relations(name),
    row TEXT NOT NULL,
    live INTEGER NOT NULL,
    expr TEXT NOT NULL,
    PRIMARY KEY (relation, row)
);
"""


def save_snapshot(snapshot: AnnotatedSnapshot, path: str | Path, fsync: bool = False) -> None:
    """Write a snapshot to a sqlite3 file (replacing any existing file).

    The write is *atomic*: the snapshot is fully built in a sibling temp
    file and moved onto ``path`` with :func:`os.replace`, so a crash
    mid-save leaves any previous snapshot at ``path`` untouched — either
    the old file or the complete new one exists, never a torn mix.  With
    ``fsync`` the temp file and the containing directory are synced
    around the rename, making the replacement survive power loss, not
    just process crashes (the WAL checkpoint manager passes it through
    from the journal's sync policy).
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    conn = sqlite3.connect(tmp)
    try:
        try:
            conn.executescript(_SCHEMA_SQL)
            conn.executemany(
                "INSERT INTO meta VALUES (?, ?)",
                ((key, json.dumps(value)) for key, value in snapshot.meta.items()),
            )
            conn.executemany(
                "INSERT INTO relations VALUES (?, ?)",
                ((r.name, json.dumps(list(r.attributes))) for r in snapshot.schema),
            )
            conn.executemany(
                "INSERT INTO rows VALUES (?, ?, ?, ?)",
                (
                    (name, json.dumps(list(row)), int(live), json.dumps(expr_to_dict(expr)))
                    for name in snapshot.schema.names
                    for row, expr, live in snapshot.items(name)
                ),
            )
            conn.commit()
        except (TypeError, ValueError) as exc:
            raise StorageError(f"snapshot not JSON-serializable: {exc}") from exc
        finally:
            conn.close()
        if fsync:
            with open(tmp, "rb") as handle:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if fsync:
            _fsync_directory(path.parent)
    finally:
        if tmp.exists():
            tmp.unlink()


def _fsync_directory(directory: Path) -> None:
    """Persist a rename by syncing the directory entry (POSIX best effort)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def load_snapshot(path: str | Path) -> AnnotatedSnapshot:
    """Read a snapshot back from a sqlite3 file."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no snapshot at {path}")
    conn = sqlite3.connect(path)
    try:
        try:
            relations = [
                Relation(name, json.loads(attrs))
                for name, attrs in conn.execute("SELECT name, attributes FROM relations")
            ]
            meta = {
                key: json.loads(value) for key, value in conn.execute("SELECT key, value FROM meta")
            }
            snapshot = AnnotatedSnapshot(Schema(relations), meta)
            for name, row_json, live, expr_json in conn.execute(
                "SELECT relation, row, live, expr FROM rows"
            ):
                snapshot.set(
                    name,
                    tuple(json.loads(row_json)),
                    expr_from_dict(json.loads(expr_json)),
                    bool(live),
                )
        except (sqlite3.DatabaseError, json.JSONDecodeError, KeyError) as exc:
            raise StorageError(f"corrupt snapshot {path}: {exc}") from exc
        return snapshot
    finally:
        conn.close()
