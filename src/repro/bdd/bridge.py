"""Evaluating UP[X] expressions to BDDs under the Boolean structure.

The Boolean Update-Structure (Section 4.1) interprets ``+I``/``+M``/``+``
as disjunction, ``*M`` as conjunction and ``a - b`` as ``a and not b``.
Mapping each basic annotation to a BDD variable turns a provenance
expression into a canonical Boolean function: equality of BDD nodes is
exact Boolean equivalence, the ground truth behind Proposition 3.5 tests
and behind symbolic deletion-propagation (restricting variables instead of
re-running transactions).
"""

from __future__ import annotations

from repro.core.expr import Expr, MINUS, PLUS_I, PLUS_M, SUM, TIMES_M, VAR, ZERO_KIND, postorder

from .bdd import Bdd

__all__ = ["expr_to_bdd"]


def expr_to_bdd(expr: Expr, bdd: Bdd) -> int:
    """The BDD of ``expr`` under the Boolean Update-Structure."""
    memo: dict[int, int] = {}
    for node in postorder(expr):
        kind = node.kind
        if kind == VAR:
            memo[id(node)] = bdd.var(node.name)  # type: ignore[arg-type]
        elif kind == ZERO_KIND:
            memo[id(node)] = bdd.FALSE
        elif kind == SUM:
            memo[id(node)] = bdd.disjoin(memo[id(c)] for c in node.children)
        else:
            a = memo[id(node.children[0])]
            b = memo[id(node.children[1])]
            if kind in (PLUS_I, PLUS_M):
                memo[id(node)] = bdd.apply_or(a, b)
            elif kind == TIMES_M:
                memo[id(node)] = bdd.apply_and(a, b)
            elif kind == MINUS:
                memo[id(node)] = bdd.apply_diff(a, b)
            else:  # pragma: no cover - exhaustive kinds
                raise AssertionError(f"unknown node kind {kind}")
    return memo[id(expr)]
