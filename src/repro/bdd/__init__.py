"""Reduced ordered BDDs + the UP[X]-to-BDD bridge."""

from .bdd import Bdd
from .bridge import expr_to_bdd

__all__ = ["Bdd", "expr_to_bdd"]
