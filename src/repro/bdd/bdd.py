"""Reduced ordered binary decision diagrams (ROBDDs).

A small, self-contained BDD engine used as the exact decision procedure for
provenance equivalence under the Boolean Update-Structure (Section 4.1):
two UP[X] expressions are Boolean-equivalent iff they map to the same BDD
node.  Also powers deletion-propagation what-if counting in the examples.

Implementation notes:

* nodes are integers indexing parallel arrays ``(level, low, high)``;
  ``0``/``1`` are the terminals;
* a unique table guarantees canonicity (shared, reduced nodes), so
  equivalence is pointer equality;
* all operations are built on a memoized Shannon-expansion ``ite``;
* the variable order is the registration order (or the explicit list given
  to the constructor) — callers that compare expressions must use one
  :class:`Bdd` instance for both.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

__all__ = ["Bdd"]

_TERMINAL_LEVEL = 1 << 60


class Bdd:
    """A BDD manager: variable registry, unique table, operation caches."""

    FALSE = 0
    TRUE = 1

    def __init__(self, var_order: Iterable[str] | None = None):
        # Parallel node arrays; slots 0/1 are the terminals.
        self._level: list[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._low: list[int] = [0, 1]
        self._high: list[int] = [0, 1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._levels: dict[str, int] = {}
        self._names: list[str] = []
        for name in var_order or ():
            self.declare(name)

    # -- variables ----------------------------------------------------------

    def declare(self, name: str) -> None:
        """Register ``name`` at the next level (no-op if known)."""
        if name not in self._levels:
            self._levels[name] = len(self._names)
            self._names.append(name)

    def var(self, name: str) -> int:
        """The BDD of the variable ``name`` (registering it if needed)."""
        self.declare(name)
        return self._mk(self._levels[name], self.FALSE, self.TRUE)

    @property
    def var_names(self) -> tuple[str, ...]:
        return tuple(self._names)

    def __len__(self) -> int:
        """Number of allocated nodes (including terminals)."""
        return len(self._level)

    # -- node construction ---------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    # -- core operation -----------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h`` (iterative Shannon expansion)."""
        # Terminal shortcuts.
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        # Explicit stack (expressions can mention thousands of variables,
        # which would overflow Python's recursion limit).
        result = self._ite_iterative(f, g, h)
        return result

    def _ite_iterative(self, f: int, g: int, h: int) -> int:
        level = self._level
        low = self._low
        high = self._high
        cache = self._ite_cache
        results: dict[tuple[int, int, int], int] = {}

        def terminal(f: int, g: int, h: int) -> int | None:
            if f == 1:
                return g
            if f == 0:
                return h
            if g == h:
                return g
            if g == 1 and h == 0:
                return f
            return cache.get((f, g, h))

        stack: list[tuple[tuple[int, int, int], bool]] = [((f, g, h), False)]
        while stack:
            key, expanded = stack.pop()
            if key in results:
                continue
            cf, cg, ch = key
            t = terminal(cf, cg, ch)
            if t is not None:
                results[key] = t
                continue
            top = min(level[cf], level[cg], level[ch])
            f0, f1 = (low[cf], high[cf]) if level[cf] == top else (cf, cf)
            g0, g1 = (low[cg], high[cg]) if level[cg] == top else (cg, cg)
            h0, h1 = (low[ch], high[ch]) if level[ch] == top else (ch, ch)
            lo_key = (f0, g0, h0)
            hi_key = (f1, g1, h1)
            if expanded:
                node = self._mk(top, results[lo_key], results[hi_key])
                cache[key] = node
                results[key] = node
            else:
                stack.append((key, True))
                if hi_key not in results:
                    stack.append((hi_key, False))
                if lo_key not in results:
                    stack.append((lo_key, False))
        return results[(f, g, h)]

    # -- boolean operations ---------------------------------------------------

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, self.FALSE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, self.TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.negate(g), g)

    def negate(self, f: int) -> int:
        return self.ite(f, self.FALSE, self.TRUE)

    def apply_diff(self, f: int, g: int) -> int:
        """``f and not g`` — the minus of the Boolean Update-Structure."""
        return self.ite(f, self.negate(g), self.FALSE)

    def conjoin(self, nodes: Iterable[int]) -> int:
        acc = self.TRUE
        for n in nodes:
            acc = self.apply_and(acc, n)
        return acc

    def disjoin(self, nodes: Iterable[int]) -> int:
        acc = self.FALSE
        for n in nodes:
            acc = self.apply_or(acc, n)
        return acc

    # -- queries --------------------------------------------------------------

    def restrict(self, f: int, assignment: Mapping[str, bool]) -> int:
        """Cofactor ``f`` by fixing the given variables."""
        fixed = {self._levels[name]: value for name, value in assignment.items() if name in self._levels}
        memo: dict[int, int] = {}

        order: list[int] = []
        seen = set()
        stack = [f]
        while stack:
            n = stack.pop()
            if n in seen or n < 2:
                continue
            seen.add(n)
            order.append(n)
            stack.append(self._low[n])
            stack.append(self._high[n])
        for n in reversed(order):
            lo = memo.get(self._low[n], self._low[n])
            hi = memo.get(self._high[n], self._high[n])
            lvl = self._level[n]
            if lvl in fixed:
                memo[n] = hi if fixed[lvl] else lo
            else:
                memo[n] = self._mk(lvl, lo, hi)
        return memo.get(f, f)

    def evaluate(self, f: int, assignment: Mapping[str, bool]) -> bool:
        """Evaluate ``f`` under a total assignment."""
        node = f
        while node > 1:
            name = self._names[self._level[node]]
            node = self._high[node] if assignment[name] else self._low[node]
        return node == self.TRUE

    def sat_count(self, f: int, n_vars: int | None = None) -> int:
        """Number of satisfying assignments over ``n_vars`` variables."""
        if n_vars is None:
            n_vars = len(self._names)
        if f < 2:
            return (1 << n_vars) if f == self.TRUE else 0
        counts: dict[int, int] = {0: 0, 1: 1}
        order: list[int] = []
        seen = set()
        stack = [f]
        while stack:
            n = stack.pop()
            if n in seen or n < 2:
                continue
            seen.add(n)
            order.append(n)
            stack.append(self._low[n])
            stack.append(self._high[n])
        for n in reversed(order):
            lo, hi = self._low[n], self._high[n]
            lo_gap = (self._level[lo] if lo > 1 else len(self._names)) - self._level[n] - 1
            hi_gap = (self._level[hi] if hi > 1 else len(self._names)) - self._level[n] - 1
            counts[n] = counts[lo] * (1 << lo_gap) + counts[hi] * (1 << hi_gap)
        top_gap = self._level[f]
        return counts[f] * (1 << top_gap)

    def any_sat(self, f: int) -> dict[str, bool] | None:
        """One satisfying assignment (unmentioned variables set to False)."""
        if f == self.FALSE:
            return None
        out = {name: False for name in self._names}
        node = f
        while node > 1:
            name = self._names[self._level[node]]
            if self._high[node] != self.FALSE:
                out[name] = True
                node = self._high[node]
            else:
                out[name] = False
                node = self._low[node]
        return out

    def support(self, f: int) -> frozenset[str]:
        """Variables ``f`` actually depends on."""
        seen: set[int] = set()
        out: set[str] = set()
        stack = [f]
        while stack:
            n = stack.pop()
            if n < 2 or n in seen:
                continue
            seen.add(n)
            out.add(self._names[self._level[n]])
            stack.append(self._low[n])
            stack.append(self._high[n])
        return frozenset(out)

    def node_count(self, f: int) -> int:
        """Number of distinct nodes reachable from ``f`` (terminals included)."""
        seen: set[int] = set()
        stack = [f]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            if n > 1:
                stack.append(self._low[n])
                stack.append(self._high[n])
        return len(seen)

    def iter_models(self, f: int) -> Iterator[dict[str, bool]]:
        """All satisfying assignments over the full declared variable set."""
        n_names = len(self._names)

        def expand(node: int, level: int, partial: dict[str, bool]) -> Iterator[dict[str, bool]]:
            if level == n_names:
                if node == self.TRUE:
                    yield dict(partial)
                return
            name = self._names[level]
            if node > 1 and self._level[node] == level:
                branches = ((False, self._low[node]), (True, self._high[node]))
            else:
                branches = ((False, node), (True, node))
            for value, child in branches:
                if child == self.FALSE:
                    continue
                partial[name] = value
                yield from expand(child, level + 1, partial)
                del partial[name]

        yield from expand(f, 0, {})
