"""Standing views: pattern-scoped slices of the support, delta-maintained.

A :class:`StandingView` is a registered ``(relation, pattern)`` pair with
a materialized answer set — ``{row: (expr, live)}`` — kept current by
applying version-stamped :class:`~repro.views.deltas.DeltaBatch` streams
instead of re-reading the relation.  The pattern is compiled through the
same :func:`~repro.store.planner.compile_plan` path the store's
``matching`` uses, so seeding a view from a live store is index-assisted
and O(matched rows), not O(relation).

The :class:`ViewRegistry` owns the set of standing views for one service
and fans each drained batch out to the views it touches, reporting per
view exactly the deltas that matched — the payload the server pushes to
that view's subscribers.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import EngineError
from ..queries.pattern import Pattern
from ..store.planner import compile_plan
from .deltas import DeltaBatch, RowDelta, apply_delta

__all__ = ["StandingView", "ViewRegistry"]


class StandingView:
    """One registered standing pattern with its maintained answer set.

    ``version`` is the snapshot version the answer set reflects: the seed
    version at registration, then the stamp of the last applied batch.
    Batches must be applied in version order (the registry guarantees
    this — there is one drain stream per service).
    """

    __slots__ = ("view_id", "relation", "pattern", "plan", "rows", "version")

    def __init__(self, view_id: int, relation: str, pattern: Pattern):
        self.view_id = view_id
        self.relation = relation
        self.pattern = pattern
        self.plan = compile_plan(pattern)
        self.rows: dict[tuple, tuple] = {}
        self.version = -1

    # -- seeding ----------------------------------------------------------

    def seed_from_store(self, relation_store, expr_of, version: int) -> None:
        """Seed from a live relation store via the pattern planner.

        ``expr_of`` maps a stored non-``None`` annotation to its ``Expr``
        (the owning executor's ``_expr_of``), so seeded expressions are
        the same interned objects later deltas carry; annotation-free
        slots (the vanilla policy) seed as ``None``, matching the capture
        and delta forms.
        """
        rows = relation_store.rows
        self.rows = {
            row: (
                None if (ann := rows.annotation(rid)) is None else expr_of(ann),
                rows.is_live(rid),
            )
            for rid, row in relation_store.matching(self.pattern)
        }
        self.version = version

    def seed_from_state(self, relation_state, version: int) -> None:
        """Seed from a captured ``{row: (expr, live)}`` mapping (filtered)."""
        self.rows = {
            row: payload
            for row, payload in relation_state.items()
            if self.pattern.matches(row)
        }
        self.version = version

    # -- maintenance ------------------------------------------------------

    def apply(self, batch: DeltaBatch) -> list[RowDelta]:
        """Apply one batch; return the deltas that fell inside this view.

        The version advances to ``batch.version`` even when nothing
        matched — an empty result still means "current as of v".
        """
        matched = [
            delta
            for delta in batch
            if delta.relation == self.relation and self.pattern.matches(delta.row)
        ]
        for delta in matched:
            if delta.kind == "free":
                self.rows.pop(delta.row, None)
            else:
                self.rows[delta.row] = (delta.expr, delta.live)
        self.version = batch.version
        return matched

    def state(self) -> dict[tuple, tuple]:
        """A detached copy of the answer set (row -> (expr, live))."""
        return dict(self.rows)

    def describe(self) -> str:
        return f"{self.relation}[{self.pattern.describe()}]"


class ViewRegistry:
    """All standing views of one service, fanned out from one delta stream."""

    __slots__ = ("_views", "_next_id")

    def __init__(self):
        self._views: dict[int, StandingView] = {}
        self._next_id = 1

    def register(self, relation: str, pattern: Pattern) -> StandingView:
        view = StandingView(self._next_id, relation, pattern)
        self._views[view.view_id] = view
        self._next_id += 1
        return view

    def unregister(self, view_id: int) -> bool:
        return self._views.pop(view_id, None) is not None

    def get(self, view_id: int) -> StandingView:
        try:
            return self._views[view_id]
        except KeyError:
            raise EngineError(f"unknown view id {view_id}") from None

    def views(self) -> Iterable[StandingView]:
        return self._views.values()

    def __len__(self) -> int:
        return len(self._views)

    def apply(self, batch: DeltaBatch) -> dict[int, list[RowDelta]]:
        """Advance every view past ``batch``; report who saw what.

        Views that matched nothing still advance their version but are
        omitted from the report — subscribers only hear about batches
        that touched their slice.
        """
        touched: dict[int, list[RowDelta]] = {}
        for view in self._views.values():
            matched = view.apply(batch)
            if matched:
                touched[view.view_id] = matched
        return touched
