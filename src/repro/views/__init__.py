"""Incremental live views: delta-maintained standing queries.

See :mod:`repro.views.deltas` for the delta vocabulary and the engine
hook, :mod:`repro.views.registry` for standing views, and
``docs/ARCHITECTURE.md`` ("Live views") for the end-to-end push path.
"""

from .deltas import (
    DELTA_KINDS,
    DeltaBatch,
    DeltaBuffer,
    RowDelta,
    apply_delta,
    apply_delta_batch,
    attach_delta_sink,
    decode_delta_batch,
    delta_capable,
    encode_delta_batch,
    flush_pending,
    local_engines,
)
from .registry import StandingView, ViewRegistry

__all__ = [
    "DELTA_KINDS",
    "DeltaBatch",
    "DeltaBuffer",
    "RowDelta",
    "StandingView",
    "ViewRegistry",
    "apply_delta",
    "apply_delta_batch",
    "attach_delta_sink",
    "decode_delta_batch",
    "delta_capable",
    "encode_delta_batch",
    "flush_pending",
    "local_engines",
]
