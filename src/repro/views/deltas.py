"""Row deltas: the incremental read-path vocabulary.

A :class:`RowDelta` describes one support-row change in the same
row-keyed terms a :meth:`~repro.store.annotation_store.AnnotationStore.state`
capture speaks — ``(relation, row, expression, live)`` — plus a ``kind``
tag naming what happened:

====================  ======================================================
``insert``            the row entered the support (or re-entered after a
                      ``free``); payload is its annotation and liveness
``delete``            the row was tombstoned (``live`` becomes ``False``,
                      the annotation records the deletion)
``annotation``        the row's annotation (and possibly liveness) changed
                      in place — re-inserts, modification targets, deferred
                      normalization rewrites
``free``              the row left the support entirely (vanilla physical
                      deletes, dead zero-annotation rows dropped by the
                      deferred policy); no payload
====================  ======================================================

Consumers reconstruct state with *upsert* semantics — every kind except
``free`` sets ``state[relation][row] = (expr, live)``, ``free`` removes
the key — so replaying a delta stream over a seed capture is bit-identical
to a fresh capture at the same version (:func:`apply_delta_batch`).

Executors record deltas into a :class:`DeltaBuffer` through the
``delta_sink`` hook (see :class:`~repro.engine.executors.StoreBackedExecutor`),
which coalesces per ``(relation, row)``: a row touched many times inside
one flush interval ships once, with its final annotation and liveness.
The buffer is drained at quiescent points only — the same points that
publish snapshots — and every drained :class:`DeltaBatch` is stamped with
the snapshot version that produced it.

On the wire a batch reuses the capture codec's arena form
(:func:`repro.storage.exprjson.exprs_to_arena`): one shared node table
per batch, expressions re-interned by the receiving process exactly like
shard-worker captures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, MutableMapping

from ..core.expr import Expr
from ..errors import EngineError
from ..storage.exprjson import exprs_from_arena, exprs_to_arena

__all__ = [
    "DELTA_KINDS",
    "DeltaBatch",
    "DeltaBuffer",
    "RowDelta",
    "apply_delta",
    "apply_delta_batch",
    "attach_delta_sink",
    "decode_delta_batch",
    "delta_capable",
    "encode_delta_batch",
    "flush_pending",
    "local_engines",
]

#: Every delta kind a sink may record (see the module docstring).
DELTA_KINDS = ("insert", "delete", "annotation", "free")


@dataclass(frozen=True)
class RowDelta:
    """One coalesced support-row change."""

    kind: str
    relation: str
    row: tuple
    expr: "Expr | None"
    live: bool


@dataclass(frozen=True)
class DeltaBatch:
    """Every row changed between two quiescent points, version-stamped.

    ``version`` is the service's apply-admission count at the drain — the
    same counter that stamps published snapshots, so a consumer that has
    applied every batch up to version ``v`` holds exactly the rows a
    snapshot captured at ``v`` would show (asserted bit-identically in
    ``tests/views`` and ``bench.view_comparison``).
    """

    version: int
    deltas: tuple[RowDelta, ...]

    def __len__(self) -> int:
        return len(self.deltas)

    def __iter__(self) -> Iterator[RowDelta]:
        return iter(self.deltas)


class DeltaBuffer:
    """The engine-side delta sink: coalesces row changes per flush interval.

    ``record`` is called from executor mutation points (single-writer
    discipline: only the thread applying updates ever records); ``drain``
    is called at quiescent points only, after pending deferred work was
    flushed (:func:`flush_pending`), so drained annotations are exactly
    the ones a same-version capture observes.
    """

    __slots__ = ("_pending",)

    def __init__(self):
        #: ``(relation, row) -> [kind, expr, live]`` in first-touch order.
        self._pending: dict[tuple[str, tuple], list] = {}

    def record(
        self,
        kind: str,
        relation: str,
        row: tuple,
        expr: "Expr | None",
        live: bool,
    ) -> None:
        key = (relation, row)
        entry = self._pending.get(key)
        if kind == "free":
            if entry is not None and entry[0] == "insert":
                # The row entered and left the support inside one
                # interval: net nothing, consumers never hear about it.
                del self._pending[key]
            else:
                self._pending[key] = ["free", None, False]
            return
        if entry is None:
            self._pending[key] = [kind, expr, live]
        else:
            # An insert stays an insert for consumers whatever happens to
            # it afterwards, and a freed row reappearing is new again;
            # otherwise the latest kind labels the coalesced change.
            first = "insert" if entry[0] in ("insert", "free") else kind
            entry[0] = first
            entry[1] = expr
            entry[2] = live

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def drain(self, version: int) -> DeltaBatch:
        """Freeze the pending changes into a version-stamped batch."""
        deltas = tuple(
            RowDelta(kind, relation, row, expr, live)
            for (relation, row), (kind, expr, live) in self._pending.items()
        )
        self._pending.clear()
        return DeltaBatch(version=version, deltas=deltas)


# ---------------------------------------------------------------------------
# Reconstruction (the consumer side)
# ---------------------------------------------------------------------------


def apply_delta(
    state: MutableMapping[str, MutableMapping[tuple, tuple]], delta: RowDelta
) -> None:
    """Apply one delta to a ``{relation: {row: (expr, live)}}`` state."""
    rows = state.setdefault(delta.relation, {})
    if delta.kind == "free":
        rows.pop(delta.row, None)
    else:
        rows[delta.row] = (delta.expr, delta.live)


def apply_delta_batch(
    state: MutableMapping[str, MutableMapping[tuple, tuple]], batch: DeltaBatch
) -> None:
    """Apply a whole batch; ``state`` then reflects ``batch.version``."""
    for delta in batch:
        apply_delta(state, delta)


# ---------------------------------------------------------------------------
# Wire codec (reuses the capture arena form; see repro.shard.codec)
# ---------------------------------------------------------------------------


def encode_delta_batch(batch: DeltaBatch) -> dict:
    """A pickle/JSON-safe batch: one shared expression arena per batch."""
    arena, roots = exprs_to_arena([delta.expr for delta in batch.deltas])
    return {
        "version": batch.version,
        "exprs": arena,
        "deltas": [
            [delta.kind, delta.relation, list(delta.row), root, delta.live]
            for delta, root in zip(batch.deltas, roots)
        ],
    }


def decode_delta_batch(payload: dict) -> DeltaBatch:
    """Inverse of :func:`encode_delta_batch`; re-interns every expression."""
    rows = payload["deltas"]
    exprs = exprs_from_arena(payload["exprs"], [entry[3] for entry in rows])
    return DeltaBatch(
        version=int(payload["version"]),
        deltas=tuple(
            RowDelta(str(kind), str(relation), tuple(row), expr, bool(live))
            for (kind, relation, row, _root, live), expr in zip(rows, exprs)
        ),
    )


# ---------------------------------------------------------------------------
# Engine plumbing
# ---------------------------------------------------------------------------


def local_engines(engine) -> "list | None":
    """The in-process engines behind ``engine``, or ``None`` if out of reach."""
    from ..shard.engine import ShardedEngine

    if isinstance(engine, ShardedEngine):
        backend = engine._backend
        if backend.parallel:
            return None  # executors live in worker processes
        return list(backend.engines)
    return [engine]


def delta_capable(engine) -> bool:
    """True if :func:`attach_delta_sink` can maintain deltas for ``engine``."""
    engines = local_engines(engine)
    if engines is None:
        return False
    return all(
        getattr(e.executor, "emits_deltas", False) for e in engines
    )


def attach_delta_sink(engine, sink) -> None:
    """Route every executor's row deltas into ``sink``.

    Supports the plain :class:`~repro.engine.engine.Engine`, the
    :class:`~repro.wal.engine.JournaledEngine`, and the sequential-backend
    :class:`~repro.shard.engine.ShardedEngine` (shards hold disjoint rows,
    so one shared sink sees a consistent merged stream).  The process-pool
    backend keeps its executors in worker processes, out of the sink's
    reach, and the MV policies store version annotations rather than
    UP[X] expressions — both are rejected loudly.
    """
    engines = local_engines(engine)
    if engines is None:
        raise EngineError(
            "delta maintenance is not supported on the process-pool shard "
            "backend (executors live in worker processes); use parallel=False"
        )
    for e in engines:
        if not getattr(e.executor, "emits_deltas", False):
            raise EngineError(
                f"policy {e.policy!r} does not emit row deltas "
                "(MV version annotations have no UP[X] delta form)"
            )
    for e in engines:
        e.deltas = sink
        e.executor.delta_sink = sink


def flush_pending(engine) -> None:
    """Force deferred executor work (batch normalization) to materialize.

    Called immediately before :meth:`DeltaBuffer.drain`: the
    ``normal_form_batch`` policy rewrites annotations at flush time and
    emits the corresponding ``annotation`` deltas, so draining without
    flushing would stamp those rewrites into a *later* batch than the
    version they belong to.
    """
    engines = local_engines(engine)
    if engines is None:
        return
    for e in engines:
        flush = getattr(e.executor, "flush", None)
        if flush is not None:
            flush()
