"""MV-semiring (multi-version semiring) annotations [Arab et al., CIKM'16].

The comparison baseline of paper Section 6.4.  An MV-annotation encodes the
*derivation history* of a tuple version: a version operation
``X^id_{T,nu}(k)`` records that operation ``X`` (U/I/D/C — update, insert,
delete, commit) was executed at time ``nu`` by transaction ``T`` on the
tuple ``id`` whose previous annotation was ``k``.  Unlike UP[X], the
structure of the expression pins the exact update sequence, which is why
equivalent transactions yield *different* MV annotations (paper Example
3.10) and why no normal-form compression applies.

Two implementations mirror the paper's two baselines:

* :class:`MVTree` — node-based trees.  Like the paper's ``anytree``
  implementation, nodes are single-parent, so wrapping an annotation
  re-creates (copies) the wrapped subtree; the recursion over deep
  histories is the overhead Figure 10b attributes to this variant.
* :class:`MVString` — the annotation is kept as its string rendering and
  wrapping is string concatenation; using it requires re-parsing
  (:func:`parse_mv_string`), the "edge" the paper concedes to this variant.

Both report the same semantic :meth:`length` (number of version operations
plus leaf variables), so Figure 10a's memory comparison is
representation-independent, as in the paper.
"""

from __future__ import annotations

import re

from ..errors import ReproError

__all__ = ["MVTree", "MVString", "Unv", "parse_mv_string", "OPS"]

OPS = ("U", "I", "D", "C")


class MVTree:
    """Tree representation of an MV-annotation."""

    __slots__ = ("op", "tuple_id", "txn", "time", "child", "var")

    def __init__(
        self,
        op: str | None,
        tuple_id: int | None = None,
        txn: str | None = None,
        time: int | None = None,
        child: "MVTree | None" = None,
        var: str | None = None,
    ):
        if op is None:
            if var is None:
                raise ReproError("leaf MV node needs a variable name")
        elif op not in OPS:
            raise ReproError(f"unknown MV operation {op!r}")
        self.op = op
        self.tuple_id = tuple_id
        self.txn = txn
        self.time = time
        self.child = child
        self.var = var

    @classmethod
    def leaf(cls, var: str) -> "MVTree":
        return cls(None, var=var)

    def copy(self) -> "MVTree":
        """Deep copy (iterative), mimicking single-parent tree re-parenting."""
        # Collect the spine leaf-first, then rebuild.
        spine: list[MVTree] = []
        node: MVTree | None = self
        while node is not None:
            spine.append(node)
            node = node.child
        rebuilt: MVTree | None = None
        for original in reversed(spine):
            if original.op is None:
                rebuilt = MVTree.leaf(original.var)  # type: ignore[arg-type]
            else:
                rebuilt = MVTree(
                    original.op, original.tuple_id, original.txn, original.time, rebuilt
                )
        assert rebuilt is not None
        return rebuilt

    def wrap(self, op: str, tuple_id: int, txn: str, time: int) -> "MVTree":
        """``X^id_{T,nu}(self)`` — copies the subtree (single-parent nodes)."""
        return MVTree(op, tuple_id, txn, time, self.copy())

    def length(self) -> int:
        """Number of version operations plus the leaf variable."""
        n = 0
        node: MVTree | None = self
        while node is not None:
            n += 1
            node = node.child
        return n

    def unv(self) -> str:
        """The underlying semiring element with history stripped (paper's Unv)."""
        node = self
        while node.child is not None:
            node = node.child
        assert node.var is not None
        return node.var

    def to_string(self) -> str:
        parts: list[str] = []
        node: MVTree | None = self
        closing = 0
        while node is not None:
            if node.op is None:
                parts.append(node.var)  # type: ignore[arg-type]
            else:
                parts.append(f"{node.op}^{node.tuple_id}_{{{node.txn},{node.time}}}(")
                closing += 1
            node = node.child
        parts.append(")" * closing)
        return "".join(parts)

    def __repr__(self) -> str:
        return f"MVTree({self.to_string()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MVTree):
            return NotImplemented
        return self.to_string() == other.to_string()

    def __hash__(self) -> int:
        return hash(self.to_string())


class MVString:
    """String representation of an MV-annotation."""

    __slots__ = ("text", "ops")

    def __init__(self, text: str, ops: int):
        self.text = text
        self.ops = ops

    @classmethod
    def leaf(cls, var: str) -> "MVString":
        return cls(var, 1)

    def wrap(self, op: str, tuple_id: int, txn: str, time: int) -> "MVString":
        return MVString(f"{op}^{tuple_id}_{{{txn},{time}}}({self.text})", self.ops + 1)

    def length(self) -> int:
        return self.ops

    def unv(self) -> str:
        """Requires parsing — the pre-processing cost of the string variant."""
        return parse_mv_string(self.text).unv()

    def to_string(self) -> str:
        return self.text

    def __repr__(self) -> str:
        return f"MVString({self.text})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MVString):
            return NotImplemented
        return self.text == other.text

    def __hash__(self) -> int:
        return hash(self.text)


_OP_RE = re.compile(r"([UIDC])\^(\d+)_\{([^,}]*),(\d+)\}\($")
_VAR_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.:\-]*")


def parse_mv_string(text: str) -> MVTree:
    """Parse the string rendering back into a tree (the string variant's Unv)."""
    ops: list[tuple[str, int, str, int]] = []
    pos = 0
    while True:
        open_paren = text.find("(", pos)
        if open_paren == -1:
            break
        head = _OP_RE.search(text, pos, open_paren + 1)
        if head is None:
            raise ReproError(f"malformed MV annotation near {text[pos:open_paren + 1]!r}")
        ops.append((head.group(1), int(head.group(2)), head.group(3), int(head.group(4))))
        pos = open_paren + 1
    tail = text[pos:]
    match = _VAR_RE.match(tail)
    if match is None:
        raise ReproError(f"malformed MV annotation leaf {tail!r}")
    var = match.group(0)
    if tail[len(var):] != ")" * len(ops):
        raise ReproError(f"unbalanced MV annotation {text!r}")
    node = MVTree.leaf(var)
    for op, tid, txn, time in reversed(ops):
        node = MVTree(op, tid, txn, time, node)
    return node


def Unv(annotation: MVTree | MVString) -> str:
    """The paper's Unv operation: strip the version history."""
    return annotation.unv()
