"""The MV-semiring baseline model [Arab et al. 2016] (paper Section 6.4)."""

from .expr import MVString, MVTree, OPS, Unv, parse_mv_string
from .policy import MVExecutor, MVVersion

__all__ = ["MVExecutor", "MVString", "MVTree", "MVVersion", "OPS", "Unv", "parse_mv_string"]
