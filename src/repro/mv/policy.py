"""MV-semiring provenance tracking as an engine policy (paper Section 6.4).

Follows the reenactment model of [Arab et al. 2016] for our update-only
fragment: the database is a set of *tuple versions*, each carrying its own
MV-annotation.  An update evolves the matching versions in place (wrapping
a ``U`` operation and rewriting the row); no merging of sources into one
target ever happens, so — unlike the UP[X] executors — modified tuples are
not duplicated (the difference the paper highlights when comparing
database sizes).  A transaction commit wraps the touched versions with a
``C`` operation, as in the reenactment encoding.

Storage sits on the shared :mod:`repro.store` facade like every other
executor: one slot per distinct *current row value*, whose annotation is
the non-empty list of :class:`MVVersion` objects currently at that row
(they necessarily share it — a version's row only changes by relocating
to the target's slot) and whose liveness bit is "any version live".
Selection therefore runs through the store's pattern planner instead of a
whole-relation version scan, and multiversion reads share one maintenance
path with the live-view machinery.  Because slots hold version lists, not
``UP[X]`` expressions, the policy neither emits row deltas
(:attr:`MVExecutor.emits_deltas`) nor supports the arena at-rest form.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..db.database import Database
from ..engine.executors import Executor, StoreBackedExecutor
from ..errors import EngineError
from ..queries.updates import Delete, Insert, Modify
from .expr import MVString, MVTree

__all__ = ["MVExecutor", "MVVersion"]


class MVVersion:
    """One tuple version: current row value, annotation, liveness."""

    __slots__ = ("row", "ann", "live", "version_id")

    def __init__(self, row: tuple, ann, live: bool, version_id: int):
        self.row = row
        self.ann = ann
        self.live = live
        self.version_id = version_id


class MVExecutor(StoreBackedExecutor):
    """Engine policy generating MV-semiring annotations.

    ``representation`` selects the tree (``anytree``-like, deep copies) or
    string (concatenation, re-parse on use) implementation, matching the
    two baselines of Figure 10b.
    """

    tracks_provenance = True
    supports_specialization = False
    emits_deltas = False

    def __init__(
        self,
        database: Database,
        representation: str = "tree",
        annotate: Callable[[str, tuple, int], str] | None = None,
    ):
        if representation not in ("tree", "string"):
            raise EngineError(f"unknown MV representation {representation!r}")
        super().__init__(database)
        self.policy = f"mv_{representation}"
        self._leaf = MVTree.leaf if representation == "tree" else MVString.leaf
        self._tuple_vars: dict[str, dict[tuple, str]] = {}
        self._time = 1
        self._next_version = 1
        self._touched: list[MVVersion] = []
        namer = annotate or (lambda rel, row, i: f"x{i}")
        counter = 0
        for name in database.relations():
            store = self.store.relation(name)
            names: dict[tuple, str] = {}
            for row in sorted(database.rows(name), key=repr):
                counter += 1
                ann_name = namer(name, row, counter)
                names[row] = ann_name
                version = MVVersion(row, self._leaf(ann_name), True, self._next_version)
                self._next_version += 1
                store.add(row, [version], True)
            self._tuple_vars[name] = names

    # -- query application -------------------------------------------------------

    def _tick(self) -> int:
        self._time += 1
        return self._time

    def apply_insert(self, query: Insert) -> tuple[int, int]:
        store = self._relation_store(query.relation)
        row = self.schema.relation(query.relation).check_row(query.row)
        nu = self._tick()
        fresh = self._leaf(f"x{query.relation}.{self._next_version}")
        version = MVVersion(
            row,
            fresh.wrap("I", self._next_version, query._check_annotation(), nu),
            True,
            self._next_version,
        )
        self._next_version += 1
        rows = store.rows
        rid = rows.rid_of(row)
        if rid is None:
            store.add(row, [version], True)
        else:
            # The row already has versions (live or tombstoned): the new
            # version joins them at the same slot.
            rows.annotation(rid).append(version)
            rows.set_live(rid, True)
        self._touched.append(version)
        return (0, 1)

    def apply_delete(self, query: Delete) -> tuple[int, int]:
        store = self._relation_store(query.relation)
        p = query._check_annotation()
        nu = self._tick()
        rows = store.rows
        matched = 0
        for rid, _row in store.matching(query.pattern):
            wrapped = 0
            for version in rows.annotation(rid):
                if version.live:
                    version.ann = version.ann.wrap("D", version.version_id, p, nu)
                    version.live = False
                    self._touched.append(version)
                    wrapped += 1
            if wrapped:
                rows.set_live(rid, False)
                matched += wrapped
        return (matched, 0)

    def apply_modify(self, query: Modify) -> tuple[int, int]:
        store = self._relation_store(query.relation)
        p = query._check_annotation()
        nu = self._tick()
        rows = store.rows
        # Match and collect movers against the pre-query state before any
        # relocation: every version is moved at most once per query (as in
        # the flat-list reenactment loop, which visits each version once),
        # even when one source's target is another source's row.
        moves: list[tuple[int, tuple, tuple, list[MVVersion]]] = []
        matched = 0
        for rid, row in store.matching(query.pattern):
            movers = [v for v in rows.annotation(rid) if v.live]
            if not movers:
                continue
            moves.append((rid, row, query.apply_to_row(row), movers))
            matched += len(movers)
        for rid, row, target, movers in moves:
            mover_ids = {id(v) for v in movers}
            for version in movers:
                version.ann = version.ann.wrap("U", version.version_id, p, nu)
                version.row = target
                self._touched.append(version)
            if target == row:
                continue
            remaining = [v for v in rows.annotation(rid) if id(v) not in mover_ids]
            if remaining:
                # Earlier moves in this query may have landed live versions
                # here, so the slot's liveness is recomputed, not cleared.
                rows.set_annotation(rid, remaining)
                rows.set_live(rid, any(v.live for v in remaining))
            else:
                store.free(rid)
            trid = rows.rid_of(target)
            if trid is None:
                store.add(target, list(movers), True)
            else:
                rows.annotation(trid).extend(movers)
                rows.set_live(trid, True)
        return (matched, 0)

    def on_transaction_end(self, name: str) -> None:
        """Commit: wrap every version the transaction touched with ``C``."""
        nu = self._tick()
        committed: set[int] = set()
        for version in self._touched:
            if id(version) not in committed:
                committed.add(id(version))
                version.ann = version.ann.wrap("C", version.version_id, name, nu)
        self._touched.clear()

    # -- inspection -----------------------------------------------------------------

    def _all_versions(self, relation: str) -> list[MVVersion]:
        """Every version of ``relation`` in creation order.

        Slots keep versions grouped by current row, so creation order is
        recovered by sorting on the monotonically assigned ``version_id``
        — the order the flat-list implementation stored and every
        observer (provenance iteration, last-wins row summaries) relied
        on.
        """
        store = self._relation_store(relation)
        versions = [
            v for _rid, row in store.rows.items() for v in store.rows.annotation(_rid)
        ]
        versions.sort(key=lambda v: v.version_id)
        return versions

    def live_rows(self, relation: str) -> set[tuple[object, ...]]:
        return self.store.live_rows(relation)

    def support_count(self) -> int:
        return sum(
            len(store.rows.annotation(rid))
            for _name, store in self.store.relations()
            for rid, _row in store.rows.items()
        )

    def live_count(self) -> int:
        return sum(
            1
            for _name, store in self.store.relations()
            for rid, _row in store.rows.items()
            for v in store.rows.annotation(rid)
            if v.live
        )

    def provenance_size(self) -> int:
        return sum(
            v.ann.length()
            for _name, store in self.store.relations()
            for rid, _row in store.rows.items()
            for v in store.rows.annotation(rid)
        )

    def provenance_dag_size(self) -> int:
        """MV annotations are unshared chains: stored size equals length."""
        return self.provenance_size()

    def provenance_items(self, relation: str) -> Iterator[tuple[tuple, object, bool]]:
        """Yields ``(row, MV annotation, live)`` — one entry per version."""
        for version in self._all_versions(relation):
            yield version.row, version.ann, version.live

    def annotation_of(self, relation: str, row: tuple):
        # Slots hold version lists, not expressions: fall back to the
        # generic provenance scan (first version at the row, in creation
        # order) instead of the store probe.
        return Executor.annotation_of(self, relation, row)

    def tuple_var(self, relation: str, row: tuple) -> str | None:
        return self._tuple_vars.get(relation, {}).get(tuple(row))

    def tuple_var_names(self) -> frozenset[str]:
        return frozenset(
            name for names in self._tuple_vars.values() for name in names.values()
        )
