"""MV-semiring provenance tracking as an engine policy (paper Section 6.4).

Follows the reenactment model of [Arab et al. 2016] for our update-only
fragment: the database is a list of *tuple versions*, each carrying its own
MV-annotation.  An update evolves the matching versions in place (wrapping
a ``U`` operation and rewriting the row); no merging of sources into one
target ever happens, so — unlike the UP[X] executors — modified tuples are
not duplicated (the difference the paper highlights when comparing
database sizes).  A transaction commit wraps the touched versions with a
``C`` operation, as in the reenactment encoding.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..db.database import Database
from ..engine.executors import Executor
from ..errors import EngineError
from ..queries.updates import Delete, Insert, Modify
from .expr import MVString, MVTree

__all__ = ["MVExecutor", "MVVersion"]


class MVVersion:
    """One tuple version: current row value, annotation, liveness."""

    __slots__ = ("row", "ann", "live", "version_id")

    def __init__(self, row: tuple, ann, live: bool, version_id: int):
        self.row = row
        self.ann = ann
        self.live = live
        self.version_id = version_id


class MVExecutor(Executor):
    """Engine policy generating MV-semiring annotations.

    ``representation`` selects the tree (``anytree``-like, deep copies) or
    string (concatenation, re-parse on use) implementation, matching the
    two baselines of Figure 10b.
    """

    tracks_provenance = True
    supports_specialization = False

    def __init__(
        self,
        database: Database,
        representation: str = "tree",
        annotate: Callable[[str, tuple, int], str] | None = None,
    ):
        if representation not in ("tree", "string"):
            raise EngineError(f"unknown MV representation {representation!r}")
        self.policy = f"mv_{representation}"
        self._leaf = MVTree.leaf if representation == "tree" else MVString.leaf
        self.schema = database.schema
        self._versions: dict[str, list[MVVersion]] = {}
        self._tuple_vars: dict[str, dict[tuple, str]] = {}
        self._time = 1
        self._next_version = 1
        self._touched: list[MVVersion] = []
        namer = annotate or (lambda rel, row, i: f"x{i}")
        counter = 0
        for name in database.relations():
            versions: list[MVVersion] = []
            names: dict[tuple, str] = {}
            for row in sorted(database.rows(name), key=repr):
                counter += 1
                ann_name = namer(name, row, counter)
                names[row] = ann_name
                versions.append(MVVersion(row, self._leaf(ann_name), True, self._next_version))
                self._next_version += 1
            self._versions[name] = versions
            self._tuple_vars[name] = names

    # -- query application -------------------------------------------------------

    def _relation_versions(self, name: str) -> list[MVVersion]:
        try:
            return self._versions[name]
        except KeyError:
            raise EngineError(f"unknown relation {name!r}") from None

    def _tick(self) -> int:
        self._time += 1
        return self._time

    def apply_insert(self, query: Insert) -> tuple[int, int]:
        versions = self._relation_versions(query.relation)
        row = self.schema.relation(query.relation).check_row(query.row)
        nu = self._tick()
        fresh = self._leaf(f"x{query.relation}.{self._next_version}")
        version = MVVersion(
            row,
            fresh.wrap("I", self._next_version, query._check_annotation(), nu),
            True,
            self._next_version,
        )
        self._next_version += 1
        versions.append(version)
        self._touched.append(version)
        return (0, 1)

    def apply_delete(self, query: Delete) -> tuple[int, int]:
        versions = self._relation_versions(query.relation)
        pattern = query.pattern
        p = query._check_annotation()
        nu = self._tick()
        matched = 0
        for version in versions:
            if version.live and pattern.matches(version.row):
                version.ann = version.ann.wrap("D", version.version_id, p, nu)
                version.live = False
                self._touched.append(version)
                matched += 1
        return (matched, 0)

    def apply_modify(self, query: Modify) -> tuple[int, int]:
        versions = self._relation_versions(query.relation)
        pattern = query.pattern
        p = query._check_annotation()
        nu = self._tick()
        matched = 0
        for version in versions:
            if version.live and pattern.matches(version.row):
                version.row = query.apply_to_row(version.row)
                version.ann = version.ann.wrap("U", version.version_id, p, nu)
                self._touched.append(version)
                matched += 1
        return (matched, 0)

    def on_transaction_end(self, name: str) -> None:
        """Commit: wrap every version the transaction touched with ``C``."""
        nu = self._tick()
        committed: set[int] = set()
        for version in self._touched:
            if id(version) not in committed:
                committed.add(id(version))
                version.ann = version.ann.wrap("C", version.version_id, name, nu)
        self._touched.clear()

    # -- inspection -----------------------------------------------------------------

    def live_rows(self, relation: str) -> set[tuple[object, ...]]:
        return {v.row for v in self._relation_versions(relation) if v.live}

    def result(self) -> Database:
        db = Database(self.schema)
        for name, versions in self._versions.items():
            db.extend(name, (v.row for v in versions if v.live))
        return db

    def support_count(self) -> int:
        return sum(len(v) for v in self._versions.values())

    def live_count(self) -> int:
        return sum(1 for versions in self._versions.values() for v in versions if v.live)

    def provenance_size(self) -> int:
        return sum(
            v.ann.length() for versions in self._versions.values() for v in versions
        )

    def provenance_dag_size(self) -> int:
        """MV annotations are unshared chains: stored size equals length."""
        return self.provenance_size()

    def provenance_items(self, relation: str) -> Iterator[tuple[tuple, object, bool]]:
        """Yields ``(row, MV annotation, live)`` — one entry per version."""
        for version in self._relation_versions(relation):
            yield version.row, version.ann, version.live

    def tuple_var(self, relation: str, row: tuple) -> str | None:
        return self._tuple_vars.get(relation, {}).get(tuple(row))

    def tuple_var_names(self) -> frozenset[str]:
        return frozenset(
            name for names in self._tuple_vars.values() for name in names.values()
        )
