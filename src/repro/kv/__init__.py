"""Karabeg-Vianu set-equivalence rewrites and transaction equivalence tests."""

from .equivalence import (
    find_set_difference_witness,
    provenance_equivalent,
    provenance_equivalent_randomized,
    random_database_for,
    set_equivalent,
    transaction_constants,
)
from .generator import (
    equivalent_pair,
    exhaustive_variants,
    random_equivalent_variant,
    random_query,
    random_transaction,
)
from .rules import (
    ALL_KV_RULES,
    CommuteIndependent,
    DeleteIdempotent,
    DeleteThenModify,
    IdentityModElimination,
    InsertIdempotent,
    InsertThenDelete,
    InsertThenModify,
    KVRule,
    ModThenDelete,
    ModThenModCompose,
    applicable_rewrites,
    rewrite_transaction,
)

__all__ = [
    "ALL_KV_RULES",
    "CommuteIndependent",
    "DeleteIdempotent",
    "DeleteThenModify",
    "IdentityModElimination",
    "InsertIdempotent",
    "InsertThenDelete",
    "InsertThenModify",
    "KVRule",
    "ModThenDelete",
    "ModThenModCompose",
    "applicable_rewrites",
    "equivalent_pair",
    "exhaustive_variants",
    "find_set_difference_witness",
    "provenance_equivalent",
    "provenance_equivalent_randomized",
    "random_database_for",
    "random_equivalent_variant",
    "random_query",
    "random_transaction",
    "rewrite_transaction",
    "set_equivalent",
    "transaction_constants",
]
