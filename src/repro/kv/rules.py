"""Karabeg-Vianu set-equivalence rewrites for hyperplane transactions.

[Karabeg & Vianu 1991] gave simplification rules and a sound & complete
axiomatization of set equivalence for this transaction fragment; the
paper's axioms (Figure 3) are the provenance images of those rules.  This
module implements a catalog of transaction-level rewrites, each of which
preserves set equivalence (``T1 ≡_B T2``); together with Proposition 3.5
they are the generator behind the library's headline property tests: any
variant produced here must yield UP[X]-equivalent provenance on every
database (``tests/kv/test_prop_3_5.py``).

Each rule inspects a window of one or two adjacent queries and returns the
replacement sequences it licenses.  Conditions use the pattern algebra
(:meth:`~repro.queries.pattern.Pattern.subsumes`,
:meth:`~repro.queries.pattern.Pattern.disjoint_from`), sound over the
paper's infinite domain assumption.
"""

from __future__ import annotations

from typing import Sequence

from ..queries.pattern import Pattern
from ..queries.updates import Delete, Insert, Modify, Transaction, UpdateQuery

__all__ = [
    "KVRule",
    "ModThenDelete",
    "DeleteIdempotent",
    "InsertIdempotent",
    "InsertThenDelete",
    "InsertThenModify",
    "DeleteThenModify",
    "ModThenModCompose",
    "IdentityModElimination",
    "CommuteIndependent",
    "ALL_KV_RULES",
    "applicable_rewrites",
    "rewrite_transaction",
]


class KVRule:
    """A set-equivalence-preserving rewrite over a window of queries."""

    #: window width (1 or 2 adjacent queries).
    width = 2
    name = "abstract"

    def rewrite(self, queries: Sequence[UpdateQuery]) -> list[list[UpdateQuery]] | None:
        """Replacement sequences for the window, or ``None`` if inapplicable."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ModThenDelete(KVRule):
    """``mod(u1->u2); del(u)`` with images inside ``u``  =>  ``del(u1); del(u)``.

    The paper's Example 3.3: deleting the modification's output wholesale is
    the same as deleting its input wholesale.
    """

    name = "mod_then_delete"

    def rewrite(self, queries: Sequence[UpdateQuery]) -> list[list[UpdateQuery]] | None:
        q1, q2 = queries
        if not (isinstance(q1, Modify) and isinstance(q2, Delete)):
            return None
        if q1.relation != q2.relation:
            return None
        if not q2.pattern.subsumes(q1.image_pattern()):
            return None
        return [[Delete(q1.relation, q1.pattern), q2]]


class DeleteIdempotent(KVRule):
    """``del(u); del(u)``  =>  ``del(u)`` (the axiom 4 source)."""

    name = "delete_idempotent"

    def rewrite(self, queries: Sequence[UpdateQuery]) -> list[list[UpdateQuery]] | None:
        q1, q2 = queries
        if (
            isinstance(q1, Delete)
            and isinstance(q2, Delete)
            and q1.relation == q2.relation
            and q1.pattern == q2.pattern
        ):
            return [[q1]]
        return None


class InsertIdempotent(KVRule):
    """``ins(t); ins(t)``  =>  ``ins(t)``."""

    name = "insert_idempotent"

    def rewrite(self, queries: Sequence[UpdateQuery]) -> list[list[UpdateQuery]] | None:
        q1, q2 = queries
        if (
            isinstance(q1, Insert)
            and isinstance(q2, Insert)
            and q1.relation == q2.relation
            and q1.row == q2.row
        ):
            return [[q1]]
        return None


class InsertThenDelete(KVRule):
    """``ins(t); del(u)`` with ``t |= u``  =>  ``del(u)`` (axiom 7 source)."""

    name = "insert_then_delete"

    def rewrite(self, queries: Sequence[UpdateQuery]) -> list[list[UpdateQuery]] | None:
        q1, q2 = queries
        if (
            isinstance(q1, Insert)
            and isinstance(q2, Delete)
            and q1.relation == q2.relation
            and q2.pattern.matches(q1.row)
        ):
            return [[q2]]
        return None


class InsertThenModify(KVRule):
    """``ins(t); mod(u1->u2)`` with ``t |= u1``  =>  ``mod(u1->u2); ins(t')``.

    The inserted tuple is swept along by the modification; inserting its
    image after the modification is equivalent (axiom 8's source).
    """

    name = "insert_then_modify"

    def rewrite(self, queries: Sequence[UpdateQuery]) -> list[list[UpdateQuery]] | None:
        q1, q2 = queries
        if not (isinstance(q1, Insert) and isinstance(q2, Modify)):
            return None
        if q1.relation != q2.relation or not q2.pattern.matches(q1.row):
            return None
        return [[q2, Insert(q1.relation, q2.apply_to_row(q1.row))]]


class DeleteThenModify(KVRule):
    """``del(u); mod(u1->u2)`` with ``u1`` inside ``u``  =>  ``del(u)``.

    All the modification's potential sources were just deleted (the axiom 5
    / Rule 3 source).
    """

    name = "delete_then_modify"

    def rewrite(self, queries: Sequence[UpdateQuery]) -> list[list[UpdateQuery]] | None:
        q1, q2 = queries
        if not (isinstance(q1, Delete) and isinstance(q2, Modify)):
            return None
        if q1.relation != q2.relation or not q1.pattern.subsumes(q2.pattern):
            return None
        return [[q1]]


class ModThenModCompose(KVRule):
    """``mod(u1->u2); mod(u2'->u3)`` with images of the first inside ``u2'``
    =>  ``mod(u1->composed); mod(u2'->u3)`` (the paper's Figure 2a/2b pair).
    """

    name = "mod_then_mod_compose"

    def rewrite(self, queries: Sequence[UpdateQuery]) -> list[list[UpdateQuery]] | None:
        q1, q2 = queries
        if not (isinstance(q1, Modify) and isinstance(q2, Modify)):
            return None
        if q1.relation != q2.relation:
            return None
        if not q2.pattern.subsumes(q1.image_pattern()):
            return None
        composed = Modify(q1.relation, q1.pattern, q1.compose_assignments(q2))
        if composed == q1:
            return None  # no progress (q2 changes nothing on q1's images)
        return [[composed, q2]]


class IdentityModElimination(KVRule):
    """``mod(u->u)``  =>  (nothing): deleting and re-inserting each matching
    tuple unchanged is a no-op under set semantics."""

    width = 1
    name = "identity_mod"

    def rewrite(self, queries: Sequence[UpdateQuery]) -> list[list[UpdateQuery]] | None:
        (q,) = queries
        if isinstance(q, Modify) and q.is_identity:
            return [[]]
        return None


class CommuteIndependent(KVRule):
    """Swap two adjacent queries whose read/write sets cannot interact."""

    name = "commute"

    def rewrite(self, queries: Sequence[UpdateQuery]) -> list[list[UpdateQuery]] | None:
        q1, q2 = queries
        if q1.relation != q2.relation:
            return [[q2, q1]]
        if self._commutes(q1, q2):
            return [[q2, q1]]
        return None

    @staticmethod
    def _touch_patterns(q: UpdateQuery) -> list[Pattern]:
        """Patterns covering every tuple the query reads or writes."""
        if isinstance(q, Insert):
            return [Pattern.exact(q.row)]
        if isinstance(q, Delete):
            return [q.pattern]
        assert isinstance(q, Modify)
        return [q.pattern, q.image_pattern()]

    @classmethod
    def _commutes(cls, q1: UpdateQuery, q2: UpdateQuery) -> bool:
        # Deletions always commute with each other, insertions likewise.
        if isinstance(q1, Delete) and isinstance(q2, Delete):
            return True
        if isinstance(q1, Insert) and isinstance(q2, Insert):
            return True
        # Otherwise require full independence of touched hyperplanes,
        # except that two modifications' images may coincide.
        pats1 = cls._touch_patterns(q1)
        pats2 = cls._touch_patterns(q2)
        both_mod = isinstance(q1, Modify) and isinstance(q2, Modify)
        for i, a in enumerate(pats1):
            for j, b in enumerate(pats2):
                if both_mod and i == 1 and j == 1:
                    continue  # image/image overlap is harmless
                if not a.disjoint_from(b):
                    return False
        return True


ALL_KV_RULES: tuple[KVRule, ...] = (
    ModThenDelete(),
    DeleteIdempotent(),
    InsertIdempotent(),
    InsertThenDelete(),
    InsertThenModify(),
    DeleteThenModify(),
    ModThenModCompose(),
    IdentityModElimination(),
    CommuteIndependent(),
)


def applicable_rewrites(
    transaction: Transaction,
    rules: Sequence[KVRule] = ALL_KV_RULES,
) -> list[tuple[int, KVRule, list[UpdateQuery]]]:
    """All ``(position, rule, replacement)`` rewrites of the transaction."""
    queries = list(transaction.queries)
    out: list[tuple[int, KVRule, list[UpdateQuery]]] = []
    for rule in rules:
        width = rule.width
        for i in range(len(queries) - width + 1):
            window = queries[i : i + width]
            replacements = rule.rewrite(window)
            if replacements:
                for replacement in replacements:
                    out.append((i, rule, replacement))
    return out


def rewrite_transaction(
    transaction: Transaction,
    position: int,
    rule: KVRule,
    replacement: list[UpdateQuery],
) -> Transaction:
    """The transaction with the window at ``position`` replaced."""
    queries = list(transaction.queries)
    queries[position : position + rule.width] = replacement
    return Transaction(transaction.name, queries)
