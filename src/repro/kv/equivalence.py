"""Testing set equivalence and provenance equivalence of transactions.

Two complementary testers:

* :func:`set_equivalent` — randomized refutation of ``T1 ≡_B T2`` by
  running both transactions (vanilla semantics) over generated databases
  whose active domain covers the constants mentioned by either transaction
  plus fresh values (the standard argument: over an infinite domain,
  differences manifest on such instances).
* :func:`provenance_equivalent` — the Proposition 3.5 property: run both
  transactions with provenance tracking over the *same* annotated database
  and compare the provenance of every row exactly (BDD equivalence under
  the Boolean structure; rows absent from one support count as ``0``).

Together they power the headline property test: for every KV rewrite,
``set_equivalent`` and ``provenance_equivalent`` must both hold.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from ..core.equivalence import equivalent_boolean
from ..core.expr import ZERO
from ..db.database import Database
from ..db.schema import Relation, Schema
from ..engine.engine import Engine
from ..queries.updates import Delete, Insert, Modify, Transaction

__all__ = [
    "transaction_constants",
    "random_database_for",
    "set_equivalent",
    "provenance_equivalent",
    "provenance_equivalent_randomized",
    "find_set_difference_witness",
]


def transaction_constants(
    transactions: Iterable[Transaction],
) -> dict[str, tuple[int, dict[int, set[object]]]]:
    """Per relation: arity and the constants each position mentions."""
    info: dict[str, tuple[int, dict[int, set[object]]]] = {}

    def bucket(relation: str, arity: int) -> dict[int, set[object]]:
        if relation not in info:
            info[relation] = (arity, {i: set() for i in range(arity)})
        return info[relation][1]

    for txn in transactions:
        for q in txn.queries:
            if isinstance(q, Insert):
                positions = bucket(q.relation, len(q.row))
                for i, v in enumerate(q.row):
                    positions[i].add(v)
            elif isinstance(q, Delete):
                positions = bucket(q.relation, q.pattern.arity)
                for i, v in q.pattern.eq.items():
                    positions[i].add(v)
                for i, excluded in q.pattern.neq.items():
                    positions[i].update(excluded)
            elif isinstance(q, Modify):
                positions = bucket(q.relation, q.pattern.arity)
                for i, v in q.pattern.eq.items():
                    positions[i].add(v)
                for i, excluded in q.pattern.neq.items():
                    positions[i].update(excluded)
                for i, v in q.assignments.items():
                    positions[i].add(v)
    return info


def random_database_for(
    transactions: Sequence[Transaction],
    rng: random.Random,
    rows_per_relation: int = 8,
    fresh_values: int = 2,
) -> Database:
    """A random database over the transactions' active domain + fresh values."""
    info = transaction_constants(transactions)
    schema = Schema(
        Relation(name, [f"a{i}" for i in range(arity)]) for name, (arity, _) in info.items()
    )
    db = Database(schema)
    for name, (arity, positions) in info.items():
        pools = []
        for i in range(arity):
            pool = sorted(positions[i], key=repr)
            pool.extend(f"fresh_{i}_{k}" for k in range(fresh_values))
            pools.append(pool)
        rows = set()
        for _ in range(rows_per_relation):
            rows.add(tuple(rng.choice(pools[i]) for i in range(arity)))
        db.extend(name, rows)
    return db


def set_equivalent(
    t1: Transaction,
    t2: Transaction,
    rng: random.Random | None = None,
    trials: int = 20,
    rows_per_relation: int = 8,
) -> bool:
    """Randomized test of ``T1 ≡_B T2`` (standard set semantics)."""
    return (
        find_set_difference_witness(t1, t2, rng, trials, rows_per_relation) is None
    )


def find_set_difference_witness(
    t1: Transaction,
    t2: Transaction,
    rng: random.Random | None = None,
    trials: int = 20,
    rows_per_relation: int = 8,
) -> Database | None:
    """A database on which the two transactions' results differ, if found."""
    rng = rng or random.Random(0)
    for _ in range(trials):
        db = random_database_for([t1, t2], rng, rows_per_relation)
        r1 = Engine(db, policy="none").apply(t1).result()
        r2 = Engine(db, policy="none").apply(t2).result()
        if not r1.same_contents(r2):
            return db
    return None


def provenance_equivalent(
    t1: Transaction,
    t2: Transaction,
    db: Database,
    policy: str = "normal_form",
) -> bool:
    """Proposition 3.5 check on one database: per-row UP[X] equivalence.

    Both transactions must carry the same annotation (the proposition
    compares ``T1^p`` with ``T2^p``).  Rows stored by only one run count as
    ``0`` on the other side; comparison is exact Boolean equivalence.
    """
    if t1.name != t2.name:
        raise ValueError("compare transactions under the same annotation")
    e1 = Engine(db, policy=policy).apply(t1)
    e2 = Engine(db, policy=policy).apply(t2)
    for relation in db.schema.names:
        prov1 = {row: expr for row, expr, _ in e1.provenance(relation)}
        prov2 = {row: expr for row, expr, _ in e2.provenance(relation)}
        for row in set(prov1) | set(prov2):
            if not equivalent_boolean(prov1.get(row, ZERO), prov2.get(row, ZERO)):
                return False
    return True


def provenance_equivalent_randomized(
    t1: Transaction,
    t2: Transaction,
    rng: random.Random | None = None,
    trials: int = 5,
    rows_per_relation: int = 6,
    policy: str = "normal_form",
) -> bool:
    """Proposition 3.5 over several random databases."""
    rng = rng or random.Random(0)
    for _ in range(trials):
        db = random_database_for([t1, t2], rng, rows_per_relation)
        if not provenance_equivalent(t1, t2, db, policy=policy):
            return False
    return True
