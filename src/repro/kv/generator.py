"""Generators of random transactions and KV-equivalent variants.

Used by the property-test suite and by benchmarks that need structured
equivalent-transaction pairs: :func:`random_transaction` builds hyperplane
transactions over a relation's domain, and :func:`random_equivalent_variant`
walks the KV rewrite system to produce a provably set-equivalent sibling.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..db.schema import Relation
from ..queries.pattern import Pattern
from ..queries.updates import Delete, Insert, Modify, Transaction, UpdateQuery
from .rules import ALL_KV_RULES, KVRule, applicable_rewrites, rewrite_transaction

__all__ = [
    "random_transaction",
    "random_equivalent_variant",
    "equivalent_pair",
    "exhaustive_variants",
]


def _random_pattern(relation: Relation, rng: random.Random, domain: Sequence[object]) -> Pattern:
    eq: dict[int, object] = {}
    neq: dict[int, set[object]] = {}
    for i in range(relation.arity):
        roll = rng.random()
        if roll < 0.45:
            eq[i] = rng.choice(domain)
        elif roll < 0.6:
            neq[i] = {rng.choice(domain)}
    return Pattern(relation.arity, eq=eq, neq=neq)


def random_query(
    relation: Relation,
    rng: random.Random,
    domain: Sequence[object],
    weights: tuple[float, float, float] = (0.3, 0.3, 0.4),
) -> UpdateQuery:
    """A random hyperplane query; ``weights`` are (insert, delete, modify)."""
    roll = rng.random()
    if roll < weights[0]:
        return Insert(relation.name, tuple(rng.choice(domain) for _ in range(relation.arity)))
    if roll < weights[0] + weights[1]:
        return Delete(relation.name, _random_pattern(relation, rng, domain))
    pattern = _random_pattern(relation, rng, domain)
    n_assign = rng.randint(1, relation.arity)
    positions = rng.sample(range(relation.arity), n_assign)
    assignments = {i: rng.choice(domain) for i in positions}
    return Modify(relation.name, pattern, assignments)


def random_transaction(
    relation: Relation,
    rng: random.Random,
    length: int = 6,
    domain: Sequence[object] = (0, 1, 2),
    name: str = "p",
) -> Transaction:
    """A random transaction of hyperplane queries over one relation."""
    return Transaction(name, [random_query(relation, rng, domain) for _ in range(length)])


def random_equivalent_variant(
    transaction: Transaction,
    rng: random.Random,
    steps: int = 3,
    rules: Sequence[KVRule] = ALL_KV_RULES,
) -> tuple[Transaction, list[str]]:
    """Random walk over the KV rewrite system.

    Returns the rewritten transaction together with the applied rule names
    (possibly empty when no rule matched anywhere — the variant then is the
    original transaction).
    """
    current = transaction
    trail: list[str] = []
    for _ in range(steps):
        options = applicable_rewrites(current, rules)
        if not options:
            break
        position, rule, replacement = rng.choice(options)
        current = rewrite_transaction(current, position, rule, replacement)
        trail.append(rule.name)
    return current, trail


def equivalent_pair(
    relation: Relation,
    rng: random.Random,
    length: int = 6,
    domain: Sequence[object] = (0, 1, 2),
    steps: int = 3,
) -> tuple[Transaction, Transaction, list[str]]:
    """A random transaction and a KV-equivalent variant of it."""
    t1 = random_transaction(relation, rng, length=length, domain=domain)
    t2, trail = random_equivalent_variant(t1, rng, steps=steps)
    return t1, t2, trail


def exhaustive_variants(
    transaction: Transaction,
    max_depth: int = 2,
    rules: Sequence[KVRule] = ALL_KV_RULES,
    limit: int = 200,
) -> list[Transaction]:
    """All transactions reachable in at most ``max_depth`` rewrites."""
    seen = {transaction}
    frontier = [transaction]
    for _ in range(max_depth):
        next_frontier: list[Transaction] = []
        for txn in frontier:
            for position, rule, replacement in applicable_rewrites(txn, rules):
                variant = rewrite_transaction(txn, position, rule, replacement)
                if variant not in seen:
                    seen.add(variant)
                    next_frontier.append(variant)
                    if len(seen) >= limit:
                        return list(seen)
        frontier = next_frontier
    return list(seen)
