"""The sharded engine: N independent shard engines behind one surface.

:class:`ShardedEngine` hash-partitions every relation across ``n_shards``
independent shard :class:`~repro.engine.engine.Engine`\\ s — each with its
own :class:`~repro.store.annotation_store.AnnotationStore`, and its own
write-ahead directory when the deployment is durable — and routes every
update through :func:`repro.shard.router.route_query`: an indexable
equality on the shard-key position visits exactly one shard, anything
else broadcasts.  Because shards hold disjoint row sets and receive
their queries in global order, the merged final state and provenance are
bit-identical to the unsharded engine (asserted across policies in
``tests/shard``).

Transaction ends are routed too: only the shards a transaction's queries
touched flush (``normal_form_batch``) and journal the boundary.  That is
semantically lossless — an untouched shard's annotations are exactly as
normalized as they were at its previous boundary, and normalization is a
pure, idempotent function of the stored expression, so the next
observation flush lands on identical normal forms — and it is where
sequential sharding pays even on one core: the unsharded flush walks the
*whole* support at every transaction end, the sharded flush only the
touched shard's fraction.

Two executor backends sit behind the coordinator:

* the **same-process sequential backend** (``parallel=False``, the
  reference): shard engines are ordinary in-process objects, applied in
  shard order; supports every value type the unsharded engine does;
* the **process-pool backend** (``parallel=True``): one worker process
  per shard (:mod:`repro.shard.worker`), updates shipped as the journal's
  replay vocabulary and state returned as re-interned ``exprjson``
  captures (:mod:`repro.shard.codec`).  Routed runs accumulate in
  per-shard buffers and drain to all touched workers at once, so shards
  chew their runs concurrently; the codec restricts constants to the
  JSON scalars update logs serialize anyway.

Merged statistics: the coordinator owns the *logical* stream counters
(``queries``, per-kind counts, ``transactions``, ``wall_time``,
``per_query_time``) — a broadcast counts once — while additive work
counters (``rows_matched``, ``rows_created``, planner counters, batch
counters, ``checkpoint_time``) are summed over the shards' own stats, so
a broadcast honestly reports the matching work of every shard it
visited.  Per-shard planner counters are summed, never copied.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping

from ..core.expr import Expr, ZERO, evaluate, register_expr_roots
from ..db.database import Database
from ..engine.engine import Engine
from ..engine.stats import EngineStats
from ..errors import EngineError
from ..queries.updates import Transaction, UpdateQuery
from ..wal.checkpoint import DEFAULT_EVERY_RECORDS
from ..wal.engine import JournaledEngine
from .codec import Capture, capture_engine
from .partition import ShardMap, partition_database
from .router import route_query

__all__ = ["ShardedEngine", "SHARDABLE_POLICIES", "MANIFEST_FILE", "shard_directory"]

#: Policies a ShardedEngine accepts: everything sitting on the shared
#: annotation store.  The MV baselines keep executor-private version
#: state with no defined cross-process capture, so they stay unsharded.
SHARDABLE_POLICIES = (
    "none",
    "no_provenance",
    "naive",
    "no_axioms",
    "normal_form",
    "normal_form_batch",
)

MANIFEST_FILE = "shards.json"


def shard_directory(base: str | Path, shard: int) -> Path:
    """The per-shard durable directory inside a sharded deployment."""
    return Path(base) / f"shard-{shard:02d}"


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class _LocalShards:
    """Same-process sequential backend: the reference implementation."""

    parallel = False

    def __init__(self, engines: list[Engine]):
        self.engines = engines

    def apply_item(self, shard: int, item, batch: bool = False) -> None:
        engine = self.engines[shard]
        if batch:
            engine.apply_batch(item)
        else:
            engine.apply(item)

    def drain(self) -> None:
        """No buffering: every apply already ran."""

    def captures(self) -> list[Capture]:
        return [capture_engine(engine) for engine in self.engines]

    def stats_snapshots(self) -> list[dict]:
        return [engine.stats.snapshot() for engine in self.engines]

    def annotation_of(self, shard: int, relation: str, row: tuple) -> Expr:
        return self.engines[shard].annotation_of(relation, row)

    def checkpoint(self) -> int:
        return sum(
            1
            for engine in self.engines
            if isinstance(engine, JournaledEngine) and engine.checkpoint()
        )

    def close(self, checkpoint: bool = True) -> None:
        for engine in self.engines:
            if isinstance(engine, JournaledEngine) and not engine.journal.closed:
                engine.close(checkpoint=checkpoint)


class _ProcessShards:
    """Process-pool backend: one worker per shard, driven over pipes.

    Updates buffer per shard and drain to every touched worker in one
    round — all sends first, then all receives — so the workers apply
    their runs concurrently while the coordinator waits once.
    """

    parallel = True

    #: Buffered events across all shards that force a drain.  Large enough
    #: to amortize a pipe round-trip over many queries, small enough to
    #: keep workers busy during long ingest phases.
    FLUSH_EVENTS = 1024

    def __init__(self, payloads: list[dict]):
        import multiprocessing

        from .worker import shard_worker_main

        method = (
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        context = multiprocessing.get_context(method)
        self._connections = []
        self._processes = []
        self._closed = False
        self._broken = False
        for payload in payloads:
            parent, child = context.Pipe()
            process = context.Process(
                target=shard_worker_main, args=(child, payload), daemon=True
            )
            process.start()
            child.close()
            self._connections.append(parent)
            self._processes.append(process)
        self._pending: list[list] = [[] for _ in payloads]
        self._batch = False
        self._stats: list[dict] = [{} for _ in payloads]
        self.recoveries: list[dict | None] = []
        self.tuple_vars: list[list] = []
        try:
            for shard in range(len(payloads)):
                body = self._receive(shard)
                self._stats[shard] = body["stats"]
                self.recoveries.append(body.get("recovery"))
                self.tuple_vars.append(body.get("tuple_vars", []))
        except Exception:
            self._abort()
            raise

    # -- protocol plumbing ----------------------------------------------------

    def _receive(self, shard: int) -> dict:
        try:
            status, body = self._connections[shard].recv()
        except (EOFError, OSError) as exc:
            self._broken = True
            raise EngineError(f"shard worker {shard} died: {exc}") from exc
        if status != "ok":
            self._broken = True
            detail = body.get("traceback") or body.get("message")
            raise EngineError(f"shard worker {shard} failed: {detail}")
        return body

    def _round(self, shards: list[int], command: str, body) -> list[dict]:
        """Send one command to ``shards``, then collect every response."""
        if self._broken or self._closed:
            raise EngineError("shard worker pool is closed or failed")
        for shard in shards:
            self._connections[shard].send((command, body))
        return [self._receive(shard) for shard in shards]

    # -- backend interface ----------------------------------------------------

    def apply_item(self, shard: int, item, batch: bool = False) -> None:
        from .codec import items_to_events

        if batch is not self._batch and any(self._pending):
            self.drain()
        self._batch = batch
        items = item if isinstance(item, list) else [item]
        self._pending[shard].extend(items_to_events(items))
        if sum(len(events) for events in self._pending) >= self.FLUSH_EVENTS:
            self.drain()

    def drain(self) -> None:
        targets = [shard for shard, events in enumerate(self._pending) if events]
        if not targets:
            return
        if self._broken or self._closed:
            raise EngineError("shard worker pool is closed or failed")
        for shard in targets:
            self._connections[shard].send(
                ("apply", {"events": self._pending[shard], "batch": self._batch})
            )
            self._pending[shard] = []
        for shard in targets:
            self._stats[shard] = self._receive(shard)["stats"]

    def captures(self) -> list[Capture]:
        from .codec import decode_capture

        self.drain()
        out = []
        for shard, body in enumerate(
            self._round(list(range(len(self._connections))), "capture", None)
        ):
            self._stats[shard] = body["stats"]
            out.append(decode_capture(body["state"]))
        return out

    def stats_snapshots(self) -> list[dict]:
        self.drain()
        return [dict(snapshot) for snapshot in self._stats]

    def checkpoint(self) -> int:
        self.drain()
        written = 0
        for shard, body in enumerate(
            self._round(list(range(len(self._connections))), "checkpoint", None)
        ):
            self._stats[shard] = body["stats"]
            written += int(body["written"])
        return written

    def close(self, checkpoint: bool = True) -> None:
        if self._closed:
            return
        try:
            if not self._broken:
                self.drain()
                for shard, body in enumerate(
                    self._round(
                        list(range(len(self._connections))),
                        "close",
                        {"checkpoint": checkpoint},
                    )
                ):
                    self._stats[shard] = body["stats"]
        finally:
            self._closed = True
            self._abort()

    def _abort(self) -> None:
        for connection in self._connections:
            connection.close()
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------


class ShardedEngine:
    """Applies hyperplane updates across hash-partitioned shard engines.

    Presents the :class:`~repro.engine.engine.Engine` surface — apply /
    apply_batch, result / provenance / specialization, measurements,
    merged ``stats`` — over ``n_shards`` independent shard engines.  See
    the module docstring for routing, backends and the merged-statistics
    contract, and :func:`repro.shard.recovery.recover_sharded` for
    resuming a durable deployment.
    """

    def __init__(
        self,
        database: Database,
        n_shards: int = 4,
        policy: str = "normal_form",
        annotate: Callable[[str, tuple, int], str] | None = None,
        shard_keys: Mapping[str, int | str] | None = None,
        parallel: bool = False,
        journal_dir: str | Path | None = None,
        sync: str = "flush",
        checkpoint_every: int = DEFAULT_EVERY_RECORDS,
        sweep_every: int = 0,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if policy not in SHARDABLE_POLICIES:
            raise EngineError(
                f"policy {policy!r} cannot be sharded "
                f"(shardable: {', '.join(SHARDABLE_POLICIES)})"
            )
        self.policy = policy
        self.schema = database.schema
        self.shard_map = ShardMap(database.schema, n_shards, shard_keys)
        self.parallel = parallel
        self.journaled = journal_dir is not None
        self.recovery = None
        self.sweep_every = sweep_every
        self._clock = clock
        self._stats = EngineStats()
        self._applied: list[UpdateQuery] = []
        self._capture_cache: Capture | None = None
        self._tuple_vars = self._assign_tuple_vars(database, annotate)
        parts = partition_database(database, self.shard_map)
        if journal_dir is not None:
            Path(journal_dir).mkdir(parents=True, exist_ok=True)
        self._backend = self._build_backend(
            parts, journal_dir, sync, checkpoint_every, parallel, sweep_every
        )
        # Coordinator-side sweep roots: sequential shard stores register
        # themselves; the merged-capture cache is the extra root only the
        # coordinator holds (readers may still be using it).
        register_expr_roots(self)
        if journal_dir is not None:
            # Written only after every shard directory initialized cleanly.
            write_manifest(
                journal_dir,
                self.shard_map,
                policy=policy,
                sync=sync,
                checkpoint_every=checkpoint_every,
            )

    @classmethod
    def _resumed(
        cls,
        shard_map: ShardMap,
        backend,
        policy: str,
        tuple_vars: dict[str, dict[tuple, str]],
        recovery,
        sweep_every: int = 0,
        clock: Callable[[], float] = time.perf_counter,
    ) -> "ShardedEngine":
        """Assemble an engine around already-recovered shards."""
        engine = object.__new__(cls)
        engine.policy = policy
        engine.schema = shard_map.schema
        engine.shard_map = shard_map
        engine.parallel = backend.parallel
        engine.journaled = True
        engine.recovery = recovery
        engine.sweep_every = sweep_every
        engine._clock = clock
        # Logical coordinator counters restart on recovery; the additive
        # per-shard counters (matching work, planner decisions) continue
        # from their restored baselines and are what ``stats`` sums.
        engine._stats = EngineStats()
        engine._applied = []
        engine._capture_cache = None
        engine._tuple_vars = tuple_vars
        engine._backend = backend
        register_expr_roots(engine)
        return engine

    # -- construction helpers -------------------------------------------------

    def _assign_tuple_vars(
        self, database: Database, annotate
    ) -> dict[str, dict[tuple, str]]:
        """Pre-assign initial-tuple annotation names, coordinator-side.

        Mirrors :class:`~repro.engine.executors.AnnotatedExecutor` exactly
        — one global counter over relations in schema order, rows sorted
        by ``repr`` — so shard engines, each seeing only its partition,
        still assign the very names the unsharded engine would.
        """
        if self.policy in ("none", "no_provenance"):
            return {}
        namer = annotate or (lambda relation, row, i: f"x{i}")
        names: dict[str, dict[tuple, str]] = {}
        counter = 0
        for name in database.relations():
            per_relation: dict[tuple, str] = {}
            for row in sorted(database.rows(name), key=repr):
                counter += 1
                per_relation[row] = namer(name, row, counter)
            names[name] = per_relation
        return names

    def _build_backend(
        self, parts, journal_dir, sync, checkpoint_every, parallel, sweep_every=0
    ):
        names = self._tuple_vars
        if not parallel:
            shard_annotate = (
                (lambda relation, row, _i: names[relation][row]) if names else None
            )
            engines: list[Engine] = []
            for shard, part in enumerate(parts):
                if journal_dir is not None:
                    engines.append(
                        JournaledEngine(
                            part,
                            shard_directory(journal_dir, shard),
                            policy=self.policy,
                            annotate=shard_annotate,
                            sync=sync,
                            checkpoint_every=checkpoint_every,
                            clock=self._clock,
                        )
                    )
                else:
                    engines.append(
                        Engine(
                            part,
                            policy=self.policy,
                            annotate=shard_annotate,
                            clock=self._clock,
                        )
                    )
            return _LocalShards(engines)
        payloads = []
        for shard, part in enumerate(parts):
            payload: dict[str, object] = {
                "policy": self.policy,
                "schema": {r.name: list(r.attributes) for r in self.schema},
                "rows": {name: sorted(part.rows(name), key=repr) for name in part.relations()},
                "names": [
                    [relation, row, names[relation][row]]
                    for relation in names
                    for row in part.rows(relation)
                ],
            }
            if journal_dir is not None:
                payload["journal"] = {
                    "directory": str(shard_directory(journal_dir, shard)),
                    "sync": sync,
                    "checkpoint_every": checkpoint_every,
                }
            if sweep_every:
                # Workers own their process-local intern tables; each
                # sweeps on its own apply cadence (see shard.worker).
                payload["sweep_every"] = sweep_every
            payloads.append(payload)
        return _ProcessShards(payloads)

    # -- applying updates -----------------------------------------------------

    def apply(self, item: UpdateQuery | Transaction | Iterable) -> "ShardedEngine":
        """Route and apply a query, a transaction, or any iterable of those."""
        if isinstance(item, UpdateQuery):
            self._apply_query(item, batch=False)
        elif isinstance(item, Transaction):
            self._apply_transaction(item, batch=False)
        elif isinstance(item, Iterable) and not isinstance(item, (str, bytes)):
            for element in item:
                self.apply(element)
        else:
            raise EngineError(f"cannot apply {type(item).__name__}")
        return self

    def apply_batch(self, item: UpdateQuery | Transaction | Iterable) -> "ShardedEngine":
        """Route through the shards' batched pipelines.

        Maximal segments of top-level queries accumulate into per-shard
        runs shipped through each shard engine's
        :meth:`~repro.engine.engine.Engine.apply_batch` (which fuses
        same-relation runs internally); transactions flush the pending
        segment first, exactly as runs never straddle transaction
        boundaries in the unsharded pipeline.
        """
        buckets: dict[int, list[UpdateQuery]] = {}
        kinds: list[str] = []

        def flush_segment() -> None:
            if not buckets:
                return
            start = self._clock()
            for shard in sorted(buckets):
                self._backend.apply_item(shard, buckets[shard], batch=True)
            self._record(kinds, self._clock() - start)
            buckets.clear()
            kinds.clear()

        def feed(item) -> None:
            if isinstance(item, UpdateQuery):
                for shard in route_query(item, self.shard_map):
                    buckets.setdefault(shard, []).append(item)
                kinds.append(item.kind)
                self._applied.append(item)
            elif isinstance(item, Transaction):
                flush_segment()
                self._apply_transaction(item, batch=True)
            elif isinstance(item, Iterable) and not isinstance(item, (str, bytes)):
                for element in item:
                    feed(element)
            else:
                raise EngineError(f"cannot apply {type(item).__name__}")

        feed(item)
        flush_segment()
        self._capture_cache = None
        return self

    def _apply_query(self, query: UpdateQuery, batch: bool) -> None:
        shards = route_query(query, self.shard_map)
        start = self._clock()
        for shard in shards:
            self._backend.apply_item(shard, query, batch=batch)
        self._record([query.kind], self._clock() - start)
        self._applied.append(query)
        self._capture_cache = None

    def _apply_transaction(self, txn: Transaction, batch: bool) -> None:
        buckets: dict[int, list[UpdateQuery]] = {}
        for query in txn:
            for shard in route_query(query, self.shard_map):
                buckets.setdefault(shard, []).append(query)
        start = self._clock()
        # Transaction ends route with their queries: only touched shards
        # flush and journal the boundary (see module docstring).
        for shard in sorted(buckets):
            self._backend.apply_item(
                shard, Transaction(txn.name, buckets[shard]), batch=batch
            )
        self._record([query.kind for query in txn], self._clock() - start)
        self._stats.transactions += 1
        self._applied.extend(txn.queries)
        self._capture_cache = None

    def _record(self, kinds: list[str], elapsed: float) -> None:
        """Logical per-query accounting; row counts live in shard stats."""
        if not kinds:
            return
        share = elapsed / len(kinds)
        for kind in kinds:
            self._stats.record(kind, 0, 0, share)

    @property
    def applied_queries(self) -> tuple[UpdateQuery, ...]:
        return tuple(self._applied)

    # -- merged observation ---------------------------------------------------

    def _merged(self) -> Capture:
        """The row-keyed union of every shard's captured state (cached)."""
        if self._capture_cache is None:
            self._backend.drain()
            merged: Capture = {name: {} for name in self.schema.names}
            for capture in self._backend.captures():
                for name, rows in capture.items():
                    merged[name].update(rows)
            self._capture_cache = merged
        return self._capture_cache

    def expr_roots(self):
        """Sweep roots only the coordinator holds: the merged-capture cache.

        Sequential shard stores register themselves; the process-pool
        workers sweep their own intern tables.  What neither covers is the
        cached merged capture — decoded (re-interned) expressions readers
        may still reference between an observation and the next apply.
        """
        cache = self._capture_cache
        if cache is None:
            return
        for rows in cache.values():
            for ann, _live in rows.values():
                if ann is not None:
                    yield ann

    def _relation_state(self, relation: str) -> dict[tuple, tuple[Expr | None, bool]]:
        merged = self._merged()
        if relation not in merged:
            raise EngineError(f"unknown relation {relation!r}")
        return merged[relation]

    def state(self) -> dict[str, dict[tuple, tuple[Expr | None, bool]]]:
        """A detached ``{relation: {row: (expression, live)}}`` capture.

        The sharded analogue of
        :meth:`~repro.store.annotation_store.AnnotationStore.state` —
        always expression-valued (``None`` for the vanilla policy),
        whatever the shard executors store internally.
        """
        return {name: dict(rows) for name, rows in self._merged().items()}

    def result(self) -> Database:
        """The live contents under standard set semantics."""
        db = Database(self.schema)
        for name, rows in self._merged().items():
            db.extend(name, (row for row, (_expr, live) in rows.items() if live))
        return db

    def live_rows(self, relation: str) -> set[tuple[object, ...]]:
        return {
            row
            for row, (_expr, live) in self._relation_state(relation).items()
            if live
        }

    def provenance(self, relation: str) -> Iterator[tuple[tuple, Expr, bool]]:
        """``(row, provenance expression, live)`` for every stored row.

        Rows come shard by shard (ascending shard, insertion order within
        each); the unsharded engine's global insertion order is not
        preserved across shards.
        """
        for row, (expr, live) in self._relation_state(relation).items():
            yield row, (ZERO if expr is None else expr), live

    def annotation_of(self, relation: str, row: Iterable[object]) -> Expr:
        """The provenance expression of one row (0 if never stored).

        On the sequential backend this is the home shard's O(1) row-keyed
        probe.  On the process pool a probe costs a capture round-trip,
        so it goes through the merged capture instead — one full capture,
        cached until the next update, so per-row probe loops pay O(total)
        once rather than O(shard) per probe.
        """
        target = tuple(row)
        shard = self.shard_map.shard_of_row(relation, target)
        if self._backend.parallel:
            entry = self._relation_state(relation).get(target)
            return ZERO if entry is None or entry[0] is None else entry[0]
        return self._backend.annotation_of(shard, relation, target)

    def tuple_var(self, relation: str, row: Iterable[object]) -> str | None:
        return self._tuple_vars.get(relation, {}).get(tuple(row))

    def tuple_var_names(self) -> frozenset[str]:
        return frozenset(
            name for names in self._tuple_vars.values() for name in names.values()
        )

    # -- measurements ---------------------------------------------------------

    def support_count(self) -> int:
        return sum(len(rows) for rows in self._merged().values())

    def live_count(self) -> int:
        return sum(
            1
            for rows in self._merged().values()
            for (_expr, live) in rows.values()
            if live
        )

    def provenance_size(self) -> int:
        return sum(
            expr.size()
            for rows in self._merged().values()
            for (expr, _live) in rows.values()
            if expr is not None
        )

    def provenance_dag_size(self) -> int:
        """Distinct expression nodes across the *merged* provenance.

        One shared visited set across every shard's rows, so a node two
        shards both reference (they are identical objects, re-interned at
        the coordinator) counts once — exactly the unsharded metric, not
        a sum of per-shard DAG sizes.
        """
        seen: set[int] = set()
        stack: list[Expr] = []
        for rows in self._merged().values():
            for expr, _live in rows.values():
                if expr is None or id(expr) in seen:
                    continue
                stack.append(expr)
                while stack:
                    node = stack.pop()
                    if id(node) in seen:
                        continue
                    seen.add(id(node))
                    stack.extend(c for c in node.children if id(c) not in seen)
        return len(seen)

    @property
    def stats(self) -> EngineStats:
        """Merged statistics (see the module docstring for the contract)."""
        merged = EngineStats()
        local = self._stats
        for key in ("queries", "inserts", "deletes", "modifies", "transactions"):
            setattr(merged, key, getattr(local, key))
        merged.wall_time = local.wall_time
        merged.per_query_time = list(local.per_query_time)
        snapshots = self._backend.stats_snapshots()
        for key in (
            "rows_matched",
            "rows_created",
            "batches",
            "batched_queries",
            "index_hits",
            "fallback_scans",
            "index_rows_examined",
        ):
            setattr(merged, key, sum(int(s.get(key, 0)) for s in snapshots))
        merged.batch_time = sum(float(s.get("batch_time", 0.0)) for s in snapshots)
        merged.checkpoint_time = sum(
            float(s.get("checkpoint_time", 0.0)) for s in snapshots
        )
        return merged

    def shard_stats(self) -> list[dict]:
        """Each shard engine's own counter snapshot, in shard order."""
        return self._backend.stats_snapshots()

    overhead_report = Engine.overhead_report

    # -- specialization -------------------------------------------------------

    def specialize(
        self,
        structure,
        env: Mapping[str, object] | Callable[[str], object],
    ) -> dict[str, dict[tuple, object]]:
        """Evaluate every stored annotation in a concrete Update-Structure."""
        if self.policy in ("none", "no_provenance"):
            raise EngineError(f"policy {self.policy!r} does not track provenance")
        return {
            name: {
                row: evaluate(expr, structure, env)
                for row, (expr, _live) in rows.items()
            }
            for name, rows in self._merged().items()
        }

    def specialized_database(
        self,
        structure,
        env: Mapping[str, object] | Callable[[str], object],
    ) -> Database:
        """The database whose rows have non-zero specialized value."""
        values = self.specialize(structure, env)
        db = Database(self.schema)
        zero = structure.zero
        for name, rows in values.items():
            db.extend(name, (row for row, value in rows.items() if value != zero))
        return db

    # -- durability -----------------------------------------------------------

    def checkpoint(self) -> int:
        """Coordinated checkpoint: every journaled shard snapshots now.

        Returns the number of shards that wrote one.  Each shard also
        checkpoints on its own thresholds as records accumulate, exactly
        like a standalone :class:`~repro.wal.engine.JournaledEngine`.
        """
        if not self.journaled:
            raise EngineError("engine is not journaled; pass journal_dir=")
        self._backend.drain()
        return self._backend.checkpoint()

    def close(self, checkpoint: bool = True) -> None:
        """Flush pending work, checkpoint journaled shards, stop workers."""
        self._backend.close(checkpoint=checkpoint and self.journaled)

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, exc_type, *_exc) -> None:
        # Mirrors JournaledEngine: an exception mid-work is a crash — keep
        # the journal tails so recovery replays them.
        self.close(checkpoint=exc_type is None)


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------


def write_manifest(
    directory: str | Path,
    shard_map: ShardMap,
    policy: str,
    sync: str,
    checkpoint_every: int,
) -> Path:
    """Persist the deployment topology next to the shard directories.

    Atomic (temp file + ``os.replace``), like every other durable write:
    a crash mid-write must not leave a torn manifest blocking recovery of
    otherwise-intact shard directories.
    """
    path = Path(directory) / MANIFEST_FILE
    payload = {
        "version": 1,
        "policy": policy,
        "sync": sync,
        "checkpoint_every": checkpoint_every,
        **shard_map.as_dict(),
    }
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return path
