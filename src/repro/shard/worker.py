"""The shard worker process: one engine, driven over a pipe.

A worker owns exactly one shard's :class:`~repro.engine.engine.Engine`
(or :class:`~repro.wal.engine.JournaledEngine` when the deployment is
durable) and executes a tiny request/response protocol over a
:mod:`multiprocessing` pipe::

    ("apply",      {"events": [...], "batch": bool})  -> ("ok", {"stats": ...})
    ("capture",    None)   -> ("ok", {"state": ..., "stats": ...})
    ("checkpoint", None)   -> ("ok", {"written": int, "stats": ...})
    ("close",      {"checkpoint": bool})              -> ("ok", {}) and exit

Updates arrive as the shared replay vocabulary (see
:mod:`repro.shard.codec`) and are regrouped with
:func:`repro.workloads.logs.log_from_events`, so per-shard transaction
hooks — the ``normal_form_batch`` flush, the journal's ``txn_end``
records — fire at exactly the event positions the coordinator routed.
Any exception is caught and reported as ``("error", {...})``; the worker
keeps serving, leaving shutdown decisions to the coordinator.

Workers are started through the ``fork`` context where available (they
inherit the warm interned-expression table; new nodes interned afterwards
diverge per process, which is why state only ever crosses back through
the :mod:`repro.shard.codec` re-interning decoder) and fall back to
``spawn`` elsewhere — the init payload is deliberately plain data so both
start methods work.
"""

from __future__ import annotations

import traceback

from ..core.expr import set_intern_gc, sweep_intern_table
from ..db.database import Database
from ..db.schema import Relation, Schema
from ..engine.engine import Engine
from ..wal.engine import JournaledEngine
from ..wal.recovery import recover
from ..workloads.logs import log_from_events
from .codec import (
    capture_engine,
    decode_events,
    encode_capture,
    encode_tuple_vars,
)

__all__ = ["shard_worker_main"]


def _build_engine(payload: dict) -> Engine:
    """Construct the worker's engine from the (plain-data) init payload."""
    resume = payload.get("recover")
    if resume is not None:
        return recover(
            resume["directory"],
            sync=resume["sync"],
            checkpoint_every=resume["checkpoint_every"],
        )
    schema = Schema(
        Relation(name, attrs) for name, attrs in payload["schema"].items()
    )
    database = Database(schema)
    for name, rows in payload["rows"].items():
        database.extend(name, rows)
    names = {
        (relation, tuple(row)): name
        for relation, row, name in payload.get("names", ())
    }
    annotate = (lambda relation, row, _i: names[(relation, row)]) if names else None
    journal = payload.get("journal")
    if journal is not None:
        return JournaledEngine(
            database,
            journal["directory"],
            policy=payload["policy"],
            annotate=annotate,
            sync=journal["sync"],
            checkpoint_every=journal["checkpoint_every"],
        )
    return Engine(database, policy=payload["policy"], annotate=annotate)


def _engine_payload(engine: Engine) -> dict:
    """The build/recover acknowledgement body."""
    out: dict[str, object] = {"stats": engine.stats.snapshot()}
    recovery = getattr(engine, "recovery", None)
    out["recovery"] = recovery.as_dict() if recovery is not None else None
    out["tuple_vars"] = encode_tuple_vars(
        getattr(engine.executor, "_tuple_vars", {})
    )
    return out


def shard_worker_main(conn, payload: dict) -> None:
    """Process entry point: build the engine, then serve until ``close``."""
    sweep_every = int(payload.get("sweep_every") or 0)
    try:
        if sweep_every:
            # Before the engine interns anything: the worker is its own
            # process with its own intern table, so reclaimable interning
            # must be switched on here, not at the coordinator.  The
            # engine's annotation store registers itself as the sweep
            # root provider on construction.
            set_intern_gc(True)
        engine = _build_engine(payload)
        conn.send(("ok", _engine_payload(engine)))
    except BaseException as exc:  # noqa: BLE001 - shipped to the coordinator
        conn.send(("error", _error_body(exc)))
        conn.close()
        return
    applies = 0
    while True:
        try:
            command, body = conn.recv()
        except (EOFError, OSError):
            break  # coordinator vanished; daemon worker just exits
        try:
            if command == "apply":
                items = log_from_events(decode_events(body["events"])).items
                if body.get("batch"):
                    engine.apply_batch(items)
                else:
                    engine.apply(items)
                applies += 1
                if sweep_every and applies % sweep_every == 0:
                    # Between commands the worker is quiescent — the only
                    # thread that interns here is this one, and it is not
                    # mid-apply — so the sweep contract holds per worker.
                    sweep_intern_table()
                conn.send(("ok", {"stats": engine.stats.snapshot()}))
            elif command == "capture":
                conn.send(
                    (
                        "ok",
                        {
                            # Arena wire form: shared structure crosses the
                            # process boundary once per capture, not per row.
                            "state": encode_capture(capture_engine(engine), arena=True),
                            "stats": engine.stats.snapshot(),
                        },
                    )
                )
            elif command == "checkpoint":
                written = 0
                if isinstance(engine, JournaledEngine):
                    written = int(engine.checkpoint())
                conn.send(("ok", {"written": written, "stats": engine.stats.snapshot()}))
            elif command == "close":
                if isinstance(engine, JournaledEngine):
                    engine.close(checkpoint=bool(body.get("checkpoint", True)))
                conn.send(("ok", {"stats": engine.stats.snapshot()}))
                break
            else:
                conn.send(("error", {"message": f"unknown command {command!r}"}))
        except BaseException as exc:  # noqa: BLE001 - shipped to the coordinator
            conn.send(("error", _error_body(exc)))
    conn.close()


def _error_body(exc: BaseException) -> dict:
    return {
        "message": f"{type(exc).__name__}: {exc}",
        "traceback": traceback.format_exc(),
    }
