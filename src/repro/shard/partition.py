"""Hash partitioning of relations across shards.

Every relation designates one *shard-key position* (default: position 0,
the leading key column of every shipped workload; the synthetic workload
shards on ``grp``).  A row lives in the shard selected by a **stable
hash** of its shard-key value — stable meaning *deterministic across
processes and sessions*, which ``hash(str)`` is not (``PYTHONHASHSEED``)
and ``id``-derived hashes are not either.  Routing (``repro.shard.router``)
hashes pattern constants with the same function, so a pattern equality on
the shard key lands on exactly the shard holding every row it can match.

The partitioning invariant the router and the executors rely on:

    a row ``t`` of relation ``R`` is stored in shard
    ``stable_hash(t[key(R)]) % n_shards`` and nowhere else, at every
    point of the update history.

Inserts preserve it by construction (routed by the new row's key value);
deletions never move rows; and modifications preserve it because a
modification that does not assign the shard-key position maps every
source onto an image with the *same* key value — the router rejects the
one query form that could break it (a ``Modify`` assigning the shard key
to a different constant, see :func:`repro.shard.router.route_query`).
"""

from __future__ import annotations

import numbers
import zlib
from typing import Mapping

from ..db.database import Database
from ..db.schema import Schema
from ..errors import EngineError

__all__ = ["ShardMap", "routable", "stable_hash", "partition_database"]


def stable_hash(value: object) -> int:
    """A process- and session-independent hash, consistent with ``==``.

    * numbers — every :class:`numbers.Number`, so ``bool``/``int``/
      ``float`` but also ``Decimal``/``Fraction``/``complex`` — use the
      built-in numeric hash, which is seed-free (the modular-prime
      scheme) and agrees across numeric types exactly as pattern
      matching's ``==`` does (``True == 1 == 1.0 == Decimal(1)`` must all
      land on one shard); NaNs, whose built-in hash is id-derived since
      Python 3.10, and numerics whose hash/comparison raises are pinned
      to one bucket;
    * ``str``/``bytes`` use CRC-32 of their bytes (``hash()`` of text is
      randomized per process);
    * ``None`` is pinned (its built-in hash is id-derived before 3.12);
    * anything else falls back to CRC-32 of ``repr``.  The fallback is
      deterministic but not ``==``-consistent across spellings (``(1,)``
      equals ``(1.0,)``, their reprs differ), which is why the router
      only ever *routes* on :func:`routable` values and broadcasts the
      rest — broadcasts are always correct on disjoint shards.
    """
    if value is None:
        return 0
    if isinstance(value, numbers.Number):
        try:
            if value == value:  # NaNs are the one self-unequal numeric
                return hash(value)
        except Exception:  # signaling NaNs raise on comparison/hashing
            pass
        return 1
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, bytes):
        return zlib.crc32(value)
    return zlib.crc32(repr(value).encode("utf-8"))


def routable(value: object) -> bool:
    """True for values :func:`stable_hash` hashes ``==``-consistently.

    Only these may *route* a pattern equality to a single shard; an
    equality on any other constant — unhashable, or hashable with a
    repr-based fallback hash, or a NaN (``==``-degenerate) — must
    broadcast instead.
    """
    if value is None or isinstance(value, (str, bytes)):
        return True
    if isinstance(value, numbers.Number):
        try:
            return bool(value == value)  # NaN equalities can match nothing
        except Exception:
            return False
    return False


class ShardMap:
    """Shard count plus the shard-key position of every relation."""

    __slots__ = ("schema", "n_shards", "key_positions")

    def __init__(
        self,
        schema: Schema,
        n_shards: int,
        shard_keys: Mapping[str, int | str] | None = None,
    ):
        if n_shards < 1:
            raise EngineError(f"n_shards must be >= 1, got {n_shards}")
        self.schema = schema
        self.n_shards = n_shards
        self.key_positions: dict[str, int] = {}
        keys = dict(shard_keys or {})
        for relation in schema:
            key = keys.pop(relation.name, 0)
            position = relation.index_of(key) if isinstance(key, str) else int(key)
            if not 0 <= position < relation.arity:
                raise EngineError(
                    f"shard key position {position} out of range for "
                    f"{relation.name!r} (arity {relation.arity})"
                )
            self.key_positions[relation.name] = position
        if keys:
            raise EngineError(f"shard keys name unknown relations: {sorted(keys)}")

    def key_position(self, relation: str) -> int:
        try:
            return self.key_positions[relation]
        except KeyError:
            raise EngineError(f"unknown relation {relation!r}") from None

    def shard_of_value(self, value: object) -> int:
        """The shard a shard-key *value* belongs to."""
        return stable_hash(value) % self.n_shards

    def shard_of_row(self, relation: str, row: tuple) -> int:
        """The home shard of a row under the partitioning invariant."""
        return self.shard_of_value(row[self.key_position(relation)])

    def as_dict(self) -> dict[str, object]:
        """JSON-ready description (persisted in the sharded manifest)."""
        return {
            "n_shards": self.n_shards,
            "key_positions": dict(self.key_positions),
            "schema": {r.name: list(r.attributes) for r in self.schema},
        }


def partition_database(database: Database, shard_map: ShardMap) -> list[Database]:
    """Split a database into one per-shard database (shared schema).

    The per-shard databases are disjoint and their union is the input —
    asserted by construction, since every row goes to exactly its home
    shard.
    """
    parts = [Database(database.schema) for _ in range(shard_map.n_shards)]
    for name in database.relations():
        for row in database.rows(name):
            parts[shard_map.shard_of_row(name, row)].insert(name, row)
    return parts
