"""Compile update queries into shard routes.

The router makes the same planning decision as
:func:`repro.store.planner.compile_plan`, one level up: instead of asking
*which column indexes can serve this pattern*, it asks *which shards can
hold a row this pattern matches*.  The answer is exact for the one
constraint class the partitioner understands — a *routable* equality
(:func:`repro.shard.partition.routable`: ``None``, numbers, strings,
bytes — the values ``stable_hash`` hashes ``==``-consistently) on the
relation's shard-key position routes to the single shard whose hash
bucket holds every possibly-matching row — and conservatively broadcast
for everything else (variable shard key, disequalities only, or an
equality constant outside the routable class, mirroring the planner's
linear-scan fallback).  A broadcast is always *correct*: shards hold disjoint row
sets, so applying the same hyperplane update to every shard applies it to
exactly the rows the unsharded engine would match.

Modifications get one extra check.  A ``Modify`` that assigns the
shard-key position to a constant different from what its own pattern pins
would move every image row into the assigned constant's shard while the
per-shard executors create the images locally — breaking the partitioning
invariant and, worse, silently splitting contribution merges that the
unsharded semantics performs on one target row.  No shipped workload
produces such a query (TPC-C never reassigns a key prefix column; the
synthetic generator modifies value columns only), so the router rejects
it loudly instead of supporting cross-shard row migration.
"""

from __future__ import annotations

from ..errors import EngineError
from ..queries.updates import Delete, Insert, Modify, UpdateQuery
from .partition import ShardMap, routable

__all__ = ["route_query"]

_MISSING = object()


def route_query(query: UpdateQuery, shard_map: ShardMap) -> tuple[int, ...]:
    """The shards ``query`` must be applied on, in ascending order.

    A one-element tuple is a routed query; the full shard range is a
    broadcast.  Raises :class:`~repro.errors.EngineError` for a
    modification that would re-shard its images (see module docstring).
    """
    position = shard_map.key_position(query.relation)
    if isinstance(query, Insert):
        return (shard_map.shard_of_row(query.relation, query.row),)
    if not isinstance(query, (Delete, Modify)):
        raise EngineError(f"unknown query type {type(query).__name__}")
    pattern = query.pattern
    if isinstance(query, Modify):
        assigned = query.assignments.get(position, _MISSING)
        if assigned is not _MISSING and pattern.eq.get(position, _MISSING) != assigned:
            relation = shard_map.schema.relation(query.relation)
            raise EngineError(
                f"modification {query!r} assigns the shard key "
                f"{relation.attributes[position]!r} of {query.relation!r}; "
                "re-sharding modifications are not supported — shard on a "
                "column the workload never assigns (shard_keys=...)"
            )
    value = pattern.eq.get(position, _MISSING)
    if value is not _MISSING and routable(value):
        return (shard_map.shard_of_value(value),)
    return tuple(range(shard_map.n_shards))
