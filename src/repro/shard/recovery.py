"""Recover a whole sharded deployment from its durable directory.

A durable :class:`~repro.shard.engine.ShardedEngine` leaves behind::

    <dir>/shards.json    topology manifest (shard count, key positions,
                         schema, policy, sync, checkpoint threshold)
    <dir>/shard-00/      a standard JournaledEngine directory
    <dir>/shard-01/      (checkpoint.sqlite + journal.log) per shard
    ...

Shards journal independently — each holds exactly its own routed slice of
the update history, transaction boundaries included — so recovery is
embarrassingly per-shard: every directory goes through the ordinary
:func:`repro.wal.recovery.recover` (newest checkpoint + tail replay), and
the coordinator reassembles the :class:`ShardMap` from the manifest and
the initial-tuple variable names from the shard checkpoints.  There is no
cross-shard ordering to reconstruct because no update ever depended on
another shard's state: the merged recovered state is bit-identical to an
unsharded engine replaying the full history (asserted in
``tests/shard/test_sharded_recovery.py``).

A shard that crashed mid-checkpoint recovers from its previous checkpoint
plus a longer tail; other shards are unaffected — there is deliberately
no global checkpoint barrier to coordinate or to corrupt.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable
import time

from ..db.schema import Relation, Schema
from ..errors import StorageError
from ..wal.recovery import recover
from .codec import decode_tuple_vars
from .engine import (
    MANIFEST_FILE,
    ShardedEngine,
    _LocalShards,
    _ProcessShards,
    shard_directory,
)
from .partition import ShardMap

__all__ = ["ShardedRecoveryReport", "is_sharded_directory", "recover_sharded"]


@dataclass
class ShardedRecoveryReport:
    """Per-shard recovery reports plus deployment-wide totals."""

    policy: str
    n_shards: int
    #: one :meth:`RecoveryReport.as_dict` per shard, in shard order.
    shards: list[dict]

    @property
    def tail_records(self) -> int:
        return sum(int(report["tail_records"]) for report in self.shards)

    @property
    def replayed_queries(self) -> int:
        return sum(int(report["replayed_queries"]) for report in self.shards)

    @property
    def replayed_transactions(self) -> int:
        return sum(int(report["replayed_transactions"]) for report in self.shards)

    @property
    def support_rows(self) -> int:
        return sum(int(report["support_rows"]) for report in self.shards)

    @property
    def live_rows(self) -> int:
        return sum(int(report["live_rows"]) for report in self.shards)

    def as_dict(self) -> dict[str, object]:
        return {
            "policy": self.policy,
            "n_shards": self.n_shards,
            "tail_records": self.tail_records,
            "replayed_queries": self.replayed_queries,
            "replayed_transactions": self.replayed_transactions,
            "support_rows": self.support_rows,
            "live_rows": self.live_rows,
            "shards": list(self.shards),
        }


def is_sharded_directory(directory: str | Path) -> bool:
    """True when ``directory`` holds a sharded-deployment manifest."""
    return (Path(directory) / MANIFEST_FILE).exists()


def read_manifest(directory: str | Path) -> dict:
    path = Path(directory) / MANIFEST_FILE
    if not path.exists():
        raise StorageError(
            f"no sharded manifest in {directory} (expected {MANIFEST_FILE}; "
            "an unsharded directory recovers through repro.wal.recover)"
        )
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"corrupt sharded manifest {path}: {exc}") from exc
    for key in ("policy", "n_shards", "key_positions", "schema"):
        if key not in manifest:
            raise StorageError(f"sharded manifest {path} misses {key!r}")
    return manifest


def recover_sharded(
    directory: str | Path,
    parallel: bool = False,
    sync: str | None = None,
    checkpoint_every: int | None = None,
    sweep_every: int = 0,
    clock: Callable[[], float] = time.perf_counter,
) -> ShardedEngine:
    """Resume the sharded deployment persisted in ``directory``.

    Returns a live :class:`~repro.shard.engine.ShardedEngine` at the
    exact pre-crash merged state, every shard journal reopened, with a
    :class:`ShardedRecoveryReport` on its ``recovery`` attribute.
    ``sync`` / ``checkpoint_every`` default to the manifest's recorded
    settings; ``parallel`` picks the backend the resumed engine runs on
    (shards recover concurrently in their workers when true).
    """
    manifest = read_manifest(directory)
    schema = Schema(
        Relation(name, attrs) for name, attrs in manifest["schema"].items()
    )
    shard_map = ShardMap(
        schema,
        int(manifest["n_shards"]),
        {name: int(pos) for name, pos in manifest["key_positions"].items()},
    )
    policy = str(manifest["policy"])
    sync = str(manifest.get("sync", "flush")) if sync is None else sync
    if checkpoint_every is None:
        checkpoint_every = int(manifest.get("checkpoint_every", 1024))

    if parallel:
        backend = _ProcessShards(
            [
                {
                    "recover": {
                        "directory": str(shard_directory(directory, shard)),
                        "sync": sync,
                        "checkpoint_every": checkpoint_every,
                    },
                    **({"sweep_every": sweep_every} if sweep_every else {}),
                }
                for shard in range(shard_map.n_shards)
            ]
        )
        reports = [dict(report) for report in backend.recoveries]
        tuple_vars: dict[str, dict[tuple, str]] = {}
        for encoded in backend.tuple_vars:
            for relation, names in decode_tuple_vars(encoded).items():
                tuple_vars.setdefault(relation, {}).update(names)
    else:
        engines = [
            recover(
                shard_directory(directory, shard),
                sync=sync,
                checkpoint_every=checkpoint_every,
                clock=clock,
            )
            for shard in range(shard_map.n_shards)
        ]
        backend = _LocalShards(engines)
        reports = [engine.recovery.as_dict() for engine in engines]
        tuple_vars = {}
        for engine in engines:
            for relation, names in getattr(
                engine.executor, "_tuple_vars", {}
            ).items():
                tuple_vars.setdefault(relation, {}).update(names)

    report = ShardedRecoveryReport(
        policy=policy, n_shards=shard_map.n_shards, shards=reports
    )
    return ShardedEngine._resumed(
        shard_map,
        backend,
        policy,
        tuple_vars,
        report,
        sweep_every=sweep_every,
        clock=clock,
    )
