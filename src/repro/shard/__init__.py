"""Horizontal scale: hash-partitioned shards with pattern-routed updates.

* :mod:`repro.shard.partition` — stable hashing, shard-key maps, database
  partitioning (the partitioning invariant);
* :mod:`repro.shard.router` — pattern → shard-set compilation, the
  planner's decision one level up;
* :mod:`repro.shard.engine` — :class:`ShardedEngine` and its two
  backends (same-process sequential reference, process pool);
* :mod:`repro.shard.worker` / :mod:`repro.shard.codec` — the worker
  protocol and the re-interning wire codec;
* :mod:`repro.shard.recovery` — per-shard crash recovery of a whole
  durable deployment.
"""

from .engine import MANIFEST_FILE, SHARDABLE_POLICIES, ShardedEngine, shard_directory
from .partition import ShardMap, partition_database, stable_hash
from .recovery import ShardedRecoveryReport, is_sharded_directory, recover_sharded
from .router import route_query

__all__ = [
    "MANIFEST_FILE",
    "SHARDABLE_POLICIES",
    "ShardMap",
    "ShardedEngine",
    "ShardedRecoveryReport",
    "is_sharded_directory",
    "partition_database",
    "recover_sharded",
    "route_query",
    "shard_directory",
    "stable_hash",
]
