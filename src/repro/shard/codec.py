"""Wire codec between the shard coordinator and its worker processes.

Two vocabularies cross the process boundary, both reusing codecs that
already exist for durability:

* **updates** travel as the :meth:`repro.workloads.logs.UpdateLog.events`
  stream — ``("query", query_to_dict(q))`` / ``("txn_end", name)`` — the
  same replay vocabulary the write-ahead journal records, decoded on the
  worker with :func:`repro.workloads.logs.log_from_events` so transaction
  hooks fire at exactly their event positions;
* **annotated state** travels as
  :meth:`repro.store.annotation_store.AnnotationStore.state`-style
  captures whose expressions are encoded with
  :func:`repro.storage.exprjson.expr_to_dict` — the DAG encoding, so even
  naive-policy expressions ship in space proportional to their DAG size.

Expressions are *never* pickled directly: hash-consed nodes unpickle into
fresh objects, severing the interning identity the bit-identity checks
(and every identity-keyed memo) rely on.  Decoding through the smart
constructors re-interns every node in the receiving process, so a capture
decoded at the coordinator is made of the *same* expression objects an
unsharded engine running there would have built — the honest treatment of
the process-global intern table across worker boundaries (see
``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

from typing import Iterable

from ..core.expr import Expr
from ..engine.engine import Engine
from ..queries.updates import Transaction, UpdateQuery
from ..storage.exprjson import expr_from_dict, expr_to_dict, exprs_from_arena, exprs_to_arena
from ..workloads.logs import query_from_dict, query_to_dict

__all__ = [
    "ARENA_KEY",
    "Capture",
    "capture_engine",
    "decode_capture",
    "decode_events",
    "decode_tuple_vars",
    "encode_capture",
    "encode_tuple_vars",
    "items_to_events",
]

#: Per-relation ``{row: (expression, live)}`` — the row-id-free view the
#: bit-identity checks compare (expression-valued, whatever the policy
#: stores internally; ``None`` for the provenance-free vanilla policy).
Capture = dict[str, dict[tuple, tuple["Expr | None", bool]]]


def items_to_events(
    items: Iterable[UpdateQuery | Transaction],
) -> list[tuple[str, object]]:
    """Encode queries/transactions as a wire-ready event list."""
    events: list[tuple[str, object]] = []
    for item in items:
        if isinstance(item, Transaction):
            for query in item.queries:
                events.append(("query", query_to_dict(query)))
            events.append(("txn_end", item.name))
        elif isinstance(item, UpdateQuery):
            events.append(("query", query_to_dict(item)))
        else:
            raise TypeError(f"cannot encode {type(item).__name__}")
    return events


def decode_events(events: Iterable[tuple[str, object]]) -> list[tuple[str, object]]:
    """Decode wire events back into the ``UpdateLog.events`` vocabulary."""
    return [
        (kind, query_from_dict(payload) if kind == "query" else payload)
        for kind, payload in events
    ]


def capture_engine(engine: Engine) -> Capture:
    """The engine's full annotated state, keyed by row.

    Goes through :meth:`Engine.provenance` so the ``normal_form_batch``
    policy flushes first, exactly as before any other observation.  The
    vanilla policy captures ``None`` annotations (its support is its live
    rows; storing a uniform ``0`` would only inflate the wire payload).
    """
    tracks = engine.executor.tracks_provenance
    capture: Capture = {}
    for name in engine.executor.schema.names:
        capture[name] = {
            row: (expr if tracks else None, live)
            for row, expr, live in engine.provenance(name)
        }
    return capture


#: Marker key of the arena-form capture payload.  Relation names come from
#: schemas and can never collide with it (dunder names are not valid
#: relation identifiers in any shipped workload).
ARENA_KEY = "__arena__"


def encode_capture(capture: Capture, arena: bool = False) -> dict:
    """Pickle-safe capture: rows stay tuples, expressions become node ids.

    Two wire forms, distinguished on decode by the :data:`ARENA_KEY`
    marker:

    * the legacy per-row form — ``{relation: [[row, dag-dict|None, live],
      ...]}`` with one :func:`expr_to_dict` node table per row;
    * the arena form (``arena=True``) — one shared flat node table for
      the whole capture plus integer root ids per row, so bases and
      transaction variables shared across rows ship once.
    """
    if not arena:
        return {
            name: [
                [row, None if expr is None else expr_to_dict(expr), live]
                for row, (expr, live) in rows.items()
            ]
            for name, rows in capture.items()
        }
    exprs: list[Expr | None] = []
    for rows in capture.values():
        exprs.extend(expr for expr, _live in rows.values())
    arena_payload, roots = exprs_to_arena(exprs)
    relations: dict[str, list] = {}
    position = 0
    for name, rows in capture.items():
        encoded = []
        for row, (_expr, live) in rows.items():
            encoded.append([row, roots[position], live])
            position += 1
        relations[name] = encoded
    return {ARENA_KEY: arena_payload, "relations": relations}


def decode_capture(payload: dict) -> Capture:
    """Inverse of :func:`encode_capture` (either form); re-interns every node."""
    if ARENA_KEY in payload:
        relations = payload["relations"]
        roots = [nid for rows in relations.values() for _row, nid, _live in rows]
        exprs = exprs_from_arena(payload[ARENA_KEY], roots)
        capture: Capture = {}
        position = 0
        for name, rows in relations.items():
            decoded: dict[tuple, tuple[Expr | None, bool]] = {}
            for row, _nid, live in rows:
                decoded[tuple(row)] = (exprs[position], bool(live))
                position += 1
            capture[name] = decoded
        return capture
    return {
        name: {
            tuple(row): (None if expr is None else expr_from_dict(expr), bool(live))
            for row, expr, live in rows
        }
        for name, rows in payload.items()
    }


def encode_tuple_vars(tuple_vars: dict[str, dict[tuple, str]]) -> list:
    """``{relation: {row: name}}`` as a pickle-safe triple list."""
    return [
        [relation, row, name]
        for relation, names in tuple_vars.items()
        for row, name in names.items()
    ]


def decode_tuple_vars(payload: Iterable) -> dict[str, dict[tuple, str]]:
    out: dict[str, dict[tuple, str]] = {}
    for relation, row, name in payload:
        out.setdefault(str(relation), {})[tuple(row)] = str(name)
    return out
