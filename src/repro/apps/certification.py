"""Tuple/transaction certification (paper Section 4.1).

Tuples and transactions carry trust scores in ``[0, 1]``; given a minimal
trust level ``L``, the certification structure computes, per output row,
whether it would exist in an execution involving only tuples and
transactions trusted with respect to ``L`` — without re-running anything.
"""

from __future__ import annotations

import time
from typing import Iterable, Mapping

from ..db.database import Database
from ..semantics.trust import TrustStructure, TrustValue
from .base import ProvenanceRun, RowRef

__all__ = ["Certification"]


class Certification(ProvenanceRun):
    """Trust-threshold certification over a tracked update log."""

    def __init__(
        self,
        database: Database,
        log,
        threshold: float = 0.5,
        tuple_scores: Mapping[RowRef, float] | None = None,
        query_scores: Mapping[str, float] | None = None,
        default_score: float = 1.0,
        policy: str = "normal_form",
    ):
        super().__init__(database, log, policy=policy)
        self.structure = TrustStructure(threshold)
        self._env = self.valuation(
            self.structure,
            tuple_default=TrustValue.unknown(default_score),
            query_default=TrustValue.unknown(default_score),
            tuple_overrides={
                (rel, tuple(row)): TrustValue.unknown(score)
                for (rel, row), score in (tuple_scores or {}).items()
            },
            query_overrides={
                name: TrustValue.unknown(score)
                for name, score in (query_scores or {}).items()
            },
        )
        self.usage_time = 0.0

    def certify(self) -> Database:
        """Rows certified at the threshold: inclusion is ``trusted(value)``.

        Note the inclusion predicate: an untouched low-trust input tuple
        specializes to its own ``(score, U)`` annotation, which is *not*
        the structure's zero but must still be excluded — this is why
        applications decide inclusion, not a generic ``!= 0`` test.
        """
        start = time.perf_counter()
        database, _values = self.specialize(
            self.structure, self._env, included=self.structure.trusted
        )
        self.usage_time = time.perf_counter() - start
        return database

    def certificate(self, relation: str, row: Iterable[object]) -> bool:
        """Whether one row is certified."""
        values = self.engine.specialize(self.structure, self._env)
        value = values.get(relation, {}).get(tuple(row))
        return value is not None and self.structure.trusted(value)

    def baseline(self) -> Database:
        """Re-run with untrusted tuples removed and untrusted transactions skipped.

        Ground truth for tests: an execution literally restricted to
        trusted inputs and transactions must agree with :meth:`certify` on
        live rows.
        """
        trusted_db = Database(self.database.schema)
        for relation in self.database.relations():
            trusted_db.extend(
                relation,
                (
                    row
                    for row in self.database.rows(relation)
                    if self.structure.trusted(self._env(self.tuple_annotation(relation, row)))
                ),
            )
        skip = {
            name
            for name in self.transaction_annotations()
            if not self.structure.trusted(self._env(name))
        }
        return self.rerun_baseline(trusted_db, skip_annotations=skip)
