"""Transaction abortion what-ifs (paper Section 4.1, Example 4.4).

Aborting a transaction retroactively = assigning ``False`` to its
annotation and evaluating in the Boolean structure: the result is the
database the remaining transactions would have produced, without
re-running anything.  Requires a log whose transactions carry distinct
annotations (the Section 3.8 "sequence of transactions" mode).
"""

from __future__ import annotations

import time
from typing import Iterable

from ..db.database import Database
from ..errors import EngineError
from ..semantics.boolean import BooleanStructure
from .base import ProvenanceRun
from .deletion import DeletionResult

__all__ = ["TransactionAbortion"]


class TransactionAbortion(ProvenanceRun):
    """Retroactive what-if abortion of whole transactions."""

    structure = BooleanStructure()

    def _check(self, annotations: Iterable[str]) -> frozenset[str]:
        aborted = frozenset(annotations)
        known = set(self.transaction_annotations())
        unknown = aborted - known
        if unknown:
            raise EngineError(
                f"cannot abort unknown transaction(s) {sorted(unknown)}; "
                f"log contains {sorted(known)}"
            )
        return aborted

    def abort(self, annotations: Iterable[str]) -> DeletionResult:
        """The database as if the named transactions had never run."""
        aborted = self._check(annotations)
        env = self.valuation(
            self.structure,
            tuple_default=True,
            query_default=True,
            query_overrides={name: False for name in aborted},
        )
        start = time.perf_counter()
        database, _values = self.specialize(self.structure, env)
        return DeletionResult(database, time.perf_counter() - start)

    def baseline(self, annotations: Iterable[str]) -> Database:
        """Re-run the log with the named transactions skipped (no provenance)."""
        return self.rerun_baseline(skip_annotations=self._check(annotations))

    def combined(self, aborted: Iterable[str], deleted_rows) -> DeletionResult:
        """Abort transactions *and* delete input tuples in one valuation.

        The compositionality the paper stresses: any mix of tuple- and
        query-level hypotheticals is a single assignment of values.
        """
        aborted = self._check(aborted)
        env = self.valuation(
            self.structure,
            tuple_default=True,
            query_default=True,
            tuple_overrides={(rel, tuple(row)): False for rel, row in deleted_rows},
            query_overrides={name: False for name in aborted},
        )
        start = time.perf_counter()
        database, _values = self.specialize(self.structure, env)
        return DeletionResult(database, time.perf_counter() - start)
