"""Deletion propagation through provenance (paper Sections 4.1 and 6.2).

"Consider an analyst who wishes to examine the effect of deleting a tuple
from the input database on the result of a sequence of transactions."
With provenance this is a valuation: assign ``False`` to the deleted
tuples' annotations and evaluate in the Boolean structure; without it, the
only option is to delete the tuples and re-run everything — the baseline
of Figures 7c/8c.

Example::

    app = DeletionPropagation(db, log)
    what_if = app.propagate([("products", ("Tennis Racket", "Sport", 70))])
    assert what_if.same_contents(app.baseline([...]))   # Proposition 4.2
"""

from __future__ import annotations

import time
from typing import Iterable

from ..db.database import Database
from ..semantics.boolean import BooleanStructure
from .base import ProvenanceRun, RowRef

__all__ = ["DeletionPropagation", "DeletionResult"]


class DeletionResult:
    """Outcome of one deletion what-if: the database plus timings."""

    def __init__(self, database: Database, usage_time: float):
        self.database = database
        #: seconds spent assigning values to the recorded provenance.
        self.usage_time = usage_time

    def __repr__(self) -> str:
        return f"DeletionResult({self.database!r}, usage_time={self.usage_time:.4f}s)"


class DeletionPropagation(ProvenanceRun):
    """Tuple-deletion what-ifs over a tracked update log."""

    structure = BooleanStructure()

    def propagate(self, deletions: Iterable[RowRef]) -> DeletionResult:
        """The database that the log *would* have produced without the rows.

        ``deletions`` are ``(relation, row)`` references to initial tuples.
        Only provenance evaluation happens here — no update is re-executed.
        """
        overrides = {(relation, tuple(row)): False for relation, row in deletions}
        env = self.valuation(
            self.structure,
            tuple_default=True,
            query_default=True,
            tuple_overrides=overrides,
        )
        start = time.perf_counter()
        database, _values = self.specialize(self.structure, env)
        return DeletionResult(database, time.perf_counter() - start)

    def baseline(self, deletions: Iterable[RowRef]) -> Database:
        """Delete the rows from the input and re-run with no provenance."""
        modified = self.database.copy()
        for relation, row in deletions:
            modified.discard(relation, tuple(row))
        return self.rerun_baseline(modified)

    def survives(self, deletions: Iterable[RowRef], relation: str, row: Iterable[object]) -> bool:
        """Whether one row remains in the result under the what-if."""
        result = self.propagate(deletions)
        return tuple(row) in result.database.rows(relation)
