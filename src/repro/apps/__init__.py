"""Provenance applications (paper Section 4.1).

Each application pairs the "use provenance" path (a valuation, timed as
*usage time* in the paper's Figures 7c/8c) with the corresponding
no-provenance baseline (a re-run), so the evaluation's comparison — and
the correctness cross-check behind it — is built in.
"""

from .abortion import TransactionAbortion
from .access_control import AccessControl
from .base import ProvenanceRun, default_tuple_namer
from .certification import Certification
from .deletion import DeletionPropagation, DeletionResult
from .hypothetical import HypotheticalAnalyzer

__all__ = [
    "AccessControl",
    "Certification",
    "DeletionPropagation",
    "DeletionResult",
    "HypotheticalAnalyzer",
    "ProvenanceRun",
    "TransactionAbortion",
    "default_tuple_namer",
]
