"""Symbolic hypothetical reasoning over tracked provenance.

The Section 4.1 applications assign *concrete* values per what-if.  This
module pushes the idea further using the PosBool structure (Example 4.6)
carried by BDDs: evaluate the provenance **once** with every annotation
kept symbolic; each stored row then owns a canonical Boolean function over
the tuple/transaction annotations, and hypothetical questions become BDD
queries instead of fresh valuations:

* ``holds_under(row, scenario)`` — one scenario, one BDD restrict;
* ``scenario_count(row)`` — *how many* scenarios keep the row alive
  (model counting over a chosen annotation set);
* ``witness(row)`` / ``witness_against(row)`` — a concrete scenario that
  keeps / removes the row;
* ``always_present`` / ``never_present`` — rows whose existence is
  independent of the hypothetical annotations.

This is an extension beyond the paper's evaluation (which times concrete
valuations), enabled by its own machinery: Proposition 4.2 guarantees the
symbolic evaluation commutes with any later instantiation.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..core.expr import evaluate
from ..db.database import Database
from ..errors import EngineError
from ..semantics.posbool import PosBoolStructure
from .base import ProvenanceRun, RowRef

__all__ = ["HypotheticalAnalyzer"]


class HypotheticalAnalyzer(ProvenanceRun):
    """BDD-backed multi-scenario what-if analysis.

    ``free`` selects which annotations stay symbolic (default: all
    transaction annotations — the abortion-scenario space).  Everything
    else is fixed to present/executed (True).
    """

    def __init__(
        self,
        database: Database,
        log,
        free: Iterable[str] | None = None,
        policy: str = "normal_form",
    ):
        super().__init__(database, log, policy=policy)
        self.structure = PosBoolStructure()
        self.free = frozenset(free if free is not None else self.transaction_annotations())
        unknown = self.free - set(self.transaction_annotations()) - self.engine.tuple_var_names()
        if unknown:
            raise EngineError(f"unknown annotations left free: {sorted(unknown)}")
        # Declare every free annotation up front so scenario counting sees
        # the full scenario space even for annotations no expression uses.
        for name in sorted(self.free):
            self.structure.bdd.declare(name)

        def lookup(name: str):
            if name in self.free:
                return self.structure.var(name)
            return self.structure.one

        self._nodes: dict[str, dict[tuple, int]] = {}
        for relation in database.schema.names:
            bucket: dict[tuple, int] = {}
            for row, expr, _live in self.engine.provenance(relation):
                bucket[row] = evaluate(expr, self.structure, lookup)
            self._nodes[relation] = bucket

    # -- node access -----------------------------------------------------------

    @property
    def bdd(self):
        return self.structure.bdd

    def node(self, relation: str, row: Iterable[object]) -> int:
        """The row's presence condition as a BDD node (False if unknown)."""
        return self._nodes.get(relation, {}).get(tuple(row), self.bdd.FALSE)

    # -- queries -----------------------------------------------------------------

    def holds_under(
        self, relation: str, row: Iterable[object], scenario: Mapping[str, bool]
    ) -> bool:
        """Is the row present when the scenario fixes the free annotations?

        ``scenario`` maps free annotation names to present/absent; omitted
        free annotations default to present.
        """
        assignment = {name: scenario.get(name, True) for name in self.free}
        return self.bdd.evaluate(self.node(relation, row), assignment)

    def scenario_count(self, relation: str, row: Iterable[object]) -> int:
        """Number of free-annotation scenarios under which the row exists."""
        node = self.node(relation, row)
        restricted = self.bdd.restrict(
            node, {name: True for name in self.bdd.var_names if name not in self.free}
        )
        # Count over exactly the free variables: project out the rest.
        extra = sum(1 for name in self.bdd.var_names if name not in self.free)
        return self.bdd.sat_count(restricted) >> extra

    def witness(self, relation: str, row: Iterable[object]) -> dict[str, bool] | None:
        """A scenario under which the row exists (None if unsatisfiable)."""
        model = self.bdd.any_sat(self.node(relation, row))
        if model is None:
            return None
        return {name: model.get(name, True) for name in self.free}

    def witness_against(self, relation: str, row: Iterable[object]) -> dict[str, bool] | None:
        """A scenario under which the row is absent (None if none exists)."""
        model = self.bdd.any_sat(self.bdd.negate(self.node(relation, row)))
        if model is None:
            return None
        return {name: model.get(name, True) for name in self.free}

    def always_present(self, relation: str) -> set[tuple]:
        """Rows present in *every* scenario over the free annotations."""
        return {
            row for row, node in self._nodes.get(relation, {}).items() if node == self.bdd.TRUE
        }

    def never_present(self, relation: str) -> set[tuple]:
        """Stored rows absent in every scenario (permanently dead ghosts)."""
        return {
            row for row, node in self._nodes.get(relation, {}).items() if node == self.bdd.FALSE
        }

    def depends_on(self, relation: str, row: Iterable[object]) -> frozenset[str]:
        """The free annotations the row's existence actually depends on."""
        return self.bdd.support(self.node(relation, row)) & self.free
