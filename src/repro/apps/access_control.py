"""Access control through set-valued provenance (paper Section 4.1).

Tuples and transactions are annotated with credential sets (e.g. country
names); the set Update-Structure (union / intersection / difference)
propagates them, so that after the log runs, a user holding credential
``c`` sees exactly the rows whose specialized annotation contains ``c``.

The paper's reading of the operations:

* a tuple inserted/kept by updates visible to ``{EU, US}`` is visible to
  those regions (union over alternatives);
* a tuple produced by modifying a source is visible where *both* the
  source and the modifying transaction are (intersection);
* deleting with a query visible to ``EU`` hides the tuple from ``EU``
  but leaves other regions' view intact (set difference).
"""

from __future__ import annotations

import time
from typing import Iterable, Mapping

from ..db.database import Database
from ..semantics.sets import SetStructure
from .base import ProvenanceRun, RowRef

__all__ = ["AccessControl"]


class AccessControl(ProvenanceRun):
    """Credential propagation over a tracked update log."""

    def __init__(
        self,
        database: Database,
        log,
        universe: Iterable[object],
        tuple_credentials: Mapping[RowRef, Iterable[object]] | None = None,
        query_credentials: Mapping[str, Iterable[object]] | None = None,
        policy: str = "normal_form",
    ):
        super().__init__(database, log, policy=policy)
        self.structure = SetStructure(universe)
        everyone = self.structure.top()
        self._env = self.valuation(
            self.structure,
            tuple_default=everyone,
            query_default=everyone,
            tuple_overrides={
                (rel, tuple(row)): frozenset(creds)
                for (rel, row), creds in (tuple_credentials or {}).items()
            },
            query_overrides={
                name: frozenset(creds) for name, creds in (query_credentials or {}).items()
            },
        )
        self._credentials: dict[str, dict[tuple, frozenset]] | None = None
        self.usage_time = 0.0

    def credentials(self) -> dict[str, dict[tuple, frozenset]]:
        """Per relation, the specialized credential set of every stored row."""
        if self._credentials is None:
            start = time.perf_counter()
            self._credentials = self.engine.specialize(self.structure, self._env)
            self.usage_time = time.perf_counter() - start
        return self._credentials

    def visible_to(self, credential: object) -> Database:
        """The database a user holding ``credential`` sees."""
        db = Database(self.database.schema)
        for relation, rows in self.credentials().items():
            db.extend(relation, (row for row, creds in rows.items() if credential in creds))
        return db

    def row_credentials(self, relation: str, row: Iterable[object]) -> frozenset:
        """The credential set of one row (empty if absent)."""
        return self.credentials().get(relation, {}).get(tuple(row), frozenset())
