"""Shared machinery of the provenance applications (paper Section 4.1).

Every application follows the same two-phase pattern the paper times in
Figures 7c/8c:

1. **track** — run the update log once with provenance (this class);
2. **use** — specialize the recorded provenance under a valuation into a
   concrete Update-Structure (:meth:`ProvenanceRun.specialize`), instead
   of re-running anything.

:class:`ProvenanceRun` owns the tracked engine and resolves the annotation
names: initial tuples are annotated ``t<relation>.<k>`` (stable across
policies because rows are enumerated in sorted order), queries carry their
transaction annotation.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Iterator, Mapping

from ..db.database import Database
from ..engine.engine import Engine
from ..errors import EngineError
from ..queries.updates import Transaction, UpdateQuery
from ..workloads.logs import UpdateLog

__all__ = ["ProvenanceRun", "default_tuple_namer"]

RowRef = tuple[str, tuple]


def default_tuple_namer(relation: str, row: tuple, index: int) -> str:
    """Stable per-row annotation names, e.g. ``tproducts.3``."""
    return f"t{relation}.{index}"


class ProvenanceRun:
    """One provenance-tracked execution of an update log."""

    def __init__(
        self,
        database: Database,
        log: UpdateLog | Iterable[UpdateQuery | Transaction],
        policy: str = "normal_form",
        namer: Callable[[str, tuple, int], str] = default_tuple_namer,
    ):
        if policy in ("none", "no_provenance"):
            raise EngineError("provenance applications need a provenance-tracking policy")
        self.database = database
        self.log = log if isinstance(log, UpdateLog) else UpdateLog(list(log))
        self.policy = policy
        self.engine = Engine(database, policy=policy, annotate=namer)
        start = time.perf_counter()
        self.engine.apply(self.log)
        self.tracking_time = time.perf_counter() - start

    # -- annotation name resolution ------------------------------------------

    def tuple_annotation(self, relation: str, row: Iterable[object]) -> str:
        """The annotation name of an *initial* tuple."""
        name = self.engine.tuple_var(relation, tuple(row))
        if name is None:
            raise EngineError(
                f"{tuple(row)!r} is not an initial tuple of {relation!r} "
                "(inserted tuples are identified by their query annotation)"
            )
        return name

    def transaction_annotations(self) -> list[str]:
        """All transaction annotations in the log, in first-use order."""
        return self.log.annotations()

    # -- specialization ---------------------------------------------------------

    def valuation(
        self,
        structure,
        tuple_default,
        query_default,
        tuple_overrides: Mapping[RowRef, object] | None = None,
        query_overrides: Mapping[str, object] | None = None,
    ) -> Callable[[str], object]:
        """A valuation for every annotation the run produced.

        Tuple annotations (``t<rel>.<k>``) default to ``tuple_default``,
        query annotations to ``query_default``; both may be overridden per
        row / per transaction annotation.
        """
        named: dict[str, object] = {}
        for (relation, row), value in (tuple_overrides or {}).items():
            named[self.tuple_annotation(relation, row)] = value
        for annotation, value in (query_overrides or {}).items():
            named[annotation] = value
        tuple_names = self.engine.tuple_var_names()

        def lookup(name: str):
            if name in named:
                return named[name]
            return tuple_default if name in tuple_names else query_default

        return lookup

    def specialize(
        self,
        structure,
        env: Callable[[str], object] | Mapping[str, object],
        included: Callable[[object], bool] | None = None,
    ) -> tuple[Database, dict[str, dict[tuple, object]]]:
        """Evaluate all stored provenance; returns ``(database, raw values)``.

        ``included`` decides which specialized values mean "the row is in
        the result" (default: value differs from the structure's zero).
        This is the paper's "usage" operation — no query is re-executed.
        """
        values = self.engine.specialize(structure, env)
        include = included or (lambda value: value != structure.zero)
        db = Database(self.database.schema)
        for relation, rows in values.items():
            db.extend(relation, (row for row, value in rows.items() if include(value)))
        return db, values

    # -- plain re-execution (the paper's no-provenance baseline) -----------------

    def rerun_baseline(
        self,
        database: Database | None = None,
        skip_annotations: frozenset[str] | set[str] = frozenset(),
    ) -> Database:
        """Re-run the log with no provenance over ``database``.

        ``skip_annotations`` drops whole transactions (abortion baseline);
        a modified input database is the deletion-propagation baseline.
        """
        engine = Engine(database or self.database, policy="none")
        for item in self.log:
            if isinstance(item, Transaction):
                if item.name in skip_annotations:
                    continue
                engine.apply(item)
            else:
                if item.annotation in skip_annotations:
                    continue
                engine.apply(item)
        return engine.result()

    def provenance_items(self, relation: str) -> Iterator[tuple[tuple, object, bool]]:
        return self.engine.provenance(relation)

    def __repr__(self) -> str:
        return (
            f"ProvenanceRun(policy={self.policy!r}, queries={self.log.query_count()}, "
            f"tracking_time={self.tracking_time:.3f}s)"
        )
