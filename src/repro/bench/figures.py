"""Drivers regenerating every evaluation figure of the paper.

Each ``figure_*`` function builds the workload at the active scale, runs
the required policies, and returns :class:`~repro.bench.reporting.FigureResult`
tables whose rows are the series the paper plots:

==========  ===============================================================
figure_7    TPC-C — memory overhead (7a), runtime (7b), usage time (7c)
figure_8    synthetic — memory overhead (8a), runtime (8b), usage (8c)
figure_9a   sweep of the *total* number of affected tuples (memory + time)
figure_9b   sweep of the number of tuples affected *per query* (5 queries)
figure_10   comparison with MV-semirings — memory (10a), runtime (10b)
figure_blowup  Proposition 5.1's exponential naive blowup, measured
ablation_annotations  (ours) effect of annotation granularity on the
            normal form's leverage — the design choice DESIGN.md calls out
==========  ===============================================================

Execution model: logs run as a single annotated transaction (the paper's
Section 3 semantics; see ``UpdateLog.as_single_transaction``), except in
the ablation, which contrasts exactly that choice.
"""

from __future__ import annotations

import dataclasses
import random

from ..db.database import Database
from ..engine.engine import Engine
from ..queries.pattern import Pattern
from ..queries.updates import Modify, Transaction
from ..tpcc.driver import generate_tpcc
from ..tpcc.loader import TPCCScale
from ..workloads.logs import UpdateLog
from ..workloads.synthetic import SyntheticConfig, synthetic_database, synthetic_log
from .measure import UsageMeasurement, checkpoints_for, series_run, usage_measurement
from .reporting import FigureResult
from .scales import BenchScale, active_scale

__all__ = [
    "figure_7",
    "figure_8",
    "figure_9a",
    "figure_9b",
    "figure_10",
    "figure_blowup",
    "ablation_annotations",
    "ALL_FIGURES",
    "run_figures",
]

_POLICY_LABELS = {
    "none": "No provenance",
    "naive": "No axioms",
    "normal_form": "Normal form",
    "mv_tree": "MV-semiring (tree impl)",
    "mv_string": "MV-semiring (string impl)",
}


def _overhead_usage_figures(
    prefix: str,
    dataset: str,
    database: Database,
    log: UpdateLog,
    scale: BenchScale,
    expanded_sizes: bool,
) -> list[FigureResult]:
    """The shared 3-panel layout of Figures 7 and 8."""
    single = log.as_single_transaction()
    cps = checkpoints_for(single.query_count(), scale.series_points)
    usage: dict[str, list[UsageMeasurement]] = {"naive": [], "normal_form": []}

    # Warm-up: one unmeasured vanilla pass, so the first measured policy
    # does not pay the cold-cache cost of touching every row for the
    # first time (at small scales that artifact exceeds the real deltas).
    Engine(database, policy="none").apply(single)

    def usage_probe(policy: str):
        def probe(engine: Engine, applied: int) -> None:
            usage[policy].append(
                usage_measurement(
                    engine,
                    database,
                    single.prefix(applied),
                    n_deletions=scale.usage_deletions,
                    rng=random.Random(99),
                )
            )

        return probe

    runs = {"none": series_run(database, single, "none", cps)}
    for policy in ("naive", "normal_form"):
        runs[policy] = series_run(
            database,
            single,
            policy,
            cps,
            measure_sizes=expanded_sizes,
            on_checkpoint=usage_probe(policy),
        )

    base_rows = database.total_rows()
    fig_a = FigureResult(
        figure=f"{prefix}a",
        title=f"Memory overhead vs number of updates ({dataset})",
        columns=[
            "queries",
            "naive stored nodes",
            "nf stored nodes",
            "naive expanded size",
            "nf expanded size",
            "naive extra rows",
            "nf extra rows",
        ],
        expectation="'No axioms' well above 'Normal form'; identical row (tombstone) overhead",
    )
    for i, cp in enumerate(runs["naive"].checkpoints):
        nf_cp = runs["normal_form"].checkpoints[i]
        fig_a.add(
            **{
                "queries": cp.queries,
                "naive stored nodes": cp.stored_size,
                "nf stored nodes": nf_cp.stored_size,
                "naive expanded size": cp.expanded_size,
                "nf expanded size": nf_cp.expanded_size,
                "naive extra rows": cp.support_rows - base_rows,
                "nf extra rows": nf_cp.support_rows - base_rows,
            }
        )
    final_naive = runs["naive"].final()
    final_nf = runs["normal_form"].final()
    if final_nf.stored_size:
        fig_a.note(
            f"final stored-size ratio naive/nf = "
            f"{final_naive.stored_size / final_nf.stored_size:.2f} "
            f"(paper TPC-C: 4,127,127 vs 2,264,798 = 1.82)"
        )
    if final_nf.expanded_size:
        fig_a.note(
            f"final expanded-size ratio naive/nf = "
            f"{final_naive.expanded_size / max(final_nf.expanded_size, 1):.2f}"
        )

    fig_b = FigureResult(
        figure=f"{prefix}b",
        title=f"Runtime vs number of updates ({dataset})",
        columns=["queries", "no provenance [s]", "no axioms [s]", "normal form [s]"],
        expectation="no provenance < normal form < no axioms; normal-form overhead small",
    )
    for i, cp in enumerate(runs["none"].checkpoints):
        fig_b.add(
            **{
                "queries": cp.queries,
                "no provenance [s]": cp.elapsed,
                "no axioms [s]": runs["naive"].checkpoints[i].elapsed,
                "normal form [s]": runs["normal_form"].checkpoints[i].elapsed,
            }
        )

    fig_c = FigureResult(
        figure=f"{prefix}c",
        title=f"Provenance usage time for deletion propagation ({dataset})",
        columns=[
            "queries",
            "re-run baseline [s]",
            "naive usage [s]",
            "nf usage [s]",
            "naive speedup",
            "nf speedup",
            "consistent",
        ],
        expectation="usage orders of magnitude below re-run; normal form fastest "
        "(paper: x25/x45 on TPC-C, x81/x91 on synthetic)",
    )
    for naive_u, nf_u in zip(usage["naive"], usage["normal_form"]):
        fig_c.add(
            **{
                "queries": naive_u.queries,
                "re-run baseline [s]": nf_u.rerun_time,
                "naive usage [s]": naive_u.usage_time,
                "nf usage [s]": nf_u.usage_time,
                "naive speedup": naive_u.speedup,
                "nf speedup": nf_u.speedup,
                "consistent": naive_u.consistent and nf_u.consistent,
            }
        )
    return [fig_a, fig_b, fig_c]


def figure_7(scale: BenchScale | None = None) -> list[FigureResult]:
    """Figure 7: provenance overhead and usage on TPC-C."""
    scale = scale or active_scale()
    workload = generate_tpcc(
        TPCCScale(warehouses=scale.tpcc_warehouses), n_queries=scale.tpcc_queries, seed=42
    )
    return _overhead_usage_figures(
        "fig7", "TPC-C", workload.database, workload.log, scale, expanded_sizes=True
    )


def figure_8(scale: BenchScale | None = None) -> list[FigureResult]:
    """Figure 8: provenance overhead and usage on the synthetic dataset."""
    scale = scale or active_scale()
    config = SyntheticConfig(
        n_tuples=scale.synthetic_tuples,
        n_queries=scale.synthetic_queries,
        n_groups=max(1, scale.synthetic_affected // scale.synthetic_per_query),
        group_size=scale.synthetic_per_query,
        seed=7,
    )
    return _overhead_usage_figures(
        "fig8",
        "synthetic",
        synthetic_database(config),
        synthetic_log(config),
        scale,
        expanded_sizes=True,
    )


def _final_point(database: Database, log: UpdateLog, policy: str) -> dict[str, object]:
    single = log.as_single_transaction()
    run = series_run(database, single, policy, [single.query_count()])
    final = run.final()
    return {
        "elapsed": final.elapsed,
        "stored": final.stored_size,
        "expanded": final.expanded_size,
        "rows": final.support_rows,
    }


def figure_9a(scale: BenchScale | None = None) -> list[FigureResult]:
    """Figure 9a: sweep of the total number of affected tuples."""
    scale = scale or active_scale()
    fig = FigureResult(
        figure="fig9a",
        title="Memory and runtime vs total affected tuples (fixed query count)",
        columns=[
            "affected tuples",
            "affected %",
            "naive stored nodes",
            "nf stored nodes",
            "naive time [s]",
            "nf time [s]",
        ],
        expectation="fewer affected tuples = more updates per tuple: the gap between "
        "'No axioms' and 'Normal form' widens as the affected set shrinks",
    )
    for fraction in scale.fig9a_fractions:
        total = max(scale.synthetic_per_query, int(scale.synthetic_tuples * fraction))
        total -= total % scale.synthetic_per_query
        config = SyntheticConfig(
            n_tuples=scale.synthetic_tuples,
            n_queries=scale.fig9a_queries,
            n_groups=total // scale.synthetic_per_query,
            group_size=scale.synthetic_per_query,
            seed=7,
        )
        database = synthetic_database(config)
        log = synthetic_log(config)
        naive = _final_point(database, log, "naive")
        nf = _final_point(database, log, "normal_form")
        fig.add(
            **{
                "affected tuples": total,
                "affected %": 100.0 * total / scale.synthetic_tuples,
                "naive stored nodes": naive["stored"],
                "nf stored nodes": nf["stored"],
                "naive time [s]": naive["elapsed"],
                "nf time [s]": nf["elapsed"],
            }
        )
    return [fig]


def figure_9b(scale: BenchScale | None = None) -> list[FigureResult]:
    """Figure 9b: sweep of the tuples affected per query (5 queries)."""
    scale = scale or active_scale()
    fig = FigureResult(
        figure="fig9b",
        title="Memory and runtime vs tuples affected per query (5 modifications)",
        columns=[
            "affected per query",
            "naive stored nodes",
            "nf stored nodes",
            "naive expanded size",
            "nf expanded size",
            "naive time [s]",
            "nf time [s]",
        ],
        expectation="both grow moderately in memory; the runtime of 'No axioms' grows "
        "much faster (it drags ever-larger expressions along)",
    )
    for per_query in scale.fig9b_per_query:
        config = SyntheticConfig(
            n_tuples=scale.synthetic_tuples,
            n_queries=5,
            n_groups=1,
            group_size=per_query,
            weights=(0.0, 0.0, 1.0),  # five modifications, as in §6.3
            seed=7,
        )
        database = synthetic_database(config)
        log = synthetic_log(config)
        naive = _final_point(database, log, "naive")
        nf = _final_point(database, log, "normal_form")
        fig.add(
            **{
                "affected per query": per_query,
                "naive stored nodes": naive["stored"],
                "nf stored nodes": nf["stored"],
                "naive expanded size": naive["expanded"],
                "nf expanded size": nf["expanded"],
                "naive time [s]": naive["elapsed"],
                "nf time [s]": nf["elapsed"],
            }
        )
    return [fig]


def figure_10(scale: BenchScale | None = None) -> list[FigureResult]:
    """Figure 10: comparison with the MV-semiring model of [Arab et al. 2016]."""
    scale = scale or active_scale()
    config = SyntheticConfig(
        n_tuples=scale.synthetic_tuples,
        n_queries=scale.synthetic_queries,
        n_groups=max(1, scale.synthetic_affected // scale.synthetic_per_query),
        group_size=scale.synthetic_per_query,
        seed=7,
    )
    database = synthetic_database(config)
    single = synthetic_log(config).as_single_transaction()
    cps = checkpoints_for(single.query_count(), scale.series_points)
    Engine(database, policy="none").apply(single)  # cache warm-up, unmeasured
    policies = ("naive", "normal_form", "mv_tree", "mv_string")
    runs = {policy: series_run(database, single, policy, cps) for policy in policies}

    fig_a = FigureResult(
        figure="fig10a",
        title="Memory overhead: UP[X] policies vs MV-semirings",
        columns=[
            "queries",
            "naive length+rows",
            "nf length+rows",
            "mv length+rows",
        ],
        expectation="implementation-independent measure (provenance length + tuples): "
        "naive highest (duplicated tuples), MV close below, normal form smallest",
    )
    for i in range(len(runs["naive"].checkpoints)):
        naive_cp = runs["naive"].checkpoints[i]
        nf_cp = runs["normal_form"].checkpoints[i]
        mv_cp = runs["mv_tree"].checkpoints[i]
        fig_a.add(
            **{
                "queries": naive_cp.queries,
                "naive length+rows": naive_cp.stored_size + naive_cp.support_rows,
                "nf length+rows": nf_cp.stored_size + nf_cp.support_rows,
                "mv length+rows": mv_cp.stored_size + mv_cp.support_rows,
            }
        )

    fig_b = FigureResult(
        figure="fig10b",
        title="Runtime: UP[X] policies vs MV-semirings (tree and string)",
        columns=["queries"] + [f"{_POLICY_LABELS[p]} [s]" for p in policies],
        expectation="MV tree slowest (deep recursive copies); MV string and normal "
        "form close; most implementations land between the two MV variants",
    )
    for i in range(len(runs["naive"].checkpoints)):
        row: dict[str, object] = {"queries": runs["naive"].checkpoints[i].queries}
        for policy in policies:
            row[f"{_POLICY_LABELS[policy]} [s]"] = runs[policy].checkpoints[i].elapsed
        fig_b.add(**row)
    return [fig_a, fig_b]


def figure_blowup(scale: BenchScale | None = None) -> list[FigureResult]:
    """Proposition 5.1: the adversarial two-tuple alternation, measured."""
    scale = scale or active_scale()
    database = Database.from_rows("R", ["value"], [("a",), ("b",)])
    arity = 1
    u12 = Modify("R", Pattern(arity, eq={0: "a"}), {0: "b"})
    u21 = Modify("R", Pattern(arity, eq={0: "b"}), {0: "a"})
    queries = [u12 if i % 2 == 0 else u21 for i in range(scale.blowup_queries)]
    log = UpdateLog([Transaction("p", queries)])

    fig = FigureResult(
        figure="prop5.1",
        title="Naive provenance blowup on the two-tuple alternation",
        columns=[
            "queries",
            "naive expanded size",
            "nf expanded size",
            "naive stored nodes",
            "nf stored nodes",
        ],
        expectation="naive expanded size grows as 2^(n/2); the normal form stays "
        "constant-size (Theorem 5.3)",
    )
    cps = list(range(2, scale.blowup_queries + 1, 2))
    naive = series_run(database, log, "naive", cps)
    nf = series_run(database, log, "normal_form", cps)
    for naive_cp, nf_cp in zip(naive.checkpoints, nf.checkpoints):
        fig.add(
            **{
                "queries": naive_cp.queries,
                "naive expanded size": naive_cp.expanded_size,
                "nf expanded size": nf_cp.expanded_size,
                "naive stored nodes": naive_cp.stored_size,
                "nf stored nodes": nf_cp.stored_size,
            }
        )
    last = fig.rows[-1]
    fig.note(
        f"naive grew to {last['naive expanded size']:,} expanded nodes after "
        f"{last['queries']} queries; the normal form holds at {last['nf expanded size']:,}"
    )
    return [fig]


def ablation_annotations(scale: BenchScale | None = None) -> list[FigureResult]:
    """Ablation: annotation granularity decides the normal form's leverage.

    The Figure 3 axioms relate operations carrying the *same* annotation,
    so the normal form compresses within an annotation scope and freezes
    across scopes.  Sweeping queries-per-annotation from 1 (every query its
    own transaction) to the whole log (the paper's execution model) shows
    the same workload moving from "no compression possible" to the full
    Theorem 5.3 effect.
    """
    scale = scale or active_scale()
    config = SyntheticConfig(
        n_tuples=scale.synthetic_tuples,
        n_queries=min(scale.synthetic_queries, 200),
        n_groups=max(1, (scale.synthetic_affected // 2) // scale.synthetic_per_query),
        group_size=scale.synthetic_per_query,
        seed=7,
    )
    database = synthetic_database(config)
    fig = FigureResult(
        figure="ablation-annotations",
        title="Normal-form leverage vs annotation granularity (queries per annotation)",
        columns=[
            "queries per annotation",
            "naive stored nodes",
            "nf stored nodes",
            "naive time [s]",
            "nf time [s]",
        ],
        expectation="(ours) with per-query annotations the axioms never apply and the "
        "two policies coincide; batching restores the normal form's advantage",
    )
    total = config.n_queries
    for per_annotation in (1, 5, 25, total):
        base = synthetic_log(
            dataclasses.replace(config, queries_per_transaction=min(per_annotation, total))
        )
        naive = series_run(database, base, "naive", [total]).final()
        nf = series_run(database, base, "normal_form", [total]).final()
        fig.add(
            **{
                "queries per annotation": per_annotation,
                "naive stored nodes": naive.stored_size,
                "nf stored nodes": nf.stored_size,
                "naive time [s]": naive.elapsed,
                "nf time [s]": nf.elapsed,
            }
        )
    return [fig]


#: name -> driver, in presentation order.
ALL_FIGURES = {
    "fig7": figure_7,
    "fig8": figure_8,
    "fig9a": figure_9a,
    "fig9b": figure_9b,
    "fig10": figure_10,
    "blowup": figure_blowup,
    "ablation": ablation_annotations,
}


def run_figures(names: list[str] | None = None, scale: BenchScale | None = None):
    """Run the named figure drivers (default: all); yields FigureResults."""
    for name in names or list(ALL_FIGURES):
        if name not in ALL_FIGURES:
            raise KeyError(f"unknown figure {name!r} (choose from {', '.join(ALL_FIGURES)})")
        yield from ALL_FIGURES[name](scale)
