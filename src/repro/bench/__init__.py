"""Benchmark harness: measurements, figure drivers, reporting, scales."""

from .figures import (
    ALL_FIGURES,
    ablation_annotations,
    figure_10,
    figure_7,
    figure_8,
    figure_9a,
    figure_9b,
    figure_blowup,
    run_figures,
)
from .measure import (
    Checkpoint,
    SeriesRun,
    UsageMeasurement,
    checkpoints_for,
    series_run,
    usage_measurement,
)
from .reporting import FigureResult, format_value
from .scales import SCALES, BenchScale, active_scale

__all__ = [
    "ALL_FIGURES",
    "BenchScale",
    "Checkpoint",
    "FigureResult",
    "SCALES",
    "SeriesRun",
    "UsageMeasurement",
    "ablation_annotations",
    "active_scale",
    "checkpoints_for",
    "figure_10",
    "figure_7",
    "figure_8",
    "figure_9a",
    "figure_9b",
    "figure_blowup",
    "format_value",
    "run_figures",
    "series_run",
    "usage_measurement",
]
