"""Formatting and persistence of figure results.

A :class:`FigureResult` is a named table of measurement rows plus the
paper's expected shape; ``format_table`` renders it the way the paper's
series read ("rows/series the paper reports"), and ``to_json``/``to_csv``
persist raw numbers for EXPERIMENTS.md bookkeeping.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

__all__ = ["FigureResult", "format_value"]


def format_value(value: object) -> str:
    """Human formatting: seconds to 4 digits, big ints with separators."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.0001):
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".") or "0"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


@dataclass
class FigureResult:
    """One reproduced table/figure: rows, column order, expectations."""

    figure: str
    title: str
    columns: Sequence[str]
    rows: list[Mapping[str, object]] = field(default_factory=list)
    #: the paper's qualitative expectation, quoted in the printed output.
    expectation: str = ""
    #: free-form observations filled by the driver (e.g. measured ratios).
    notes: list[str] = field(default_factory=list)

    def add(self, **row: object) -> None:
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    # -- rendering -------------------------------------------------------------

    def format_table(self) -> str:
        header = [str(c) for c in self.columns]
        body = [[format_value(row.get(c, "")) for c in self.columns] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [
            f"== {self.figure}: {self.title} ==",
        ]
        if self.expectation:
            lines.append(f"paper expectation: {self.expectation}")
        lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append(sep)
        lines.extend(
            " | ".join(cell.ljust(w) for cell, w in zip(line, widths)) for line in body
        )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def print(self) -> None:  # noqa: A003 - deliberate, mirrors pandas
        print(self.format_table())
        print()

    # -- persistence --------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "figure": self.figure,
                "title": self.title,
                "expectation": self.expectation,
                "columns": list(self.columns),
                "rows": [dict(r) for r in self.rows],
                "notes": list(self.notes),
            },
            indent=2,
            default=str,
        )

    def to_csv(self) -> str:
        out = io.StringIO()
        writer = csv.DictWriter(out, fieldnames=list(self.columns), extrasaction="ignore")
        writer.writeheader()
        for row in self.rows:
            writer.writerow({c: row.get(c, "") for c in self.columns})
        return out.getvalue()

    def save(self, directory: str | Path) -> Path:
        """Write ``<figure>.json`` (and ``.csv``) under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        json_path = directory / f"{self.figure}.json"
        json_path.write_text(self.to_json())
        (directory / f"{self.figure}.csv").write_text(self.to_csv())
        return json_path
