"""Subprocess child of :func:`repro.bench.memory_comparison`.

Peak RSS (``resource.getrusage``) is monotone over a process lifetime, so
comparing the memory behaviour of two interning/encoding configurations is
only honest when each configuration runs in a *fresh* process.  The parent
(:func:`repro.bench.measure.memory_comparison`) launches this module as
``python -m repro.bench.memchild`` once per mode with a JSON config on
stdin; the child runs a deterministic churn workload and reports a JSON
measurement on stdout.

The workload models the long-lived server process the interning sweep was
built for: one *resident* engine whose annotated state stays live (the
root set), plus a sequence of workload *epochs* — fresh engines built,
churned through multi-query ``normal_form_batch`` transactions, observed,
and discarded, the way successive benchmark runs, decoded captures and
retired snapshots come and go inside one process.  Every epoch's
expressions are garbage the moment its engine is dropped; a grow-only
intern table keeps them immortal (the failure mode ``series_run`` used to
paper over with ``clear_intern_table``), while the epoch sweep reclaims
them and RSS plateaus.  Epoch streams are pure functions of the seed, so
the final fingerprints must be bit-identical across all four modes.
"""

from __future__ import annotations

import hashlib
import json
import sys
import time

__all__ = ["run_child", "child_config", "MODES"]

#: The four measured quadrants: (reclaimable interning?, arena at rest?).
MODES: dict[str, tuple[bool, bool]] = {
    "objects_grow": (False, False),
    "objects_gc": (True, False),
    "arena_grow": (False, True),
    "arena_gc": (True, True),
}


def child_config(
    mode: str,
    epochs: int = 16,
    transactions: int = 24,
    queries_per_transaction: int = 6,
    rows: int = 300,
    groups: int = 15,
    seed: int = 23,
) -> dict:
    """The JSON config the parent ships to one child invocation.

    ``queries_per_transaction`` matters: the ``normal_form_batch`` policy
    flushes at transaction ends, so multi-query transactions also exercise
    the second garbage source — naive within-transaction chains that the
    flush rewrites away.
    """
    if mode not in MODES:
        raise ValueError(f"unknown memchild mode {mode!r} (known: {', '.join(MODES)})")
    return {
        "mode": mode,
        "epochs": int(epochs),
        "transactions": int(transactions),
        "queries_per_transaction": int(queries_per_transaction),
        "rows": int(rows),
        "groups": int(groups),
        "seed": int(seed),
    }


def _churn_transactions(config: dict, epoch: int) -> "list":
    """The deterministic update stream of one epoch.

    Mirrors the loadgen generator's shape — inserts of fresh ids, deletes
    and modifies selecting on the group column — but is self-contained so
    the bench axis cannot drift when loadgen profiles do.  Streams of
    different epochs use disjoint transaction names and different
    constants, so their expressions share only the initial-row bases.
    """
    import random

    from ..queries.pattern import Pattern
    from ..queries.updates import Delete, Insert, Modify, Transaction

    rng = random.Random(f"memchild:{config['seed']}:{epoch}")
    groups = config["groups"]
    per_txn = config["queries_per_transaction"]
    items = []
    next_id = config["rows"]
    for index in range(config["transactions"]):
        queries = []
        for _ in range(per_txn):
            group = rng.randrange(groups)
            roll = rng.random()
            if roll < 0.2:
                queries.append(Insert("churn", (next_id, group, rng.randrange(100))))
                next_id += 1
            elif roll < 0.4:
                queries.append(Delete("churn", Pattern(3, eq={1: group})))
            else:
                queries.append(
                    Modify("churn", Pattern(3, eq={1: group}), {2: rng.randrange(100)})
                )
        items.append(Transaction(f"e{epoch}t{index}", queries))
    return items


def _fresh_engine(config: dict, arena_on: bool):
    from ..db.database import Database
    from ..db.schema import Relation, Schema
    from ..engine.engine import Engine

    schema = Schema([Relation("churn", ["id", "grp", "v0"])])
    database = Database(schema)
    database.extend(
        "churn",
        [(rid, rid % config["groups"], rid % 7) for rid in range(config["rows"])],
    )
    return Engine(database, policy="normal_form_batch", arena=arena_on)


def _capture_blob(engine) -> bytes:
    """The canonically serialized full annotated state."""
    from ..shard.codec import capture_engine, encode_capture

    encoded = encode_capture(capture_engine(engine))
    return json.dumps(encoded, sort_keys=True, separators=(",", ":")).encode("utf-8")


def run_child(config: dict) -> dict:
    """Run one mode's workload in this process and return its measurement."""
    from ..core.expr import (
        intern_sweep_stats,
        intern_table_size,
        set_intern_gc,
        sweep_intern_table,
    )
    from ..memory import current_rss_bytes, peak_rss_bytes

    gc_on, arena_on = MODES[config["mode"]]
    if gc_on:
        # Before any workload expression exists, so the nursery covers them.
        set_intern_gc(True)

    # The resident engine: its annotated state is the live root set that
    # every sweep must preserve.  Epoch -1 seeds it with real history.
    resident = _fresh_engine(config, arena_on)
    resident.apply(_churn_transactions(config, epoch=-1))
    for _ in resident.provenance("churn"):
        pass

    started = time.perf_counter()
    intern_peak = intern_table_size()
    samples = []
    digest = hashlib.sha256(_capture_blob(resident))
    for epoch in range(config["epochs"]):
        engine = _fresh_engine(config, arena_on)
        engine.apply(_churn_transactions(config, epoch))
        # Observation flushes the batch; the naive chains built during
        # each transaction are already garbage, the rest of the epoch's
        # expressions become garbage when `engine` is dropped below.
        for _ in engine.provenance("churn"):
            pass
        if epoch == config["epochs"] - 1:
            digest.update(_capture_blob(engine))
        intern_peak = max(intern_peak, intern_table_size())
        del engine
        if gc_on:
            sweep_intern_table()
            resident.executor.store.compact_arena()
        samples.append(
            {
                "epoch": epoch,
                "intern_table_size": intern_table_size(),
                "rss_bytes": current_rss_bytes(),
            }
        )
    elapsed = time.perf_counter() - started

    # The resident state must be untouched by the sweeps.
    digest.update(_capture_blob(resident))
    arena = resident.executor.store.arena
    return {
        "mode": config["mode"],
        "gc": gc_on,
        "arena": arena_on,
        "epochs": config["epochs"],
        "transactions_per_epoch": config["transactions"],
        "fingerprint": digest.hexdigest(),
        "peak_rss_bytes": peak_rss_bytes(),
        "end_rss_bytes": current_rss_bytes(),
        "intern_table_size": intern_table_size(),
        "intern_table_peak": intern_peak,
        "arena_nodes": arena.node_count if arena is not None else 0,
        "arena_bytes": arena.nbytes() if arena is not None else 0,
        "sweep": intern_sweep_stats(),
        "samples": samples,
        "elapsed_s": elapsed,
    }


def main() -> int:
    config = json.loads(sys.stdin.read())
    result = run_child(config)
    json.dump(result, sys.stdout)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
