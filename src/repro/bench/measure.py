"""Measurement primitives behind the Section 6 figures.

The paper reports, per policy and as a function of the number of applied
updates: runtime, memory overhead, and "usage time" (assigning values to
provenance annotations vs. re-running).  :func:`series_run` replays one
log once, snapshotting measurements at query-count checkpoints, so a whole
curve costs a single execution; :func:`usage_measurement` times the
deletion-propagation valuation against its re-run baseline at the current
state of an engine.

Size metrics (see DESIGN.md §5):

* ``expanded`` — formula length counting shared sub-expressions with
  multiplicity (the Proposition 5.1 quantity; exponential for the naive
  policy on adversarial/hot workloads);
* ``stored`` — distinct expression nodes held in memory (what a Python
  implementation keeps; the Section 6 memory-overhead curves).
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from ..core.expr import Expr, clear_intern_table, intern_table_size
from ..core.memo import clear_memos, memo_stats
from ..core.normalize import normalize_expr
from ..db.database import Database
from ..engine.engine import Engine
from ..queries.updates import Transaction
from ..semantics.boolean import BooleanStructure
from ..workloads.logs import UpdateLog

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BatchComparison",
    "CacheComparison",
    "Checkpoint",
    "IndexComparison",
    "MemoryComparison",
    "RecoveryComparison",
    "ReplicationComparison",
    "SeriesRun",
    "ServerComparison",
    "ShardComparison",
    "UsageMeasurement",
    "ViewComparison",
    "batch_comparison",
    "index_comparison",
    "memory_comparison",
    "recovery_comparison",
    "repeated_normalization_workload",
    "replication_comparison",
    "rewrite_cache_comparison",
    "series_run",
    "server_comparison",
    "shard_comparison",
    "usage_measurement",
    "view_comparison",
    "checkpoints_for",
    "git_revision",
    "write_bench_json",
]


# ---------------------------------------------------------------------------
# BENCH_*.json trajectory files (shared result-writing)
# ---------------------------------------------------------------------------

#: Version of the envelope every ``BENCH_*.json`` file carries.  The body
#: under ``"payload"`` is owned by the producing subsystem (which may
#: version it separately, e.g. ``repro.loadgen.report.SCHEMA_VERSION``).
BENCH_SCHEMA_VERSION = 1


def git_revision() -> str:
    """The working tree's commit hash, or ``"unknown"`` outside a checkout.

    Stamped into every trajectory file so a ``BENCH_*.json`` regression
    can be attributed to the exact code that produced it.
    """
    import subprocess

    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    revision = completed.stdout.strip()
    return revision if completed.returncode == 0 and revision else "unknown"


def write_bench_json(
    kind: str, name: str, payload: Mapping[str, object], directory: str | Path = "."
) -> Path:
    """Write one ``BENCH_<kind>_<name>.json`` trajectory file.

    The envelope (schema version, kind/name, git revision, wall-clock
    timestamp) is uniform across producers so downstream tooling can
    index every trajectory the same way; ``payload`` is the producer's
    body.  Returns the written path.
    """
    safe = "".join(c if c.isalnum() or c in "-_." else "-" for c in name) or "run"
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{kind}_{safe}.json"
    from ..memory import current_rss_bytes, peak_rss_bytes

    document = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": kind,
        "name": name,
        "git_rev": git_revision(),
        "written_at": time.time(),
        # Memory footprint of the producing process at write time — an
        # additive envelope field (schema version unchanged) so every
        # trajectory carries the memory axis alongside its latency axis.
        "memory": {
            "rss_bytes": current_rss_bytes(),
            "peak_rss_bytes": peak_rss_bytes(),
            "intern_table_size": intern_table_size(),
        },
        "payload": dict(payload),
    }
    path.write_text(json.dumps(document, indent=2, default=str) + "\n")
    return path


@dataclass
class Checkpoint:
    """Measurements after ``queries`` updates under one policy."""

    queries: int
    elapsed: float
    expanded_size: int
    stored_size: int
    support_rows: int
    live_rows: int

    def as_dict(self) -> dict[str, object]:
        return {
            "queries": self.queries,
            "elapsed": self.elapsed,
            "expanded_size": self.expanded_size,
            "stored_size": self.stored_size,
            "support_rows": self.support_rows,
            "live_rows": self.live_rows,
        }


@dataclass
class SeriesRun:
    """One policy's full checkpoint series over a log."""

    policy: str
    checkpoints: list[Checkpoint] = field(default_factory=list)
    engine: Engine | None = field(default=None, repr=False)

    def final(self) -> Checkpoint:
        return self.checkpoints[-1]


def checkpoints_for(total_queries: int, points: int = 4) -> list[int]:
    """Evenly spaced checkpoint query counts ending at ``total_queries``."""
    points = max(1, min(points, total_queries))
    return [round(total_queries * (i + 1) / points) for i in range(points)]


def series_run(
    database: Database,
    log: UpdateLog,
    policy: str,
    checkpoints: Sequence[int],
    measure_sizes: bool = True,
    annotate: Callable[[str, tuple, int], str] | None = None,
    on_checkpoint: Callable[[Engine, int], None] | None = None,
) -> SeriesRun:
    """Replay ``log`` under ``policy``, measuring at each checkpoint.

    Checkpoints are taken between log items (transaction boundaries), at
    the first boundary where the cumulative query count reaches the
    requested value — measuring mid-transaction would observe states no
    semantics defines.  ``elapsed`` is the engine's accumulated per-query
    wall time (size snapshots and ``on_checkpoint`` work are excluded from
    it by construction).  A transaction is applied query-by-query here so
    that checkpoints land exactly on the requested counts even under the
    single-annotation execution model.
    """
    # A previous policy's run (the naive one especially) can leave millions
    # of live interned nodes behind, and their weight would be billed to
    # this run's allocations and GC.  Clearing drops the identity-equality
    # guarantee for expressions created *before* the clear, so only do it
    # when the table got genuinely heavy (never in unit-test sessions).
    if intern_table_size() > 500_000:
        clear_intern_table()
    engine = Engine(database, policy=policy, annotate=annotate)
    run = SeriesRun(policy, engine=engine)
    targets = sorted(set(checkpoints))
    target_index = 0
    applied = 0

    def snapshot() -> None:
        expanded = engine.provenance_size() if measure_sizes else 0
        stored = engine.provenance_dag_size() if measure_sizes else 0
        run.checkpoints.append(
            Checkpoint(
                queries=applied,
                elapsed=engine.stats.wall_time,
                expanded_size=expanded,
                stored_size=stored,
                support_rows=engine.support_count(),
                live_rows=engine.live_count(),
            )
        )
        if on_checkpoint is not None:
            on_checkpoint(engine, applied)

    def at_boundary() -> None:
        nonlocal target_index
        while target_index < len(targets) and applied >= targets[target_index]:
            snapshot()
            target_index += 1

    for query in log.queries():
        if target_index >= len(targets):
            break
        engine.apply(query)
        applied += 1
        at_boundary()
    if target_index < len(targets) and (
        not run.checkpoints or run.checkpoints[-1].queries != applied
    ):
        # Log shorter than the last requested checkpoint: snapshot the end.
        snapshot()
    return run


# ---------------------------------------------------------------------------
# Memoized-rewrite and batched-pipeline comparisons
# ---------------------------------------------------------------------------


@dataclass
class CacheComparison:
    """Memoized vs. cold-cache rewriting of one expression workload.

    ``uncached_time`` re-runs the rewrite with per-call tables (the
    pre-memoization behavior); ``cached_time`` runs the same sequence
    against the persistent :class:`repro.core.memo.ExprMemo`, where every
    repetition and every shared sub-expression is a table hit.
    """

    expressions: int
    repeats: int
    uncached_time: float
    cached_time: float
    hits: int
    misses: int
    consistent: bool

    @property
    def speedup(self) -> float:
        return self.uncached_time / self.cached_time if self.cached_time else float("inf")

    def as_dict(self) -> dict[str, object]:
        return {
            "expressions": self.expressions,
            "repeats": self.repeats,
            "uncached_time": self.uncached_time,
            "cached_time": self.cached_time,
            "speedup": self.speedup,
            "hits": self.hits,
            "misses": self.misses,
            "consistent": self.consistent,
        }


def repeated_normalization_workload(
    n_tuples: int = 300,
    n_queries: int = 150,
    n_groups: int = 10,
    group_size: int = 5,
    seed: int = 11,
) -> list[Expr]:
    """Naive-policy provenance of a small synthetic run.

    The expressions share sub-structure heavily (every update layers on
    yesterday's annotations), which is exactly the workload the rewrite
    memo is built for: normalizing the whole set repeatedly models the
    "re-normalize after every batch of updates" access pattern.
    """
    from ..workloads.synthetic import SyntheticConfig, synthetic_database, synthetic_log

    config = SyntheticConfig(
        n_tuples=n_tuples,
        n_queries=n_queries,
        n_groups=n_groups,
        group_size=group_size,
        seed=seed,
    )
    database = synthetic_database(config)
    log = synthetic_log(config)
    engine = Engine(database, policy="naive").apply(log.as_single_transaction())
    return [
        expr
        for relation in database.schema.names
        for _row, expr, _live in engine.provenance(relation)
    ]


def rewrite_cache_comparison(
    exprs: Sequence[Expr] | None = None, repeats: int = 3
) -> CacheComparison:
    """Time ``repeats`` normalization sweeps, cold-cache vs. memoized.

    The cached pass starts from empty memo tables (:func:`clear_memos`), so
    its first sweep pays the same work as an uncached sweep and the
    remaining ``repeats - 1`` sweeps measure pure cache hits; the reported
    hit/miss counters are the cached pass's deltas.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    expressions = list(exprs) if exprs is not None else repeated_normalization_workload()
    start = time.perf_counter()
    for _ in range(repeats):
        uncached_results = [normalize_expr(e, memo=False) for e in expressions]
    uncached_time = time.perf_counter() - start

    clear_memos()
    before = memo_stats()["normalize"]
    start = time.perf_counter()
    for _ in range(repeats):
        cached_results = [normalize_expr(e, memo=True) for e in expressions]
    cached_time = time.perf_counter() - start
    after = memo_stats()["normalize"]

    consistent = len(uncached_results) == len(cached_results) and all(
        u is c for u, c in zip(uncached_results, cached_results)
    )
    return CacheComparison(
        expressions=len(expressions),
        repeats=repeats,
        uncached_time=uncached_time,
        cached_time=cached_time,
        hits=after.hits - before.hits,
        misses=after.misses - before.misses,
        consistent=consistent,
    )


@dataclass
class BatchComparison:
    """One log, applied query-at-a-time vs. through the batched pipeline.

    Times are the engines' accumulated executor wall time, so both sides
    measure update application, not workload generation.  ``consistent``
    verifies the two engines agree on the live rows of every relation.
    """

    policy: str
    queries: int
    sequential_time: float
    batched_time: float
    batches: int
    consistent: bool

    @property
    def speedup(self) -> float:
        return self.sequential_time / self.batched_time if self.batched_time else float("inf")

    def as_dict(self) -> dict[str, object]:
        return {
            "policy": self.policy,
            "queries": self.queries,
            "sequential_time": self.sequential_time,
            "batched_time": self.batched_time,
            "speedup": self.speedup,
            "batches": self.batches,
            "consistent": self.consistent,
        }


def batch_comparison(
    database: Database,
    log: UpdateLog | Transaction,
    policy: str = "normal_form",
    verify: bool = True,
) -> BatchComparison:
    """Apply ``log`` sequentially and batched under ``policy`` and compare."""
    sequential = Engine(database, policy=policy)
    sequential.apply(log)
    batched = Engine(database, policy=policy)
    batched.apply_batch(log)
    consistent = True
    if verify:
        consistent = all(
            sequential.live_rows(relation) == batched.live_rows(relation)
            for relation in database.schema.names
        )
    return BatchComparison(
        policy=policy,
        queries=batched.stats.queries,
        sequential_time=sequential.stats.wall_time,
        batched_time=batched.stats.wall_time,
        batches=batched.stats.batches,
        consistent=consistent,
    )


@dataclass
class IndexComparison:
    """One log, applied with maintained column indexes vs. forced linear scans.

    Both runs use the very same executor code; the linear side only flips
    the store's ``use_indexes`` switch, so every pattern matching takes
    the planner's guaranteed fallback path.  Times are the engines'
    accumulated executor wall time; the indexed run is timed first so the
    process-wide expression caches it warms benefit the *linear* side
    (the comparison is conservative for the indexes).  ``consistent``
    checks bit-identical outcomes: equal live rows per relation and, for
    provenance-tracking policies, the identical (interned) annotation
    object on every stored row.
    """

    policy: str
    queries: int
    relation_rows: int
    indexed_time: float
    linear_time: float
    index_hits: int
    fallback_scans: int
    consistent: bool

    @property
    def speedup(self) -> float:
        return self.linear_time / self.indexed_time if self.indexed_time else float("inf")

    def as_dict(self) -> dict[str, object]:
        return {
            "policy": self.policy,
            "queries": self.queries,
            "relation_rows": self.relation_rows,
            "indexed_time": self.indexed_time,
            "linear_time": self.linear_time,
            "speedup": self.speedup,
            "index_hits": self.index_hits,
            "fallback_scans": self.fallback_scans,
            "consistent": self.consistent,
        }


def _bit_identical(indexed: Engine, linear: Engine, database: Database) -> bool:
    for relation in database.schema.names:
        if indexed.live_rows(relation) != linear.live_rows(relation):
            return False
        if indexed.executor.tracks_provenance:
            a = {row: expr for row, expr, _live in indexed.provenance(relation)}
            b = {row: expr for row, expr, _live in linear.provenance(relation)}
            if set(a) != set(b) or any(a[row] is not b[row] for row in a):
                return False
    return True


def index_comparison(
    database: Database | None = None,
    log: UpdateLog | Transaction | None = None,
    policy: str = "normal_form",
    verify: bool = True,
) -> IndexComparison:
    """Apply ``log`` with indexed and with linear matching and compare.

    With no workload given, builds a fig7/fig8-style synthetic scenario:
    a large relation with a small hot set selected by ``grp``-equality
    patterns, the selective regime where maintained indexes make match
    cost proportional to matched rows instead of relation size (expect
    ≥5x on large relations; the tier-1 floor asserts ≥1.5x at a much
    smaller, CI-friendly scale).
    """
    if database is None or log is None:
        from ..workloads.synthetic import SyntheticConfig, synthetic_database, synthetic_log

        config = SyntheticConfig(
            n_tuples=20_000, n_queries=300, n_groups=20, group_size=10, seed=3
        )
        database = synthetic_database(config)
        log = synthetic_log(config).as_single_transaction()

    # The indexed run goes FIRST: both runs build the same interned
    # expressions, so whichever goes second inherits a warm intern table
    # (and rewrite memos).  Timing indexed-first hands that warmth to the
    # linear side, biasing the measurement *against* the asserted speedup.
    indexed = Engine(database, policy=policy)
    store = getattr(indexed.executor, "store", None)
    if store is None:
        from ..errors import EngineError

        raise EngineError(f"policy {policy!r} does not sit on the annotation store")
    indexed.apply(log)
    linear = Engine(database, policy=policy)
    linear.executor.store.use_indexes = False
    linear.apply(log)

    consistent = True
    if verify:
        consistent = _bit_identical(indexed, linear, database)
    return IndexComparison(
        policy=policy,
        queries=indexed.stats.queries,
        relation_rows=database.total_rows(),
        indexed_time=indexed.stats.wall_time,
        linear_time=linear.stats.wall_time,
        index_hits=indexed.stats.index_hits,
        fallback_scans=indexed.stats.fallback_scans,
        consistent=consistent,
    )


# ---------------------------------------------------------------------------
# Sharding: routed partitions vs. one engine (ISSUE 4)
# ---------------------------------------------------------------------------


@dataclass
class ShardComparison:
    """One log applied on a sharded engine vs. one unsharded engine.

    Both sides run the identical executor code on the identical workload;
    the sharded side only adds routing.  Times are wall-clock around
    update application (sharded includes the drain barrier, so pending
    parallel runs are fully paid); workload generation, engine
    construction and the verification pass are outside both timed
    sections.  ``consistent`` asserts the merged sharded state is
    bit-identical to the unsharded engine — equal rows and liveness, the
    identical interned annotation object per row.

    The speedup has two independent sources: on any machine, routed
    transaction ends make per-boundary maintenance (the
    ``normal_form_batch`` flush) proportional to the touched shard's
    support instead of the whole support; on multi-core machines the
    process-pool backend additionally overlaps the shards' routed runs.
    """

    policy: str
    shards: int
    parallel: bool
    queries: int
    routed_queries: int
    broadcast_queries: int
    unsharded_time: float
    sharded_time: float
    consistent: bool

    @property
    def speedup(self) -> float:
        return self.unsharded_time / self.sharded_time if self.sharded_time else float("inf")

    def as_dict(self) -> dict[str, object]:
        return {
            "policy": self.policy,
            "shards": self.shards,
            "parallel": self.parallel,
            "queries": self.queries,
            "routed_queries": self.routed_queries,
            "broadcast_queries": self.broadcast_queries,
            "unsharded_time": self.unsharded_time,
            "sharded_time": self.sharded_time,
            "speedup": self.speedup,
            "consistent": self.consistent,
        }


def _engines_bit_identical(unsharded: Engine, sharded, database: Database) -> bool:
    for relation in database.schema.names:
        a = {row: (expr, live) for row, expr, live in unsharded.provenance(relation)}
        b = {row: (expr, live) for row, expr, live in sharded.provenance(relation)}
        if a.keys() != b.keys():
            return False
        for row, (expr, live) in a.items():
            other_expr, other_live = b[row]
            if live != other_live:
                return False
            if unsharded.executor.tracks_provenance and expr is not other_expr:
                return False
    return True


def shard_comparison(
    database: Database | None = None,
    log: UpdateLog | None = None,
    policy: str = "normal_form_batch",
    shards: int = 8,
    shard_keys: dict | None = None,
    parallel: bool = False,
    verify: bool = True,
) -> ShardComparison:
    """Apply ``log`` unsharded and sharded and compare.

    With no workload given, builds a routable fig8-style scenario — every
    deletion/modification an equality on the ``grp`` shard key, one query
    per transaction — the flush-heavy regime where routed transaction
    ends pay off even on a single core (expect >=3x sequential; the
    tier-1 floor asserts >=1.5x).  The unsharded run goes first, so the
    process-wide expression caches it warms benefit the sharded side and
    vice-versa-proofing is unnecessary: both sides build the *same*
    interned expressions, and whichever runs second inherits the warmth —
    timing unsharded-first biases the measurement *against* the asserted
    speedup.
    """
    from ..shard import ShardedEngine, route_query
    from ..shard.partition import ShardMap

    if database is None or log is None:
        from ..workloads.synthetic import SyntheticConfig, synthetic_database, synthetic_log

        config = SyntheticConfig(
            n_tuples=3_000,
            n_queries=160,
            n_groups=24,
            group_size=6,
            queries_per_transaction=1,
            seed=3,
        )
        database = synthetic_database(config)
        log = synthetic_log(config)
        shard_keys = {"synthetic": "grp"}

    shard_map = ShardMap(database.schema, shards, shard_keys)
    routed = broadcast = 0
    for query in log.queries():
        if len(route_query(query, shard_map)) == 1:
            routed += 1
        else:
            broadcast += 1

    # Construction (loading the initial database into every store) stays
    # outside both timed sections; only update application is measured.
    unsharded = Engine(database, policy=policy)
    start = time.perf_counter()
    unsharded.apply(log)
    unsharded.support_count()  # observation flush, same as the sharded drain
    unsharded_time = time.perf_counter() - start

    sharded = ShardedEngine(
        database, n_shards=shards, policy=policy, shard_keys=shard_keys, parallel=parallel
    )
    try:
        start = time.perf_counter()
        sharded.apply(log)
        sharded.support_count()  # drains the backend and flushes every shard
        sharded_time = time.perf_counter() - start

        consistent = True
        if verify:
            consistent = _engines_bit_identical(unsharded, sharded, database)
    finally:
        sharded.close()
    return ShardComparison(
        policy=policy,
        shards=shards,
        parallel=parallel,
        queries=unsharded.stats.queries,
        routed_queries=routed,
        broadcast_queries=broadcast,
        unsharded_time=unsharded_time,
        sharded_time=sharded_time,
        consistent=consistent,
    )


# ---------------------------------------------------------------------------
# Serving: admission batching vs. per-call dispatch (ISSUE 5)
# ---------------------------------------------------------------------------


@dataclass
class ServerComparison:
    """One multi-client workload served with and without admission batching.

    Both runs are the identical server, engine, protocol and client code;
    the only difference is ``admission_max`` — how many queued apply
    requests the single writer may fuse into one
    :meth:`~repro.engine.engine.Engine.apply_batch` call per cycle.
    ``admission_max=1`` is per-call dispatch: every request pays its own
    writer wake-up, executor handoff and engine bookkeeping.  Clients
    pipeline their requests, so the admission queue stays deep enough for
    fusion to matter (the realistic high-traffic regime the ROADMAP's
    north star describes).

    ``consistent`` asserts both final server states are bit-identical —
    equal rows and liveness, the identical re-interned annotation object
    per row — to a direct in-process engine applying each client's
    queries in order (client workloads live in disjoint relations, so
    cross-client interleaving cannot change the final state).

    The batched run goes first: both runs build the same interned
    expressions, so whichever runs second inherits a warm intern table
    and warm rewrite memos — timing batched-first hands that warmth to
    the per-call side, biasing the measurement *against* the asserted
    speedup.
    """

    policy: str
    clients: int
    requests: int
    queries: int
    percall_time: float
    batched_time: float
    batched_max_admitted: int
    batched_cycles: int
    percall_cycles: int
    consistent: bool

    @property
    def speedup(self) -> float:
        return self.percall_time / self.batched_time if self.batched_time else float("inf")

    def as_dict(self) -> dict[str, object]:
        return {
            "policy": self.policy,
            "clients": self.clients,
            "requests": self.requests,
            "queries": self.queries,
            "percall_time": self.percall_time,
            "batched_time": self.batched_time,
            "speedup": self.speedup,
            "batched_max_admitted": self.batched_max_admitted,
            "batched_cycles": self.batched_cycles,
            "percall_cycles": self.percall_cycles,
            "consistent": self.consistent,
        }


def server_comparison(
    clients: int = 6,
    requests_per_client: int = 100,
    policy: str = "normal_form_batch",
    verify: bool = True,
) -> ServerComparison:
    """Serve a multi-client insert stream batched and per-call and compare.

    Each of ``clients`` concurrent connections pipelines
    ``requests_per_client`` single-insert apply requests into its own
    relation.  Elapsed time covers every client finishing its workload
    (server start/stop and verification sit outside both timed sections).
    """
    import threading

    from ..db.schema import Relation, Schema
    from ..queries.updates import Insert
    from ..server import ServerClient, ServerConfig, serve_in_thread
    from ..shard.codec import capture_engine

    schema = Schema(
        [Relation(f"client_{i}", ["id", "value"]) for i in range(clients)]
    )

    def client_queries(i: int) -> list[Insert]:
        return [
            Insert(f"client_{i}", (j, f"v{i}_{j}"), annotation=f"c{i}q{j}")
            for j in range(requests_per_client)
        ]

    def run(admission_max: int) -> tuple[float, dict, dict]:
        config = ServerConfig(port=0, policy=policy, admission_max=admission_max)
        handle = serve_in_thread(Database(schema), config)
        try:
            barrier = threading.Barrier(clients + 1)
            failures: list[BaseException] = []

            def worker(i: int) -> None:
                try:
                    with ServerClient(handle.host, handle.port) as connection:
                        barrier.wait()
                        # One frame per request, pipelined: the admission
                        # queue sees the whole backlog, not lockstep pairs.
                        connection.apply_pipelined(client_queries(i))
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    failures.append(exc)
                    barrier.abort()

            threads = [
                threading.Thread(target=worker, args=(i,), daemon=True)
                for i in range(clients)
            ]
            for thread in threads:
                thread.start()
            try:
                barrier.wait()
            except threading.BrokenBarrierError:
                # A worker failed before the barrier and aborted it; its
                # exception (in `failures`) is the one worth reporting.
                pass
            start = time.perf_counter()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            if failures:
                raise failures[0]
            with ServerClient(handle.host, handle.port) as connection:
                # The writer is quiescent here (every apply answered), so
                # decoding — which interns — does not race it.
                state = connection.state()
                counters = connection.stats()["server"]
        finally:
            handle.stop()
        return elapsed, state, counters

    batched_time, batched_state, batched_counters = run(256)
    percall_time, percall_state, percall_counters = run(1)

    consistent = True
    if verify:
        direct = Engine(Database(schema), policy=policy)
        for i in range(clients):
            direct.apply(client_queries(i))
        direct_state = capture_engine(direct)
        consistent = _states_bit_identical(
            batched_state, direct_state
        ) and _states_bit_identical(percall_state, direct_state)

    return ServerComparison(
        policy=policy,
        clients=clients,
        requests=clients * requests_per_client,
        queries=clients * requests_per_client,
        percall_time=percall_time,
        batched_time=batched_time,
        batched_max_admitted=int(batched_counters["max_admitted"]),
        batched_cycles=int(batched_counters["writer_cycles"]),
        percall_cycles=int(percall_counters["writer_cycles"]),
        consistent=consistent,
    )


# ---------------------------------------------------------------------------
# Live views: delta push vs. re-read-per-update (ISSUE 8)
# ---------------------------------------------------------------------------


@dataclass
class ViewComparison:
    """One affected-tuples update stream consumed two ways.

    A fig9-style workload: a relation of ``rows`` rows partitioned into
    groups, a standing pattern watching one group (``watched`` rows), and
    ``updates`` rounds each modifying one bucket of the watched slice
    (``affected`` rows per round) — runtime as a function of affected
    tuples, not of relation size.

    *Re-read* is the pre-subscription consumer: after every round it
    fetches the **full** ``state`` capture over the wire, decodes it
    (re-interning every annotation in the relation) and filters down to
    its slice — paying O(relation) per update for an O(affected) change.
    *Push* subscribes once and consumes the server's delta batches,
    paying O(affected) wire, decode and apply per round.

    Both sides run the identical server, policy, protocol and update
    stream on fresh servers; the push run goes first, so the expression
    caches it warms benefit the re-read baseline — the measured speedup
    is conservative.  ``consistent`` asserts the delta-maintained view is
    bit-identical to a fresh same-version capture of its slice: equal
    rows and liveness, the *identical* interned annotation object per row.
    """

    policy: str
    rows: int
    watched: int
    affected: int
    updates: int
    reread_time: float
    push_time: float
    push_batches: int
    consistent: bool

    @property
    def speedup(self) -> float:
        return self.reread_time / self.push_time if self.push_time else float("inf")

    def as_dict(self) -> dict[str, object]:
        return {
            "policy": self.policy,
            "rows": self.rows,
            "watched": self.watched,
            "affected": self.affected,
            "updates": self.updates,
            "reread_time": self.reread_time,
            "push_time": self.push_time,
            "speedup": self.speedup,
            "push_batches": self.push_batches,
            "consistent": self.consistent,
        }


def view_comparison(
    rows: int = 600,
    groups: int = 3,
    buckets: int = 10,
    updates: int = 40,
    policy: str = "naive",
) -> ViewComparison:
    """Measure delta-push subscriptions against re-read-per-update.

    The schema is ``R(grp, bucket, idx, val)``; the watched slice is
    ``grp = 0`` and round ``r`` modifies bucket ``r % buckets`` of it
    inside a transaction (every round therefore changes annotations in
    the watched slice, so each one produces exactly one pushed batch).
    """
    from ..db.schema import Relation, Schema
    from ..queries.pattern import Pattern
    from ..queries.updates import Insert, Modify
    from ..queries.updates import Transaction as Txn
    from ..server import ServerClient, ServerConfig, serve_in_thread

    schema = Schema([Relation("R", ["grp", "bucket", "idx", "val"])])
    relation = schema.relation("R")
    watched = len(range(0, rows, groups))
    affected = len(range(0, rows, groups * buckets))

    def seed() -> list[Insert]:
        return [
            Insert("R", (i % groups, (i // groups) % buckets, i, 0), annotation=f"s{i}")
            for i in range(rows)
        ]

    def round_txn(r: int) -> Txn:
        return Txn(
            f"u{r}",
            [
                Modify(
                    "R",
                    Pattern.build(relation, where={"grp": 0, "bucket": r % buckets}),
                    {3: r},
                )
            ],
        )

    watched_pattern = Pattern.build(relation, where={"grp": 0})

    def fresh_server():
        config = ServerConfig(port=0, policy=policy)
        handle = serve_in_thread(Database(schema), config)
        connection = ServerClient(handle.host, handle.port)
        connection.apply_batch(seed())
        return handle, connection

    # Push side first (see the dataclass docstring for why).
    handle, connection = fresh_server()
    push_batches = 0
    try:
        subscription = connection.subscribe("R", watched_pattern)
        start = time.perf_counter()
        for r in range(updates):
            connection.apply(round_txn(r))
            target = subscription.version + 1
            while subscription.version < target:
                event = subscription.next(timeout=30.0)
                if event is None:
                    raise RuntimeError(
                        f"no delta batch for update round {r} within 30s"
                    )
                push_batches += 1
        push_time = time.perf_counter() - start
        # Bit-identity: the maintained slice vs. a fresh same-version
        # capture (the writer is quiescent — every apply was answered and
        # its deltas consumed, so versions agree and decoding is safe).
        fresh = {
            row: payload
            for row, payload in connection.state()["R"].items()
            if watched_pattern.matches(row)
        }
        consistent = set(fresh) == set(subscription.rows) and all(
            expr is subscription.rows[row][0] and live == subscription.rows[row][1]
            for row, (expr, live) in fresh.items()
        )
        subscription.unsubscribe()
        connection.close()
    finally:
        handle.stop()

    # Re-read side: same stream, full state decode + filter per round.
    handle, connection = fresh_server()
    try:
        start = time.perf_counter()
        for r in range(updates):
            connection.apply(round_txn(r))
            filtered = {
                row: payload
                for row, payload in connection.state()["R"].items()
                if watched_pattern.matches(row)
            }
        reread_time = time.perf_counter() - start
        assert filtered is not None  # the baseline really did the reads
        connection.close()
    finally:
        handle.stop()

    return ViewComparison(
        policy=policy,
        rows=rows,
        watched=watched,
        affected=affected,
        updates=updates,
        reread_time=reread_time,
        push_time=push_time,
        push_batches=push_batches,
        consistent=consistent,
    )


# ---------------------------------------------------------------------------
# Durability: logging overhead and recovery time (ISSUE 3)
# ---------------------------------------------------------------------------


@dataclass
class RecoveryComparison:
    """One log run journaled vs. plain, and recovery vs. full replay.

    Four measured sections: the *journaled* run (write-ahead log +
    checkpoints, simulated crash at the end — the journal tail is left in
    place), the *plain* run of the same log on a fresh engine (this is
    the full-replay baseline recovery competes against), the *recovery*
    (newest checkpoint + tail replay), each ending in a full state
    observation.  ``consistent`` asserts the recovered state is
    bit-identical — equal rows and liveness, the *identical* interned
    annotation object per row — to the full replay.

    The journaled run goes first, so the process-wide expression caches
    it warms benefit the full-replay side; the measured
    ``recovery_speedup`` is therefore conservative, as is
    ``logging_overhead`` (cold journaled run vs. warm plain run).
    """

    policy: str
    queries: int
    journal_records: int
    checkpoints: int
    tail_records: int
    journaled_time: float
    plain_time: float
    recovery_time: float
    consistent: bool

    @property
    def logging_overhead(self) -> float:
        """Relative cost of journaling: journaled / plain - 1."""
        return self.journaled_time / self.plain_time - 1 if self.plain_time else 0.0

    @property
    def speedup(self) -> float:
        """Recovery vs. full replay (the acceptance floor is >= 2x)."""
        return self.plain_time / self.recovery_time if self.recovery_time else float("inf")

    def as_dict(self) -> dict[str, object]:
        return {
            "policy": self.policy,
            "queries": self.queries,
            "journal_records": self.journal_records,
            "checkpoints": self.checkpoints,
            "tail_records": self.tail_records,
            "journaled_time": self.journaled_time,
            "plain_time": self.plain_time,
            "recovery_time": self.recovery_time,
            "logging_overhead": self.logging_overhead,
            "speedup": self.speedup,
            "consistent": self.consistent,
        }


def _observed_state(engine: Engine) -> dict:
    """The store state after a full provenance observation (forces flushes)."""
    engine.support_count()
    return engine.executor.store.state()


def _states_bit_identical(a: dict, b: dict) -> bool:
    if a.keys() != b.keys():
        return False
    for name in a:
        if a[name].keys() != b[name].keys():
            return False
        for row, (ann, live) in a[name].items():
            other_ann, other_live = b[name][row]
            if ann is not other_ann or live != other_live:
                return False
    return True


def recovery_comparison(
    directory,
    database: Database | None = None,
    log: UpdateLog | None = None,
    policy: str = "normal_form_batch",
    sync: str = "flush",
    checkpoint_every: int | None = None,
    verify: bool = True,
) -> RecoveryComparison:
    """Measure journaling overhead and recovery-vs-full-replay speedup.

    ``directory`` is where the journal and checkpoints live (callers pass
    a fresh temp dir).  With no workload given, builds a fig8-style
    synthetic scenario: a selective update stream in small transactions,
    so checkpoints land at transaction boundaries and the tail stays a
    fraction of the log.  ``checkpoint_every`` defaults to ~13% of the
    journal's record count, so the last checkpoint lands near the end
    and recovery replays a genuine tail — the regime where recovery
    touches the checkpoint plus a sliver of the log while full replay
    pays for every update again.  Reported ``logging_overhead`` is
    dominated by checkpoint frequency (full-state snapshots), not by the
    per-record journal appends; raise ``checkpoint_every`` to trade
    recovery time for throughput.
    """
    from ..wal import JournaledEngine, recover

    if database is None or log is None:
        from ..workloads.synthetic import SyntheticConfig, synthetic_database, synthetic_log

        config = SyntheticConfig(
            n_tuples=8_000,
            n_queries=600,
            n_groups=40,
            group_size=2,
            queries_per_transaction=10,
            seed=3,
        )
        database = synthetic_database(config)
        log = synthetic_log(config)
    if checkpoint_every is None:
        # ~13% of the record count: the last checkpoint lands near (but
        # not at) the end, so recovery always replays a genuine tail.
        n_transactions = sum(1 for item in log if isinstance(item, Transaction))
        checkpoint_every = max(1, (log.query_count() + n_transactions) * 2 // 15)

    start = time.perf_counter()
    journaled = JournaledEngine(
        database, directory, policy=policy, sync=sync, checkpoint_every=checkpoint_every
    )
    journaled.apply(log)
    journaled_state = _observed_state(journaled)
    journaled_time = time.perf_counter() - start
    journal_records = journaled.journal.appended
    checkpoints = journaled.checkpoints.written
    journaled.journal.close()  # simulated crash: no final checkpoint

    start = time.perf_counter()
    plain = Engine(database, policy=policy)
    plain.apply(log)
    plain_state = _observed_state(plain)
    plain_time = time.perf_counter() - start

    start = time.perf_counter()
    recovered = recover(directory, sync=sync, checkpoint_every=checkpoint_every)
    recovered_state = _observed_state(recovered)
    recovery_time = time.perf_counter() - start
    tail_records = recovered.recovery.tail_records
    recovered.journal.close()

    consistent = True
    if verify:
        consistent = _states_bit_identical(recovered_state, plain_state) and (
            _states_bit_identical(journaled_state, plain_state)
        )
    return RecoveryComparison(
        policy=policy,
        queries=plain.stats.queries,
        journal_records=journal_records,
        checkpoints=checkpoints,
        tail_records=tail_records,
        journaled_time=journaled_time,
        plain_time=plain_time,
        recovery_time=recovery_time,
        consistent=consistent,
    )


# ---------------------------------------------------------------------------
# Replication: follower read scaling vs. primary-only (ISSUE 10)
# ---------------------------------------------------------------------------


@dataclass
class ReplicationComparison:
    """One write stream served with reads on followers vs. primary-only.

    Both phases run the identical write load — ``writes`` single-insert
    applies, back to back through one primary connection, so every
    acknowledged write bumps the primary's version — while ``readers``
    concurrent clients issue point reads as fast as they can.  In the
    *primary* phase reads go to the writing server: the version churn
    invalidates its published snapshot on every write, so each read pays
    a full capture admission on the shared writer.  In the *replicated*
    phase reads route through
    :class:`~repro.replication.client.ReplicatedClient` to ``followers``
    journal-shipped replicas, whose pumps **coalesce** shipped frames
    (see :mod:`repro.replication.follower`): a follower publishes one
    snapshot version per applied batch, so between batches every read is
    a cached-snapshot hit.  The speedup is a per-read-cost win — captures
    amortized over whole shipped batches instead of paid per write — not
    a core-count win: it holds on a single-core runner.

    The topology is identical in both phases — the primary ships to all
    ``followers`` throughout, so both sides bear the same replication
    apply cost and the measurement isolates the read *routing* alone.

    ``consistent`` is the correctness keel: after both phases quiesce,
    every follower must sit at the primary's exact journal sequence and
    its full state capture must be bit-identical — equal rows and
    liveness, the identical re-interned annotation object per row — to
    the primary's at that same sequence.

    The primary-only phase runs first, against the *smaller* state (the
    replicated phase's writes land on top), so state-size growth biases
    the measurement *against* the asserted speedup.
    """

    policy: str
    followers: int
    readers: int
    rows: int
    writes: int
    seq: int
    primary_reads: int
    primary_elapsed: float
    replicated_reads: int
    replicated_elapsed: float
    follower_reads: int
    consistent: bool

    @property
    def primary_read_rate(self) -> float:
        return self.primary_reads / self.primary_elapsed if self.primary_elapsed else 0.0

    @property
    def replicated_read_rate(self) -> float:
        return (
            self.replicated_reads / self.replicated_elapsed
            if self.replicated_elapsed
            else 0.0
        )

    @property
    def speedup(self) -> float:
        """Aggregate read throughput: replicated / primary-only (floor 1.8x)."""
        if not self.primary_read_rate:
            return float("inf")
        return self.replicated_read_rate / self.primary_read_rate

    def as_dict(self) -> dict[str, object]:
        return {
            "policy": self.policy,
            "followers": self.followers,
            "readers": self.readers,
            "rows": self.rows,
            "writes": self.writes,
            "seq": self.seq,
            "primary_reads": self.primary_reads,
            "primary_elapsed": self.primary_elapsed,
            "primary_read_rate": self.primary_read_rate,
            "replicated_reads": self.replicated_reads,
            "replicated_elapsed": self.replicated_elapsed,
            "replicated_read_rate": self.replicated_read_rate,
            "follower_reads": self.follower_reads,
            "speedup": self.speedup,
            "consistent": self.consistent,
        }


def _await_followers(clients, seq: int, timeout: float = 60.0) -> None:
    """Block until every follower's applied sequence reaches ``seq``."""
    from ..errors import ReplicationError

    deadline = time.monotonic() + timeout
    for client in clients:
        while True:
            info = client.stats()["server"]
            if int(info.get("version", -1)) >= seq:
                break
            if time.monotonic() > deadline:
                raise ReplicationError(
                    f"follower stuck at seq {info.get('version')} < {seq}"
                )
            time.sleep(0.05)


def replication_comparison(
    directory,
    followers: int = 3,
    readers: int = 4,
    rows: int = 8000,
    writes: int = 300,
    policy: str = "normal_form_batch",
    verify: bool = True,
) -> ReplicationComparison:
    """Measure follower read scaling against primary-only reads.

    Spawns one ``repro replicate primary`` and ``followers`` follower
    child processes under ``directory`` (real process isolation: separate
    interpreters, intern tables, TCP between them).  The timed read op is
    ``annotation_of`` over rotating preloaded rows — a point read whose
    response is tiny, so throughput measures snapshot currency (capture
    admissions vs. cached-snapshot hits), not response encoding.
    """
    import threading

    from ..replication.client import ReplicatedClient
    from ..replication.process import spawn_follower, spawn_primary
    from ..server.client import ServerClient
    from ..queries.updates import Insert

    directory = Path(directory)
    relation = "events"

    def insert(i: int) -> Insert:
        return Insert(relation, (i, f"v{i}"), annotation=f"e{i}")

    def measured_phase(writer: ServerClient, make_reader, first_id: int):
        """Run the saturated write stream while readers hammer point reads."""
        stop = threading.Event()
        counts = [0] * readers
        routed = [0] * readers  # reads a follower (not the primary) served
        failures: list[BaseException] = []
        barrier = threading.Barrier(readers + 1)

        def read_loop(index: int) -> None:
            try:
                with make_reader() as client:
                    barrier.wait()
                    row_id = index
                    while not stop.is_set():
                        row_id = (row_id + 7) % rows
                        client.annotation_of(relation, (row_id, f"v{row_id}"))
                        counts[index] += 1
                    routed[index] = getattr(client, "follower_reads", 0)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                failures.append(exc)
                stop.set()
                barrier.abort()

        threads = [
            threading.Thread(target=read_loop, args=(i,), daemon=True)
            for i in range(readers)
        ]
        for thread in threads:
            thread.start()
        try:
            barrier.wait()
            start = time.perf_counter()
            # Back-to-back single applies: continuous version churn, the
            # write regime the read-scaling claim is about.
            for j in range(writes):
                writer.apply(insert(first_id + j))
            elapsed = time.perf_counter() - start
        finally:
            stop.set()
        for thread in threads:
            thread.join(timeout=30)
        if failures:
            raise failures[0]
        return sum(counts), elapsed, sum(routed)

    with spawn_primary(
        directory / "primary", schema=[f"{relation}:id,value"], policy=policy
    ) as primary:
        with ServerClient(*primary.address, connect_retry=10.0) as writer:
            # Preload outside both timed sections: the shared baseline state
            # every point read resolves against.
            writer.apply_pipelined([insert(i) for i in range(rows)])

            nodes = [
                spawn_follower(
                    directory / f"follower-{i}", primary.replication_address
                )
                for i in range(followers)
            ]
            try:
                follower_clients = [
                    ServerClient(*node.address, connect_retry=10.0) for node in nodes
                ]
                # Followers start from the checkpoint fetch; let them reach
                # the preload watermark before timing anything.
                _await_followers(follower_clients, writer.last_seq or 0)

                primary_reads, primary_elapsed, _ = measured_phase(
                    writer,
                    lambda: ServerClient(*primary.address, connect_retry=10.0),
                    first_id=rows,
                )

                replicated_reads, replicated_elapsed, follower_served = measured_phase(
                    writer,
                    lambda: ReplicatedClient(
                        primary.address,
                        [node.address for node in nodes],
                        # A reading-only client has observed no write seq, so
                        # any generous bound keeps every read on a follower.
                        max_lag=1_000_000,
                        connect_retry=10.0,
                    ),
                    first_id=rows + writes,
                )

                # Quiesce and hold the keel: every follower at the primary's
                # exact journal seq, bit-identical full state captures.
                seq = writer.last_seq or 0
                _await_followers(follower_clients, seq)
                consistent = True
                if verify:
                    primary_state = writer.state()
                    for client in follower_clients:
                        follower_state = client.state()
                        if client.last_version != seq or not _states_bit_identical(
                            primary_state, follower_state
                        ):
                            consistent = False
                for client in follower_clients:
                    client.close()
            finally:
                for node in nodes:
                    node.stop()

    return ReplicationComparison(
        policy=policy,
        followers=followers,
        readers=readers,
        rows=rows,
        writes=writes,
        seq=seq,
        primary_reads=primary_reads,
        primary_elapsed=primary_elapsed,
        replicated_reads=replicated_reads,
        replicated_elapsed=replicated_elapsed,
        follower_reads=follower_served,
        consistent=consistent,
    )


# ---------------------------------------------------------------------------
# Memory comparison (reclaimable interning + arena encoding)
# ---------------------------------------------------------------------------


@dataclass
class MemoryComparison:
    """Peak-RSS / node-count comparison across interning+encoding modes.

    One subprocess per mode (peak RSS is monotone per process), all modes
    running the identical epoch-churn workload of
    :mod:`repro.bench.memchild`.  ``consistent`` is the bit-identity
    check: every mode must fingerprint the same final annotated states —
    the sweep and the arena are representation changes, never semantic
    ones.
    """

    config: dict
    results: dict[str, dict]

    def _peak(self, mode: str) -> int:
        return int(self.results.get(mode, {}).get("peak_rss_bytes", 0))

    def _nodes(self, mode: str) -> int:
        return int(self.results.get(mode, {}).get("intern_table_size", 0))

    @property
    def rss_ratio(self) -> float:
        """Peak RSS, grow-only objects over GC'd arena (higher is better)."""
        denominator = self._peak("arena_gc")
        return self._peak("objects_grow") / denominator if denominator else 0.0

    @property
    def node_ratio(self) -> float:
        """Final intern-table size, grow-only over GC'd (higher is better)."""
        denominator = self._nodes("arena_gc")
        return self._nodes("objects_grow") / denominator if denominator else 0.0

    @property
    def consistent(self) -> bool:
        prints = {r.get("fingerprint") for r in self.results.values()}
        return len(prints) == 1 and None not in prints

    @property
    def swept_total(self) -> int:
        return int(self.results.get("arena_gc", {}).get("sweep", {}).get("swept_total", 0))

    def as_dict(self) -> dict[str, object]:
        return {
            "config": dict(self.config),
            "results": {mode: dict(r) for mode, r in self.results.items()},
            "rss_ratio": self.rss_ratio,
            "node_ratio": self.node_ratio,
            "swept_total": self.swept_total,
            "consistent": self.consistent,
        }


def _memchild_run(config: dict, timeout: float) -> dict:
    """Launch one ``repro.bench.memchild`` subprocess and parse its report."""
    import os
    import subprocess
    import sys

    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-m", "repro.bench.memchild"],
        input=json.dumps(config),
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"memchild {config.get('mode')} failed "
            f"(rc={completed.returncode}): {completed.stderr.strip()[-2000:]}"
        )
    return json.loads(completed.stdout)


def memory_comparison(
    epochs: int = 16,
    transactions: int = 24,
    queries_per_transaction: int = 6,
    rows: int = 300,
    groups: int = 15,
    seed: int = 23,
    modes: Sequence[str] | None = None,
    timeout: float = 600.0,
) -> MemoryComparison:
    """Measure sustained-churn memory across the four interning/arena modes.

    At the default scale the grow-only/object configuration peaks well
    over 2x the RSS of the GC'd/arena one while both fingerprint the same
    states — the memory axis of the reclaimable-interning refactor.  Pass
    a ``modes`` subset (e.g. the two extremes) for a faster smoke run.
    """
    from .memchild import MODES, child_config

    chosen = tuple(modes) if modes is not None else tuple(MODES)
    results: dict[str, dict] = {}
    for mode in chosen:
        config = child_config(
            mode,
            epochs=epochs,
            transactions=transactions,
            queries_per_transaction=queries_per_transaction,
            rows=rows,
            groups=groups,
            seed=seed,
        )
        results[mode] = _memchild_run(config, timeout)
    return MemoryComparison(
        config={
            "epochs": epochs,
            "transactions": transactions,
            "queries_per_transaction": queries_per_transaction,
            "rows": rows,
            "groups": groups,
            "seed": seed,
            "modes": list(chosen),
        },
        results=results,
    )


def _evaluate_boolean(expr, deleted_vars: set[str], memo: dict[int, bool]) -> bool:
    """Boolean evaluation with a memo shared across rows.

    Semantically identical to ``evaluate(expr, BooleanStructure(), env)``
    with ``env = name not in deleted_vars``; the persistent memo makes the
    whole-database valuation a single pass over the provenance DAG.
    """
    from ..core.expr import MINUS, PLUS_I, PLUS_M, SUM, TIMES_M, VAR

    if id(expr) in memo:
        return memo[id(expr)]
    stack: list[tuple[object, bool]] = [(expr, False)]
    while stack:
        node, expanded = stack.pop()
        key = id(node)
        if key in memo:
            continue
        kind = node.kind
        if kind == VAR:
            memo[key] = node.name not in deleted_vars
            continue
        if not node.children:  # zero
            memo[key] = False
            continue
        if not expanded:
            stack.append((node, True))
            stack.extend((c, False) for c in node.children if id(c) not in memo)
            continue
        if kind == SUM:
            memo[key] = any(memo[id(c)] for c in node.children)
        elif kind in (PLUS_I, PLUS_M):
            memo[key] = memo[id(node.children[0])] or memo[id(node.children[1])]
        elif kind == TIMES_M:
            memo[key] = memo[id(node.children[0])] and memo[id(node.children[1])]
        else:  # MINUS
            assert kind == MINUS
            memo[key] = memo[id(node.children[0])] and not memo[id(node.children[1])]
    return memo[id(expr)]


@dataclass
class UsageMeasurement:
    """Deletion-propagation usage vs. the re-run baseline (Figures 7c/8c)."""

    policy: str
    queries: int
    deletions: int
    usage_time: float
    rerun_time: float
    consistent: bool

    @property
    def speedup(self) -> float:
        return self.rerun_time / self.usage_time if self.usage_time else float("inf")

    def as_dict(self) -> dict[str, object]:
        return {
            "policy": self.policy,
            "queries": self.queries,
            "deletions": self.deletions,
            "usage_time": self.usage_time,
            "rerun_time": self.rerun_time,
            "speedup": self.speedup,
            "consistent": self.consistent,
        }


def usage_measurement(
    engine: Engine,
    database: Database,
    applied_log: UpdateLog,
    n_deletions: int = 20,
    rng: random.Random | None = None,
    verify: bool = True,
) -> UsageMeasurement:
    """Time a deletion-propagation what-if on an already-tracked engine.

    Picks ``n_deletions`` random initial tuples, assigns ``False`` to their
    annotations and ``True`` everywhere else, and evaluates every stored
    annotation (the paper's "usage"); then deletes the same tuples from a
    copy of the input and re-runs the log with no provenance (the paper's
    baseline).  With ``verify`` the two results are compared — Proposition
    4.2 says they must agree.
    """
    rng = rng or random.Random(17)
    structure = BooleanStructure()
    deleted_vars: set[str] = set()
    deleted_rows: list[tuple[str, tuple]] = []
    candidates = [
        (relation, row)
        for relation in database.schema.names
        for row in sorted(database.rows(relation), key=repr)
    ]
    for relation, row in rng.sample(candidates, min(n_deletions, len(candidates))):
        name = engine.tuple_var(relation, row)
        if name is not None:
            deleted_vars.add(name)
            deleted_rows.append((relation, row))

    start = time.perf_counter()
    survivors: dict[str, set[tuple]] = {}
    # One assignment pass over the whole annotated database: shared
    # sub-expressions are evaluated once (memo persists across rows).
    memo: dict[int, bool] = {}
    for relation in engine.executor.schema.names:
        bucket: set[tuple] = set()
        for row, expr, _live in engine.provenance(relation):
            if _evaluate_boolean(expr, deleted_vars, memo):
                bucket.add(row)
        survivors[relation] = bucket
    usage_time = time.perf_counter() - start

    modified = database.copy()
    for relation, row in deleted_rows:
        modified.discard(relation, row)
    start = time.perf_counter()
    baseline = Engine(modified, policy="none").apply(applied_log).result()
    rerun_time = time.perf_counter() - start

    consistent = True
    if verify:
        consistent = all(
            survivors[relation] == set(baseline.rows(relation))
            for relation in baseline.schema.names
        )
    return UsageMeasurement(
        policy=engine.policy,
        queries=engine.stats.queries,
        deletions=len(deleted_rows),
        usage_time=usage_time,
        rerun_time=rerun_time,
        consistent=consistent,
    )
