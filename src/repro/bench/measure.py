"""Measurement primitives behind the Section 6 figures.

The paper reports, per policy and as a function of the number of applied
updates: runtime, memory overhead, and "usage time" (assigning values to
provenance annotations vs. re-running).  :func:`series_run` replays one
log once, snapshotting measurements at query-count checkpoints, so a whole
curve costs a single execution; :func:`usage_measurement` times the
deletion-propagation valuation against its re-run baseline at the current
state of an engine.

Size metrics (see DESIGN.md §5):

* ``expanded`` — formula length counting shared sub-expressions with
  multiplicity (the Proposition 5.1 quantity; exponential for the naive
  policy on adversarial/hot workloads);
* ``stored`` — distinct expression nodes held in memory (what a Python
  implementation keeps; the Section 6 memory-overhead curves).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..core.expr import clear_intern_table, intern_table_size
from ..db.database import Database
from ..engine.engine import Engine
from ..queries.updates import Transaction
from ..semantics.boolean import BooleanStructure
from ..workloads.logs import UpdateLog

__all__ = [
    "Checkpoint",
    "SeriesRun",
    "UsageMeasurement",
    "series_run",
    "usage_measurement",
    "checkpoints_for",
]


@dataclass
class Checkpoint:
    """Measurements after ``queries`` updates under one policy."""

    queries: int
    elapsed: float
    expanded_size: int
    stored_size: int
    support_rows: int
    live_rows: int

    def as_dict(self) -> dict[str, object]:
        return {
            "queries": self.queries,
            "elapsed": self.elapsed,
            "expanded_size": self.expanded_size,
            "stored_size": self.stored_size,
            "support_rows": self.support_rows,
            "live_rows": self.live_rows,
        }


@dataclass
class SeriesRun:
    """One policy's full checkpoint series over a log."""

    policy: str
    checkpoints: list[Checkpoint] = field(default_factory=list)
    engine: Engine | None = field(default=None, repr=False)

    def final(self) -> Checkpoint:
        return self.checkpoints[-1]


def checkpoints_for(total_queries: int, points: int = 4) -> list[int]:
    """Evenly spaced checkpoint query counts ending at ``total_queries``."""
    points = max(1, min(points, total_queries))
    return [round(total_queries * (i + 1) / points) for i in range(points)]


def series_run(
    database: Database,
    log: UpdateLog,
    policy: str,
    checkpoints: Sequence[int],
    measure_sizes: bool = True,
    annotate: Callable[[str, tuple, int], str] | None = None,
    on_checkpoint: Callable[[Engine, int], None] | None = None,
) -> SeriesRun:
    """Replay ``log`` under ``policy``, measuring at each checkpoint.

    Checkpoints are taken between log items (transaction boundaries), at
    the first boundary where the cumulative query count reaches the
    requested value — measuring mid-transaction would observe states no
    semantics defines.  ``elapsed`` is the engine's accumulated per-query
    wall time (size snapshots and ``on_checkpoint`` work are excluded from
    it by construction).  A transaction is applied query-by-query here so
    that checkpoints land exactly on the requested counts even under the
    single-annotation execution model.
    """
    # A previous policy's run (the naive one especially) can leave millions
    # of live interned nodes behind, and their weight would be billed to
    # this run's allocations and GC.  Clearing drops the identity-equality
    # guarantee for expressions created *before* the clear, so only do it
    # when the table got genuinely heavy (never in unit-test sessions).
    if intern_table_size() > 500_000:
        clear_intern_table()
    engine = Engine(database, policy=policy, annotate=annotate)
    run = SeriesRun(policy, engine=engine)
    targets = sorted(set(checkpoints))
    target_index = 0
    applied = 0

    def snapshot() -> None:
        expanded = engine.provenance_size() if measure_sizes else 0
        stored = engine.provenance_dag_size() if measure_sizes else 0
        run.checkpoints.append(
            Checkpoint(
                queries=applied,
                elapsed=engine.stats.wall_time,
                expanded_size=expanded,
                stored_size=stored,
                support_rows=engine.support_count(),
                live_rows=engine.live_count(),
            )
        )
        if on_checkpoint is not None:
            on_checkpoint(engine, applied)

    def at_boundary() -> None:
        nonlocal target_index
        while target_index < len(targets) and applied >= targets[target_index]:
            snapshot()
            target_index += 1

    for query in log.queries():
        if target_index >= len(targets):
            break
        engine.apply(query)
        applied += 1
        at_boundary()
    if target_index < len(targets) and (
        not run.checkpoints or run.checkpoints[-1].queries != applied
    ):
        # Log shorter than the last requested checkpoint: snapshot the end.
        snapshot()
    return run


def _evaluate_boolean(expr, deleted_vars: set[str], memo: dict[int, bool]) -> bool:
    """Boolean evaluation with a memo shared across rows.

    Semantically identical to ``evaluate(expr, BooleanStructure(), env)``
    with ``env = name not in deleted_vars``; the persistent memo makes the
    whole-database valuation a single pass over the provenance DAG.
    """
    from ..core.expr import MINUS, PLUS_I, PLUS_M, SUM, TIMES_M, VAR

    if id(expr) in memo:
        return memo[id(expr)]
    stack: list[tuple[object, bool]] = [(expr, False)]
    while stack:
        node, expanded = stack.pop()
        key = id(node)
        if key in memo:
            continue
        kind = node.kind
        if kind == VAR:
            memo[key] = node.name not in deleted_vars
            continue
        if not node.children:  # zero
            memo[key] = False
            continue
        if not expanded:
            stack.append((node, True))
            stack.extend((c, False) for c in node.children if id(c) not in memo)
            continue
        if kind == SUM:
            memo[key] = any(memo[id(c)] for c in node.children)
        elif kind in (PLUS_I, PLUS_M):
            memo[key] = memo[id(node.children[0])] or memo[id(node.children[1])]
        elif kind == TIMES_M:
            memo[key] = memo[id(node.children[0])] and memo[id(node.children[1])]
        else:  # MINUS
            assert kind == MINUS
            memo[key] = memo[id(node.children[0])] and not memo[id(node.children[1])]
    return memo[id(expr)]


@dataclass
class UsageMeasurement:
    """Deletion-propagation usage vs. the re-run baseline (Figures 7c/8c)."""

    policy: str
    queries: int
    deletions: int
    usage_time: float
    rerun_time: float
    consistent: bool

    @property
    def speedup(self) -> float:
        return self.rerun_time / self.usage_time if self.usage_time else float("inf")

    def as_dict(self) -> dict[str, object]:
        return {
            "policy": self.policy,
            "queries": self.queries,
            "deletions": self.deletions,
            "usage_time": self.usage_time,
            "rerun_time": self.rerun_time,
            "speedup": self.speedup,
            "consistent": self.consistent,
        }


def usage_measurement(
    engine: Engine,
    database: Database,
    applied_log: UpdateLog,
    n_deletions: int = 20,
    rng: random.Random | None = None,
    verify: bool = True,
) -> UsageMeasurement:
    """Time a deletion-propagation what-if on an already-tracked engine.

    Picks ``n_deletions`` random initial tuples, assigns ``False`` to their
    annotations and ``True`` everywhere else, and evaluates every stored
    annotation (the paper's "usage"); then deletes the same tuples from a
    copy of the input and re-runs the log with no provenance (the paper's
    baseline).  With ``verify`` the two results are compared — Proposition
    4.2 says they must agree.
    """
    rng = rng or random.Random(17)
    structure = BooleanStructure()
    deleted_vars: set[str] = set()
    deleted_rows: list[tuple[str, tuple]] = []
    candidates = [
        (relation, row)
        for relation in database.schema.names
        for row in sorted(database.rows(relation), key=repr)
    ]
    for relation, row in rng.sample(candidates, min(n_deletions, len(candidates))):
        name = engine.tuple_var(relation, row)
        if name is not None:
            deleted_vars.add(name)
            deleted_rows.append((relation, row))

    start = time.perf_counter()
    survivors: dict[str, set[tuple]] = {}
    # One assignment pass over the whole annotated database: shared
    # sub-expressions are evaluated once (memo persists across rows).
    memo: dict[int, bool] = {}
    for relation in engine.executor.schema.names:
        bucket: set[tuple] = set()
        for row, expr, _live in engine.provenance(relation):
            if _evaluate_boolean(expr, deleted_vars, memo):
                bucket.add(row)
        survivors[relation] = bucket
    usage_time = time.perf_counter() - start

    modified = database.copy()
    for relation, row in deleted_rows:
        modified.discard(relation, row)
    start = time.perf_counter()
    baseline = Engine(modified, policy="none").apply(applied_log).result()
    rerun_time = time.perf_counter() - start

    consistent = True
    if verify:
        consistent = all(
            survivors[relation] == set(baseline.rows(relation))
            for relation in baseline.schema.names
        )
    return UsageMeasurement(
        policy=engine.policy,
        queries=engine.stats.queries,
        deletions=len(deleted_rows),
        usage_time=usage_time,
        rerun_time=rerun_time,
        consistent=consistent,
    )
