"""Benchmark scale presets.

The paper ran 1M-2.1M-tuple instances with up to ~2000 updates on a
laptop, for minutes per configuration.  The scientific content of its
figures is in *ratios and shapes*, which smaller instances preserve; these
presets pick the instance sizes per figure, selected by the
``REPRO_BENCH_SCALE`` environment variable:

========  =============================================================
tiny      seconds in total; used by the test suite's smoke tests
small     default; full benchmark suite in ~a minute
medium    a few minutes; ratios stabilize
paper     the paper's own sizes (1M tuples, 2000 updates) — expect the
          paper's minutes-per-point runtimes
========  =============================================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["BenchScale", "SCALES", "active_scale"]


@dataclass(frozen=True)
class BenchScale:
    """Per-figure workload sizes at one scale preset."""

    name: str
    # Synthetic family (Figures 8, 9, 10)
    synthetic_tuples: int
    synthetic_queries: int
    synthetic_affected: int  # total affected tuples (0.02% of tuples in the paper)
    synthetic_per_query: int  # group size: tuples touched by one query
    # TPC-C family (Figure 7)
    tpcc_warehouses: int
    tpcc_queries: int
    # Sweeps
    series_points: int
    fig9a_queries: int  # fixed query count of the affected-tuples sweep
    fig9a_fractions: tuple[float, ...]  # of the table size, paper: 0.02%..0.1%
    fig9b_per_query: tuple[int, ...]  # tuples affected by each of 5 queries
    blowup_queries: int
    usage_deletions: int


SCALES: dict[str, BenchScale] = {
    "tiny": BenchScale(
        name="tiny",
        synthetic_tuples=2_000,
        synthetic_queries=120,
        synthetic_affected=40,
        synthetic_per_query=4,
        tpcc_warehouses=1,
        tpcc_queries=150,
        series_points=3,
        fig9a_queries=60,
        fig9a_fractions=(0.005, 0.01, 0.02),
        fig9b_per_query=(10, 40, 80),
        blowup_queries=12,
        usage_deletions=10,
    ),
    "small": BenchScale(
        name="small",
        synthetic_tuples=20_000,
        synthetic_queries=400,
        synthetic_affected=100,
        synthetic_per_query=5,
        tpcc_warehouses=2,
        tpcc_queries=400,
        series_points=4,
        fig9a_queries=200,
        fig9a_fractions=(0.001, 0.002, 0.003, 0.005),
        fig9b_per_query=(20, 60, 120, 200),
        blowup_queries=16,
        usage_deletions=20,
    ),
    "medium": BenchScale(
        name="medium",
        synthetic_tuples=100_000,
        synthetic_queries=1_000,
        synthetic_affected=200,
        synthetic_per_query=5,
        tpcc_warehouses=8,
        tpcc_queries=1_000,
        series_points=4,
        fig9a_queries=600,
        fig9a_fractions=(0.0002, 0.0004, 0.0006, 0.0008, 0.001),
        fig9b_per_query=(50, 150, 300, 500),
        blowup_queries=18,
        usage_deletions=50,
    ),
    "paper": BenchScale(
        name="paper",
        synthetic_tuples=1_000_000,
        synthetic_queries=2_000,
        synthetic_affected=200,
        synthetic_per_query=5,
        tpcc_warehouses=16,
        tpcc_queries=2_000,
        series_points=4,
        fig9a_queries=2_000,
        fig9a_fractions=(0.0002, 0.0004, 0.0006, 0.0008, 0.001),
        fig9b_per_query=(200, 400, 600, 800, 1000),
        blowup_queries=20,
        usage_deletions=100,
    ),
}


def active_scale(default: str = "small") -> BenchScale:
    """The preset selected by ``REPRO_BENCH_SCALE`` (default ``small``)."""
    name = os.environ.get("REPRO_BENCH_SCALE", default).lower()
    if name not in SCALES:
        raise KeyError(
            f"unknown REPRO_BENCH_SCALE {name!r} (choose from {', '.join(SCALES)})"
        )
    return SCALES[name]
