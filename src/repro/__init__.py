"""repro — equivalence-invariant algebraic provenance for hyperplane updates.

A full reproduction of "Equivalence-Invariant Algebraic Provenance for
Hyperplane Update Queries" (Bourhis, Deutch, Moskovitch; SIGMOD 2020):
the UP[X] provenance algebra, its normal form, concrete Update-Structures,
a provenance-tracking in-memory database engine, the TPC-C and synthetic
evaluation workloads, and the MV-semiring baseline.

Quickstart::

    from repro import Database, Engine, Modify, Transaction

    db = Database.from_rows("products", ["product", "category", "price"],
                            [("bike", "Sport", 120), ("racket", "Sport", 70)])
    rel = db.relation("products")
    engine = Engine(db, policy="normal_form")
    engine.apply(Transaction("t1", [Modify.set(rel,
                                               where={"category": "Sport"},
                                               set_values={"price": 50})]))
    for row, expr, live in engine.provenance("products"):
        print(row, expr, live)
"""

from ._version import __version__
from .core import (
    ALL_AXIOMS,
    ALL_RULES,
    Expr,
    NormalForm,
    Shape,
    ZERO,
    canonical,
    equivalent,
    evaluate,
    minimize,
    minus,
    normalize,
    normalize_expr,
    plus_i,
    plus_m,
    ssum,
    times_m,
    var,
)

__all__ = [
    "ALL_AXIOMS",
    "ALL_RULES",
    "Expr",
    "NormalForm",
    "Shape",
    "ZERO",
    "__version__",
    "canonical",
    "equivalent",
    "evaluate",
    "minimize",
    "minus",
    "normalize",
    "normalize_expr",
    "plus_i",
    "plus_m",
    "ssum",
    "times_m",
    "var",
]


def _load_full_api() -> None:
    """Extend the package namespace with the engine/db/semantics layers.

    Kept as a function to make the import order explicit; called at the
    bottom of the module.
    """
    from .db import Database, Relation  # noqa: F401
    from .engine import Engine  # noqa: F401
    from .queries import Delete, Insert, Modify, Pattern, Transaction  # noqa: F401

    globals().update(
        Database=Database,
        Relation=Relation,
        Engine=Engine,
        Insert=Insert,
        Delete=Delete,
        Modify=Modify,
        Pattern=Pattern,
        Transaction=Transaction,
    )
    __all__.extend(
        ["Database", "Relation", "Engine", "Insert", "Delete", "Modify", "Pattern", "Transaction"]
    )


try:
    _load_full_api()
except ImportError:  # pragma: no cover - only during partial builds
    pass
