"""Integer-id arena encoding of expression DAGs.

An :class:`ExprArena` stores expression nodes as rows of flat parallel
arrays — ``kind[] / a[] / b[]`` plus a shared variable-name table and a
flat child-id array for sums — instead of per-node Python objects.  A DAG
is referenced by the integer id of its root; shared sub-expressions share
ids, so the arena is itself hash-consed and a node costs a few machine
words rather than an ``Expr`` object plus an intern-table entry.

Two call sites use it:

* **At rest**: annotation stores in arena mode keep root ids in their row
  slots and decode back to :class:`~repro.core.expr.Expr` lazily at the
  API boundary (:meth:`ExprArena.get_expr` rebuilds through the smart
  constructors, so decoded nodes are ordinary interned expressions).
* **On the wire**: ``storage.exprjson`` / ``shard.codec`` ship one arena
  for a whole capture instead of a node list per row, deduplicating
  shared structure across rows.

The arena keeps only *weak* caches of the ``Expr`` <-> node-id mapping:
repeated encodes/decodes of live structure are O(1) (the at-rest store
round-trips every slot on each batch flush, so without the caches that
would be quadratic in history), but the caches never pin a node — once
the last strong reference outside the cache is gone the entry evaporates
and the reclaimable-interning sweep can collect the node.  Identity of
repeated decodes is guaranteed by interning itself.
"""

from __future__ import annotations

import weakref
from array import array
from typing import Iterable

from .expr import (
    MINUS,
    PLUS_I,
    PLUS_M,
    SUM,
    TIMES_M,
    VAR,
    ZERO,
    ZERO_KIND,
    Expr,
    minus,
    plus_i,
    plus_m,
    ssum,
    times_m,
    var,
)

__all__ = ["ExprArena", "ArenaError"]


class ArenaError(ValueError):
    """Malformed arena payload or unknown node id."""


# Kind codes (stable: they are the wire encoding).
K_ZERO = 0
K_VAR = 1
K_PLUS_I = 2
K_MINUS = 3
K_PLUS_M = 4
K_TIMES_M = 5
K_SUM = 6

_KIND_CODE = {PLUS_I: K_PLUS_I, MINUS: K_MINUS, PLUS_M: K_PLUS_M, TIMES_M: K_TIMES_M}
_BINARY_BUILDER = {K_PLUS_I: plus_i, K_MINUS: minus, K_PLUS_M: plus_m, K_TIMES_M: times_m}

# Intra-arena consing keys pack (a, b, code) into one int; ids are array
# indexes so they stay far below 2**32 for any arena that fits in RAM.
_SHIFT = 32


class ExprArena:
    """A flat-table, hash-consed store of expression nodes.

    Node 0 is always ``ZERO``.  ``kind[i]`` is a small int code; for
    binary nodes ``a[i]``/``b[i]`` are child ids, for variables ``a[i]``
    indexes the name table, for sums ``a[i]``/``b[i]`` are offset and
    count into the flat ``args`` child-id array.
    """

    __slots__ = (
        "_kind",
        "_a",
        "_b",
        "_args",
        "_names",
        "_name_ids",
        "_index",
        "_sum_index",
        "_to_nid",
        "_from_nid",
    )

    def __init__(self) -> None:
        self._kind = array("b", [K_ZERO])
        self._a = array("q", [0])
        self._b = array("q", [0])
        self._args = array("q")
        self._names: list[str] = []
        self._name_ids: dict[str, int] = {}
        self._index: dict[int, int] = {}
        self._sum_index: dict[tuple[int, ...], int] = {}
        # Weak acceleration caches (see module docstring): object identity
        # keys (Expr __eq__ is identity) and weak values, so neither side
        # ever pins an expression in the intern table.
        self._to_nid: "weakref.WeakKeyDictionary[Expr, int]" = weakref.WeakKeyDictionary()
        self._from_nid: "weakref.WeakValueDictionary[int, Expr]" = weakref.WeakValueDictionary()

    def __len__(self) -> int:
        return len(self._kind)

    @property
    def node_count(self) -> int:
        return len(self._kind)

    def nbytes(self) -> int:
        """Approximate at-rest bytes of the flat tables and name strings."""
        total = (
            len(self._kind) * self._kind.itemsize
            + len(self._a) * self._a.itemsize
            + len(self._b) * self._b.itemsize
            + len(self._args) * self._args.itemsize
        )
        for name in self._names:
            total += len(name)
        return total

    # -- encoding --------------------------------------------------------------

    def _name_id(self, name: str) -> int:
        nid = self._name_ids.get(name)
        if nid is None:
            nid = len(self._names)
            self._names.append(name)
            self._name_ids[name] = nid
        return nid

    def _emit(self, code: int, a: int, b: int) -> int:
        nid = len(self._kind)
        self._kind.append(code)
        self._a.append(a)
        self._b.append(b)
        return nid

    def _cons(self, code: int, a: int, b: int) -> int:
        key = ((a << _SHIFT) | b) << 3 | code
        nid = self._index.get(key)
        if nid is None:
            nid = self._emit(code, a, b)
            self._index[key] = nid
        return nid

    def add_expr(self, expr: Expr) -> int:
        """Encode ``expr`` (and all its sub-DAG) and return its node id."""
        cached = self._to_nid.get(expr)
        if cached is not None:
            return cached
        memo: dict[int, int] = {}
        stack: list[tuple[Expr, bool]] = [(expr, False)]
        while stack:
            node, ready = stack.pop()
            if id(node) in memo:
                continue
            if not ready:
                cached = self._to_nid.get(node)
                if cached is not None:
                    memo[id(node)] = cached
                    continue
                stack.append((node, True))
                for child in reversed(node.children):
                    if id(child) not in memo:
                        stack.append((child, False))
                continue
            kind = node.kind
            if kind == ZERO_KIND:
                nid = 0
            elif kind == VAR:
                nid = self._cons(K_VAR, self._name_id(node.name), 0)
            elif kind == SUM:
                ids = tuple(memo[id(c)] for c in node.children)
                nid = self._sum_index.get(ids)
                if nid is None:
                    offset = len(self._args)
                    self._args.extend(ids)
                    nid = self._emit(K_SUM, offset, len(ids))
                    self._sum_index[ids] = nid
            else:
                code = _KIND_CODE[kind]
                left, right = node.children
                nid = self._cons(code, memo[id(left)], memo[id(right)])
            memo[id(node)] = nid
            self._to_nid[node] = nid
            self._from_nid[nid] = node
        return memo[id(expr)]

    # -- decoding --------------------------------------------------------------

    def get_expr(self, nid: int) -> Expr:
        """Materialize the node ``nid`` as an interned :class:`Expr`.

        Rebuilds bottom-up through the smart constructors, so the result
        (and every shared sub-node) is the ordinary interned object —
        bit-identical to what the object path would have produced.
        """
        if not 0 <= nid < len(self._kind):
            raise ArenaError(f"unknown arena node id {nid}")
        hit = self._from_nid.get(nid)
        if hit is not None:
            return hit
        memo: dict[int, Expr] = {}
        stack: list[tuple[int, bool]] = [(nid, False)]
        while stack:
            node, ready = stack.pop()
            if node in memo:
                continue
            code = self._kind[node]
            if not ready:
                hit = self._from_nid.get(node)
                if hit is not None:
                    memo[node] = hit
                    continue
                stack.append((node, True))
                for child in self._children(node):
                    if child not in memo:
                        stack.append((child, False))
                continue
            if code == K_ZERO:
                expr = ZERO
            elif code == K_VAR:
                expr = var(self._names[self._a[node]])
            elif code == K_SUM:
                expr = ssum(memo[c] for c in self._children(node))
            else:
                expr = _BINARY_BUILDER[code](memo[self._a[node]], memo[self._b[node]])
            memo[node] = expr
            self._from_nid[node] = expr
            self._to_nid[expr] = node
        return memo[nid]

    def _children(self, nid: int) -> Iterable[int]:
        code = self._kind[nid]
        if code in (K_ZERO, K_VAR):
            return ()
        if code == K_SUM:
            offset, count = self._a[nid], self._b[nid]
            return self._args[offset : offset + count]
        return (self._a[nid], self._b[nid])

    # -- wire form -------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-serializable wire form (flat arrays + name table)."""
        return {
            "kind": self._kind.tolist(),
            "a": self._a.tolist(),
            "b": self._b.tolist(),
            "args": self._args.tolist(),
            "names": list(self._names),
        }

    @classmethod
    def from_payload(cls, data: dict) -> "ExprArena":
        """Rebuild an arena from :meth:`to_payload` output (validated)."""
        if not isinstance(data, dict):
            raise ArenaError(f"arena payload must be an object, got {type(data).__name__}")
        try:
            kinds = list(data["kind"])
            a = list(data["a"])
            b = list(data["b"])
            args = list(data["args"])
            names = list(data["names"])
        except (KeyError, TypeError) as exc:
            raise ArenaError(f"malformed arena payload: {exc}") from exc
        if not kinds or kinds[0] != K_ZERO:
            raise ArenaError("arena payload must start with the ZERO node")
        if not (len(kinds) == len(a) == len(b)):
            raise ArenaError("arena payload arrays disagree on length")
        arena = cls.__new__(cls)
        arena._kind = array("b", kinds)
        arena._a = array("q", a)
        arena._b = array("q", b)
        arena._args = array("q", args)
        arena._names = [str(n) for n in names]
        arena._name_ids = {n: i for i, n in enumerate(arena._names)}
        arena._index = {}
        arena._sum_index = {}
        arena._to_nid = weakref.WeakKeyDictionary()
        arena._from_nid = weakref.WeakValueDictionary()
        n = len(kinds)
        for nid in range(1, n):
            code = arena._kind[nid]
            if code == K_VAR:
                if not 0 <= arena._a[nid] < len(arena._names):
                    raise ArenaError(f"arena node {nid}: bad name index {arena._a[nid]}")
                arena._index[((arena._a[nid] << _SHIFT) << 3) | K_VAR] = nid
            elif code == K_SUM:
                offset, count = arena._a[nid], arena._b[nid]
                if offset < 0 or count < 0 or offset + count > len(args):
                    raise ArenaError(f"arena node {nid}: bad sum span {offset}+{count}")
                ids = tuple(arena._args[offset : offset + count])
                if any(not 0 <= c < nid for c in ids):
                    raise ArenaError(f"arena node {nid}: forward or bad sum child")
                arena._sum_index[ids] = nid
            elif code in _BINARY_BUILDER:
                if not (0 <= arena._a[nid] < nid and 0 <= arena._b[nid] < nid):
                    raise ArenaError(f"arena node {nid}: forward or bad child id")
                arena._index[((arena._a[nid] << _SHIFT) | arena._b[nid]) << 3 | code] = nid
            else:
                raise ArenaError(f"arena node {nid}: unknown kind code {code}")
        return arena
