"""Zero-axiom minimization (Proposition 5.5).

Proposition 5.5: applying the zero-related axioms of Section 3.1 to a
normal-form formula yields a *unique*, minimal formula — either a normal
form, ``0``, or a formula ``(b_0 + ... + b_n) *M p``.

In this library the smart constructors of :mod:`repro.core.expr` apply the
zero axioms eagerly, so expressions built through them are already
minimized.  :func:`minimize` exists for expressions that arrive from
elsewhere (deserialization, raw construction in tests): it rebuilds the
expression bottom-up through the smart constructors, which is exactly a
fixpoint application of the zero axioms.
"""

from __future__ import annotations

from .expr import (
    Expr,
    MINUS,
    PLUS_I,
    PLUS_M,
    SUM,
    TIMES_M,
    VAR,
    ZERO_KIND,
    minus,
    plus_i,
    plus_m,
    postorder,
    ssum,
    times_m,
)

__all__ = ["minimize", "is_minimized"]


def minimize(expr: Expr) -> Expr:
    """Apply the zero-related axioms to fixpoint.

    Idempotent, and the identity on expressions built through the smart
    constructors.  The result is the unique minimized formula of
    Proposition 5.5.
    """
    memo: dict[int, Expr] = {}
    for node in postorder(expr):
        kind = node.kind
        if kind in (VAR, ZERO_KIND):
            memo[id(node)] = node
        elif kind == SUM:
            memo[id(node)] = ssum(memo[id(c)] for c in node.children)
        else:
            a = memo[id(node.children[0])]
            b = memo[id(node.children[1])]
            if kind == PLUS_I:
                memo[id(node)] = plus_i(a, b)
            elif kind == MINUS:
                memo[id(node)] = minus(a, b)
            elif kind == PLUS_M:
                memo[id(node)] = plus_m(a, b)
            elif kind == TIMES_M:
                memo[id(node)] = times_m(a, b)
            else:  # pragma: no cover - exhaustive kinds
                raise AssertionError(f"unknown node kind {kind}")
    return memo[id(expr)]


def is_minimized(expr: Expr) -> bool:
    """True if no zero axiom applies anywhere in ``expr``."""
    return minimize(expr) is expr
