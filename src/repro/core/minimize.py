"""Zero-axiom minimization (Proposition 5.5).

Proposition 5.5: applying the zero-related axioms of Section 3.1 to a
normal-form formula yields a *unique*, minimal formula — either a normal
form, ``0``, or a formula ``(b_0 + ... + b_n) *M p``.

In this library the smart constructors of :mod:`repro.core.expr` apply the
zero axioms eagerly, so expressions built through them are already
minimized.  :func:`minimize` exists for expressions that arrive from
elsewhere (deserialization, raw construction in tests): it rebuilds the
expression bottom-up through the smart constructors, which is exactly a
fixpoint application of the zero axioms.
"""

from __future__ import annotations

from .expr import (
    Expr,
    MINUS,
    PLUS_I,
    PLUS_M,
    SUM,
    TIMES_M,
    VAR,
    ZERO_KIND,
    minus,
    plus_i,
    plus_m,
    ssum,
    times_m,
)
from .memo import ExprMemo, memoization_enabled

__all__ = ["minimize", "is_minimized"]

_MINIMIZE_MEMO = ExprMemo("minimize")


def minimize(expr: Expr, *, memo: bool | None = None) -> Expr:
    """Apply the zero-related axioms to fixpoint.

    Idempotent, and the identity on expressions built through the smart
    constructors.  The result is the unique minimized formula of
    Proposition 5.5.  Memoized per node across calls (see
    :mod:`repro.core.memo`).
    """
    use_memo = memoization_enabled() if memo is None else memo
    table = _MINIMIZE_MEMO if use_memo else ExprMemo("minimize:local", register=False)
    for node in table.pending_postorder(expr):
        kind = node.kind
        if kind in (VAR, ZERO_KIND):
            table[node] = node
        elif kind == SUM:
            table[node] = ssum(table[c] for c in node.children)  # type: ignore[misc]
        else:
            a: Expr = table[node.children[0]]  # type: ignore[assignment]
            b: Expr = table[node.children[1]]  # type: ignore[assignment]
            if kind == PLUS_I:
                table[node] = plus_i(a, b)
            elif kind == MINUS:
                table[node] = minus(a, b)
            elif kind == PLUS_M:
                table[node] = plus_m(a, b)
            elif kind == TIMES_M:
                table[node] = times_m(a, b)
            else:  # pragma: no cover - exhaustive kinds
                raise AssertionError(f"unknown node kind {kind}")
    return table[expr]  # type: ignore[return-value]


def is_minimized(expr: Expr) -> bool:
    """True if no zero axiom applies anywhere in ``expr``."""
    return minimize(expr) is expr
