"""Identity-keyed memoization over the hash-consed expression DAG.

Every expression node is interned (:mod:`repro.core.expr`), so *object
identity is structural equality* and the result of any pure function of a
node is valid for as long as the node is interned.  The rewrite layer —
:func:`~repro.core.normalize.normalize`,
:func:`~repro.core.rules.normalize_with_rules`,
:func:`~repro.core.equivalence.canonical` and
:func:`~repro.core.minimize.minimize` — exploits this through
:class:`ExprMemo`: a per-function table keyed on node identity whose entries
persist *across calls*, so shared sub-expressions (within one expression,
across the rows of a database, and across successive updates) are rewritten
once, ever.

Invalidation contract
---------------------

The single way node identity can stop meaning structural equality is
:func:`repro.core.expr.clear_intern_table`, which also bumps the *interning
generation*.  Each :class:`ExprMemo` records the generation it was filled
at and silently drops its entries the first time it is used in a newer
generation.  Entries additionally hold a strong reference to their key
node, so an ``id()`` can never be recycled while its entry is alive.
Consequences:

* user code never has to invalidate anything by hand;
* ``clear_intern_table()`` remains the one memory-release lever and now
  releases the rewrite caches too;
* :func:`clear_memos` exists for benchmarks that want to measure cold
  caches without severing interning identity.

The global switch (:func:`set_memoization`, :func:`memoization` context
manager) lets benchmarks compare cached against uncached rewriting; with
memoization disabled the rewrite functions fall back to per-call tables
and behave exactly like the pre-memoization implementation.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from .expr import Expr, intern_generation

__all__ = [
    "ExprMemo",
    "MemoStats",
    "memoization",
    "memoization_enabled",
    "set_memoization",
    "clear_memos",
    "memo_stats",
]


_ENABLED = True

#: Every persistent (registered) memo table, for global stats / clearing.
_REGISTRY: list["ExprMemo"] = []


def memoization_enabled() -> bool:
    """True if the rewrite functions consult their persistent memo tables."""
    return _ENABLED


def set_memoization(enabled: bool) -> bool:
    """Globally enable/disable rewrite memoization; returns the old value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def memoization(enabled: bool):
    """Context manager form of :func:`set_memoization`."""
    previous = set_memoization(enabled)
    try:
        yield
    finally:
        set_memoization(previous)


def clear_memos() -> None:
    """Empty every registered memo table (counts as an invalidation)."""
    for memo in _REGISTRY:
        memo.clear()


def memo_stats() -> dict[str, "MemoStats"]:
    """Per-table statistics of every registered memo, keyed by table name."""
    return {memo.name: memo.stats() for memo in _REGISTRY}


@dataclass(frozen=True)
class MemoStats:
    """Counters of one :class:`ExprMemo` (cumulative across generations)."""

    name: str
    entries: int
    hits: int
    misses: int
    invalidations: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ExprMemo:
    """A node-identity-keyed cache of one pure function of expressions.

    Mapping-style access is keyed by the node itself (``memo[node]``), but
    the underlying dict is keyed by ``id(node)`` so lookups never hash or
    compare expression structure.  Each entry stores ``(node, value)``: the
    node reference pins the id.

    ``register=False`` creates a detached table (used for the uncached
    fallback path) that does not appear in :func:`memo_stats` and is not
    touched by :func:`clear_memos`.
    """

    __slots__ = ("name", "hits", "misses", "invalidations", "_table", "_generation")

    def __init__(self, name: str, register: bool = True):
        self.name = name
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._table: dict[int, tuple[Expr, object]] = {}
        self._generation = intern_generation()
        if register:
            _REGISTRY.append(self)

    # -- generation handling --------------------------------------------------

    def sync(self) -> dict[int, tuple[Expr, object]]:
        """The table, emptied first if the interning generation moved on.

        Every public rewrite entry point must sync once before touching the
        table; the per-node mapping operations below deliberately skip the
        generation check — a rewrite is single-threaded and
        ``clear_intern_table()`` cannot run between two node accesses of
        one call.  (:meth:`pending_postorder` syncs on first iteration.)
        """
        generation = intern_generation()
        if generation != self._generation:
            if self._table:
                self.invalidations += 1
            self._table = {}
            self._generation = generation
        return self._table

    def clear(self) -> None:
        if self._table:
            self.invalidations += 1
        self._table = {}
        self._generation = intern_generation()

    # -- mapping interface (non-counting, non-syncing; hot path) --------------

    def __contains__(self, node: Expr) -> bool:
        return id(node) in self._table

    def __getitem__(self, node: Expr) -> object:
        return self._table[id(node)][1]

    def __setitem__(self, node: Expr, value: object) -> None:
        self._table[id(node)] = (node, value)

    def __len__(self) -> int:
        return len(self.sync())

    # -- the traversal the rewrite functions share ----------------------------

    def pending_postorder(self, expr: Expr) -> Iterator[Expr]:
        """Distinct uncached sub-nodes of ``expr``, children before parents.

        Prunes below cached nodes: a memoized sub-expression is a finished
        unit of work whose children need not be revisited.  Counts one hit
        per pruned (cached) node encountered and one miss per node yielded;
        the caller must store a value for every yielded node before asking
        for the next (parents consult their children's entries).
        """
        table = self.sync()
        seen: set[int] = set()
        stack: list[tuple[Expr, bool]] = [(expr, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                self.misses += 1
                yield node
                continue
            key = id(node)
            if key in seen:
                continue
            seen.add(key)
            if key in table:
                self.hits += 1
                continue
            stack.append((node, True))
            for child in reversed(node.children):
                if id(child) not in seen:
                    stack.append((child, False))

    # -- diagnostics ----------------------------------------------------------

    def stats(self) -> MemoStats:
        return MemoStats(
            name=self.name,
            entries=len(self.sync()),
            hits=self.hits,
            misses=self.misses,
            invalidations=self.invalidations,
        )

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"ExprMemo({self.name!r}, entries={s.entries}, hits={s.hits}, "
            f"misses={s.misses}, invalidations={s.invalidations})"
        )
